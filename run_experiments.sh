#!/bin/sh
# Regenerate every paper figure. Results land in results/*.json and
# the console transcript in results/experiments.log.
set -e
cd "$(dirname "$0")"
cargo build --release -p blu-bench
for exp in exp_fig04_motivation exp_fig10_13_testbed exp_fig14_inference \
           exp_fig15_perfect exp_fig16_varying_ues exp_fig17_mumimo \
           exp_fig18_utilization exp_overhead \
           exp_ablation_overschedule exp_ablation_joint exp_ablation_inference \
           exp_ablation_fractional exp_ext_triples exp_ext_downlink \
           exp_ext_contention exp_ext_correlated exp_ext_harq \
           exp_ext_dynamics exp_ext_noma; do
  echo "=============================== $exp ==============================="
  ./target/release/$exp "$@"
done
