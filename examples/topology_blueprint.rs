//! Blue-printing interference, step by step.
//!
//! ```sh
//! cargo run --release --example topology_blueprint
//! ```
//!
//! Walks through §3.3–§3.6 of the paper on one topology:
//!
//! 1. plan the measurement schedule (Algorithm 1);
//! 2. measure pairwise access statistics from grant outcomes;
//! 3. log-transform into the Eqn. 6 constraint system;
//! 4. infer the hidden-terminal blue-print (gradient repair);
//! 5. use the blue-print to compute a higher-order joint access
//!    probability by recursive topology conditioning, and compare it
//!    against the exact value and the empirical trace frequency.

use blu_core::blueprint::accuracy::topology_accuracy;
use blu_core::blueprint::{infer_topology, ConstraintSystem, InferenceConfig};
use blu_core::joint::conditioning::Conditioning;
use blu_core::measure::{measurement_schedule, min_subframes};
use blu_core::orchestrator::run_measurement_phase;
use blu_sim::clientset::ClientSet;
use blu_sim::time::Micros;
use blu_traces::capture::{capture_synthetic, CaptureConfig};
use blu_traces::stats::empirical_joint;

fn main() {
    let trace = capture_synthetic(
        &CaptureConfig {
            n_ues: 6,
            n_hts: 5,
            duration: Micros::from_secs(120),
            q_range: (0.2, 0.55),
            ..CaptureConfig::testbed_default()
        },
        3,
    );
    let n = trace.ground_truth.n_clients;

    // 1. Measurement plan.
    let plan = measurement_schedule(n, 8, 50).expect("plan");
    println!(
        "Algorithm 1: {} sub-frames to give every pair 50 joint samples (floor {})",
        plan.t_max(),
        min_subframes(n, 8.min(n), 50).expect("floor")
    );

    // 2. Measure from grant outcomes (here: a long, accurate phase).
    let (est, _) = run_measurement_phase(&trace, 8, 2_000).expect("measurement phase");
    println!("\nmeasured access probabilities:");
    for i in 0..n {
        println!(
            "  p({i}) = {:.3}   (truth {:.3})",
            est.stats().p_individual(i).unwrap(),
            trace.ground_truth.p_individual(i)
        );
    }

    // 3–4. Constraints + inference.
    let sys = ConstraintSystem::from_measurements(est.stats());
    let result = infer_topology(&sys, &InferenceConfig::default());
    let acc = topology_accuracy(&trace.ground_truth, &result.topology);
    println!(
        "\ninferred blue-print ({} iterations over {} restarts, residual violation {:.4}):",
        result.iterations, result.restarts, result.violation
    );
    for (k, ht) in result.topology.hts.iter().enumerate() {
        println!("  HT {k}: q = {:.2}, blocks {}", ht.q, ht.edges);
    }
    println!("ground truth:");
    for (k, ht) in trace.ground_truth.canonicalize().hts.iter().enumerate() {
        println!("  HT {k}: q = {:.2}, blocks {}", ht.q, ht.edges);
    }
    println!(
        "exact-edge-set accuracy: {:.0}% ({} of {})",
        acc.exact_fraction() * 100.0,
        acc.exact_matches,
        acc.n_truth
    );

    // 5. A higher-order joint from the blue-print (§3.6).
    let succeed = ClientSet::from_iter([0, 2]);
    let fail = ClientSet::from_iter([1, 3]);
    let cond = Conditioning::new(&result.topology).expect("inferred topology fits the mask");
    let from_blueprint = cond.p_joint(succeed, fail).expect("disjoint sets");
    let exact = trace.ground_truth.p_joint(succeed, fail);
    let measured = empirical_joint(&trace.access, succeed, fail);
    println!("\nP(UEs {{0,2}} transmit while {{1,3}} are blocked):");
    println!("  from blue-print (conditioning recursion): {from_blueprint:.4}");
    println!("  exact on ground truth:                    {exact:.4}");
    println!("  counted in the trace:                     {measured:.4}");
}
