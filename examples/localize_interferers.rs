//! Coarse localization of hidden interferers — the paper's second
//! "broader impact" application (§1): using inferred hidden terminals
//! as landmarks, with UE positions known to the operator.
//!
//! ```sh
//! cargo run --release --example localize_interferers
//! ```
//!
//! The blue-print tells us *which UEs* each hidden terminal silences.
//! Since sensing range is governed by path loss, a terminal must sit
//! near the UEs it impacts and far from those it does not: a simple
//! estimator places it at the centroid of its impacted UEs, nudged
//! away from unimpacted ones. We evaluate the position error against
//! the true WiFi node placements of a geometric scenario.

use blu_core::blueprint::{infer_topology, ConstraintSystem, InferenceConfig};
use blu_sim::geometry::Point;
use blu_sim::time::Micros;
use blu_traces::scenario::{generate, ActivityModel, ScenarioConfig};
use blu_traces::stats::EmpiricalAccess;

/// Estimate a terminal's position from the UEs it impacts: centroid
/// of impacted UEs, pushed away from the nearest unimpacted UE (the
/// terminal must be outside that UE's sensing range).
fn estimate_position(impacted: &[Point], unimpacted: &[Point]) -> Point {
    assert!(!impacted.is_empty());
    let centroid = Point::new(
        impacted.iter().map(|p| p.x).sum::<f64>() / impacted.len() as f64,
        impacted.iter().map(|p| p.y).sum::<f64>() / impacted.len() as f64,
    );
    // Repulsion from the nearest unimpacted UE.
    let Some(nearest) = unimpacted
        .iter()
        .min_by(|a, b| {
            a.distance(&centroid)
                .partial_cmp(&b.distance(&centroid))
                .unwrap()
        })
        .copied()
    else {
        return centroid;
    };
    let d = nearest.distance(&centroid).max(1e-6);
    // Push 20% of the gap directly away from the unimpacted UE.
    let push = 0.2;
    Point::new(
        centroid.x + (centroid.x - nearest.x) / d * push * d,
        centroid.y + (centroid.y - nearest.y) / d * push * d,
    )
}

fn main() {
    let mut cfg = ScenarioConfig::testbed();
    cfg.n_ues = 8;
    cfg.n_wifi = 14;
    cfg.region_m = 100.0;
    cfg.duration = Micros::from_secs(60);
    cfg.activity = ActivityModel::OnOff {
        q_range: (0.25, 0.55),
        mean_on_us: 1_500.0,
    };
    let scenario = generate(&cfg, 23);
    let truth = &scenario.trace.ground_truth;
    println!("deployment: {}", scenario.trace.description);

    // Blue-print from measured statistics.
    let emp = EmpiricalAccess::from_trace(&scenario.trace.access);
    let sys = ConstraintSystem::from_measurements(&emp);
    let blueprint = infer_topology(&sys, &InferenceConfig::default()).topology;
    println!("inferred {} hidden terminals\n", blueprint.n_hidden());

    // Localize each inferred terminal; score against the nearest true
    // hidden WiFi node (the blue-print does not know node identities).
    let true_positions: Vec<Point> = scenario.wifi_nodes.iter().map(|w| w.pos).collect();
    let ue_positions: Vec<Point> = scenario.ue_nodes.iter().map(|u| u.pos).collect();

    let mut errors = Vec::new();
    for (k, ht) in blueprint.hts.iter().enumerate() {
        let impacted: Vec<Point> = ht.edges.iter().map(|i| ue_positions[i]).collect();
        let unimpacted: Vec<Point> = (0..truth.n_clients)
            .filter(|&i| !ht.edges.contains(i))
            .map(|i| ue_positions[i])
            .collect();
        let est = estimate_position(&impacted, &unimpacted);
        let (err, nearest) = true_positions
            .iter()
            .map(|p| (p.distance(&est), *p))
            .min_by(|a, b| a.0.partial_cmp(&b.0).unwrap())
            .unwrap();
        println!(
            "HT {k} (q={:.2}, UEs {}): estimated {est}, nearest true node {nearest}, error {err:.1} m",
            ht.q, ht.edges
        );
        errors.push(err);
    }
    if !errors.is_empty() {
        errors.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = errors[errors.len() / 2];
        println!(
            "\nmedian localization error: {median:.1} m (region {} m, {} UE landmarks)",
            cfg.region_m, cfg.n_ues
        );
    }
}
