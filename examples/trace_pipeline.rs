//! Trace tooling: capture, persist, reload, and splice traces into
//! the paper's large emulated topologies (§4.2.1).
//!
//! ```sh
//! cargo run --release --example trace_pipeline
//! ```

use blu_sim::time::Micros;
use blu_traces::capture::{capture_synthetic, CaptureConfig};
use blu_traces::combine::{concat_ue_deployments, merge_hidden_fields};
use blu_traces::io;
use blu_traces::stats::EmpiricalAccess;

fn main() {
    let dir = std::env::temp_dir().join("blu-trace-pipeline");
    std::fs::create_dir_all(&dir).expect("tempdir");

    // 1. Capture two testbed-scale traces with different HT fields.
    let cfg = CaptureConfig {
        duration: Micros::from_secs(20),
        ..CaptureConfig::testbed_default()
    };
    let a = capture_synthetic(&cfg, 1);
    let b = capture_synthetic(&cfg, 2);
    println!("captured: {} | {}", a.description, b.description);

    // 2. Persist as JSON and as the compact binary codec.
    let json_path = dir.join("trace_a.json");
    io::save_json(&a, &json_path).expect("save json");
    let bin_access = io::encode_access(&a.access);
    let bin_activity = io::encode_activity(&a.wifi);
    println!(
        "persisted: JSON {} bytes; binary access {} bytes, activity {} bytes",
        std::fs::metadata(&json_path).unwrap().len(),
        bin_access.len(),
        bin_activity.len()
    );

    // 3. Reload and verify.
    let reloaded = io::load_json(&json_path).expect("reload");
    assert_eq!(reloaded, a);
    assert_eq!(io::decode_access(&bin_access).unwrap(), a.access);
    println!("round-trip verified");

    // 4. Combine: same UEs under both hidden-terminal fields…
    let merged = merge_hidden_fields(&a, &b);
    println!(
        "merged HT fields: {} UEs, {} hidden terminals",
        merged.ground_truth.n_clients,
        merged.ground_truth.n_hidden()
    );
    // …and a bigger cell from disjoint UE deployments.
    let big = concat_ue_deployments(&a, &b);
    println!(
        "concatenated UE deployments: {} UEs, {} hidden terminals",
        big.ground_truth.n_clients,
        big.ground_truth.n_hidden()
    );

    // 5. Statistics from the combined trace.
    let emp = EmpiricalAccess::from_trace(&big.access);
    println!("\naccess probabilities in the combined cell:");
    for i in 0..big.ground_truth.n_clients {
        println!(
            "  p({i}) measured {:.2} / closed-form {:.2}",
            emp.p_individual(i).unwrap(),
            big.ground_truth.p_individual(i)
        );
    }

    std::fs::remove_dir_all(&dir).ok();
}
