//! Enterprise uplink: the full BLU pipeline on a geometric deployment.
//!
//! ```sh
//! cargo run --release --example enterprise_uplink
//! ```
//!
//! An enterprise floor is generated geometrically: an eNB at the
//! center, UEs and WiFi laptops placed around it, propagation with
//! shadowing, and the hidden-terminal structure *emerging from the
//! sensing asymmetry* (the eNB energy-detects at −72 dBm; WiFi nodes
//! it cannot hear but UEs can are the hidden terminals). WiFi traffic
//! runs through a full 802.11 DCF contention simulation.
//!
//! BLU then runs its two phases exactly as in the paper's Fig. 9:
//! a measurement schedule (Algorithm 1), interference blue-printing,
//! and speculative scheduling against the inferred topology.

use blu_core::emulator::{EmulationConfig, Emulator};
use blu_core::orchestrator::{run_blu, BluConfig};
use blu_core::sched::PfScheduler;
use blu_phy::cell::CellConfig;
use blu_sim::time::Micros;
use blu_traces::scenario::{generate, ScenarioConfig};

fn main() {
    let mut scenario_cfg = ScenarioConfig::testbed();
    scenario_cfg.n_ues = 6;
    scenario_cfg.n_wifi = 10;
    scenario_cfg.duration = Micros::from_secs(60);
    let scenario = generate(&scenario_cfg, 11);

    println!("deployment: {}", scenario.trace.description);
    println!(
        "  {} WiFi nodes audible to the eNB (defer-safe), {} hidden terminals",
        scenario.n_wifi_audible,
        scenario.trace.ground_truth.n_hidden()
    );
    for (k, ht) in scenario.trace.ground_truth.hts.iter().enumerate() {
        println!(
            "  hidden terminal {k}: airtime q = {:.2}, blocks UEs {}",
            ht.q, ht.edges
        );
    }

    let cell = CellConfig::testbed_mumimo2();
    let mut emu_cfg = EmulationConfig::new(cell);
    emu_cfg.n_txops = 800;

    // Baseline PF on the same trace.
    let pf = Emulator::new(&scenario.trace, emu_cfg.clone())
        .expect("emulator setup")
        .run(&mut PfScheduler, None)
        .metrics;

    // The full BLU loop: measure → blue-print → speculate.
    let report = run_blu(&scenario.trace, &BluConfig::new(emu_cfg)).expect("blu run");

    println!(
        "\nmeasurement phase: {} sub-frames (floor {})",
        report.measurement_subframes, report.measurement_floor
    );
    println!(
        "blue-print: {} hidden terminals inferred, {} exact of {} true ({}% exact-edge metric)",
        report.inference.topology.n_hidden(),
        report.accuracy.exact_matches,
        report.accuracy.n_truth,
        (report.accuracy.exact_fraction() * 100.0).round()
    );
    let blu = &report.speculative.metrics;
    println!("\n             {:>10} {:>10}", "PF", "BLU(inferred)");
    println!(
        "RB util      {:>9.1}% {:>9.1}%",
        100.0 * pf.rb_utilization(),
        100.0 * blu.rb_utilization()
    );
    println!(
        "throughput   {:>9.2}M {:>9.2}M",
        pf.throughput_mbps(),
        blu.throughput_mbps()
    );
    println!(
        "fairness     {:>10.3} {:>10.3}",
        pf.jain_fairness(),
        blu.jain_fairness()
    );
}
