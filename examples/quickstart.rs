//! Quickstart: see BLU's speculative scheduler beat proportional fair
//! in thirty lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! We build a small LTE cell in unlicensed spectrum — four uplink
//! clients, six WiFi hidden terminals blocking different subsets of
//! them — replay the same interference trace through the stock PF
//! scheduler and through BLU (armed with the ground-truth interference
//! blue-print), and compare resource-block utilization and throughput.

use blu_core::emulator::{EmulationConfig, Emulator};
use blu_core::joint::TopologyAccess;
use blu_core::sched::{PfScheduler, SpeculativeScheduler};
use blu_phy::cell::CellConfig;
use blu_sim::time::Micros;
use blu_traces::capture::{capture_synthetic, CaptureConfig};

fn main() {
    // A testbed-scale radio environment: 4 UEs, 6 hidden terminals
    // with moderately heavy WiFi activity.
    let trace = capture_synthetic(
        &CaptureConfig {
            q_range: (0.3, 0.6),
            duration: Micros::from_secs(30),
            ..CaptureConfig::testbed_default()
        },
        7,
    );
    println!("environment: {}", trace.description);
    for (i, p) in (0..trace.ground_truth.n_clients)
        .map(|i| trace.ground_truth.p_individual(i))
        .enumerate()
    {
        println!("  UE {i}: channel-access probability p({i}) = {p:.2}");
    }

    let cell = CellConfig::testbed_siso();
    let mut config = EmulationConfig::new(cell);
    config.n_txops = 500; // the paper's 500 × 3-sub-frame bursts

    // Baseline: the proportional-fair scheduler LTE ships today.
    let pf = Emulator::new(&trace, config.clone())
        .expect("emulator setup")
        .run(&mut PfScheduler, None)
        .metrics;

    // BLU: speculative over-scheduling on the interference blue-print.
    let blueprint = TopologyAccess::new(&trace.ground_truth);
    let blu = Emulator::new(&trace, config)
        .expect("emulator setup")
        .run(&mut SpeculativeScheduler::new(&blueprint), None)
        .metrics;

    println!("\n             {:>10} {:>10}", "PF", "BLU");
    println!(
        "RB util      {:>9.1}% {:>9.1}%",
        100.0 * pf.rb_utilization(),
        100.0 * blu.rb_utilization()
    );
    println!(
        "throughput   {:>9.2}M {:>9.2}M",
        pf.throughput_mbps(),
        blu.throughput_mbps()
    );
    println!(
        "\nBLU gain: {:.2}x utilization, {:.2}x throughput",
        blu.rb_utilization() / pf.rb_utilization(),
        blu.throughput_mbps() / pf.throughput_mbps()
    );
}
