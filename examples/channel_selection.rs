//! Channel selection from interference blue-prints — the paper's
//! "broader impact" application (§1).
//!
//! ```sh
//! cargo run --release --example channel_selection
//! ```
//!
//! An unlicensed-LTE operator choosing between candidate channels can
//! blue-print the hidden-terminal field on each and pick the channel
//! whose terminals hurt the *cell's expected uplink utilization*
//! least — a much better signal than raw energy measurements, because
//! the blue-print knows which clients are affected and how often.

use blu_core::blueprint::{infer_topology, ConstraintSystem, InferenceConfig};
use blu_core::joint::{AccessDistribution, TopologyAccess};
use blu_sim::time::Micros;
use blu_sim::topology::InterferenceTopology;
use blu_traces::capture::{capture_synthetic, CaptureConfig};
use blu_traces::stats::EmpiricalAccess;

/// Expected fraction of granted RBs usable on a channel whose
/// interference is described by `topo`, if the eNB schedules clients
/// round-robin (pre-BLU estimate used for channel ranking).
fn expected_utilization(topo: &InterferenceTopology) -> f64 {
    let acc = TopologyAccess::new(topo);
    (0..topo.n_clients)
        .map(|i| acc.p_individual(i).expect("client known to topology"))
        .sum::<f64>()
        / topo.n_clients as f64
}

fn main() {
    // Three candidate channels with different WiFi occupancies:
    // busy hotspot, moderate, and a channel whose single heavy
    // interferer only touches one UE.
    let channels = [
        ("ch 36 (busy hotspot)", 0.35, 0.7, 5),
        ("ch 40 (moderate)", 0.15, 0.4, 4),
        ("ch 44 (one heavy HT)", 0.5, 0.6, 1),
    ];

    println!("blue-printing 8-UE cell on three candidate channels\n");
    let mut best: Option<(&str, f64)> = None;
    for (idx, &(name, q_lo, q_hi, n_hts)) in channels.iter().enumerate() {
        let trace = capture_synthetic(
            &CaptureConfig {
                n_ues: 8,
                n_hts,
                q_range: (q_lo, q_hi),
                edge_prob: 0.35,
                duration: Micros::from_secs(60),
                ..CaptureConfig::testbed_default()
            },
            100 + idx as u64,
        );
        // Blue-print from the channel's measured access statistics.
        let emp = EmpiricalAccess::from_trace(&trace.access);
        let sys = ConstraintSystem::from_measurements(&emp);
        let blueprint = infer_topology(&sys, &InferenceConfig::default()).topology;
        let util = expected_utilization(&blueprint);
        println!(
            "{name}: {} hidden terminals inferred, expected grant usability {:.0}%",
            blueprint.n_hidden(),
            util * 100.0
        );
        for (k, ht) in blueprint.hts.iter().enumerate() {
            println!("    HT {k}: q = {:.2}, impacts UEs {}", ht.q, ht.edges);
        }
        if best.is_none_or(|(_, b)| util > b) {
            best = Some((name, util));
        }
    }
    let (name, util) = best.unwrap();
    println!(
        "\n=> operate on {name} (expected grant usability {:.0}%)",
        util * 100.0
    );
}
