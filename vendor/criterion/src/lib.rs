//! Vendored shim for `criterion` (see `vendor/README.md`).
//!
//! Provides the macro/struct surface the workspace's benches use and a
//! coarse wall-clock measurement (median of `sample_size` batches),
//! printed one line per benchmark. No statistical analysis, HTML
//! reports, or outlier detection.

use std::time::Instant;

/// Re-export of the std compiler-fence identity function.
pub use std::hint::black_box;

/// Benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set how many timed batches to run per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Upstream parses CLI args here; the shim ignores them.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Run a single benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into(), self.sample_size, &mut f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: std::marker::PhantomData,
        }
    }

    /// Upstream prints the final summary; the shim has nothing to add.
    pub fn final_summary(&mut self) {}
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed batches to run per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(
            &format!("{}/{}", self.name, id.into()),
            self.sample_size,
            &mut f,
        );
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, samples: usize, f: &mut F) {
    let mut b = Bencher {
        per_iter_ns: Vec::with_capacity(samples),
    };
    for _ in 0..samples {
        f(&mut b);
    }
    let mut xs = b.per_iter_ns;
    if xs.is_empty() {
        println!("bench {id}: no measurements");
        return;
    }
    xs.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
    let median = xs[xs.len() / 2];
    println!(
        "bench {id}: median {median:.0} ns/iter over {} samples",
        xs.len()
    );
}

/// Measurement context passed to benchmark closures.
pub struct Bencher {
    per_iter_ns: Vec<f64>,
}

impl Bencher {
    /// Time the routine. The shim runs a small fixed batch and records
    /// mean time per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up.
        black_box(routine());
        let iters = 8u32;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        self.per_iter_ns
            .push(elapsed.as_nanos() as f64 / f64::from(iters));
    }
}

/// Group benchmark functions into a callable (upstream-compatible
/// both forms: list form and `name/config/targets` form).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),*
        );
    };
}

/// Emit `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $( $group(); )*
        }
    };
}
