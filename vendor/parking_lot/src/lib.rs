//! Vendored shim for `parking_lot` (see `vendor/README.md`).
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s panic-free
//! (non-`Result`) locking API. Poisoning is ignored, matching
//! `parking_lot` semantics.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion lock with `parking_lot`'s infallible API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }
    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

/// Reader-writer lock with `parking_lot`'s infallible API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
    /// Acquire an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}
