//! Vendored shim for `serde` (see `vendor/README.md`).
//!
//! Instead of upstream serde's visitor-based zero-copy architecture,
//! this shim routes everything through one in-memory [`Value`] tree:
//! `Serialize` renders a value *to* a [`Value`], `Deserialize` parses
//! a value *from* one. The derive macros (re-exported from the
//! vendored `serde_derive`) generate impls of these traits with the
//! same external data representation upstream serde uses for the
//! shapes in this workspace: structs as maps, newtype structs as their
//! inner value, tuple structs as sequences, enums externally tagged
//! (`"Variant"` for unit variants, `{"Variant": ...}` otherwise).

use std::collections::{BTreeMap, HashMap};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Self-describing data tree: the interchange format between
/// `Serialize`, `Deserialize`, and format crates (`serde_json`).
///
/// Maps preserve insertion order (serialization order of fields).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` / unit.
    Null,
    /// Boolean.
    Bool(bool),
    /// Non-negative integer (covers all unsigned and non-negative
    /// signed values).
    UInt(u128),
    /// Negative integer.
    Int(i128),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Key-value map with string keys, in insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Borrow as a map, if this is one.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as a sequence, if this is one.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow as a string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view as `u128` (integral floats accepted).
    pub fn as_u128(&self) -> Option<u128> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) => u128::try_from(i).ok(),
            Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u128::MAX as f64 => {
                Some(f as u128)
            }
            _ => None,
        }
    }

    /// Numeric view as `i128` (integral floats accepted).
    pub fn as_i128(&self) -> Option<i128> {
        match *self {
            Value::UInt(u) => i128::try_from(u).ok(),
            Value::Int(i) => Some(i),
            Value::Float(f)
                if f.fract() == 0.0 && f >= i128::MIN as f64 && f <= i128::MAX as f64 =>
            {
                Some(f as i128)
            }
            _ => None,
        }
    }

    /// Numeric view as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::UInt(u) => Some(u as f64),
            Value::Int(i) => Some(i as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// Short human label of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Build an error from any message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Render `self` into the [`Value`] data model.
pub trait Serialize {
    /// Convert to a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Reconstruct `Self` from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Parse from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------
// Derive-support helpers (public because generated code calls them).
// ---------------------------------------------------------------

/// Look up `key` in a field map.
pub fn field<'a>(map: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialize the field `key` of struct `ty` from a field map.
/// A missing key is treated as `Value::Null` so `Option` fields
/// tolerate their key being absent.
pub fn de_field<T: Deserialize>(
    map: &[(String, Value)],
    key: &str,
    ty: &str,
) -> Result<T, DeError> {
    match field(map, key) {
        Some(v) => T::from_value(v).map_err(|e| DeError(format!("field `{key}` of `{ty}`: {e}"))),
        None => T::from_value(&Value::Null)
            .map_err(|_| DeError(format!("missing field `{key}` of `{ty}`"))),
    }
}

/// Deserialize element `i` of a fixed-arity sequence for type `ty`.
pub fn de_idx<T: Deserialize>(seq: &[Value], i: usize, ty: &str) -> Result<T, DeError> {
    let v = seq
        .get(i)
        .ok_or_else(|| DeError(format!("missing element {i} of `{ty}`")))?;
    T::from_value(v).map_err(|e| DeError(format!("element {i} of `{ty}`: {e}")))
}

// ---------------------------------------------------------------
// Primitive and container impls.
// ---------------------------------------------------------------

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(u128::from(*self)) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let u = v.as_u128()
                    .ok_or_else(|| DeError(format!(
                        "expected unsigned integer, got {}", v.kind())))?;
                <$t>::try_from(u).map_err(|_| DeError(format!(
                    "integer {u} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, u128);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::UInt(*self as u128)
    }
}
impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let u = v
            .as_u128()
            .ok_or_else(|| DeError(format!("expected unsigned integer, got {}", v.kind())))?;
        usize::try_from(u).map_err(|_| DeError(format!("integer {u} out of range for usize")))
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = i128::from(*self);
                if i >= 0 { Value::UInt(i as u128) } else { Value::Int(i) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let i = v.as_i128()
                    .ok_or_else(|| DeError(format!(
                        "expected integer, got {}", v.kind())))?;
                <$t>::try_from(i).map_err(|_| DeError(format!(
                    "integer {i} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, i128);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        (*self as i64).to_value()
    }
}
impl Deserialize for isize {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let i = v
            .as_i128()
            .ok_or_else(|| DeError(format!("expected integer, got {}", v.kind())))?;
        isize::try_from(i).map_err(|_| DeError(format!("integer {i} out of range for isize")))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            // JSON has no NaN literal; the writer emits null for
            // non-finite floats and this mirrors it back.
            Value::Null => Ok(f64::NAN),
            _ => v
                .as_f64()
                .ok_or_else(|| DeError(format!("expected float, got {}", v.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError(format!("expected bool, got {}", v.kind()))),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v
            .as_str()
            .ok_or_else(|| DeError(format!("expected string, got {}", v.kind())))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError(format!("expected single-char string, got {s:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError(format!("expected string, got {}", v.kind())))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}
impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(()),
            _ => Err(DeError(format!("expected null, got {}", v.kind()))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            _ => T::from_value(v).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| DeError(format!("expected sequence, got {}", v.kind())))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError(format!("expected array of length {N}, got {n}")))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let s = v.as_seq().ok_or_else(|| DeError(format!(
                    "expected sequence for tuple, got {}", v.kind())))?;
                let arity = [$($i),+].len();
                if s.len() != arity {
                    return Err(DeError(format!(
                        "expected tuple of length {arity}, got {}", s.len())));
                }
                Ok(($($t::from_value(&s[$i])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}
impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_map()
            .ok_or_else(|| DeError(format!("expected map, got {}", v.kind())))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl<V: Serialize, S: std::hash::BuildHasher> Serialize for HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output.
        let mut entries: Vec<_> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}
impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize for HashMap<String, V, S> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_map()
            .ok_or_else(|| DeError(format!("expected map, got {}", v.kind())))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
