//! Vendored shim for `serde_derive` (see `vendor/README.md`).
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for
//! the vendored `serde`'s `Value`-based data model without `syn` or
//! `quote`: the item's token stream is parsed by hand into a small
//! shape description (struct/enum, field names/arities), and the impl
//! is emitted by building Rust source text and re-parsing it.
//!
//! Supported shapes — exactly what this workspace uses:
//! * unit / tuple / named-field structs (no generics, no lifetimes)
//! * enums with unit, tuple, and named-field variants
//! * arbitrary `#[...]` attributes and doc comments (skipped)
//!
//! Representation matches upstream serde's external data format for
//! these shapes: named structs → maps, newtype structs → inner value,
//! tuple structs → sequences, enums externally tagged.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Field shape of a struct or enum variant.
enum Fields {
    Unit,
    /// Tuple fields; payload is the arity.
    Tuple(usize),
    /// Named fields in declaration order.
    Named(Vec<String>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Shape {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Cursor over a flat token-tree list.
struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor {
            toks: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    /// Skip any `#[...]` attributes (including doc comments, which
    /// arrive as attributes).
    fn skip_attrs(&mut self) {
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.pos += 1; // '#'
            match self.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    self.pos += 1;
                }
                _ => panic!("serde_derive shim: `#` not followed by `[...]`"),
            }
        }
    }

    /// Skip a `pub` / `pub(...)` visibility qualifier if present.
    fn skip_vis(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.pos += 1;
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.pos += 1;
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive shim: expected {what}, got {other:?}"),
        }
    }

    /// Skip tokens until a top-level `,` (angle-bracket aware) or end
    /// of stream. Consumes the comma. Used to skip field types and
    /// enum discriminants.
    fn skip_until_comma(&mut self) {
        let mut angle: i32 = 0;
        while let Some(t) = self.peek() {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => {
                        self.pos += 1;
                        return;
                    }
                    _ => {}
                }
            }
            self.pos += 1;
        }
    }
}

/// Count fields of a tuple struct/variant: top-level commas in the
/// paren group (+1), angle-bracket aware. Nested parens/brackets are
/// single `Group` tokens, so only `<`…`>` needs depth tracking.
fn count_tuple_fields(g: TokenStream) -> usize {
    let mut n = 0usize;
    let mut saw_any = false;
    let mut angle: i32 = 0;
    let mut last_was_comma = true;
    for t in g {
        saw_any = true;
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    last_was_comma = true;
                    continue;
                }
                _ => {}
            }
        }
        if last_was_comma {
            n += 1;
            last_was_comma = false;
        }
    }
    if saw_any {
        n
    } else {
        0
    }
}

/// Parse the field names out of a named-field brace group.
fn parse_named_fields(g: TokenStream) -> Vec<String> {
    let mut c = Cursor::new(g);
    let mut names = Vec::new();
    loop {
        c.skip_attrs();
        if c.at_end() {
            break;
        }
        c.skip_vis();
        let name = c.expect_ident("field name");
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive shim: expected `:` after field `{name}`, got {other:?}"),
        }
        c.skip_until_comma();
        names.push(name);
    }
    names
}

/// Parse enum variants out of the enum body brace group.
fn parse_variants(g: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(g);
    let mut variants = Vec::new();
    loop {
        c.skip_attrs();
        if c.at_end() {
            break;
        }
        let name = c.expect_ident("variant name");
        let fields = match c.peek() {
            Some(TokenTree::Group(grp)) if grp.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(grp.stream());
                c.pos += 1;
                Fields::Tuple(n)
            }
            Some(TokenTree::Group(grp)) if grp.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(grp.stream());
                c.pos += 1;
                Fields::Named(f)
            }
            _ => Fields::Unit,
        };
        // Skip an optional discriminant and the trailing comma.
        c.skip_until_comma();
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_shape(input: TokenStream) -> Shape {
    let mut c = Cursor::new(input);
    c.skip_attrs();
    c.skip_vis();
    let kw = c.expect_ident("`struct` or `enum`");
    let is_enum = match kw.as_str() {
        "struct" => false,
        "enum" => true,
        other => panic!("serde_derive shim: unsupported item `{other}` (union?)"),
    };
    let name = c.expect_ident("type name");
    if let Some(TokenTree::Punct(p)) = c.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive shim: generic type `{name}` is not supported");
        }
    }
    if is_enum {
        match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde_derive shim: expected enum body, got {other:?}"),
        }
    } else {
        match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Struct {
                name,
                fields: Fields::Named(parse_named_fields(g.stream())),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Shape::Struct {
                name,
                fields: Fields::Tuple(count_tuple_fields(g.stream())),
            },
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Struct {
                name,
                fields: Fields::Unit,
            },
            other => panic!("serde_derive shim: expected struct body, got {other:?}"),
        }
    }
}

// ---------------------------------------------------------------
// Serialize codegen
// ---------------------------------------------------------------

fn gen_serialize(shape: &Shape) -> String {
    let mut out = String::new();
    match shape {
        Shape::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Seq(vec![{}])", elems.join(", "))
                }
                Fields::Named(fs) => {
                    let entries: Vec<String> = fs
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::to_value(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("::serde::Value::Map(vec![{}])", entries.join(", "))
                }
            };
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}\n"
            ));
        }
        Shape::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(\
                         ::std::string::String::from(\"{vn}\")),\n"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Seq(vec![{}])", elems.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Map(vec![(\
                             ::std::string::String::from(\"{vn}\"), {inner})]),\n",
                            binds.join(", ")
                        ));
                    }
                    Fields::Named(fs) => {
                        let entries: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), \
                                     ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => ::serde::Value::Map(vec![(\
                             ::std::string::String::from(\"{vn}\"), \
                             ::serde::Value::Map(vec![{}]))]),\n",
                            fs.join(", "),
                            entries.join(", ")
                        ));
                    }
                }
            }
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{\n{arms}}}\n}}\n}}\n"
            ));
        }
    }
    out
}

// ---------------------------------------------------------------
// Deserialize codegen
// ---------------------------------------------------------------

fn gen_named_ctor(path: &str, ty: &str, fs: &[String], map_var: &str) -> String {
    let fields: Vec<String> = fs
        .iter()
        .map(|f| format!("{f}: ::serde::de_field({map_var}, \"{f}\", \"{ty}\")?"))
        .collect();
    format!("{path} {{ {} }}", fields.join(", "))
}

fn gen_tuple_ctor(path: &str, ty: &str, n: usize, seq_var: &str) -> String {
    let elems: Vec<String> = (0..n)
        .map(|i| format!("::serde::de_idx({seq_var}, {i}, \"{ty}\")?"))
        .collect();
    format!("{path}({})", elems.join(", "))
}

fn gen_deserialize(shape: &Shape) -> String {
    let body = match shape {
        Shape::Struct { name, fields } => match fields {
            Fields::Unit => format!(
                "match __v {{\n\
                 ::serde::Value::Null => ::std::result::Result::Ok({name}),\n\
                 __other => ::std::result::Result::Err(::serde::DeError::custom(\
                 format!(\"expected null for unit struct `{name}`, got {{}}\", __other.kind()))),\n\
                 }}"
            ),
            Fields::Tuple(1) => {
                format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
            }
            Fields::Tuple(n) => format!(
                "{{\n\
                 let __s = __v.as_seq().ok_or_else(|| ::serde::DeError::custom(\
                 format!(\"expected sequence for `{name}`, got {{}}\", __v.kind())))?;\n\
                 if __s.len() != {n} {{ return ::std::result::Result::Err(\
                 ::serde::DeError::custom(format!(\
                 \"expected {n} elements for `{name}`, got {{}}\", __s.len()))); }}\n\
                 ::std::result::Result::Ok({ctor})\n}}",
                ctor = gen_tuple_ctor(name, name, *n, "__s")
            ),
            Fields::Named(fs) => format!(
                "{{\n\
                 let __m = __v.as_map().ok_or_else(|| ::serde::DeError::custom(\
                 format!(\"expected map for `{name}`, got {{}}\", __v.kind())))?;\n\
                 ::std::result::Result::Ok({ctor})\n}}",
                ctor = gen_named_ctor(name, name, fs, "__m")
            ),
        },
        Shape::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    Fields::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                         ::serde::Deserialize::from_value(__inner)?)),\n"
                    )),
                    Fields::Tuple(n) => data_arms.push_str(&format!(
                        "\"{vn}\" => {{\n\
                         let __s = __inner.as_seq().ok_or_else(|| ::serde::DeError::custom(\
                         format!(\"expected sequence for `{name}::{vn}`, got {{}}\", \
                         __inner.kind())))?;\n\
                         if __s.len() != {n} {{ return ::std::result::Result::Err(\
                         ::serde::DeError::custom(format!(\
                         \"expected {n} elements for `{name}::{vn}`, got {{}}\", __s.len()))); }}\n\
                         ::std::result::Result::Ok({ctor})\n}}\n",
                        ctor = gen_tuple_ctor(
                            &format!("{name}::{vn}"),
                            &format!("{name}::{vn}"),
                            *n,
                            "__s"
                        )
                    )),
                    Fields::Named(fs) => data_arms.push_str(&format!(
                        "\"{vn}\" => {{\n\
                         let __m = __inner.as_map().ok_or_else(|| ::serde::DeError::custom(\
                         format!(\"expected map for `{name}::{vn}`, got {{}}\", \
                         __inner.kind())))?;\n\
                         ::std::result::Result::Ok({ctor})\n}}\n",
                        ctor = gen_named_ctor(
                            &format!("{name}::{vn}"),
                            &format!("{name}::{vn}"),
                            fs,
                            "__m"
                        )
                    )),
                }
            }
            format!(
                "match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => ::std::result::Result::Err(::serde::DeError::custom(\
                 format!(\"unknown unit variant `{{__other}}` of `{name}`\"))),\n\
                 }},\n\
                 ::serde::Value::Map(__m) if __m.len() == 1 => {{\n\
                 let (__k, __inner) = &__m[0];\n\
                 match __k.as_str() {{\n\
                 {data_arms}\
                 __other => ::std::result::Result::Err(::serde::DeError::custom(\
                 format!(\"unknown variant `{{__other}}` of `{name}`\"))),\n\
                 }}\n}},\n\
                 __other => ::std::result::Result::Err(::serde::DeError::custom(\
                 format!(\"expected externally-tagged `{name}`, got {{}}\", __other.kind()))),\n\
                 }}"
            )
        }
    };
    let name = match shape {
        Shape::Struct { name, .. } | Shape::Enum { name, .. } => name,
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) \
         -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}\n"
    )
}

/// `#[derive(Serialize)]` for the vendored serde shim.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    gen_serialize(&shape)
        .parse()
        .expect("serde_derive shim: generated Serialize impl failed to parse")
}

/// `#[derive(Deserialize)]` for the vendored serde shim.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    gen_deserialize(&shape)
        .parse()
        .expect("serde_derive shim: generated Deserialize impl failed to parse")
}
