//! Vendored stand-in for `rayon` (see `vendor/README.md`) — now a
//! *real* data-parallel executor, not a sequential shim.
//!
//! `par_iter()`/`into_par_iter()` materialize the input and hand back
//! a [`ParIter`], whose combinators (`map`, `filter_map`, `filter`,
//! `for_each`) fan the items out over a chunked
//! [`std::thread::scope`] pool. Each worker processes one contiguous
//! chunk and returns its results as a block; the blocks are then
//! joined **in input order** (deterministic ordered reduction), so
//! `collect()` observes exactly the sequence a sequential run would
//! produce. Work that is pure and deterministic therefore yields
//! bit-identical output with and without parallelism — the property
//! the repo's differential tests pin down.
//!
//! Differences from upstream rayon, by design of this subset:
//!
//! * combinators are **eager** (each one is a full parallel pass);
//! * only the combinators the workspace uses are provided;
//! * work stealing is replaced by balanced contiguous chunking,
//!   which is what makes ordered reduction trivial.
//!
//! Thread count: `min(available_parallelism, items)`, overridable
//! with the conventional `RAYON_NUM_THREADS` environment variable
//! (`1` disables threading entirely).

/// Number of worker threads to use for `n_items` items.
fn threads_for(n_items: usize) -> usize {
    let hw = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    hw.min(n_items).max(1)
}

/// Run `f` over `items` on a chunked scoped pool, concatenating the
/// per-chunk outputs in input order. `None` results are dropped
/// (giving `filter_map`; `map` wraps everything in `Some`).
fn run_chunked<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> Option<R> + Sync,
{
    let n = items.len();
    let threads = threads_for(n);
    if threads <= 1 {
        return items.into_iter().filter_map(f).collect();
    }
    // Balanced contiguous chunks: sizes differ by at most one, and
    // chunk boundaries depend only on (n, threads) — never on timing.
    let base = n / threads;
    let extra = n % threads;
    let mut it = items.into_iter();
    let chunks: Vec<Vec<T>> = (0..threads)
        .map(|i| {
            let len = base + usize::from(i < extra);
            it.by_ref().take(len).collect()
        })
        .collect();
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| s.spawn(move || chunk.into_iter().filter_map(f).collect::<Vec<R>>()))
            .collect();
        let mut out = Vec::with_capacity(n);
        for h in handles {
            // Join in spawn order — the ordered reduction.
            out.extend(h.join().expect("rayon shim worker panicked"));
        }
        out
    })
}

/// A materialized "parallel iterator": holds the items and runs each
/// combinator as one chunked parallel pass.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Parallel map with order-preserving results.
    pub fn map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParIter {
            items: run_chunked(self.items, |x| Some(f(x))),
        }
    }

    /// Parallel filter-map with order-preserving results.
    pub fn filter_map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(T) -> Option<R> + Sync,
    {
        ParIter {
            items: run_chunked(self.items, f),
        }
    }

    /// Parallel filter with order-preserving results.
    pub fn filter<F>(self, f: F) -> ParIter<T>
    where
        F: Fn(&T) -> bool + Sync,
    {
        ParIter {
            items: run_chunked(self.items, |x| if f(&x) { Some(x) } else { None }),
        }
    }

    /// Parallel for-each (no result).
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        run_chunked(self.items, |x| {
            f(x);
            None::<()>
        });
    }

    /// Gather the (already ordered) results into any collection.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Sum the (already computed) items.
    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        self.items.into_iter().sum()
    }

    /// Number of items currently held.
    pub fn count(self) -> usize {
        self.items.len()
    }
}

pub mod prelude {
    use super::ParIter;

    /// By-value conversion into a [`ParIter`]
    /// (`rayon::iter::IntoParallelIterator` subset).
    pub trait IntoParallelIterator {
        /// Item type yielded by the iterator.
        type Item: Send;
        /// Convert into a parallel iterator.
        fn into_par_iter(self) -> ParIter<Self::Item>;
    }

    impl<I> IntoParallelIterator for I
    where
        I: IntoIterator,
        I::Item: Send,
    {
        type Item = I::Item;
        fn into_par_iter(self) -> ParIter<I::Item> {
            ParIter {
                items: self.into_iter().collect(),
            }
        }
    }

    /// By-reference conversion into a [`ParIter`]
    /// (`rayon::iter::IntoParallelRefIterator` subset).
    pub trait IntoParallelRefIterator<'data> {
        /// Item type yielded by the iterator.
        type Item: Send + 'data;
        /// Borrowing parallel iteration.
        fn par_iter(&'data self) -> ParIter<Self::Item>;
    }

    impl<'data, C: 'data + ?Sized> IntoParallelRefIterator<'data> for C
    where
        &'data C: IntoIterator,
        <&'data C as IntoIterator>::Item: Send,
    {
        type Item = <&'data C as IntoIterator>::Item;
        fn par_iter(&'data self) -> ParIter<Self::Item> {
            ParIter {
                items: self.into_iter().collect(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let par: Vec<u64> = (0..10_000u64).into_par_iter().map(|i| i * i).collect();
        let seq: Vec<u64> = (0..10_000u64).map(|i| i * i).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn filter_map_preserves_order_and_drops() {
        let par: Vec<u64> = (0..5_000u64)
            .into_par_iter()
            .filter_map(|i| if i % 3 == 0 { Some(i * 2) } else { None })
            .collect();
        let seq: Vec<u64> = (0..5_000u64)
            .filter_map(|i| if i % 3 == 0 { Some(i * 2) } else { None })
            .collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn par_iter_by_ref() {
        let data: Vec<i32> = (0..1_000).collect();
        let doubled: Vec<i32> = data.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled.len(), 1_000);
        assert_eq!(doubled[999], 1_998);
        assert_eq!(data.len(), 1_000); // untouched
    }

    #[test]
    fn really_runs_on_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        (0..64usize).into_par_iter().for_each(|_| {
            seen.lock().unwrap().insert(std::thread::current().id());
        });
        let distinct = seen.lock().unwrap().len();
        let expect_parallel = std::thread::available_parallelism()
            .map(|n| n.get() > 1)
            .unwrap_or(false);
        if expect_parallel {
            assert!(distinct > 1, "expected multi-threaded execution");
        }
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(empty.is_empty());
        let one: Vec<u8> = vec![7u8].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![8]);
    }
}
