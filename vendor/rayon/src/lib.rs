//! Vendored shim for `rayon` (see `vendor/README.md`).
//!
//! `par_iter()`/`into_par_iter()` return the corresponding *standard*
//! iterators, so all downstream combinators (`map`, `filter`,
//! `collect`, `sum`, …) come from `std::iter::Iterator` and run
//! sequentially. This preserves correctness and determinism; it only
//! gives up the parallel speed-up, which the offline build environment
//! cannot benchmark meaningfully anyway.

pub mod prelude {
    /// Sequential stand-in for `rayon::iter::IntoParallelIterator`.
    pub trait IntoParallelIterator {
        /// Item type yielded by the iterator.
        type Item;
        /// Concrete iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// "Parallel" (here: sequential) by-value iteration.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Item = I::Item;
        type Iter = I::IntoIter;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// Sequential stand-in for `rayon::iter::IntoParallelRefIterator`.
    pub trait IntoParallelRefIterator<'data> {
        /// Item type yielded by the iterator.
        type Item: 'data;
        /// Concrete iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// "Parallel" (here: sequential) by-reference iteration.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, C: 'data + ?Sized> IntoParallelRefIterator<'data> for C
    where
        &'data C: IntoIterator,
    {
        type Item = <&'data C as IntoIterator>::Item;
        type Iter = <&'data C as IntoIterator>::IntoIter;
        fn par_iter(&'data self) -> Self::Iter {
            self.into_iter()
        }
    }
}
