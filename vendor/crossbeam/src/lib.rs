//! Vendored placeholder for `crossbeam` (see `vendor/README.md`).
//!
//! The workspace declares this dependency but does not currently use
//! it; a re-export of `std::thread::scope` is provided so the name is
//! not entirely hollow.

/// Structured concurrency scope (std-backed stand-in for
/// `crossbeam::scope`).
pub use std::thread::scope;
