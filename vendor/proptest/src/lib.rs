//! Vendored shim for `proptest` (see `vendor/README.md`).
//!
//! Implements the subset this workspace's property tests use:
//! the [`proptest!`] macro, [`Strategy`] with `prop_map` /
//! `prop_flat_map`, integer-range and tuple strategies, `any::<T>()`,
//! [`Just`], `collection::vec`, `prop_assert!`-family macros, and
//! [`ProptestConfig::with_cases`].
//!
//! Differences from upstream: generation is **deterministic** (a fixed
//! seed schedule per case index, no persisted regressions file) and
//! there is **no shrinking** — a failing case reports the exact inputs
//! that failed instead of a minimized one.

/// Deterministic generator driving all strategies (xoshiro256++ on a
/// SplitMix64-expanded seed).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Generator for one test case of one property.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let mut sm = h ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 128 random bits.
    pub fn next_u128(&mut self) -> u128 {
        (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
    }

    /// Uniform in `[0, n)`; `n > 0`.
    pub fn below_u128(&mut self, n: u128) -> u128 {
        assert!(n > 0);
        self.next_u128() % n
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// Assertion failure: the property is violated.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
}

impl TestCaseError {
    /// Build a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
    /// Build a rejection.
    pub fn reject() -> Self {
        TestCaseError::Reject
    }
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate an intermediate value, then generate from the strategy
    /// `f` builds out of it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn ErasedStrategy<T>>);

trait ErasedStrategy<T> {
    fn generate_erased(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> ErasedStrategy<S::Value> for S {
    fn generate_erased(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_erased(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_flat_map` adapter.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// Integer range strategies.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                (self.start as u128).wrapping_add(rng.below_u128(span)) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full u128 domain.
                    rng.next_u128() as $t
                } else {
                    (lo as u128).wrapping_add(rng.below_u128(span)) as $t
                }
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, u128);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.below_u128(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + rng.below_u128(span) as i128) as $t
            }
        }
    )*};
}
impl_signed_range_strategy!(i8, i16, i32, i64, isize);

// Float range strategy (uniform).
impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u128() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, mixed magnitude.
        let mag = (rng.unit_f64() * 40.0) - 20.0; // exponent in [-20, 20)
        let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
        sign * rng.unit_f64() * 10f64.powf(mag)
    }
}

/// String strategy from a regex-subset pattern, mirroring upstream
/// proptest's `impl Strategy for &str`. Supported syntax: literal
/// chars, `[a-z0-9_]`-style classes (ranges and singletons), and the
/// quantifiers `{n}`, `{m,n}`, `?`, `+`, `*` (the unbounded ones cap
/// at 8 repetitions).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let chars: Vec<char> = self.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // One element: a class or a literal char.
            let alphabet: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed `[` in pattern {self:?}"));
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        for c in lo..=hi {
                            set.push(c);
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            // Optional quantifier.
            let (lo, hi) = match chars.get(i) {
                Some('{') => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|p| i + p)
                        .unwrap_or_else(|| panic!("unclosed `{{` in pattern {self:?}"));
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((m, n)) => (
                            m.trim().parse::<usize>().expect("bad quantifier"),
                            n.trim().parse::<usize>().expect("bad quantifier"),
                        ),
                        None => {
                            let n = body.trim().parse::<usize>().expect("bad quantifier");
                            (n, n)
                        }
                    }
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                Some('+') => {
                    i += 1;
                    (1, 8)
                }
                Some('*') => {
                    i += 1;
                    (0, 8)
                }
                _ => (1, 1),
            };
            assert!(!alphabet.is_empty(), "empty character class in {self:?}");
            let reps = lo + rng.below_u128((hi - lo) as u128 + 1) as usize;
            for _ in 0..reps {
                out.push(alphabet[rng.below_u128(alphabet.len() as u128) as usize]);
            }
        }
        out
    }
}

/// Strategy produced by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length bounds for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }
    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }
    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors whose elements come from `element` and whose
    /// length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u128 + 1;
            let len = self.size.lo + rng.below_u128(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property-test module normally imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Reject the current case (skip without failing).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject());
        }
    };
}

/// Define property tests. Mirrors upstream `proptest!` syntax for
/// `#[test]` functions with `name in strategy` bindings and an
/// optional leading `#![proptest_config(...)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!{@run ($cfg) $($rest)*}
    };
    (@run ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rejected: u32 = 0;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::TestRng::for_case(stringify!($name), __case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                let __inputs = format!(concat!($("\n  ", stringify!($arg), " = {:?}",)*), $(&$arg),*);
                let __result: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || { $body ::std::result::Result::Ok(()) })();
                match __result {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {
                        __rejected += 1;
                        if __rejected > __cfg.cases * 16 {
                            panic!("proptest {}: too many prop_assume rejections", stringify!($name));
                        }
                    }
                    ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "proptest {} failed at case {}:\n{}\ninputs:{}",
                            stringify!($name), __case, __msg, __inputs
                        );
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!{@run ($crate::ProptestConfig::default()) $($rest)*}
    };
}
