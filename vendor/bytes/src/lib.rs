//! Vendored shim for the `bytes` crate (see `vendor/README.md`).
//!
//! Provides the little-endian put/get surface used by the
//! `blu-traces` binary codec: [`Bytes`], [`BytesMut`], [`Buf`] for
//! `&[u8]`, and [`BufMut`] for [`BytesMut`]. Backed by plain
//! `Vec<u8>` (no refcounted zero-copy splitting).

use std::ops::{Deref, DerefMut};

/// Immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes(Vec::new())
    }

    /// Buffer borrowing nothing: copies the static slice (the shim has
    /// no zero-copy representation).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes(data.to_vec())
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(data.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.0
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Write-side buffer trait (little-endian subset).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append a `u16`, little-endian.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a `u32`, little-endian.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a `u64`, little-endian.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a `u128`, little-endian.
    fn put_u128_le(&mut self, v: u128) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read-side buffer trait (little-endian subset). Get methods panic on
/// underflow, matching upstream `bytes`; callers gate on
/// [`Buf::remaining`].
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// Consume `n` bytes.
    fn advance(&mut self, n: usize);
    /// Copy `dst.len()` bytes out, consuming them.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Consume one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
    /// Consume a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }
    /// Consume a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }
    /// Consume a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
    /// Consume a little-endian `u128`.
    fn get_u128_le(&mut self) -> u128 {
        let mut b = [0u8; 16];
        self.copy_to_slice(&mut b);
        u128::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        *self = &self[n..];
    }
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "copy_to_slice past end of buffer");
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u16_le(7);
        buf.put_u64_le(u64::MAX - 3);
        buf.put_u128_le(u128::MAX / 5);
        buf.put_slice(b"xyz");
        let frozen = buf.freeze();
        let mut rd: &[u8] = &frozen;
        assert_eq!(rd.remaining(), 4 + 2 + 8 + 16 + 3);
        assert_eq!(rd.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(rd.get_u16_le(), 7);
        assert_eq!(rd.get_u64_le(), u64::MAX - 3);
        assert_eq!(rd.get_u128_le(), u128::MAX / 5);
        let mut tail = [0u8; 3];
        rd.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert_eq!(rd.remaining(), 0);
    }
}
