//! Vendored shim for the `rand` crate (see `vendor/README.md`).
//!
//! The workspace only uses the [`RngCore`] trait as a public extension
//! point on its own deterministic generator; everything stochastic in
//! the reproduction goes through `blu_sim::rng::DetRng` directly.

/// Core random-number-generator interface (API-compatible subset of
/// `rand::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}
