//! Vendored shim for `serde_json` (see `vendor/README.md`).
//!
//! JSON text ⇄ [`serde::Value`] ⇄ user types (via the vendored
//! serde's `Serialize`/`Deserialize`). Floats print with Rust's
//! shortest-roundtrip `{:?}` formatting; non-finite floats print as
//! `null` (JSON has no NaN/Infinity literals).

use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

pub use serde::Value;

/// JSON (de)serialization error.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error(format!("io error: {e}"))
    }
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Reconstruct a typed value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    Ok(T::from_value(value)?)
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to a pretty-printed JSON string (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serialize to a compact JSON byte vector.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Serialize compact JSON into a writer.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<(), Error> {
    writer.write_all(to_string(value)?.as_bytes())?;
    Ok(())
}

/// Serialize pretty JSON into a writer.
pub fn to_writer_pretty<W: Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    writer.write_all(to_string_pretty(value)?.as_bytes())?;
    Ok(())
}

/// Deserialize from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {} of JSON input",
            p.pos
        )));
    }
    Ok(T::from_value(&v)?)
}

/// Deserialize from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Deserialize from a reader (reads to end first).
pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut s = String::new();
    reader.read_to_string(&mut s)?;
    from_str(&s)
}

/// Build a [`Value`] from a JSON-ish literal. Supports the object /
/// array / `null` / expression forms this workspace uses; nested
/// literal objects must themselves be wrapped in `json!`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($k:literal : $v:expr),* $(,)? }) => {
        $crate::Value::Map(vec![
            $( (::std::string::String::from($k), $crate::to_value(&$v)) ),*
        ])
    };
    ([ $($v:expr),* $(,)? ]) => {
        $crate::Value::Seq(vec![ $( $crate::to_value(&$v) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

// ---------------------------------------------------------------
// Writer
// ---------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Rust's Debug for floats is shortest-roundtrip.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------
// Parser
// ---------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(self.err(&format!("unexpected character `{}`", b as char))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(format!("invalid UTF-8 in string: {e}")))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_keyword("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(u) = stripped.parse::<u128>() {
                    if u == 0 {
                        return Ok(Value::UInt(0));
                    }
                }
                if let Ok(i) = text.parse::<i128>() {
                    return Ok(Value::Int(i));
                }
            } else if let Ok(u) = text.parse::<u128>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_value() {
        let v = Value::Map(vec![
            ("a".into(), Value::UInt(u128::MAX)),
            ("b".into(), Value::Int(-42)),
            ("c".into(), Value::Float(1.5e-9)),
            (
                "d".into(),
                Value::Seq(vec![
                    Value::Null,
                    Value::Bool(true),
                    Value::Str("x\"\n".into()),
                ]),
            ),
            ("e".into(), Value::Map(vec![])),
        ]);
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(v, back);
        let sp = to_string_pretty(&v).unwrap();
        let back2: Value = from_str(&sp).unwrap();
        assert_eq!(v, back2);
    }

    #[test]
    fn unicode_escapes() {
        let back: Value = from_str(r#""é😀x""#).unwrap();
        assert_eq!(back, Value::Str("é😀x".to_string()));
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        let nan: f64 = from_str("null").unwrap();
        assert!(nan.is_nan());
    }

    #[test]
    fn typed_roundtrip() {
        let xs: Vec<(u64, f64)> = vec![(1, 0.5), (2, 1e300)];
        let s = to_string(&xs).unwrap();
        let back: Vec<(u64, f64)> = from_str(&s).unwrap();
        assert_eq!(xs, back);
    }
}
