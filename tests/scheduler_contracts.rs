//! Cross-crate scheduler contracts (DESIGN.md invariant 4) exercised
//! against randomized environments.

use blu_core::joint::TopologyAccess;
use blu_core::sched::{
    AccessAwareScheduler, MatrixRates, PfScheduler, SchedInput, SpeculativeScheduler, UlScheduler,
};
use blu_phy::pilot::MAX_ORTHOGONAL_SHIFTS;
use blu_sim::rng::DetRng;
use blu_sim::topology::InterferenceTopology;

fn random_env(seed: u64) -> (InterferenceTopology, MatrixRates, Vec<f64>, usize, usize) {
    let mut rng = DetRng::seed_from_u64(seed);
    let n = rng.range_usize(3, 16);
    let h = rng.range_usize(1, 10);
    let topo = InterferenceTopology::random(n, h, (0.1, 0.8), 0.4, &mut rng);
    let n_rbs = rng.range_usize(4, 20);
    let rates = MatrixRates::build(n, n_rbs, |ue, rb| {
        100.0 + ((ue * 31 + rb * 7 + seed as usize) % 53) as f64 * 13.0
    });
    let avg: Vec<f64> = (0..n).map(|_| rng.range_f64(1.0, 400.0)).collect();
    (topo, rates, avg, n, n_rbs)
}

#[test]
fn speculative_respects_caps_across_random_environments() {
    for seed in 0..40 {
        let (topo, rates, avg, n, n_rbs) = random_env(seed);
        let mut rng = DetRng::seed_from_u64(seed ^ 0xC0FFEE);
        let m = rng.range_usize(1, 5);
        let k_max = rng.range_usize(2, 12);
        let max_group = (2 * m).min(MAX_ORTHOGONAL_SHIFTS);
        let input = SchedInput {
            n_clients: n,
            n_rbs,
            m_antennas: m,
            k_max,
            max_group,
            rates: &rates,
            avg_tput: &avg,
        };
        let acc = TopologyAccess::new(&topo);
        let mut blu = SpeculativeScheduler::new(&acc);
        let sched = blu.schedule(&input);
        assert!(
            sched.max_group_size() <= max_group,
            "seed {seed}: group {} > cap {max_group}",
            sched.max_group_size()
        );
        assert!(
            sched.scheduled_clients().len() <= k_max,
            "seed {seed}: K constraint broken ({} > {k_max})",
            sched.scheduled_clients().len()
        );
        // Every RB is allocated whenever any client has a usable rate.
        assert_eq!(sched.occupied_rbs(), n_rbs, "seed {seed}");
    }
}

#[test]
fn pf_and_aa_never_overschedule() {
    for seed in 0..40 {
        let (topo, rates, avg, n, n_rbs) = random_env(seed + 1000);
        let mut rng = DetRng::seed_from_u64(seed);
        let m = rng.range_usize(1, 5);
        let input = SchedInput {
            n_clients: n,
            n_rbs,
            m_antennas: m,
            k_max: 10,
            max_group: 2 * m,
            rates: &rates,
            avg_tput: &avg,
        };
        let pf = PfScheduler.schedule(&input);
        assert!(pf.max_group_size() <= m, "seed {seed}: PF over-scheduled");
        let p: Vec<f64> = (0..n).map(|i| topo.p_individual(i)).collect();
        let aa = AccessAwareScheduler::new(p).schedule(&input);
        assert!(aa.max_group_size() <= m, "seed {seed}: AA over-scheduled");
    }
}

#[test]
fn speculative_expected_utility_monotone_along_greedy_chain() {
    // The greedy only adds clients with positive expected-utility
    // increments, so E must not decrease RB-by-RB as groups grow.
    for seed in 0..20 {
        let (topo, rates, avg, n, n_rbs) = random_env(seed + 2000);
        let input = SchedInput {
            n_clients: n,
            n_rbs,
            m_antennas: 2,
            k_max: 10,
            max_group: 4,
            rates: &rates,
            avg_tput: &avg,
        };
        let acc = TopologyAccess::new(&topo);
        let blu = SpeculativeScheduler::new(&acc);
        let mut sched = SpeculativeScheduler::new(&acc);
        let schedule = sched.schedule(&input);
        for rb in 0..n_rbs {
            let group = schedule.group(rb);
            if group.len() < 2 {
                continue;
            }
            // The full group's E must beat every single-member E
            // (otherwise the greedy would have stopped earlier).
            let e_full = blu.expected_utility(&input, rb, group).unwrap();
            for ue in group.iter() {
                let e_single = blu
                    .expected_utility(&input, rb, blu_sim::clientset::ClientSet::singleton(ue))
                    .unwrap();
                assert!(
                    e_full >= e_single - 1e-9,
                    "seed {seed} rb {rb}: E(full)={e_full} < E({{{ue}}})={e_single}"
                );
            }
        }
    }
}
