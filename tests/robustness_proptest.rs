//! Property-based tests of the fault-injection substrate and the
//! degraded-mode invariants: no adversarial input stream may panic
//! the estimator, corrupt its counting invariants, or push the
//! inference outside probability space.

use blu_core::blueprint::infer::{InferenceConfig, InferenceVerdict};
use blu_core::measure::OutcomeEstimator;
use blu_core::orchestrator::blueprint_from_measurements;
use blu_sim::clientset::ClientSet;
use blu_sim::faults::{FaultEvent, FaultKind, FaultScript, ObservationChannel};
use blu_sim::rng::DetRng;
use blu_traces::stats::EmpiricalAccess;
use proptest::prelude::*;

/// Strategy: an adversarial stream of (observed, accessible) set
/// pairs — `accessible` is clipped to `observed` the way the
/// measurement path guarantees, but otherwise arbitrary.
fn arb_stream(n: usize) -> impl Strategy<Value = Vec<(ClientSet, ClientSet)>> {
    collection::vec((0u64..(1 << n), 0u64..(1 << n)), 0..200).prop_map(move |raw| {
        raw.into_iter()
            .map(|(o, a)| {
                let observed = ClientSet(o as u128);
                let accessible = ClientSet(a as u128 & o as u128);
                (observed, accessible)
            })
            .collect()
    })
}

fn stats_invariants_hold(e: &EmpiricalAccess) -> bool {
    let ind = e
        .acc_individual
        .iter()
        .zip(&e.obs_individual)
        .all(|(a, o)| a <= o);
    let pair = e.acc_pair.iter().zip(&e.obs_pair).all(|(a, o)| a <= o);
    let probs = (0..e.n).all(|i| {
        e.p_individual(i).is_none_or(|p| (0.0..=1.0).contains(&p))
            && (i + 1..e.n).all(|j| e.p_pair(i, j).is_none_or(|p| (0.0..=1.0).contains(&p)))
    });
    ind && pair && probs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Adversarial observation streams keep the estimator's counting
    /// invariants (acc ≤ obs, probabilities in [0,1]), and decay at
    /// any factor preserves them.
    #[test]
    fn estimator_invariants_under_adversarial_streams(
        stream in arb_stream(6),
        keep_bits in any::<u64>(),
    ) {
        // Any bit pattern, including NaN and the infinities.
        let keep = f64::from_bits(keep_bits);
        let mut est = OutcomeEstimator::new(6);
        for &(obs, acc) in &stream {
            est.stats_mut().record(obs, acc);
        }
        prop_assert!(stats_invariants_hold(est.stats()));
        est.decay(keep); // clamped internally, even for NaN/∞
        prop_assert!(stats_invariants_hold(est.stats()));
    }

    /// Inference over arbitrary (even mutually inconsistent) measured
    /// statistics always yields probabilities in [0,1], a finite
    /// residual fraction, and a coherent verdict — never a panic.
    #[test]
    fn inference_stays_in_probability_space(stream in arb_stream(5)) {
        let mut est = OutcomeEstimator::new(5);
        for &(obs, acc) in &stream {
            est.stats_mut().record(obs, acc);
        }
        let result = blueprint_from_measurements(&est, &InferenceConfig::default());
        for ht in &result.topology.hts {
            prop_assert!((0.0..=1.0).contains(&ht.q), "q = {}", ht.q);
        }
        for i in 0..5 {
            let p = result.topology.p_individual(i);
            prop_assert!((0.0..=1.0).contains(&p), "p({i}) = {p}");
        }
        prop_assert!(result.residual_fraction.is_finite());
        prop_assert!((0.0..=1.0).contains(&result.confidence()));
        prop_assert!(matches!(
            result.verdict,
            InferenceVerdict::Converged | InferenceVerdict::MaxIters | InferenceVerdict::Degraded
        ));
    }

    /// The observation channel never invents observations, never
    /// leaks accessibility outside the observed set, and is a pure
    /// function of its RNG state (deterministic under replay).
    #[test]
    fn observation_channel_is_contained_and_deterministic(
        stream in arb_stream(6),
        misclassify in 0.0f64..1.0,
        drop in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let state = blu_sim::faults::ObsFaultState {
            misclassify_rate: misclassify,
            drop_rate: drop,
        };
        let mut a = ObservationChannel::new(DetRng::seed_from_u64(seed));
        let mut b = ObservationChannel::new(DetRng::seed_from_u64(seed));
        for &(obs, acc) in &stream {
            let out_a = a.corrupt(state, obs, acc);
            let out_b = b.corrupt(state, obs, acc);
            prop_assert_eq!(out_a, out_b);
            if let Some((o, c)) = out_a {
                prop_assert_eq!(o, obs, "observed set must pass through unaltered");
                prop_assert!(c.is_subset_of(obs), "corrupted accessibility leaked outside observed");
            }
        }
    }

    /// Scripted fault schedules are queried, validated, and applied
    /// without panicking for arbitrary event soups; validation
    /// rejects exactly the out-of-range inputs.
    #[test]
    fn fault_scripts_never_panic(
        raw in collection::vec(
            (0u64..50_000, 0u8..6, 0usize..12, any::<u64>(), 0u64..64),
            0..12,
        ),
    ) {
        let events: Vec<FaultEvent> = raw
            .into_iter()
            .map(|(sf, kind, ht, p_bits, bits)| FaultEvent {
                at_subframe: sf,
                kind: {
                    // Any bit pattern for the probability, NaN included.
                    let p = f64::from_bits(p_bits);
                    match kind {
                        0 => FaultKind::HtAppear { q: p, edges: ClientSet(bits as u128) },
                        1 => FaultKind::HtDisappear { ht },
                        2 => FaultKind::QDrift { ht, q: p },
                        3 => FaultKind::EdgeChurn { ht, toggle: ClientSet(bits as u128) },
                        4 => FaultKind::MisclassifyRate { rate: p },
                        _ => FaultKind::DropRate { rate: p },
                    }
                },
            })
            .collect();
        let script = FaultScript::new(events);
        // Querying any scripted or unscripted subframe must not panic
        // regardless of validity.
        let _ = script.topology_event_subframes();
        let _ = script.obs_state_at(0);
        let _ = script.obs_state_at(25_000);
        let _ = script.has_observation_faults();
        let _ = script.n_appearing();
        // Validation itself must be total (Ok or typed error).
        let _ = script.validate(6, 4);
    }
}
