//! Chaos-harness invariant suite: fixed-seed fleet-scale storms
//! compiled by [`blu_harness::chaos`], checked against the recovery
//! contract.
//!
//! Two scenarios:
//!
//! * a **crash storm with torn checkpoints and poisoned
//!   observations** — the supervised fleet must terminate, heal or
//!   quarantine every faulted cell, keep non-faulted cells
//!   byte-identical to their fault-free goldens, and contain every
//!   panic;
//! * a **kill-and-restart** of the whole supervised fleet mid-storm —
//!   resuming from checkpoints must reproduce the uninterrupted run
//!   bit for bit. This scenario deliberately runs *without* torn
//!   checkpoints: tearing the checkpoint files and then killing the
//!   process genuinely loses data, and no supervisor can promise
//!   bit-identity across that.

use blu_core::blueprint::FleetBlueprintCache;
use blu_core::robust::{CheckpointPolicy, RobustConfig};
use blu_core::runtime::supervisor::{run_supervised_fleet, SupervisorConfig};
use blu_core::{BluConfig, EmulationConfig};
use blu_harness::chaos::{
    run_chaos, verify_cache_transparency, verify_invariants, ChaosConfig, ChaosPlan,
};
use blu_phy::cell::CellConfig;
use std::path::PathBuf;
use std::sync::Arc;

fn quick_config(dir: Option<PathBuf>, resume: bool) -> RobustConfig {
    let mut cell = CellConfig::testbed_siso();
    cell.numerology.n_rbs = 10;
    let mut config = RobustConfig::new(BluConfig::new(EmulationConfig::new(cell)));
    config.checkpoint = dir.map(|dir| CheckpointPolicy {
        dir,
        every_subframes: 2_000,
        resume,
    });
    config
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("blu-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Crash storm + torn checkpoints + 5% poisoned observations: every
/// recovery invariant holds at a fixed seed.
#[test]
fn scripted_storm_with_torn_checkpoints_recovers() {
    let plan = ChaosPlan::compile(ChaosConfig {
        n_cells: 4,
        seconds: 60,
        seed: 0xB10C_5E3D,
        crash_fraction: 0.5,
        poison_fraction: 0.05,
        poison_rate: 0.25,
        torn_fraction: 0.5,
        ..ChaosConfig::default()
    })
    .expect("plan compiles");
    assert_eq!(plan.crash_cells.len(), 2, "storm hits half the fleet");
    assert_eq!(plan.torn_cells.len(), 1, "one crash cell loses its disk");
    assert_eq!(plan.poison_cells.len(), 1, "5% of 4 cells rounds up to 1");

    let dir = scratch_dir("storm");
    let config = quick_config(Some(dir.clone()), false);
    // A panic escaping run_chaos would fail this unwrap: the run
    // completing at all is the zero-propagated-panics invariant.
    let result = run_chaos(&plan, &config, &SupervisorConfig::default()).expect("storm run");

    let violations = verify_invariants(&plan, &result);
    assert!(
        violations.is_empty(),
        "recovery contract violated:\n  {}",
        violations.join("\n  ")
    );
    assert!(result.outcome.health.completed);
    assert!(
        result.tears > 0,
        "the torn-checkpoint hook never saw a save for its cell"
    );
    for &cell in &plan.crash_cells {
        let health = &result.outcome.health.cells[cell];
        assert!(health.crashes_observed >= 1, "cell {cell} never crashed");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The same storm run with the fleet blueprint cache on and off must
/// be indistinguishable outside wall-clock: caching is a perf
/// optimization, never an observable behavior change — even under
/// crashes, poisoned observations and torn checkpoints.
#[test]
fn fleet_cache_is_transparent_under_a_storm() {
    let plan = ChaosPlan::compile(ChaosConfig {
        n_cells: 3,
        seconds: 60,
        seed: 0xCAC4ED,
        crash_fraction: 0.34,
        poison_fraction: 0.34,
        poison_rate: 0.25,
        torn_fraction: 0.5,
        ..ChaosConfig::default()
    })
    .expect("plan compiles");

    let dir_cached = scratch_dir("cache-on");
    let cache = Arc::new(FleetBlueprintCache::new(64));
    let mut cached_config = quick_config(Some(dir_cached.clone()), false);
    cached_config.fleet_cache = Some(Arc::clone(&cache));
    let cached =
        run_chaos(&plan, &cached_config, &SupervisorConfig::default()).expect("cached storm run");

    let dir_uncached = scratch_dir("cache-off");
    let uncached_config = quick_config(Some(dir_uncached.clone()), false);
    let uncached = run_chaos(&plan, &uncached_config, &SupervisorConfig::default())
        .expect("uncached storm run");

    let violations = verify_cache_transparency(&cached, &uncached);
    assert!(
        violations.is_empty(),
        "cache transparency violated:\n  {}",
        violations.join("\n  ")
    );
    // Both runs must also honor the recovery contract on their own.
    let recovery = verify_invariants(&plan, &cached);
    assert!(
        recovery.is_empty(),
        "cached run broke the recovery contract:\n  {}",
        recovery.join("\n  ")
    );
    let stats = cache.stats();
    assert!(
        stats.hits + stats.delayed_hits > 0,
        "the storm never repeated a topology, so the test proved nothing: {stats:?}"
    );
    let _ = std::fs::remove_dir_all(&dir_cached);
    let _ = std::fs::remove_dir_all(&dir_uncached);
}

/// The acceptance gate for streaming churn: with Poisson topology
/// churn compiled into every cell's capture *and* streaming inference
/// enabled, the fleet blueprint cache must stay transparent. Churn
/// re-signs blueprints on every topology-event boundary, so a stale
/// pre-churn cache hit would surface here as a report divergence.
#[test]
fn fleet_cache_is_transparent_under_churn() {
    use blu_core::robust::StreamingConfig;
    let plan = ChaosPlan::compile(ChaosConfig {
        n_cells: 3,
        seconds: 60,
        seed: 0x00C0_FFEE,
        crash_fraction: 0.0,
        stall_fraction: 0.0,
        poison_fraction: 0.0,
        torn_fraction: 0.0,
        churn_rate_hz: 0.2,
        churn_start_subframe: 20_000,
        ..ChaosConfig::default()
    })
    .expect("plan compiles");
    assert!(
        plan.faulted.iter().all(|f| *f),
        "churn must mark every cell faulted"
    );

    let cache = Arc::new(FleetBlueprintCache::new(64));
    let mut cached_config = quick_config(None, false);
    cached_config.streaming = Some(StreamingConfig::new(1_000));
    let uncached_config = cached_config.clone();
    cached_config.fleet_cache = Some(Arc::clone(&cache));

    let cached =
        run_chaos(&plan, &cached_config, &SupervisorConfig::default()).expect("cached churn run");
    let uncached = run_chaos(&plan, &uncached_config, &SupervisorConfig::default())
        .expect("uncached churn run");

    let violations = verify_cache_transparency(&cached, &uncached);
    assert!(
        violations.is_empty(),
        "cache transparency violated under churn:\n  {}",
        violations.join("\n  ")
    );
    let recovery = verify_invariants(&plan, &cached);
    assert!(
        recovery.is_empty(),
        "churn run broke the recovery contract:\n  {}",
        recovery.join("\n  ")
    );
    let stats = cache.stats();
    assert!(
        stats.lookups() > 0,
        "churn storm never consulted the cache: {stats:?}"
    );
}

/// Killing the whole supervised fleet mid-storm and restarting it
/// from checkpoints reproduces the uninterrupted run bit for bit.
#[test]
fn chaos_kill_and_restart_resumes_bit_identically() {
    let plan = ChaosPlan::compile(ChaosConfig {
        n_cells: 3,
        seconds: 60,
        seed: 0xDEAD_0121,
        crash_fraction: 0.5,
        poison_fraction: 0.0,
        torn_fraction: 0.0,
        ..ChaosConfig::default()
    })
    .expect("plan compiles");
    let captures = plan.captures().expect("captures");
    let sup = SupervisorConfig::default();

    // Uninterrupted reference run.
    let dir_a = scratch_dir("resume-a");
    let golden = run_supervised_fleet(&captures, &quick_config(Some(dir_a.clone()), false), &sup)
        .expect("uninterrupted run");

    // Kill after 3 rounds, then restart the whole fleet from disk.
    let dir_b = scratch_dir("resume-b");
    let mut truncated = sup.clone();
    truncated.max_rounds = Some(3);
    let partial = run_supervised_fleet(
        &captures,
        &quick_config(Some(dir_b.clone()), false),
        &truncated,
    )
    .expect("truncated run");
    assert!(!partial.health.completed, "3 rounds must not finish 60s");
    let resumed = run_supervised_fleet(&captures, &quick_config(Some(dir_b.clone()), true), &sup)
        .expect("resumed run");

    assert!(resumed.health.completed);
    for cell in 0..plan.config.n_cells {
        assert!(
            blu_harness::chaos::reports_equivalent(&resumed.reports[cell], &golden.reports[cell]),
            "cell {cell} report diverged after kill-and-restart"
        );
        let a = &golden.health.cells[cell];
        let b = &resumed.health.cells[cell];
        assert_eq!(a.transitions, b.transitions, "cell {cell} health ledger");
        assert_eq!(a.restart_sources, b.restart_sources, "cell {cell} restores");
        assert_eq!(a.final_health, b.final_health, "cell {cell} final health");
        assert_eq!(a.last_error, b.last_error, "cell {cell} last error");
    }
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}
