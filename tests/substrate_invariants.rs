//! Deeper substrate invariants: DCF mutual exclusion, LBT safety,
//! binary-codec robustness, and the §3.3 fading/blocking
//! discrimination at system level.

use blu_phy::laa::{ue_cca, Lbt, LbtConfig, DEFER_US};
use blu_sim::medium::{union, ActivityTimeline};
use blu_sim::rng::DetRng;
use blu_sim::time::Micros;
use blu_traces::io::{decode_access, decode_activity};
use blu_wifi::network::{WifiNetwork, WifiNetworkConfig, WifiStationSpec};
use blu_wifi::traffic::TrafficGen;
use proptest::prelude::*;

/// Stations that can all hear each other must never transmit
/// concurrently (carrier sensing mutual exclusion) — across random
/// station counts, traffic mixes and seeds.
#[test]
fn dcf_mutual_exclusion_holds_across_random_networks() {
    for seed in 0..12u64 {
        let mut rng = DetRng::seed_from_u64(seed);
        let n = rng.range_usize(2, 6);
        let stations: Vec<WifiStationSpec> = (0..n)
            .map(|i| WifiStationSpec {
                traffic: if rng.chance(0.5) {
                    TrafficGen::iperf_default()
                } else {
                    TrafficGen::Poisson {
                        pkts_per_sec: rng.range_f64(50.0, 2_000.0),
                        bytes: rng.range_usize(100, 1471),
                    }
                },
                dest: (i + 1) % n,
                snr_to_dest_db: rng.range_f64(8.0, 35.0),
            })
            .collect();
        let cfg = WifiNetworkConfig::fully_connected(stations, Micros::from_millis(500));
        let result = WifiNetwork::new(cfg, &DetRng::seed_from_u64(seed ^ 0xD)).run();
        // Union airtime must equal the sum of airtimes: zero overlap.
        let refs: Vec<&ActivityTimeline> = result.timelines.iter().collect();
        let u = union(&refs);
        let sum: f64 = result
            .timelines
            .iter()
            .map(|t| {
                t.busy_time_in(Micros::ZERO, Micros::from_millis(500))
                    .as_u64() as f64
            })
            .sum();
        let merged = u
            .busy_time_in(Micros::ZERO, Micros::from_millis(500))
            .as_u64() as f64;
        assert!(
            (sum - merged).abs() < 1.0,
            "seed {seed}: overlap detected ({sum} vs {merged})"
        );
    }
}

/// The medium a DCF station sees must be idle for the defer period
/// before any of its transmissions start.
#[test]
fn dcf_transmissions_respect_difs() {
    let stations: Vec<WifiStationSpec> = (0..3)
        .map(|i| WifiStationSpec {
            traffic: TrafficGen::iperf_default(),
            dest: (i + 1) % 3,
            snr_to_dest_db: 30.0,
        })
        .collect();
    let cfg = WifiNetworkConfig::fully_connected(stations, Micros::from_millis(300));
    let result = WifiNetwork::new(cfg, &DetRng::seed_from_u64(1)).run();
    for (s, tl) in result.timelines.iter().enumerate() {
        // Medium as seen by s = union of the other stations.
        let others: Vec<&ActivityTimeline> = result
            .timelines
            .iter()
            .enumerate()
            .filter(|&(o, _)| o != s)
            .map(|(_, t)| t)
            .collect();
        let medium = union(&others);
        for iv in tl.intervals() {
            let difs = blu_wifi::timing::DIFS_US;
            assert!(
                !medium.busy_in(iv.start.saturating_sub(Micros(difs)), iv.start),
                "station {s} started at {} without DIFS clearance",
                iv.start
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The binary trace decoders must never panic on arbitrary input —
    /// they return Err on garbage.
    #[test]
    fn codecs_never_panic_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode_access(&data);
        let _ = decode_activity(&data);
    }

    /// Truncating a valid encoding at any point must error, not panic
    /// or return wrong data silently... (a shorter valid prefix can
    /// only happen if the cut lands exactly on the declared length).
    #[test]
    fn truncated_encodings_fail_loudly(cut in 0usize..64, seed in any::<u64>()) {
        use blu_traces::capture::{capture_synthetic, CaptureConfig};
        let mut cfg = CaptureConfig::quick();
        cfg.duration = Micros::from_millis(50);
        let trace = capture_synthetic(&cfg, seed % 8);
        let enc = blu_traces::io::encode_access(&trace.access);
        let cut = cut.min(enc.len().saturating_sub(1));
        if cut < enc.len() {
            prop_assert!(decode_access(&enc[..cut]).is_err());
        }
    }

    /// LBT acquisition always lands on an instant whose defer window
    /// was idle, for arbitrary busy patterns.
    #[test]
    fn lbt_defer_window_always_idle(
        seed in any::<u64>(),
        gaps in proptest::collection::vec((1u64..500, 1u64..2_000), 1..20),
    ) {
        let mut tl = ActivityTimeline::new();
        let mut t = 0u64;
        for (idle, busy) in gaps {
            t += idle;
            tl.push(Micros(t), Micros(t + busy));
            t += busy;
        }
        let mut lbt = Lbt::new(LbtConfig::default(), DetRng::seed_from_u64(seed));
        let start = lbt.acquire(&tl, Micros::ZERO);
        prop_assert!(!tl.busy_at(start));
        prop_assert!(!tl.busy_in(start.saturating_sub(Micros(DEFER_US)), start));
    }

    /// UE one-shot CCA agrees with a brute-force scan of the window.
    #[test]
    fn ue_cca_matches_bruteforce(
        seed in any::<u64>(),
        grant_ms in 1u64..50,
    ) {
        let mut rng = DetRng::seed_from_u64(seed);
        let mut tl = ActivityTimeline::new();
        let mut t = 0u64;
        while t < 60_000 {
            let idle = rng.range_usize(10, 3_000) as u64;
            let busy = rng.range_usize(10, 3_000) as u64;
            t += idle;
            if t >= 60_000 { break; }
            tl.push(Micros(t), Micros(t + busy));
            t += busy;
        }
        let grant = Micros(grant_ms * 1_000);
        let outcome = ue_cca(&tl, grant);
        let brute = (grant.as_u64().saturating_sub(25)..grant.as_u64())
            .any(|us| tl.busy_at(Micros(us)));
        prop_assert_eq!(outcome.is_idle(), !brute);
    }
}

/// §3.3's discrimination claim, system level: heavy *fading* must not
/// bias the measured access probabilities, because the estimator
/// counts a fading loss (pilot received, data lost) as a successful
/// channel access.
#[test]
fn fading_does_not_bias_access_statistics() {
    use blu_core::emulator::{EmulationConfig, Emulator};
    use blu_core::measure::OutcomeEstimator;
    use blu_core::sched::PfScheduler;
    use blu_phy::cell::CellConfig;
    use blu_traces::capture::{capture_synthetic, CaptureConfig};

    // Low SNR + zero link-adaptation margin: lots of fading losses.
    let trace = capture_synthetic(
        &CaptureConfig {
            duration: Micros::from_secs(40),
            snr_range_db: (6.0, 10.0),
            q_range: (0.3, 0.5),
            ..CaptureConfig::testbed_default()
        },
        3,
    );
    let mut cell = CellConfig::testbed_siso();
    cell.numerology.n_rbs = 10;
    let mut cfg = EmulationConfig::new(cell);
    cfg.n_txops = 2_000;
    cfg.mcs_margin_db = -2.0; // aggressive MCS: provoke decode failures
    let mut est = OutcomeEstimator::new(trace.ground_truth.n_clients);
    let mut emu = Emulator::new(&trace, cfg).expect("emulator setup");
    let report = emu.run(&mut PfScheduler, Some(&mut est));
    assert!(
        report.metrics.rbs_faded > 100,
        "test needs real fading pressure, got {}",
        report.metrics.rbs_faded
    );
    for i in 0..trace.ground_truth.n_clients {
        if let Some(p) = est.stats().p_individual(i) {
            let truth = trace.ground_truth.p_individual(i);
            assert!(
                (p - truth).abs() < 0.1,
                "client {i}: measured {p} vs truth {truth} under fading"
            );
        }
    }
}
