//! Integration: trace capture → persistence → combination invariants
//! (DESIGN.md invariant 7).

use blu_sim::time::Micros;
use blu_traces::capture::{capture_synthetic, derive_access, CaptureConfig};
use blu_traces::combine::{concat_ue_deployments, emulate_large, merge_hidden_fields};
use blu_traces::io;
use blu_traces::scenario::{generate, ScenarioConfig};
use blu_traces::stats::EmpiricalAccess;

fn quick(seed: u64, n_ues: usize, n_hts: usize) -> blu_traces::schema::TestbedTrace {
    capture_synthetic(
        &CaptureConfig {
            n_ues,
            n_hts,
            duration: Micros::from_secs(8),
            ..CaptureConfig::quick()
        },
        seed,
    )
}

#[test]
fn json_and_binary_agree_for_scenario_traces() {
    let mut cfg = ScenarioConfig::testbed();
    cfg.duration = Micros::from_secs(8);
    let scenario = generate(&cfg, 3);
    let t = &scenario.trace;

    let json = serde_json::to_string(t).unwrap();
    let back: blu_traces::schema::TestbedTrace = serde_json::from_str(&json).unwrap();
    assert_eq!(&back, t);

    let acc = io::encode_access(&t.access);
    assert_eq!(io::decode_access(&acc).unwrap(), t.access);
    let act = io::encode_activity(&t.wifi);
    assert_eq!(io::decode_activity(&act).unwrap(), t.wifi);
}

#[test]
fn combined_trace_access_equals_rederived_access() {
    let a = quick(1, 4, 3);
    let b = quick(2, 4, 2);
    let merged = merge_hidden_fields(&a, &b);
    let rederived = derive_access(
        &merged.ground_truth,
        &merged.wifi.timelines,
        merged.access.len() as u64,
    );
    assert_eq!(merged.access, rederived);
}

#[test]
fn paper_scale_emulation_is_consistent() {
    let groups: Vec<_> = (0..6).map(|g| quick(10 + g, 4, 6)).collect();
    let big = emulate_large(&groups, &[]);
    assert_eq!(big.ground_truth.n_clients, 24);
    assert_eq!(big.ground_truth.n_hidden(), 36);
    assert_eq!(big.validate(), Ok(()));

    // Empirical statistics of the spliced trace still match the
    // combined ground-truth topology's closed forms.
    let emp = EmpiricalAccess::from_trace(&big.access);
    for i in 0..24 {
        let measured = emp.p_individual(i).unwrap();
        let exact = big.ground_truth.p_individual(i);
        assert!(
            (measured - exact).abs() < 0.08,
            "UE {i}: measured {measured} vs exact {exact}"
        );
    }
}

#[test]
fn concat_preserves_group_independence() {
    let a = quick(21, 3, 2);
    let b = quick(22, 2, 3);
    let c = concat_ue_deployments(&a, &b);
    // a's UEs and b's UEs are blocked by disjoint HT sets.
    for ht in &c.ground_truth.hts[..2] {
        assert!(ht.edges.iter().all(|i| i < 3));
    }
    for ht in &c.ground_truth.hts[2..] {
        assert!(ht.edges.iter().all(|i| i >= 3));
    }
    // Pairwise statistics across the groups factorize (independent):
    // p(i, j) == p(i)·p(j) for i in a, j in b.
    for i in 0..3 {
        for j in 3..5 {
            let pij = c.ground_truth.p_pair(i, j);
            let prod = c.ground_truth.p_individual(i) * c.ground_truth.p_individual(j);
            assert!((pij - prod).abs() < 1e-12);
        }
    }
}
