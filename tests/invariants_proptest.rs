//! Property-based tests of the DESIGN.md invariants, spanning crates.

use blu_core::blueprint::constraints::{ConstraintSystem, TransformedTopology};
use blu_core::joint::conditioning::Conditioning;
use blu_core::joint::{AccessDistribution, TopologyAccess};
use blu_core::measure::{measurement_schedule, min_subframes};
use blu_sim::clientset::ClientSet;
use blu_sim::rng::DetRng;
use blu_sim::topology::{HiddenTerminal, InterferenceTopology};
use proptest::prelude::*;

/// Strategy: a random interference topology with up to `n_max`
/// clients and `h_max` hidden terminals.
fn arb_topology(n_max: usize, h_max: usize) -> impl Strategy<Value = InterferenceTopology> {
    (2..=n_max, 0..=h_max, any::<u64>()).prop_map(|(n, h, seed)| {
        let mut rng = DetRng::seed_from_u64(seed);
        if h == 0 {
            InterferenceTopology::interference_free(n)
        } else {
            InterferenceTopology::random(n, h, (0.05, 0.95), 0.4, &mut rng)
        }
    })
}

/// Strategy: a disjoint (succeed, fail) pair of client subsets.
fn arb_partition(n: usize, seed: u64) -> (ClientSet, ClientSet) {
    let mut rng = DetRng::seed_from_u64(seed);
    let mut succeed = ClientSet::EMPTY;
    let mut fail = ClientSet::EMPTY;
    for i in 0..n {
        match rng.below(3) {
            0 => succeed.insert(i),
            1 => fail.insert(i),
            _ => {}
        }
    }
    (succeed, fail)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Invariant 1: exact probabilities of any topology satisfy the
    /// Eqn. 6 constraint system with zero violation.
    #[test]
    fn transform_soundness(topo in arb_topology(8, 6)) {
        let sys = ConstraintSystem::from_topology(&topo);
        let t = TransformedTopology::from_topology(&topo);
        prop_assert!(sys.total_violation(&t) < 1e-7);
    }

    /// Invariant 2a: the §3.6 conditioning recursion equals the
    /// inclusion–exclusion oracle for every partition.
    #[test]
    fn conditioning_equals_oracle(topo in arb_topology(7, 6), seed in any::<u64>()) {
        let cond = Conditioning::new(&topo).unwrap();
        let (succeed, fail) = arb_partition(topo.n_clients, seed);
        let got = cond.p_joint(succeed, fail).unwrap();
        let want = topo.p_joint(succeed, fail);
        prop_assert!((got - want).abs() < 1e-9,
            "{got} vs {want} for {succeed}/{fail}");
        prop_assert!((0.0..=1.0 + 1e-12).contains(&got));
    }

    /// Invariant 2b: the pattern-distribution DP is a probability
    /// distribution consistent with the oracle.
    #[test]
    fn pattern_dp_is_consistent(topo in arb_topology(7, 6), seed in any::<u64>()) {
        let acc = TopologyAccess::new(&topo);
        let mut rng = DetRng::seed_from_u64(seed);
        let mut w = ClientSet::EMPTY;
        for i in 0..topo.n_clients {
            if rng.chance(0.5) {
                w.insert(i);
            }
        }
        let dist = acc.pattern_distribution(w).unwrap();
        prop_assert_eq!(dist.len(), 1usize << w.len());
        let total: f64 = dist.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "sums to {}", total);
        prop_assert!(dist.iter().all(|&p| p >= -1e-12));
        // Spot-check one pattern against the oracle.
        if !w.is_empty() {
            let members: Vec<usize> = w.iter().collect();
            let mask = (seed as usize) & ((1 << members.len()) - 1);
            let mut fail = ClientSet::EMPTY;
            for (bit, &c) in members.iter().enumerate() {
                if (mask >> bit) & 1 == 1 {
                    fail.insert(c);
                }
            }
            let succeed = w.difference(fail);
            prop_assert!((dist[mask] - topo.p_joint(succeed, fail)).abs() < 1e-9);
        }
    }

    /// Marginalization consistency: summing the pattern distribution
    /// of a superset over the extra clients must reproduce the
    /// subset's distribution exactly.
    #[test]
    fn pattern_dp_marginalizes(topo in arb_topology(7, 6), seed in any::<u64>()) {
        let acc = TopologyAccess::new(&topo);
        let mut rng = DetRng::seed_from_u64(seed);
        let mut big = ClientSet::EMPTY;
        for i in 0..topo.n_clients {
            if rng.chance(0.6) {
                big.insert(i);
            }
        }
        let mut small = ClientSet::EMPTY;
        for i in big.iter() {
            if rng.chance(0.5) {
                small.insert(i);
            }
        }
        let d_big = acc.pattern_distribution(big).unwrap();
        let d_small = acc.pattern_distribution(small).unwrap();
        let big_members: Vec<usize> = big.iter().collect();
        let small_members: Vec<usize> = small.iter().collect();
        // Project each big-mask onto the small set and accumulate.
        let mut projected = vec![0.0; d_small.len()];
        for (mask, &p) in d_big.iter().enumerate() {
            let mut small_mask = 0usize;
            for (sbit, &c) in small_members.iter().enumerate() {
                let bbit = big_members.iter().position(|&x| x == c).unwrap();
                if (mask >> bbit) & 1 == 1 {
                    small_mask |= 1 << sbit;
                }
            }
            projected[small_mask] += p;
        }
        for (m, (a, b)) in projected.iter().zip(d_small.iter()).enumerate() {
            prop_assert!((a - b).abs() < 1e-9, "pattern {}: {} vs {}", m, a, b);
        }
    }

    /// Invariant 3 (part): a ground-truth topology is a zero of its
    /// own constraint system even after canonicalization.
    #[test]
    fn canonicalization_preserves_distributions(topo in arb_topology(8, 6)) {
        let canon = topo.canonicalize();
        for i in 0..topo.n_clients {
            prop_assert!((canon.p_individual(i) - topo.p_individual(i)).abs() < 1e-9);
            for j in (i + 1)..topo.n_clients {
                prop_assert!((canon.p_pair(i, j) - topo.p_pair(i, j)).abs() < 1e-9);
            }
        }
    }

    /// Invariant 5: Algorithm 1 covers every pair at least T times
    /// within 2× of the information floor.
    #[test]
    fn measurement_coverage(n in 3usize..14, k in 2usize..9, t in 1u64..12) {
        let plan = measurement_schedule(n, k, t).unwrap();
        prop_assert!(plan.pair_counts.iter().all(|&c| c >= t));
        prop_assert!(plan.subframes.iter().all(|s| s.len() == k.min(n)));
        let floor = min_subframes(n, k.min(n), t).unwrap();
        prop_assert!(plan.t_max() <= 2 * floor + 2,
            "t_max {} vs floor {}", plan.t_max(), floor);
    }

    /// Monte-Carlo consistency: sampled access matches p_joint.
    #[test]
    fn sampling_matches_joint(seed in any::<u64>()) {
        let mut rng = DetRng::seed_from_u64(seed);
        let topo = InterferenceTopology::random(5, 3, (0.2, 0.7), 0.5, &mut rng);
        let (succeed, fail) = arb_partition(5, seed ^ 0xABCD);
        let exact = topo.p_joint(succeed, fail);
        let n = 60_000;
        let hits = (0..n)
            .filter(|_| {
                let acc = topo.sample_access(&mut rng);
                succeed.is_subset_of(acc) && fail.is_disjoint(acc)
            })
            .count();
        let emp = hits as f64 / n as f64;
        prop_assert!((emp - exact).abs() < 0.02, "emp {} exact {}", emp, exact);
    }
}

#[test]
fn conditioning_handles_all_q_extremes() {
    // Degenerate weights (q = 0, q = 1) must not divide by zero.
    for q0 in [0.0, 1.0] {
        for q1 in [0.0, 0.5, 1.0] {
            let topo = InterferenceTopology {
                n_clients: 3,
                hts: vec![
                    HiddenTerminal {
                        q: q0,
                        edges: ClientSet::from_iter([0, 1]),
                    },
                    HiddenTerminal {
                        q: q1,
                        edges: ClientSet::from_iter([1, 2]),
                    },
                ],
            };
            let cond = Conditioning::new(&topo).unwrap();
            let all = ClientSet::all(3);
            let total: f64 = all
                .subsets()
                .map(|s| cond.p_joint(s, all.difference(s)).unwrap())
                .sum();
            assert!((total - 1.0).abs() < 1e-9, "q0={q0} q1={q1}: total {total}");
        }
    }
}
