//! Differential tests for the scheduler hot-path overhaul: the
//! pruned incremental greedy builder and the parallel trial fan-out
//! must be **bit-identical** to their exhaustive/sequential
//! references — the overhaul buys speed, never different schedules.

use blu_core::emulator::{run_trials, EmulationConfig, Emulator};
use blu_core::joint::TopologyAccess;
use blu_core::sched::{MatrixRates, SchedInput, SpeculativeScheduler, UlScheduler};
use blu_sim::rng::DetRng;
use blu_sim::time::Micros;
use blu_sim::topology::InterferenceTopology;
use blu_traces::capture::{capture_synthetic, CaptureConfig};

fn small_trace(seed: u64) -> blu_traces::schema::TestbedTrace {
    capture_synthetic(
        &CaptureConfig {
            duration: Micros::from_secs(12),
            q_range: (0.25, 0.6),
            ..CaptureConfig::testbed_default()
        },
        seed,
    )
}

/// Drive pruned and exhaustive builders through the same coevolving
/// PF stream and require byte-identical schedules every sub-frame.
#[test]
fn pruned_greedy_bit_identical_to_exhaustive_stream() {
    for seed in 0..8u64 {
        let mut rng = DetRng::seed_from_u64(seed);
        let topo = InterferenceTopology::random(9, 7, (0.15, 0.65), 0.4, &mut rng);
        let access = TopologyAccess::new(&topo);
        let mut pruned = SpeculativeScheduler::new(&access);
        let mut exhaustive = SpeculativeScheduler::exhaustive(&access);
        assert!(pruned.pruning_enabled() && !exhaustive.pruning_enabled());

        let n = 9;
        let n_rbs = 12;
        let rates = MatrixRates::build(n, n_rbs, |u, b| {
            500.0 + ((u * 37 + b * 11 + 3) % 17) as f64 * 60.0
        });
        // Each scheduler evolves its own PF averages from its own
        // grants; identical schedules keep the streams locked.
        let mut avg_p = vec![300.0; n];
        let mut avg_e = avg_p.clone();
        for sf in 0..40u64 {
            let m_antennas = 1 + (sf % 2) as usize;
            let input_p = SchedInput {
                n_clients: n,
                n_rbs,
                m_antennas,
                k_max: n,
                max_group: 2 * m_antennas,
                rates: &rates,
                avg_tput: &avg_p,
            };
            let s_p = pruned.schedule(&input_p);
            let input_e = SchedInput {
                avg_tput: &avg_e,
                ..input_p
            };
            let s_e = exhaustive.schedule(&input_e);
            assert_eq!(s_p, s_e, "seed {seed}, sub-frame {sf}");
            assert_eq!(
                serde_json::to_string(&s_p).unwrap(),
                serde_json::to_string(&s_e).unwrap(),
                "seed {seed}, sub-frame {sf}: JSON must match byte for byte"
            );
            for (ue, (ap, ae)) in avg_p.iter_mut().zip(avg_e.iter_mut()).enumerate() {
                let granted: f64 = (0..n_rbs)
                    .filter(|&rb| s_p.clients[rb].contains(ue))
                    .map(|rb| 500.0 + ((ue * 37 + rb * 11 + 3) % 17) as f64 * 60.0)
                    .sum();
                *ap = 0.99 * *ap + 0.01 * granted;
                *ae = 0.99 * *ae + 0.01 * granted;
            }
        }
    }
}

/// Full emulator replays must agree exactly (identical schedules give
/// identical counters, down to the float bits).
#[test]
fn pruned_greedy_bit_identical_through_emulator() {
    for seed in [3u64, 11, 29] {
        let trace = small_trace(seed);
        let access = TopologyAccess::new(&trace.ground_truth);
        let run = |sched: &mut dyn UlScheduler| {
            let mut cfg = EmulationConfig::new(blu_phy::cell::CellConfig::testbed_mumimo2());
            cfg.n_txops = 80;
            Emulator::new(&trace, cfg)
                .expect("emulator setup")
                .run(sched, None)
                .metrics
        };
        let m_pruned = run(&mut SpeculativeScheduler::new(&access));
        let m_exhaustive = run(&mut SpeculativeScheduler::exhaustive(&access));
        assert_eq!(
            serde_json::to_string(&m_pruned).unwrap(),
            serde_json::to_string(&m_exhaustive).unwrap(),
            "seed {seed}"
        );
    }
}

/// The parallel trial fan-out must reproduce the sequential loop
/// byte for byte, in trial order.
#[test]
fn parallel_run_trials_byte_identical_to_sequential() {
    let trace = small_trace(5);
    let access = TopologyAccess::new(&trace.ground_truth);
    let config_for = |t: usize| {
        let mut cfg = EmulationConfig::new(blu_phy::cell::CellConfig::testbed_siso());
        cfg.n_txops = 40;
        cfg.seed = 0xB10 + t as u64;
        cfg
    };
    let parallel = run_trials(&trace, 5, config_for, |_t| {
        Box::new(SpeculativeScheduler::new(&access)) as Box<dyn UlScheduler>
    });
    let sequential: Vec<_> = (0..5)
        .map(|t| {
            let mut emu = Emulator::new(&trace, config_for(t)).expect("emulator setup");
            emu.run(&mut SpeculativeScheduler::new(&access), None)
        })
        .collect();
    assert_eq!(parallel.len(), sequential.len());
    for (t, (p, s)) in parallel.iter().zip(sequential.iter()).enumerate() {
        let p = p.as_ref().expect("trial setup");
        assert_eq!(
            serde_json::to_string(&p.metrics).unwrap(),
            serde_json::to_string(&s.metrics).unwrap(),
            "trial {t}"
        );
    }
}
