//! Property-based differential test of the streaming
//! [`ObservationWindow`]: over arbitrary interleavings of admits,
//! retires, and clears, the incrementally maintained counters must
//! stay bit-identical to a from-scratch recompute over the retained
//! ring. This is the same oracle discipline `hotpath_differential`
//! applies to the residual trackers — the fast path is only allowed
//! to exist because a slow reference can always call it out.

use blu_core::blueprint::ObservationWindow;
use blu_sim::clientset::ClientSet;
use blu_traces::stats::EmpiricalAccess;
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum Op {
    /// Admit one sub-frame (retiring the oldest if the ring is full).
    Admit { observed: u64, accessible: u64 },
    /// Retire the oldest retained sub-frame.
    Retire,
    /// Drop everything and zero the counters.
    Clear,
}

/// Strategy: a random event sequence, admit-heavy (8:2:1 by the
/// discriminant draw) so the ring actually fills and wraps, with
/// `accessible` clipped to `observed` the way the measurement path
/// guarantees. (The vendored proptest shim has no `prop_oneof!`;
/// drawing a discriminant and mapping is the equivalent.)
fn arb_ops(n: usize) -> impl Strategy<Value = Vec<Op>> {
    collection::vec(
        (0u64..11, 0u64..(1 << n), 0u64..(1 << n)).prop_map(|(kind, o, a)| match kind {
            0..=7 => Op::Admit {
                observed: o,
                accessible: a & o,
            },
            8..=9 => Op::Retire,
            _ => Op::Clear,
        }),
        0..300,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// After every operation the incremental counters equal a scratch
    /// recompute over the retained ring, the ring mirrors a plain
    /// `Vec` model of the same capacity policy, and occupancy never
    /// exceeds capacity.
    #[test]
    fn window_counters_match_scratch_recompute(
        ops in arb_ops(6),
        capacity in 1usize..8,
    ) {
        let n = 6;
        let mut window = ObservationWindow::new(n, capacity);
        let mut model: Vec<(ClientSet, ClientSet)> = Vec::new();

        for &op in &ops {
            match op {
                Op::Admit { observed, accessible } => {
                    let (o, a) = (ClientSet(observed as u128), ClientSet(accessible as u128));
                    if model.len() == capacity {
                        model.remove(0);
                    }
                    model.push((o, a));
                    window.admit(o, a);
                }
                Op::Retire => {
                    let expect = if model.is_empty() { None } else { Some(model.remove(0)) };
                    prop_assert_eq!(window.retire(), expect);
                }
                Op::Clear => {
                    model.clear();
                    window.clear();
                }
            }

            prop_assert!(window.occupancy() <= window.capacity());
            prop_assert_eq!(window.occupancy(), model.len());
            prop_assert_eq!(window.entries().collect::<Vec<_>>(), model.clone());

            // The load-bearing property: the incrementally maintained
            // counters are bit-identical to a from-scratch recompute.
            prop_assert_eq!(window.stats(), &window.scratch_stats());

            // And both equal an estimator fed only the retained ring.
            let mut reference = EmpiricalAccess::new(n);
            for &(o, a) in &model {
                reference.record(o, a);
            }
            prop_assert_eq!(window.stats(), &reference);
        }
    }

    /// A window sized to hold the whole stream degenerates to the
    /// plain estimator: admit-only sequences never retire anything.
    #[test]
    fn oversized_window_equals_plain_estimator(ops in arb_ops(6)) {
        let n = 6;
        let mut window = ObservationWindow::new(n, ops.len().max(1));
        let mut reference = EmpiricalAccess::new(n);
        for &op in &ops {
            if let Op::Admit { observed, accessible } = op {
                let (o, a) = (ClientSet(observed as u128), ClientSet(accessible as u128));
                window.admit(o, a);
                reference.record(o, a);
            }
        }
        prop_assert_eq!(window.stats(), &reference);
        prop_assert_eq!(window.stats(), &window.scratch_stats());
    }
}
