//! End-to-end integration: geometry → DCF interference → traces →
//! measurement → blue-print → speculative scheduling, across crates.

use blu_core::emulator::{EmulationConfig, Emulator};
use blu_core::orchestrator::{run_blu, BluConfig};
use blu_core::sched::PfScheduler;
use blu_phy::cell::CellConfig;
use blu_sim::time::Micros;
use blu_traces::scenario::{generate, ActivityModel, ScenarioConfig};

fn small_cell(m: usize) -> CellConfig {
    let mut cell = CellConfig::testbed_siso();
    cell.m_antennas = m;
    cell.numerology.n_rbs = 10; // keep CI fast
    cell
}

#[test]
fn geometric_scenario_full_pipeline_beats_pf() {
    let mut cfg = ScenarioConfig::testbed();
    cfg.n_ues = 5;
    cfg.n_wifi = 8;
    cfg.region_m = 90.0; // sparse enough that the eNB cannot hear most WiFi
    cfg.duration = Micros::from_secs(30);
    cfg.activity = ActivityModel::OnOff {
        q_range: (0.3, 0.6),
        mean_on_us: 1_500.0,
    };
    let scenario = generate(&cfg, 5);
    assert!(
        scenario.trace.ground_truth.n_hidden() >= 2,
        "scenario should produce hidden terminals, got {}",
        scenario.trace.ground_truth.n_hidden()
    );

    let mut emu_cfg = EmulationConfig::new(small_cell(1));
    emu_cfg.n_txops = 200;

    let pf = Emulator::new(&scenario.trace, emu_cfg.clone())
        .expect("emulator setup")
        .run(&mut PfScheduler, None)
        .metrics;
    let report = run_blu(&scenario.trace, &BluConfig::new(emu_cfg)).expect("blu run");
    let blu = &report.speculative.metrics;

    assert!(
        blu.rb_utilization() >= pf.rb_utilization() * 0.95,
        "BLU {} must not lose to PF {} on utilization",
        blu.rb_utilization(),
        pf.rb_utilization()
    );
    assert!(blu.bits_delivered > 0.0);
    assert!(report.measurement_subframes >= report.measurement_floor);
}

#[test]
fn dcf_driven_scenario_runs_end_to_end() {
    // Full-stack: DCF contention produces the interference.
    let mut cfg = ScenarioConfig::testbed();
    cfg.duration = Micros::from_secs(15);
    let scenario = generate(&cfg, 9);
    let mut emu_cfg = EmulationConfig::new(small_cell(2));
    emu_cfg.n_txops = 100;
    let report = run_blu(&scenario.trace, &BluConfig::new(emu_cfg)).expect("blu run");
    let m = &report.speculative.metrics;
    assert_eq!(m.subframes, 300);
    assert!(m.rbs_scheduled > 0);
    // Sanity: counters are consistent.
    assert!(m.rbs_utilized + m.rbs_collided + m.rbs_blocked + m.rbs_faded <= m.rbs_scheduled);
}

#[test]
fn mumimo_pipeline_uses_concurrency() {
    let mut cfg = ScenarioConfig::ns3(8, 10);
    cfg.duration = Micros::from_secs(20);
    let scenario = generate(&cfg, 13);
    let mut emu_cfg = EmulationConfig::new(small_cell(2));
    emu_cfg.n_txops = 150;
    let pf = Emulator::new(&scenario.trace, emu_cfg.clone())
        .expect("emulator setup")
        .run(&mut PfScheduler, None)
        .metrics;
    let report = run_blu(&scenario.trace, &BluConfig::new(emu_cfg)).expect("blu run");
    // MU-MIMO cell must beat SISO PF in raw delivery terms.
    assert!(report.speculative.metrics.bits_delivered > 0.0);
    assert!(pf.bits_delivered > 0.0);
}

#[test]
fn deterministic_across_runs() {
    let mut cfg = ScenarioConfig::ns3(5, 6);
    cfg.duration = Micros::from_secs(10);
    let s1 = generate(&cfg, 21);
    let s2 = generate(&cfg, 21);
    assert_eq!(s1.trace, s2.trace);
    let mut emu_cfg = EmulationConfig::new(small_cell(1));
    emu_cfg.n_txops = 60;
    let r1 = run_blu(&s1.trace, &BluConfig::new(emu_cfg.clone())).expect("blu run");
    let r2 = run_blu(&s2.trace, &BluConfig::new(emu_cfg)).expect("blu run");
    assert_eq!(r1.speculative.metrics, r2.speculative.metrics);
    assert_eq!(r1.inference.topology, r2.inference.topology);
}
