//! Property-based tests of the substrate primitives.

use blu_sim::clientset::ClientSet;
use blu_sim::medium::{union, ActivityTimeline, BusyInterval};
use blu_sim::power::{db_to_ratio, ratio_to_db, Db, Dbm};
use blu_sim::rng::DetRng;
use blu_sim::time::Micros;
use proptest::prelude::*;

fn arb_clientset() -> impl Strategy<Value = ClientSet> {
    any::<u128>().prop_map(ClientSet)
}

/// A random, valid activity timeline built from (idle, busy) gap pairs.
fn arb_timeline() -> impl Strategy<Value = ActivityTimeline> {
    proptest::collection::vec((1u64..1_000, 1u64..1_000), 0..24).prop_map(|gaps| {
        let mut tl = ActivityTimeline::new();
        let mut t = 0u64;
        for (idle, busy) in gaps {
            t += idle;
            tl.push(Micros(t), Micros(t + busy));
            t += busy;
        }
        tl
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // ---- ClientSet algebra laws ----

    #[test]
    fn clientset_de_morgan(a in arb_clientset(), b in arb_clientset()) {
        let everything = ClientSet(u128::MAX);
        let lhs = everything.difference(a.union(b));
        let rhs = everything.difference(a).intersection(everything.difference(b));
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn clientset_difference_disjoint(a in arb_clientset(), b in arb_clientset()) {
        prop_assert!(a.difference(b).is_disjoint(b));
        prop_assert!(a.difference(b).is_subset_of(a));
        prop_assert_eq!(a.difference(b).union(a.intersection(b)), a);
    }

    #[test]
    fn clientset_len_inclusion_exclusion(a in arb_clientset(), b in arb_clientset()) {
        prop_assert_eq!(
            a.union(b).len() + a.intersection(b).len(),
            a.len() + b.len()
        );
    }

    #[test]
    fn clientset_iter_roundtrip(a in arb_clientset()) {
        let rebuilt: ClientSet = a.iter().collect();
        prop_assert_eq!(rebuilt, a);
    }

    // ---- power units ----

    #[test]
    fn dbm_mw_roundtrip(level in -120.0f64..40.0) {
        let back = Dbm(level).to_milliwatts().to_dbm();
        prop_assert!((back.0 - level).abs() < 1e-9);
    }

    #[test]
    fn db_ratio_roundtrip(db in -60.0f64..60.0) {
        let back = ratio_to_db(db_to_ratio(Db(db)));
        prop_assert!((back.0 - db).abs() < 1e-9);
    }

    // ---- activity timelines ----

    #[test]
    fn timeline_busy_time_equals_interval_sum(tl in arb_timeline()) {
        let total: u64 = tl
            .intervals()
            .iter()
            .map(|iv| iv.duration().as_u64())
            .sum();
        let horizon = tl.horizon() + Micros(1);
        prop_assert_eq!(tl.busy_time_in(Micros::ZERO, horizon).as_u64(), total);
    }

    #[test]
    fn timeline_window_preserves_busy_time(tl in arb_timeline(), a in 0u64..20_000, len in 1u64..20_000) {
        let t0 = Micros(a);
        let t1 = Micros(a + len);
        let w = tl.window(t0, t1);
        prop_assert_eq!(
            w.busy_time_in(Micros::ZERO, Micros(len)),
            tl.busy_time_in(t0, t1)
        );
    }

    #[test]
    fn timeline_shift_is_translation(tl in arb_timeline(), off in 0u64..10_000, probe in 0u64..40_000) {
        let s = tl.shifted(Micros(off));
        prop_assert_eq!(s.busy_at(Micros(probe + off)), tl.busy_at(Micros(probe)));
    }

    #[test]
    fn union_busy_iff_any_busy(t1 in arb_timeline(), t2 in arb_timeline(), probe in 0u64..50_000) {
        let u = union(&[&t1, &t2]);
        let t = Micros(probe);
        prop_assert_eq!(u.busy_at(t), t1.busy_at(t) || t2.busy_at(t));
    }

    #[test]
    fn idle_at_or_after_is_idle_and_minimal(tl in arb_timeline(), probe in 0u64..50_000) {
        let t = Micros(probe);
        let idle = tl.idle_at_or_after(t);
        prop_assert!(idle >= t);
        prop_assert!(!tl.busy_at(idle));
        // Minimality: every instant in [t, idle) is busy.
        if idle > t {
            prop_assert!(tl.busy_at(t));
            prop_assert!(!tl.busy_in(idle, idle + Micros(0)));
        }
    }

    // ---- deterministic RNG streams ----

    #[test]
    fn derived_streams_reproducible(seed in any::<u64>(), label in "[a-z]{1,8}") {
        let root = DetRng::seed_from_u64(seed);
        let mut a = root.derive(&label);
        let mut b = root.derive(&label);
        for _ in 0..16 {
            prop_assert_eq!(a.f64().to_bits(), b.f64().to_bits());
        }
    }
}

#[test]
fn busy_interval_invariants() {
    let iv = BusyInterval::new(Micros(5), Micros(9));
    assert_eq!(iv.duration(), Micros(4));
    assert!(iv.contains(Micros(5)));
    assert!(!iv.contains(Micros(9)));
}
