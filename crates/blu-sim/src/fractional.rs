//! Fractional interference impact (paper §3.5).
//!
//! The blue-print assumes a hidden terminal either blocks a client or
//! does not (`z_ik ∈ {0,1}`). In reality, fading makes the impact
//! fractional: when terminal `k` is on the air, client `i`'s CCA
//! fails only with probability `z_ik ∈ [0,1]`. This module provides
//! that richer generative model so experiments can quantify how much
//! the binary assumption costs (the paper argues: little).

use crate::clientset::ClientSet;
use crate::rng::DetRng;
use crate::topology::{HiddenTerminal, InterferenceTopology};
use serde::{Deserialize, Serialize};

/// A hidden terminal with per-client fractional impact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FractionalHt {
    /// Probability the terminal is on the air at a CCA instant.
    pub q: f64,
    /// `impact[i]` — probability client `i` is blocked *given* the
    /// terminal is active (0 = unaffected, 1 = always blocked).
    pub impact: Vec<f64>,
}

/// A topology whose edges carry fractional blocking probabilities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FractionalTopology {
    /// Number of clients.
    pub n_clients: usize,
    /// The terminals.
    pub hts: Vec<FractionalHt>,
}

impl FractionalTopology {
    /// Random instance: a fraction `frac_soft` of the nonzero
    /// impacts are fractional (uniform in `[0.2, 0.8]`), the rest
    /// are hard (1.0).
    pub fn random(
        n_clients: usize,
        n_hts: usize,
        q_range: (f64, f64),
        edge_prob: f64,
        frac_soft: f64,
        rng: &mut DetRng,
    ) -> Self {
        let hts = (0..n_hts)
            .map(|_| {
                let q = rng.range_f64(q_range.0, q_range.1);
                let mut impact = vec![0.0; n_clients];
                let mut any = false;
                while !any {
                    for z in impact.iter_mut() {
                        *z = if rng.chance(edge_prob) {
                            any = true;
                            if rng.chance(frac_soft) {
                                rng.range_f64(0.2, 0.8)
                            } else {
                                1.0
                            }
                        } else {
                            0.0
                        };
                    }
                }
                FractionalHt { q, impact }
            })
            .collect();
        FractionalTopology { n_clients, hts }
    }

    /// Exact individual access probability:
    /// `p(i) = Π_k (1 − q_k·z_ik)`.
    pub fn p_individual(&self, i: usize) -> f64 {
        self.hts
            .iter()
            .map(|ht| 1.0 - ht.q * ht.impact[i])
            .product()
    }

    /// Exact pairwise joint access probability. Blocking decisions of
    /// different clients are conditionally independent given the
    /// terminal's activity:
    /// `p(i,j) = Π_k [(1 − q_k) + q_k·(1 − z_ik)(1 − z_jk)]`.
    pub fn p_pair(&self, i: usize, j: usize) -> f64 {
        self.hts
            .iter()
            .map(|ht| (1.0 - ht.q) + ht.q * (1.0 - ht.impact[i]) * (1.0 - ht.impact[j]))
            .product()
    }

    /// Sample one CCA instant.
    pub fn sample_access(&self, rng: &mut DetRng) -> ClientSet {
        let mut blocked = ClientSet::EMPTY;
        for ht in &self.hts {
            if rng.chance(ht.q) {
                for (i, &z) in ht.impact.iter().enumerate() {
                    if z > 0.0 && rng.chance(z) {
                        blocked.insert(i);
                    }
                }
            }
        }
        ClientSet::all(self.n_clients).difference(blocked)
    }

    /// The nearest binary topology: impacts at or above `threshold`
    /// become edges; each terminal's activity is kept. This is the
    /// structure BLU's binary inference would ideally recover.
    pub fn binarize(&self, threshold: f64) -> InterferenceTopology {
        let hts = self
            .hts
            .iter()
            .filter_map(|ht| {
                let edges: ClientSet = ht
                    .impact
                    .iter()
                    .enumerate()
                    .filter(|&(_, &z)| z >= threshold)
                    .map(|(i, _)| i)
                    .collect();
                if edges.is_empty() {
                    None
                } else {
                    Some(HiddenTerminal { q: ht.q, edges })
                }
            })
            .collect();
        InterferenceTopology {
            n_clients: self.n_clients,
            hts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> FractionalTopology {
        FractionalTopology {
            n_clients: 3,
            hts: vec![
                FractionalHt {
                    q: 0.5,
                    impact: vec![1.0, 0.4, 0.0],
                },
                FractionalHt {
                    q: 0.3,
                    impact: vec![0.0, 1.0, 0.7],
                },
            ],
        }
    }

    #[test]
    fn individual_closed_form() {
        let t = example();
        assert!((t.p_individual(0) - 0.5).abs() < 1e-12);
        assert!((t.p_individual(1) - (1.0 - 0.2) * 0.7).abs() < 1e-12);
        assert!((t.p_individual(2) - (1.0 - 0.21)).abs() < 1e-12);
    }

    #[test]
    fn pair_closed_form_matches_monte_carlo() {
        let t = example();
        let mut rng = DetRng::seed_from_u64(1);
        let n = 300_000;
        for (i, j) in [(0usize, 1usize), (0, 2), (1, 2)] {
            let hits = (0..n)
                .filter(|_| {
                    let acc = t.sample_access(&mut rng);
                    acc.contains(i) && acc.contains(j)
                })
                .count();
            let emp = hits as f64 / n as f64;
            let exact = t.p_pair(i, j);
            assert!((emp - exact).abs() < 0.005, "({i},{j}): {emp} vs {exact}");
        }
    }

    #[test]
    fn hard_impacts_reduce_to_binary_model() {
        // All-1.0 impacts: the fractional model must agree with the
        // binary topology's closed forms.
        let frac = FractionalTopology {
            n_clients: 2,
            hts: vec![FractionalHt {
                q: 0.4,
                impact: vec![1.0, 1.0],
            }],
        };
        let bin = frac.binarize(0.5);
        for i in 0..2 {
            assert!((frac.p_individual(i) - bin.p_individual(i)).abs() < 1e-12);
        }
        assert!((frac.p_pair(0, 1) - bin.p_pair(0, 1)).abs() < 1e-12);
    }

    #[test]
    fn binarize_thresholds_edges() {
        let t = example();
        let b = t.binarize(0.5);
        assert_eq!(b.n_hidden(), 2);
        assert!(b.hts[0].edges.contains(0) && !b.hts[0].edges.contains(1));
        assert!(b.hts[1].edges.contains(1) && b.hts[1].edges.contains(2));
        // Threshold 0.3 keeps the 0.4 impact.
        let b2 = t.binarize(0.3);
        assert!(b2.hts[0].edges.contains(1));
    }

    #[test]
    fn random_instances_are_valid() {
        let mut rng = DetRng::seed_from_u64(2);
        for _ in 0..20 {
            let t = FractionalTopology::random(6, 4, (0.2, 0.6), 0.4, 0.5, &mut rng);
            assert_eq!(t.hts.len(), 4);
            for ht in &t.hts {
                assert!(ht.impact.iter().any(|&z| z > 0.0));
                assert!(ht.impact.iter().all(|&z| (0.0..=1.0).contains(&z)));
            }
            for i in 0..6 {
                let p = t.p_individual(i);
                assert!((0.0..=1.0).contains(&p));
            }
        }
    }
}
