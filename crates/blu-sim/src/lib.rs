//! # blu-sim — wireless environment substrate for BLU
//!
//! This crate implements the physical-world substrate that the BLU
//! reproduction runs on: deterministic randomness, simulation time,
//! planar geometry, radio propagation (path loss, shadowing, Rayleigh
//! fading), link budgets and SINR, clear-channel assessment with the
//! asymmetric sensing thresholds of WiFi and LTE-LAA, a µs-resolution
//! medium-activity timeline, and — most importantly for BLU — the
//! **ground-truth hidden-terminal interference topology**
//! ([`topology::InterferenceTopology`]) that the paper's blue-printing
//! algorithm tries to recover from pairwise client access statistics.
//!
//! Everything here is deterministic given a seed: the same
//! configuration always produces the same topology, the same fading
//! realization and the same access pattern, which makes the paper's
//! experiments exactly reproducible.
//!
//! The design follows the event-driven, allocation-light style of
//! embedded network stacks: plain data structures, no global state,
//! no async runtime (the workload is CPU-bound simulation).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cca;
pub mod churn;
pub mod clientset;
pub mod error;
pub mod events;
pub mod fading;
pub mod faults;
pub mod fractional;
pub mod geometry;
pub mod link;
pub mod medium;
pub mod node;
pub mod pathloss;
pub mod power;
pub mod rng;
pub mod time;
pub mod topology;

pub use cca::{SensingMode, SensingThresholds};
pub use churn::{generate_churn, ChurnConfig, GeometricCell, TopologyEvent};
pub use clientset::ClientSet;
pub use error::SimError;
pub use fading::Complex;
pub use faults::{FaultEvent, FaultKind, FaultScript, ObservationChannel};
pub use fractional::{FractionalHt, FractionalTopology};
pub use geometry::Point;
pub use node::{Node, NodeId, NodeKind};
pub use power::{Db, Dbm, MilliWatts};
pub use rng::DetRng;
pub use time::{Micros, SubframeIndex, SUBFRAME_US};
pub use topology::{HiddenTerminal, InterferenceTopology};
