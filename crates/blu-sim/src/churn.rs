//! Stochastic-geometry topology churn.
//!
//! The fault scripts of [`crate::faults`] express *scripted* topology
//! changes — an experimenter writes each event down. Real unlicensed
//! deployments are not scripted: WiFi transmitters arrive and leave
//! as a point process over the floor plan (stochastic-geometry
//! modeling of coexisting WiFi/LTE topologies, arXiv:1510.01392),
//! and their hidden-terminal relationships follow from geometry, not
//! authorship. This module generates that regime deterministically:
//!
//! * [`GeometricCell`] — a sampled deployment (eNB at the region
//!   center, UEs uniform over the region) under a disk sensing
//!   model: a candidate WiFi transmitter is a *hidden terminal* iff
//!   the eNB does not sense it while at least one UE does — the same
//!   predicate as [`crate::topology::extract_ground_truth`], reduced
//!   to sensing radii so churn generation stays cheap;
//! * [`ChurnConfig`] — independent Poisson rates (events/second) for
//!   HT arrival, departure, duty-cycle drift and edge churn;
//! * [`generate_churn`] — samples the merged point process via
//!   exponential inter-arrivals and emits a subframe-ordered list of
//!   typed [`TopologyEvent`]s whose [`FaultKind`]s always reference
//!   terminals that exist at fire time, so the compiled script
//!   passes [`FaultScript::validate`](crate::faults::FaultScript::validate).
//!
//! Event offsets are *relative* to the start of the churn window.
//! Conversion to absolute trace subframes is deliberately left to
//! the consumer (`blu-core` converts with checked arithmetic and a
//! typed overflow error); this crate only promises offsets bounded
//! by the configured duration.

use crate::clientset::ClientSet;
use crate::error::SimError;
use crate::faults::FaultKind;
use crate::geometry::{Point, Region};
use crate::rng::DetRng;
use serde::{Deserialize, Serialize};

/// Sub-frames per second (1 ms LTE sub-frames).
const SUBFRAMES_PER_SECOND: f64 = 1_000.0;

/// How many placement attempts an arrival gets to land a *hidden*
/// transmitter before the event is dropped (a transmitter the eNB
/// senses is protected by TxOP acquisition and never becomes an HT).
const ARRIVAL_PLACEMENT_TRIES: usize = 8;

/// One churn-driven topology change, offset-addressed relative to
/// the start of the churn window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TopologyEvent {
    /// Sub-frames after the churn window opens at which the event
    /// fires. Always `< ChurnConfig::duration_subframes`.
    pub offset_subframes: u64,
    /// The topology mutation (always one of the topological
    /// [`FaultKind`]s).
    pub kind: FaultKind,
}

/// Poisson churn rates and the geometry they act on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnConfig {
    /// Clients in the cell (UE positions are sampled for them).
    pub n_clients: usize,
    /// Length of the churn window, in sub-frames.
    pub duration_subframes: u64,
    /// HT arrival rate, events per second.
    pub arrival_hz: f64,
    /// HT departure rate, events per second.
    pub departure_hz: f64,
    /// Duty-cycle drift rate, events per second.
    pub q_drift_hz: f64,
    /// Edge-churn rate, events per second.
    pub edge_churn_hz: f64,
    /// Duty-cycle range for arriving and drifting terminals.
    pub q_range: (f64, f64),
    /// Side of the square deployment region, meters.
    pub region_side: f64,
    /// Disk radius within which a UE senses a WiFi transmitter.
    pub ue_sense_radius: f64,
    /// Disk radius within which the eNB senses a WiFi transmitter
    /// (energy detection is ~10 dB less sensitive than preamble
    /// detection, so this is the smaller disk).
    pub enb_sense_radius: f64,
}

impl ChurnConfig {
    /// A churn mix totalling `rate_hz` events/second over
    /// `duration_subframes`, split 30% arrivals, 30% departures, 25%
    /// duty-cycle drift, 15% edge churn — arrivals and departures
    /// balance so the expected HT population is stationary.
    pub fn with_total_rate(n_clients: usize, duration_subframes: u64, rate_hz: f64) -> Self {
        ChurnConfig {
            n_clients,
            duration_subframes,
            arrival_hz: 0.30 * rate_hz,
            departure_hz: 0.30 * rate_hz,
            q_drift_hz: 0.25 * rate_hz,
            edge_churn_hz: 0.15 * rate_hz,
            q_range: (0.25, 0.55),
            region_side: 50.0,
            ue_sense_radius: 18.0,
            enb_sense_radius: 10.0,
        }
    }

    /// Validate every knob.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.n_clients == 0 || self.n_clients > ClientSet::CAPACITY {
            return Err(SimError::InvalidConfig(format!(
                "churn n_clients {} outside 1..={}",
                self.n_clients,
                ClientSet::CAPACITY
            )));
        }
        if self.duration_subframes == 0 {
            return Err(SimError::InvalidConfig(
                "churn duration must be at least one sub-frame".into(),
            ));
        }
        let rates = [
            ("arrival", self.arrival_hz),
            ("departure", self.departure_hz),
            ("q drift", self.q_drift_hz),
            ("edge churn", self.edge_churn_hz),
        ];
        for (what, rate) in rates {
            if !rate.is_finite() || rate < 0.0 {
                return Err(SimError::InvalidConfig(format!(
                    "churn {what} rate must be finite and >= 0, got {rate}"
                )));
            }
        }
        let total = self.arrival_hz + self.departure_hz + self.q_drift_hz + self.edge_churn_hz;
        if total > 1_000.0 {
            return Err(SimError::InvalidConfig(format!(
                "total churn rate {total} Hz exceeds one event per sub-frame"
            )));
        }
        let (lo, hi) = self.q_range;
        if !(0.0..=1.0).contains(&lo) || !(0.0..=1.0).contains(&hi) || lo > hi {
            return Err(SimError::InvalidConfig(format!(
                "churn q_range ({lo}, {hi}) must satisfy 0 <= lo <= hi <= 1"
            )));
        }
        if self.region_side <= 0.0 || self.ue_sense_radius <= 0.0 || self.enb_sense_radius <= 0.0 {
            return Err(SimError::InvalidConfig(
                "churn geometry (region side, sensing radii) must be positive".into(),
            ));
        }
        Ok(())
    }
}

/// A sampled cell deployment under the disk sensing model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeometricCell {
    /// The deployment region.
    pub region: Region,
    /// eNB position (region center).
    pub enb: Point,
    /// UE positions, index-aligned with client indices.
    pub ues: Vec<Point>,
}

impl GeometricCell {
    /// Sample a deployment: eNB at the center, `n_clients` UEs
    /// uniform over a square of the configured side.
    pub fn sample(config: &ChurnConfig, rng: &mut DetRng) -> Self {
        let region = Region::square(config.region_side);
        GeometricCell {
            region,
            enb: region.center(),
            ues: region.sample_uniform_n(config.n_clients, rng),
        }
    }

    /// Classify a candidate WiFi transmitter at `pos`: `Some(edges)`
    /// when it is hidden (eNB outside its sensing disk) and impacts
    /// at least one UE, `None` otherwise.
    pub fn hidden_edges(&self, pos: Point, config: &ChurnConfig) -> Option<ClientSet> {
        if self.enb.distance(&pos) <= config.enb_sense_radius {
            return None; // the eNB defers to it: not hidden
        }
        let edges = ClientSet::from_iter(
            self.ues
                .iter()
                .enumerate()
                .filter(|(_, ue)| ue.distance(&pos) <= config.ue_sense_radius)
                .map(|(i, _)| i),
        );
        (!edges.is_empty()).then_some(edges)
    }
}

/// Which Poisson process an arrival belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Process {
    Arrival,
    Departure,
    QDrift,
    EdgeChurn,
}

/// Sample one Poisson process: event offsets (sub-frames) within the
/// churn window, via exponential inter-arrivals.
fn poisson_offsets(rate_hz: f64, duration_subframes: u64, rng: &mut DetRng) -> Vec<u64> {
    let mut offsets = Vec::new();
    if rate_hz <= 0.0 {
        return offsets;
    }
    let mut t_subframes = 0.0f64;
    let horizon = duration_subframes as f64;
    loop {
        t_subframes += rng.exponential(SUBFRAMES_PER_SECOND / rate_hz);
        // `>=` plus the NaN check terminates on any non-finite draw.
        if t_subframes.is_nan() || t_subframes >= horizon {
            return offsets;
        }
        offsets.push(t_subframes as u64);
    }
}

/// Generate a churn window: the merged Poisson processes of
/// [`ChurnConfig`], applied over a freshly sampled [`GeometricCell`],
/// starting from a topology that already has `n_initial_hts`
/// terminals (their indices are `0..n_initial_hts` and churn may
/// retire or mutate them).
///
/// The returned events are offset-ordered and reference-valid: every
/// `HtDisappear`/`QDrift`/`EdgeChurn` names a terminal that exists
/// and is still on the air when the event fires, and every
/// `HtAppear` carries a non-empty edge set — exactly the invariants
/// [`FaultScript::validate`](crate::faults::FaultScript::validate)
/// checks. Arrivals that fail to place a hidden transmitter (all
/// placement attempts landed inside the eNB's sensing disk or out of
/// every UE's reach) and mutations with no live terminal to act on
/// are dropped, so low-density geometries simply churn less.
pub fn generate_churn(
    config: &ChurnConfig,
    n_initial_hts: usize,
    seed: u64,
) -> Result<Vec<TopologyEvent>, SimError> {
    config.validate()?;
    let root = DetRng::seed_from_u64(seed);
    let cell = GeometricCell::sample(config, &mut root.derive("churn-geometry"));
    let mut merged: Vec<(u64, Process)> = Vec::new();
    let processes = [
        (Process::Arrival, config.arrival_hz, "churn-arrivals"),
        (Process::Departure, config.departure_hz, "churn-departures"),
        (Process::QDrift, config.q_drift_hz, "churn-q-drift"),
        (Process::EdgeChurn, config.edge_churn_hz, "churn-edges"),
    ];
    for (proc, rate, label) in processes {
        let mut rng = root.derive(label);
        for offset in poisson_offsets(rate, config.duration_subframes, &mut rng) {
            merged.push((offset, proc));
        }
    }
    merged.sort_by_key(|&(offset, _)| offset);

    let mut rng = root.derive("churn-apply");
    let mut live: Vec<bool> = vec![true; n_initial_hts];
    let mut events = Vec::with_capacity(merged.len());
    for (offset, proc) in merged {
        let kind = match proc {
            Process::Arrival => {
                let mut placed = None;
                for _ in 0..ARRIVAL_PLACEMENT_TRIES {
                    let pos = cell.region.sample_uniform(&mut rng);
                    if let Some(edges) = cell.hidden_edges(pos, config) {
                        placed = Some(edges);
                        break;
                    }
                }
                let Some(edges) = placed else { continue };
                live.push(true);
                FaultKind::HtAppear {
                    q: rng.range_f64(config.q_range.0, config.q_range.1),
                    edges,
                }
            }
            Process::Departure => {
                let Some(ht) = pick_live(&live, &mut rng) else {
                    continue;
                };
                live[ht] = false;
                FaultKind::HtDisappear { ht }
            }
            Process::QDrift => {
                let Some(ht) = pick_live(&live, &mut rng) else {
                    continue;
                };
                FaultKind::QDrift {
                    ht,
                    q: rng.range_f64(config.q_range.0, config.q_range.1),
                }
            }
            Process::EdgeChurn => {
                let Some(ht) = pick_live(&live, &mut rng) else {
                    continue;
                };
                let mut toggle =
                    ClientSet::from_iter((0..config.n_clients).filter(|_| rng.chance(0.3)));
                if toggle.is_empty() {
                    toggle.insert(rng.below(config.n_clients));
                }
                FaultKind::EdgeChurn { ht, toggle }
            }
        };
        events.push(TopologyEvent {
            offset_subframes: offset,
            kind,
        });
    }
    Ok(events)
}

/// Pick a uniformly random live terminal index, if any.
fn pick_live(live: &[bool], rng: &mut DetRng) -> Option<usize> {
    let alive: Vec<usize> = live
        .iter()
        .enumerate()
        .filter(|(_, &l)| l)
        .map(|(i, _)| i)
        .collect();
    if alive.is_empty() {
        None
    } else {
        Some(alive[rng.below(alive.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultEvent, FaultScript};

    fn config() -> ChurnConfig {
        ChurnConfig::with_total_rate(6, 60_000, 0.5)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_churn(&config(), 3, 42).unwrap();
        let b = generate_churn(&config(), 3, 42).unwrap();
        assert_eq!(a, b);
        assert!(!a.is_empty(), "0.5 Hz over 60 s should churn");
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_churn(&config(), 3, 1).unwrap();
        let b = generate_churn(&config(), 3, 2).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn events_are_in_window_ordered_and_topological() {
        let events = generate_churn(&config(), 3, 7).unwrap();
        for w in events.windows(2) {
            assert!(w[0].offset_subframes <= w[1].offset_subframes);
        }
        for ev in &events {
            assert!(ev.offset_subframes < 60_000);
            assert!(ev.kind.is_topological());
        }
    }

    #[test]
    fn generated_script_validates_against_fault_rules() {
        for seed in 0..16 {
            let cfg = ChurnConfig::with_total_rate(6, 60_000, 2.0);
            let events = generate_churn(&cfg, 2, seed).unwrap();
            let script = FaultScript::new(
                events
                    .iter()
                    .map(|ev| FaultEvent {
                        at_subframe: ev.offset_subframes,
                        kind: ev.kind,
                    })
                    .collect(),
            );
            script
                .validate(cfg.n_clients, 2)
                .expect("churn output must satisfy fault-script invariants");
        }
    }

    #[test]
    fn departed_terminals_are_never_referenced_again() {
        let cfg = ChurnConfig::with_total_rate(8, 120_000, 3.0);
        let events = generate_churn(&cfg, 4, 99).unwrap();
        let mut live: Vec<bool> = vec![true; 4];
        for ev in &events {
            match ev.kind {
                FaultKind::HtAppear { .. } => live.push(true),
                FaultKind::HtDisappear { ht } => {
                    assert!(live[ht], "departure of a dead terminal");
                    live[ht] = false;
                }
                FaultKind::QDrift { ht, .. } | FaultKind::EdgeChurn { ht, .. } => {
                    assert!(live[ht], "mutation of a dead terminal");
                }
                _ => unreachable!("non-topological churn event"),
            }
        }
    }

    #[test]
    fn hidden_edges_respects_both_disks() {
        let cfg = config();
        let mut rng = DetRng::seed_from_u64(5);
        let cell = GeometricCell::sample(&cfg, &mut rng);
        // On top of the eNB: sensed, never hidden.
        assert_eq!(cell.hidden_edges(cell.enb, &cfg), None);
        // On top of a UE but far from the eNB: hidden iff out of the
        // eNB disk, and then that UE must be an edge.
        for (i, ue) in cell.ues.iter().enumerate() {
            if cell.enb.distance(ue) > cfg.enb_sense_radius {
                let edges = cell
                    .hidden_edges(*ue, &cfg)
                    .expect("co-located UE senses it");
                assert!(edges.contains(i));
            }
        }
    }

    #[test]
    fn zero_rates_produce_no_events() {
        let cfg = ChurnConfig::with_total_rate(6, 60_000, 0.0);
        assert!(generate_churn(&cfg, 3, 1).unwrap().is_empty());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut cfg = config();
        cfg.q_range = (0.8, 0.2);
        assert!(cfg.validate().is_err());
        let mut cfg = config();
        cfg.arrival_hz = f64::NAN;
        assert!(cfg.validate().is_err());
        let mut cfg = config();
        cfg.duration_subframes = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = config();
        cfg.n_clients = 0;
        assert!(cfg.validate().is_err());
    }
}
