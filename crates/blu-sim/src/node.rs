//! Node identities and roles in the simulated deployment.

use crate::geometry::Point;
use crate::power::Dbm;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node, unique within a deployment.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// What role a node plays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// LTE base station (schedules DL and UL, multi-antenna).
    Enb,
    /// LTE client (UE), single antenna in the paper's setup.
    Ue,
    /// WiFi access point.
    WifiAp,
    /// WiFi station (client).
    WifiSta,
}

impl NodeKind {
    /// Whether this node is part of the LTE cell.
    pub fn is_lte(self) -> bool {
        matches!(self, NodeKind::Enb | NodeKind::Ue)
    }

    /// Whether this node is a WiFi device.
    pub fn is_wifi(self) -> bool {
        matches!(self, NodeKind::WifiAp | NodeKind::WifiSta)
    }
}

/// A deployed node: identity, role, position, transmit power.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Unique id.
    pub id: NodeId,
    /// Role.
    pub kind: NodeKind,
    /// Position in meters.
    pub pos: Point,
    /// Transmit power.
    pub tx_power: Dbm,
}

impl Node {
    /// Construct a node. Default powers follow typical unlicensed
    /// 5 GHz limits: 23 dBm AP/eNB class, 18 dBm client class.
    pub fn new(id: u32, kind: NodeKind, pos: Point) -> Self {
        let tx_power = match kind {
            NodeKind::Enb | NodeKind::WifiAp => Dbm(23.0),
            NodeKind::Ue | NodeKind::WifiSta => Dbm(18.0),
        };
        Node {
            id: NodeId(id),
            kind,
            pos,
            tx_power,
        }
    }

    /// Construct with an explicit transmit power.
    pub fn with_power(id: u32, kind: NodeKind, pos: Point, tx_power: Dbm) -> Self {
        Node {
            id: NodeId(id),
            kind,
            pos,
            tx_power,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        assert!(NodeKind::Enb.is_lte());
        assert!(NodeKind::Ue.is_lte());
        assert!(!NodeKind::Ue.is_wifi());
        assert!(NodeKind::WifiAp.is_wifi());
        assert!(NodeKind::WifiSta.is_wifi());
        assert!(!NodeKind::WifiSta.is_lte());
    }

    #[test]
    fn default_powers_by_class() {
        let enb = Node::new(0, NodeKind::Enb, Point::ORIGIN);
        let ue = Node::new(1, NodeKind::Ue, Point::ORIGIN);
        assert_eq!(enb.tx_power, Dbm(23.0));
        assert_eq!(ue.tx_power, Dbm(18.0));
    }

    #[test]
    fn explicit_power() {
        let n = Node::with_power(2, NodeKind::WifiSta, Point::ORIGIN, Dbm(15.0));
        assert_eq!(n.tx_power, Dbm(15.0));
        assert_eq!(n.id, NodeId(2));
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId(5).to_string(), "n5");
    }
}
