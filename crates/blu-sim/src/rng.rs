//! Deterministic randomness.
//!
//! Every stochastic component in the reproduction draws from a
//! [`DetRng`], a seeded PRNG with explicit *stream derivation*: from a
//! master seed one derives independent child seeds for "topology",
//! "fading", "traffic", … so that changing the amount of randomness one
//! component consumes does not perturb the others. This is what makes
//! experiment sweeps comparable across configurations.
//!
//! The implementation wraps a small, fast xoshiro256++-style generator
//! built on SplitMix64 seeding (public-domain constructions), plus
//! Box–Muller for Gaussian variates (we avoid the extra `rand_distr`
//! dependency).

use rand::RngCore;
use serde::{Deserialize, Serialize};

/// SplitMix64 step: used for seed expansion and stream derivation.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic PRNG (xoshiro256++) with stream derivation.
///
/// Serializable so that checkpoint/restore (see `blu-core`'s runtime
/// layer) can freeze and resume a stream mid-flight: the snapshot
/// captures the full generator state including the cached Box–Muller
/// spare, so a resumed stream is bit-identical to an uninterrupted
/// one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetRng {
    s: [u64; 4],
    /// Cached second Gaussian variate from Box–Muller.
    gauss_spare: Option<f64>,
}

impl DetRng {
    /// Create a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng {
            s,
            gauss_spare: None,
        }
    }

    /// Derive an independent child generator for a named stream.
    ///
    /// The same `(parent seed, label)` pair always yields the same
    /// child stream, and different labels yield decorrelated streams.
    pub fn derive(&self, label: &str) -> DetRng {
        // Mix the label into a fresh seed via FNV-1a, then re-expand.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        // Also mix in this generator's state so sibling derivations of
        // different parents differ.
        let mixed = h ^ self.s[0].rotate_left(17) ^ self.s[2];
        DetRng::seed_from_u64(mixed)
    }

    /// Derive an independent child generator for an indexed stream
    /// (e.g. per-topology, per-trial).
    pub fn derive_indexed(&self, label: &str, index: u64) -> DetRng {
        let mut child = self.derive(label);
        let mut sm = child.next_u64() ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng {
            s,
            gauss_spare: None,
        }
    }

    #[inline]
    fn next(&mut self) -> u64 {
        // xoshiro256++
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(hi >= lo);
        lo + (hi - lo) * self.f64()
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "DetRng::below(0)");
        // Lemire's multiply-shift rejection-free-enough reduction is
        // overkill here; simple 128-bit multiply keeps bias < 2^-64.
        ((u128::from(self.next()) * n as u128) >> 64) as usize
    }

    /// Uniform integer in `[lo, hi)`. Panics if the range is empty.
    #[inline]
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(hi > lo, "DetRng::range_usize empty range");
        lo + self.below(hi - lo)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0,1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Standard normal variate via Box–Muller.
    pub fn gaussian(&mut self) -> f64 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        // Draw u1 in (0,1] to avoid ln(0).
        let u1 = 1.0 - self.f64();
        let u2 = self.f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal variate with the given mean and standard deviation.
    pub fn gaussian_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.gaussian()
    }

    /// Exponential variate with the given mean. Panics if `mean <= 0`.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        let u = 1.0 - self.f64();
        -mean * u.ln()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Choose `k` distinct indices out of `n` (order arbitrary but
    /// deterministic). Panics if `k > n`.
    pub fn choose_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot choose {k} of {n}");
        let mut idx: Vec<usize> = (0..n).collect();
        // Partial Fisher–Yates: first k positions are the sample.
        for i in 0..k {
            let j = self.range_usize(i, n);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

impl RngCore for DetRng {
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed_from_u64(42);
        let mut b = DetRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::seed_from_u64(1);
        let mut b = DetRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn derivation_is_stable_and_label_sensitive() {
        let root = DetRng::seed_from_u64(7);
        let mut x1 = root.derive("fading");
        let mut x2 = root.derive("fading");
        let mut y = root.derive("traffic");
        assert_eq!(x1.next_u64(), x2.next_u64());
        assert_ne!(x1.next_u64(), y.next_u64());
    }

    #[test]
    fn derive_indexed_streams_differ() {
        let root = DetRng::seed_from_u64(7);
        let mut a = root.derive_indexed("topo", 0);
        let mut b = root.derive_indexed("topo", 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = DetRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut r = DetRng::seed_from_u64(5);
        let n = 100_000;
        let mean = (0..n).map(|_| r.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_covers_all_buckets() {
        let mut r = DetRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[r.below(10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gaussian_moments() {
        let mut r = DetRng::seed_from_u64(11);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.gaussian()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = DetRng::seed_from_u64(13);
        let n = 200_000;
        let mean = (0..n).map(|_| r.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn choose_indices_distinct_and_in_range() {
        let mut r = DetRng::seed_from_u64(17);
        for _ in 0..100 {
            let k = r.range_usize(1, 8);
            let sample = r.choose_indices(20, k);
            assert_eq!(sample.len(), k);
            let mut sorted = sample.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), k, "duplicates in {sample:?}");
            assert!(sample.iter().all(|&i| i < 20));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = DetRng::seed_from_u64(19);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fill_bytes_deterministic() {
        let mut a = DetRng::seed_from_u64(23);
        let mut b = DetRng::seed_from_u64(23);
        let mut ba = [0u8; 13];
        let mut bb = [0u8; 13];
        a.fill_bytes(&mut ba);
        b.fill_bytes(&mut bb);
        assert_eq!(ba, bb);
    }
}
