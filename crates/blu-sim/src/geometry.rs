//! Planar geometry and node-placement generators.
//!
//! The paper's testbed is an enterprise floor; its NS3 sweeps place
//! eNB, UEs and WiFi nodes uniformly at random. We model all layouts
//! in a 2-D plane with coordinates in meters.

use crate::rng::DetRng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A point in the plane, in meters.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// x-coordinate in meters.
    pub x: f64,
    /// y-coordinate in meters.
    pub y: f64,
}

impl Point {
    /// Construct a point.
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// The origin.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Euclidean distance to another point, in meters.
    pub fn distance(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Midpoint between two points.
    pub fn midpoint(&self, other: &Point) -> Point {
        Point::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.1}, {:.1})", self.x, self.y)
    }
}

/// An axis-aligned rectangular deployment region.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Region {
    /// Width of the region in meters (x span).
    pub width: f64,
    /// Height of the region in meters (y span).
    pub height: f64,
}

impl Region {
    /// Construct a region; dimensions must be positive.
    pub fn new(width: f64, height: f64) -> Self {
        assert!(width > 0.0 && height > 0.0, "region must be non-empty");
        Region { width, height }
    }

    /// A square region of the given side.
    pub fn square(side: f64) -> Self {
        Region::new(side, side)
    }

    /// Center of the region.
    pub fn center(&self) -> Point {
        Point::new(self.width / 2.0, self.height / 2.0)
    }

    /// Whether the region contains the point (boundary inclusive).
    pub fn contains(&self, p: &Point) -> bool {
        (0.0..=self.width).contains(&p.x) && (0.0..=self.height).contains(&p.y)
    }

    /// Sample a point uniformly at random inside the region.
    pub fn sample_uniform(&self, rng: &mut DetRng) -> Point {
        Point::new(
            rng.range_f64(0.0, self.width),
            rng.range_f64(0.0, self.height),
        )
    }

    /// Sample `n` points uniformly at random.
    pub fn sample_uniform_n(&self, n: usize, rng: &mut DetRng) -> Vec<Point> {
        (0..n).map(|_| self.sample_uniform(rng)).collect()
    }

    /// Sample `n` points uniformly with a minimum pairwise separation
    /// (dart throwing with retry; falls back to plain uniform for
    /// points that cannot be separated after `max_tries`).
    pub fn sample_separated(&self, n: usize, min_sep: f64, rng: &mut DetRng) -> Vec<Point> {
        const MAX_TRIES: usize = 200;
        let mut pts: Vec<Point> = Vec::with_capacity(n);
        for _ in 0..n {
            let mut candidate = self.sample_uniform(rng);
            for _ in 0..MAX_TRIES {
                if pts.iter().all(|p| p.distance(&candidate) >= min_sep) {
                    break;
                }
                candidate = self.sample_uniform(rng);
            }
            pts.push(candidate);
        }
        pts
    }

    /// Sample points clustered around `centers` with Gaussian spread
    /// `sigma` (clamped into the region). Clusters are assigned
    /// round-robin, mimicking per-room enterprise layouts.
    pub fn sample_clustered(
        &self,
        n: usize,
        centers: &[Point],
        sigma: f64,
        rng: &mut DetRng,
    ) -> Vec<Point> {
        assert!(!centers.is_empty(), "need at least one cluster center");
        (0..n)
            .map(|i| {
                let c = centers[i % centers.len()];
                let x = (c.x + rng.gaussian_with(0.0, sigma)).clamp(0.0, self.width);
                let y = (c.y + rng.gaussian_with(0.0, sigma)).clamp(0.0, self.height);
                Point::new(x, y)
            })
            .collect()
    }

    /// Place `n` points on a regular grid filling the region (used for
    /// repeatable "testbed" layouts).
    pub fn sample_grid(&self, n: usize) -> Vec<Point> {
        if n == 0 {
            return Vec::new();
        }
        let cols = (n as f64).sqrt().ceil() as usize;
        let rows = n.div_ceil(cols);
        let dx = self.width / (cols as f64 + 1.0);
        let dy = self.height / (rows as f64 + 1.0);
        (0..n)
            .map(|i| {
                let r = i / cols;
                let c = i % cols;
                Point::new(dx * (c as f64 + 1.0), dy * (r as f64 + 1.0))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_basics() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
        assert_eq!(a.distance(&a), 0.0);
        assert_eq!(a.midpoint(&b), Point::new(1.5, 2.0));
    }

    #[test]
    fn uniform_samples_inside() {
        let region = Region::new(30.0, 20.0);
        let mut rng = DetRng::seed_from_u64(1);
        for p in region.sample_uniform_n(1_000, &mut rng) {
            assert!(region.contains(&p), "{p:?} outside region");
        }
    }

    #[test]
    fn separated_samples_respect_min_distance() {
        let region = Region::square(100.0);
        let mut rng = DetRng::seed_from_u64(2);
        let pts = region.sample_separated(20, 5.0, &mut rng);
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                assert!(pts[i].distance(&pts[j]) >= 5.0, "points {i},{j} too close");
            }
        }
    }

    #[test]
    fn clustered_samples_stay_in_region() {
        let region = Region::square(50.0);
        let mut rng = DetRng::seed_from_u64(3);
        let centers = [Point::new(10.0, 10.0), Point::new(40.0, 40.0)];
        for p in region.sample_clustered(200, &centers, 4.0, &mut rng) {
            assert!(region.contains(&p));
        }
    }

    #[test]
    fn grid_fills_region() {
        let region = Region::new(40.0, 40.0);
        let pts = region.sample_grid(9);
        assert_eq!(pts.len(), 9);
        for p in &pts {
            assert!(region.contains(p));
        }
        // 3x3 grid: distinct rows/columns.
        assert!((pts[0].x - pts[3].x).abs() < 1e-9);
        assert!((pts[0].y - pts[1].y).abs() < 1e-9);
    }

    #[test]
    fn grid_empty_ok() {
        assert!(Region::square(1.0).sample_grid(0).is_empty());
    }

    #[test]
    fn region_center() {
        assert_eq!(Region::new(10.0, 20.0).center(), Point::new(5.0, 10.0));
    }
}
