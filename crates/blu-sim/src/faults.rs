//! Deterministic fault injection.
//!
//! The paper's robustness story (§3.7) hinges on LTE-U deployments
//! facing a *moving target*: WiFi hidden terminals appear, disappear,
//! change their offered load `q(k)`, and shift which clients they
//! impact; meanwhile the measurement channel itself is noisy (pilot
//! misclassification, lost outcome reports). This module provides the
//! scripted, seed-deterministic fault substrate those conditions are
//! injected through:
//!
//! * [`FaultKind`] — the catalogue of environment and observation
//!   faults;
//! * [`FaultScript`] — a validated, subframe-ordered list of
//!   [`FaultEvent`]s, serializable so experiments and the CLI can
//!   share scenario files;
//! * [`apply_topology_fault`] — the topology mutation hook used by
//!   trace capture to evolve the ground truth mid-run;
//! * [`ObservationChannel`] — the estimator-input corruption channel
//!   (bit-flip misclassification and dropped subframe reports), driven
//!   by a [`DetRng`] stream so runs remain exactly reproducible.
//!
//! Fault *application* lives next to the consumers: `blu-traces`
//! splices faulted epochs into access traces, and `blu-core`'s robust
//! orchestrator reads [`FaultScript::obs_state_at`] while recording
//! measurement outcomes.

use crate::clientset::ClientSet;
use crate::error::SimError;
use crate::rng::DetRng;
use crate::topology::{HiddenTerminal, InterferenceTopology};
use serde::{Deserialize, Serialize};

/// One kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// A new hidden terminal appears with duty cycle `q`, impacting
    /// the clients in `edges`. It is appended to the topology, so it
    /// receives the next free HT index.
    HtAppear {
        /// Stationary busy probability of the new terminal.
        q: f64,
        /// Clients whose CCA the new terminal blocks.
        edges: ClientSet,
    },
    /// Hidden terminal `ht` leaves the air. Its slot is kept (with
    /// `q = 0`) so later events can keep referring to stable indices.
    HtDisappear {
        /// Index of the terminal (in order of appearance).
        ht: usize,
    },
    /// Hidden terminal `ht`'s duty cycle drifts to a new value.
    QDrift {
        /// Index of the terminal (in order of appearance).
        ht: usize,
        /// New stationary busy probability.
        q: f64,
    },
    /// The client-impact edge set of `ht` churns: every client in
    /// `toggle` flips between impacted and unimpacted.
    EdgeChurn {
        /// Index of the terminal (in order of appearance).
        ht: usize,
        /// Clients whose edge to `ht` is toggled.
        toggle: ClientSet,
    },
    /// From this subframe on, each observed client's access outcome is
    /// misclassified (bit-flipped) independently with this rate.
    MisclassifyRate {
        /// Per-client flip probability in `[0, 1]`.
        rate: f64,
    },
    /// From this subframe on, entire subframe outcome reports are
    /// dropped (never reach the estimator) with this rate.
    DropRate {
        /// Per-subframe drop probability in `[0, 1]`.
        rate: f64,
    },
    /// From this subframe on, every blueprint inference takes `factor`
    /// times its normal wall-clock cost (the runtime re-executes the
    /// solve). Models a CPU-starved or thermally throttled cell;
    /// results are unchanged, only latency — which is exactly what
    /// deadline-bounded inference must absorb.
    InferenceStall {
        /// Wall-clock multiplier; `1` means no stall.
        factor: u32,
    },
    /// From this subframe on, every blueprint inference panics (when
    /// `active`). Models a latent solver bug on one cell; the runtime's
    /// `catch_unwind` isolation must contain it.
    InferencePanic {
        /// Whether the panic injector is armed.
        active: bool,
    },
    /// From this subframe on, each constraint target fed to inference
    /// is replaced with NaN with this rate. Models corrupted
    /// measurement statistics; the input-sanitization pass must
    /// quarantine poisoned targets rather than propagate NaN energies.
    StatPoison {
        /// Per-constraint poison probability in `[0, 1]`.
        rate: f64,
    },
    /// The whole cell task crashes (panics between orchestrator
    /// steps), losing its in-memory state. Unlike
    /// [`FaultKind::InferencePanic`] — which is contained *inside* the
    /// guarded inference call and routed to PF fallback — a crash
    /// escapes the cell's step entirely and is visible only to a
    /// supervision layer, which must restart the cell from its latest
    /// checkpoint. One-shot: fires the first time the cell's cursor
    /// reaches `at_subframe`; an event scheduled past the end of the
    /// trace never fires.
    CellCrash,
}

impl FaultKind {
    /// Whether this fault mutates the interference topology (and thus
    /// forces a new trace epoch), as opposed to corrupting the
    /// observation path only.
    pub fn is_topological(&self) -> bool {
        matches!(
            self,
            FaultKind::HtAppear { .. }
                | FaultKind::HtDisappear { .. }
                | FaultKind::QDrift { .. }
                | FaultKind::EdgeChurn { .. }
        )
    }
}

/// A fault scheduled at a subframe boundary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Subframe at whose start the fault takes effect.
    pub at_subframe: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// Observation-path fault rates in force at some instant.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ObsFaultState {
    /// Per-client access-outcome flip probability.
    pub misclassify_rate: f64,
    /// Per-subframe report drop probability.
    pub drop_rate: f64,
}

/// Inference-runtime fault knobs in force at some instant (step
/// function over [`FaultKind::InferenceStall`] /
/// [`FaultKind::InferencePanic`] / [`FaultKind::StatPoison`] events).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimeFaultState {
    /// Wall-clock multiplier for each inference (`1` = healthy).
    pub stall_factor: u32,
    /// Whether inference panics instead of returning.
    pub panic: bool,
    /// Per-constraint NaN-poison probability.
    pub poison_rate: f64,
}

impl Default for RuntimeFaultState {
    fn default() -> Self {
        RuntimeFaultState {
            stall_factor: 1,
            panic: false,
            poison_rate: 0.0,
        }
    }
}

impl RuntimeFaultState {
    /// Whether any runtime fault is active.
    pub fn is_faulty(&self) -> bool {
        self.stall_factor > 1 || self.panic || self.poison_rate > 0.0
    }
}

/// A subframe-ordered fault scenario.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultScript {
    /// Events sorted by `at_subframe` (stable on ties).
    pub events: Vec<FaultEvent>,
}

impl FaultScript {
    /// An empty (fault-free) script.
    pub fn none() -> Self {
        FaultScript::default()
    }

    /// Build a script, sorting events by subframe (stable on ties, so
    /// same-subframe events apply in authoring order).
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.at_subframe);
        FaultScript { events }
    }

    /// Number of scripted events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the script has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// How many `HtAppear` events the script contains.
    pub fn n_appearing(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::HtAppear { .. }))
            .count()
    }

    /// Validate against a cell of `n_clients` clients whose initial
    /// topology has `n_initial_hts` hidden terminals: indices must
    /// refer to terminals that exist by the time the event fires,
    /// probabilities and rates must be in `[0, 1]`, and edge sets must
    /// stay within the client population.
    pub fn validate(&self, n_clients: usize, n_initial_hts: usize) -> Result<(), SimError> {
        let all = ClientSet::all(n_clients);
        let mut universe = n_initial_hts;
        let mut sorted = true;
        for w in self.events.windows(2) {
            sorted &= w[0].at_subframe <= w[1].at_subframe;
        }
        if !sorted {
            return Err(SimError::InvalidConfig(
                "fault events not sorted by subframe (use FaultScript::new)".into(),
            ));
        }
        for ev in &self.events {
            match ev.kind {
                FaultKind::HtAppear { q, edges } => {
                    check_probability("HtAppear q", q)?;
                    if !edges.is_subset_of(all) {
                        return Err(SimError::InvalidConfig(format!(
                            "HtAppear edges {edges} outside client population {all}"
                        )));
                    }
                    if edges.is_empty() {
                        return Err(SimError::InvalidConfig(
                            "HtAppear with empty edge set has no observable effect".into(),
                        ));
                    }
                    universe += 1;
                }
                FaultKind::HtDisappear { ht } => check_ht_index(ht, universe)?,
                FaultKind::QDrift { ht, q } => {
                    check_ht_index(ht, universe)?;
                    check_probability("QDrift q", q)?;
                }
                FaultKind::EdgeChurn { ht, toggle } => {
                    check_ht_index(ht, universe)?;
                    if !toggle.is_subset_of(all) {
                        return Err(SimError::InvalidConfig(format!(
                            "EdgeChurn toggle {toggle} outside client population {all}"
                        )));
                    }
                }
                FaultKind::MisclassifyRate { rate } => check_probability("misclassify rate", rate)?,
                FaultKind::DropRate { rate } => check_probability("drop rate", rate)?,
                FaultKind::InferenceStall { factor } => {
                    if factor == 0 {
                        return Err(SimError::InvalidConfig(
                            "InferenceStall factor must be >= 1 (1 = no stall)".into(),
                        ));
                    }
                }
                FaultKind::InferencePanic { .. } => {}
                FaultKind::StatPoison { rate } => check_probability("stat poison rate", rate)?,
                FaultKind::CellCrash => {}
            }
        }
        Ok(())
    }

    /// The distinct subframes at which topology-mutating events fire,
    /// ascending.
    pub fn topology_event_subframes(&self) -> Vec<u64> {
        let mut sfs: Vec<u64> = self
            .events
            .iter()
            .filter(|e| e.kind.is_topological())
            .map(|e| e.at_subframe)
            .collect();
        sfs.dedup();
        sfs
    }

    /// Topology-mutating events firing exactly at `sf`, in order.
    pub fn topology_events_at(&self, sf: u64) -> impl Iterator<Item = &FaultEvent> {
        self.events
            .iter()
            .filter(move |e| e.kind.is_topological() && e.at_subframe == sf)
    }

    /// The observation-fault rates in force at subframe `sf` (step
    /// function over the scripted rate changes).
    pub fn obs_state_at(&self, sf: u64) -> ObsFaultState {
        let mut state = ObsFaultState::default();
        for ev in &self.events {
            if ev.at_subframe > sf {
                break;
            }
            match ev.kind {
                FaultKind::MisclassifyRate { rate } => state.misclassify_rate = rate,
                FaultKind::DropRate { rate } => state.drop_rate = rate,
                _ => {}
            }
        }
        state
    }

    /// Whether the script ever corrupts the observation path.
    pub fn has_observation_faults(&self) -> bool {
        self.events.iter().any(|e| {
            matches!(
                e.kind,
                FaultKind::MisclassifyRate { .. } | FaultKind::DropRate { .. }
            )
        })
    }

    /// The inference-runtime fault knobs in force at subframe `sf`
    /// (step function over the scripted changes, like
    /// [`obs_state_at`](Self::obs_state_at)).
    pub fn runtime_state_at(&self, sf: u64) -> RuntimeFaultState {
        let mut state = RuntimeFaultState::default();
        for ev in &self.events {
            if ev.at_subframe > sf {
                break;
            }
            match ev.kind {
                FaultKind::InferenceStall { factor } => state.stall_factor = factor.max(1),
                FaultKind::InferencePanic { active } => state.panic = active,
                FaultKind::StatPoison { rate } => state.poison_rate = rate,
                _ => {}
            }
        }
        state
    }

    /// Whether the script ever faults the inference runtime itself.
    pub fn has_runtime_faults(&self) -> bool {
        self.events.iter().any(|e| {
            matches!(
                e.kind,
                FaultKind::InferenceStall { .. }
                    | FaultKind::InferencePanic { .. }
                    | FaultKind::StatPoison { .. }
            )
        })
    }

    /// The subframes at which [`FaultKind::CellCrash`] events fire,
    /// ascending. Duplicates are kept — each event is one crash, so a
    /// crash *storm* is simply several events.
    pub fn crash_subframes(&self) -> Vec<u64> {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::CellCrash))
            .map(|e| e.at_subframe)
            .collect()
    }

    /// Whether the script ever crashes the cell task itself.
    pub fn has_crash_faults(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e.kind, FaultKind::CellCrash))
    }
}

fn check_probability(what: &'static str, p: f64) -> Result<(), SimError> {
    if p.is_finite() && (0.0..=1.0).contains(&p) {
        Ok(())
    } else {
        Err(SimError::InvalidProbability { what, value: p })
    }
}

fn check_ht_index(ht: usize, universe: usize) -> Result<(), SimError> {
    if ht < universe {
        Ok(())
    } else {
        Err(SimError::IndexOutOfRange {
            what: "fault hidden-terminal",
            index: ht,
            bound: universe,
        })
    }
}

/// Apply one topology-mutating fault to `topo` in place. Returns
/// `Ok(true)` if the topology changed, `Ok(false)` for
/// observation-path faults (which leave it untouched).
pub fn apply_topology_fault(
    topo: &mut InterferenceTopology,
    kind: &FaultKind,
) -> Result<bool, SimError> {
    let all = ClientSet::all(topo.n_clients);
    match *kind {
        FaultKind::HtAppear { q, edges } => {
            check_probability("HtAppear q", q)?;
            if !edges.is_subset_of(all) {
                return Err(SimError::InvalidConfig(format!(
                    "HtAppear edges {edges} outside client population {all}"
                )));
            }
            topo.hts.push(HiddenTerminal { q, edges });
            Ok(true)
        }
        FaultKind::HtDisappear { ht } => {
            check_ht_index(ht, topo.hts.len())?;
            // Keep the slot so indices (and activity-timeline lanes)
            // stay stable; q = 0 means "never on the air".
            topo.hts[ht].q = 0.0;
            Ok(true)
        }
        FaultKind::QDrift { ht, q } => {
            check_ht_index(ht, topo.hts.len())?;
            check_probability("QDrift q", q)?;
            topo.hts[ht].q = q;
            Ok(true)
        }
        FaultKind::EdgeChurn { ht, toggle } => {
            check_ht_index(ht, topo.hts.len())?;
            if !toggle.is_subset_of(all) {
                return Err(SimError::InvalidConfig(format!(
                    "EdgeChurn toggle {toggle} outside client population {all}"
                )));
            }
            let e = topo.hts[ht].edges;
            topo.hts[ht].edges = ClientSet(e.0 ^ toggle.0);
            Ok(true)
        }
        FaultKind::MisclassifyRate { .. }
        | FaultKind::DropRate { .. }
        | FaultKind::InferenceStall { .. }
        | FaultKind::InferencePanic { .. }
        | FaultKind::StatPoison { .. }
        | FaultKind::CellCrash => Ok(false),
    }
}

/// The observation corruption channel: everything between the PHY's
/// true CCA outcome and the estimator's books. Deterministic given
/// its RNG stream; serializable so checkpoint/restore can freeze the
/// stream mid-run and resume bit-identically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObservationChannel {
    rng: DetRng,
}

impl ObservationChannel {
    /// Build from a dedicated RNG stream.
    pub fn new(rng: DetRng) -> Self {
        ObservationChannel { rng }
    }

    /// Pass one subframe report `(observed, accessible)` through the
    /// channel under fault state `state`. Returns `None` when the
    /// whole report is dropped; otherwise the (possibly bit-flipped)
    /// report. The observed set is never altered — only what the eNB
    /// *concludes* about each observed client's access.
    pub fn corrupt(
        &mut self,
        state: ObsFaultState,
        observed: ClientSet,
        accessible: ClientSet,
    ) -> Option<(ClientSet, ClientSet)> {
        if state.drop_rate > 0.0 && self.rng.chance(state.drop_rate) {
            return None;
        }
        let mut acc = accessible;
        if state.misclassify_rate > 0.0 {
            for ue in observed.iter() {
                if self.rng.chance(state.misclassify_rate) {
                    acc = ClientSet(acc.0 ^ (1u128 << ue));
                }
            }
        }
        Some((observed, acc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_topo() -> InterferenceTopology {
        InterferenceTopology {
            n_clients: 4,
            hts: vec![
                HiddenTerminal {
                    q: 0.3,
                    edges: ClientSet::from_iter([0, 1]),
                },
                HiddenTerminal {
                    q: 0.5,
                    edges: ClientSet::singleton(2),
                },
            ],
        }
    }

    #[test]
    fn script_sorts_and_validates() {
        let script = FaultScript::new(vec![
            FaultEvent {
                at_subframe: 500,
                kind: FaultKind::QDrift { ht: 0, q: 0.8 },
            },
            FaultEvent {
                at_subframe: 100,
                kind: FaultKind::MisclassifyRate { rate: 0.05 },
            },
        ]);
        assert_eq!(script.events[0].at_subframe, 100);
        assert_eq!(script.validate(4, 2), Ok(()));
    }

    #[test]
    fn validate_rejects_bad_events() {
        let bad_q = FaultScript::new(vec![FaultEvent {
            at_subframe: 0,
            kind: FaultKind::QDrift { ht: 0, q: 1.5 },
        }]);
        assert!(bad_q.validate(4, 2).is_err());

        let bad_index = FaultScript::new(vec![FaultEvent {
            at_subframe: 0,
            kind: FaultKind::HtDisappear { ht: 2 },
        }]);
        assert!(bad_index.validate(4, 2).is_err());

        let bad_edges = FaultScript::new(vec![FaultEvent {
            at_subframe: 0,
            kind: FaultKind::HtAppear {
                q: 0.4,
                edges: ClientSet::singleton(7),
            },
        }]);
        assert!(bad_edges.validate(4, 2).is_err());
    }

    #[test]
    fn appearance_extends_the_index_universe() {
        // Index 2 only exists because the appearance precedes it.
        let script = FaultScript::new(vec![
            FaultEvent {
                at_subframe: 100,
                kind: FaultKind::HtAppear {
                    q: 0.4,
                    edges: ClientSet::singleton(0),
                },
            },
            FaultEvent {
                at_subframe: 200,
                kind: FaultKind::HtDisappear { ht: 2 },
            },
        ]);
        assert_eq!(script.validate(4, 2), Ok(()));
        // Reversed order: index 2 referenced before it exists.
        let early = FaultScript::new(vec![
            FaultEvent {
                at_subframe: 50,
                kind: FaultKind::HtDisappear { ht: 2 },
            },
            FaultEvent {
                at_subframe: 100,
                kind: FaultKind::HtAppear {
                    q: 0.4,
                    edges: ClientSet::singleton(0),
                },
            },
        ]);
        assert!(early.validate(4, 2).is_err());
    }

    #[test]
    fn topology_faults_mutate_in_place() {
        let mut topo = base_topo();
        apply_topology_fault(
            &mut topo,
            &FaultKind::HtAppear {
                q: 0.6,
                edges: ClientSet::from_iter([1, 3]),
            },
        )
        .unwrap();
        assert_eq!(topo.n_hidden(), 3);
        assert_eq!(topo.hts[2].q, 0.6);

        apply_topology_fault(&mut topo, &FaultKind::QDrift { ht: 0, q: 0.9 }).unwrap();
        assert_eq!(topo.hts[0].q, 0.9);

        apply_topology_fault(
            &mut topo,
            &FaultKind::EdgeChurn {
                ht: 1,
                toggle: ClientSet::from_iter([2, 3]),
            },
        )
        .unwrap();
        assert_eq!(topo.hts[1].edges, ClientSet::singleton(3));

        apply_topology_fault(&mut topo, &FaultKind::HtDisappear { ht: 2 }).unwrap();
        assert_eq!(topo.n_hidden(), 3, "slot kept for index stability");
        assert_eq!(topo.hts[2].q, 0.0);
    }

    #[test]
    fn observation_faults_leave_topology_alone() {
        let mut topo = base_topo();
        let before = topo.clone();
        let changed =
            apply_topology_fault(&mut topo, &FaultKind::MisclassifyRate { rate: 0.1 }).unwrap();
        assert!(!changed);
        assert_eq!(topo, before);
    }

    #[test]
    fn obs_state_is_a_step_function() {
        let script = FaultScript::new(vec![
            FaultEvent {
                at_subframe: 100,
                kind: FaultKind::MisclassifyRate { rate: 0.05 },
            },
            FaultEvent {
                at_subframe: 300,
                kind: FaultKind::DropRate { rate: 0.2 },
            },
            FaultEvent {
                at_subframe: 500,
                kind: FaultKind::MisclassifyRate { rate: 0.0 },
            },
        ]);
        assert_eq!(script.obs_state_at(0), ObsFaultState::default());
        assert_eq!(script.obs_state_at(100).misclassify_rate, 0.05);
        assert_eq!(script.obs_state_at(299).drop_rate, 0.0);
        let mid = script.obs_state_at(400);
        assert_eq!(mid.misclassify_rate, 0.05);
        assert_eq!(mid.drop_rate, 0.2);
        let late = script.obs_state_at(9_999);
        assert_eq!(late.misclassify_rate, 0.0);
        assert_eq!(late.drop_rate, 0.2);
    }

    #[test]
    fn channel_is_deterministic_and_bounded() {
        let state = ObsFaultState {
            misclassify_rate: 0.5,
            drop_rate: 0.25,
        };
        let observed = ClientSet::from_iter([0, 1, 2, 3]);
        let accessible = ClientSet::from_iter([0, 2]);
        let mut a = ObservationChannel::new(DetRng::seed_from_u64(9));
        let mut b = ObservationChannel::new(DetRng::seed_from_u64(9));
        let mut dropped = 0;
        for _ in 0..2_000 {
            let ra = a.corrupt(state, observed, accessible);
            let rb = b.corrupt(state, observed, accessible);
            assert_eq!(ra, rb, "channel must be replayable");
            match ra {
                None => dropped += 1,
                Some((obs, _)) => assert_eq!(obs, observed, "observed set never altered"),
            }
        }
        // ~25% of 2000 reports dropped; loose deterministic bound.
        assert!((300..=700).contains(&dropped), "dropped {dropped}");
    }

    #[test]
    fn clean_channel_is_transparent() {
        let mut ch = ObservationChannel::new(DetRng::seed_from_u64(1));
        let observed = ClientSet::from_iter([0, 3]);
        let accessible = ClientSet::singleton(3);
        for _ in 0..100 {
            assert_eq!(
                ch.corrupt(ObsFaultState::default(), observed, accessible),
                Some((observed, accessible))
            );
        }
    }

    #[test]
    fn misclassification_flips_both_ways() {
        // With rate 1.0 every observed client's bit flips exactly.
        let state = ObsFaultState {
            misclassify_rate: 1.0,
            drop_rate: 0.0,
        };
        let mut ch = ObservationChannel::new(DetRng::seed_from_u64(3));
        let observed = ClientSet::from_iter([0, 1]);
        let accessible = ClientSet::singleton(0);
        let (_, acc) = ch.corrupt(state, observed, accessible).unwrap();
        assert_eq!(acc, ClientSet::singleton(1));
    }

    #[test]
    fn runtime_state_is_a_step_function() {
        let script = FaultScript::new(vec![
            FaultEvent {
                at_subframe: 100,
                kind: FaultKind::InferenceStall { factor: 10 },
            },
            FaultEvent {
                at_subframe: 300,
                kind: FaultKind::InferencePanic { active: true },
            },
            FaultEvent {
                at_subframe: 500,
                kind: FaultKind::StatPoison { rate: 0.5 },
            },
            FaultEvent {
                at_subframe: 700,
                kind: FaultKind::InferencePanic { active: false },
            },
        ]);
        assert!(script.has_runtime_faults());
        assert!(!script.runtime_state_at(0).is_faulty());
        assert_eq!(script.runtime_state_at(99), RuntimeFaultState::default());
        assert_eq!(script.runtime_state_at(100).stall_factor, 10);
        assert!(!script.runtime_state_at(299).panic);
        assert!(script.runtime_state_at(300).panic);
        let mid = script.runtime_state_at(600);
        assert!(mid.panic && mid.stall_factor == 10 && mid.poison_rate == 0.5);
        let late = script.runtime_state_at(9_999);
        assert!(!late.panic, "panic disarmed at 700");
        assert_eq!(late.stall_factor, 10);
        assert!(late.is_faulty());
    }

    #[test]
    fn runtime_faults_validate_and_stay_non_topological() {
        let script = FaultScript::new(vec![
            FaultEvent {
                at_subframe: 0,
                kind: FaultKind::InferenceStall { factor: 10 },
            },
            FaultEvent {
                at_subframe: 0,
                kind: FaultKind::InferencePanic { active: true },
            },
            FaultEvent {
                at_subframe: 0,
                kind: FaultKind::StatPoison { rate: 0.25 },
            },
        ]);
        assert_eq!(script.validate(4, 2), Ok(()));
        assert!(script.topology_event_subframes().is_empty());
        for ev in &script.events {
            assert!(!ev.kind.is_topological());
            let mut topo = base_topo();
            let before = topo.clone();
            assert!(!apply_topology_fault(&mut topo, &ev.kind).unwrap());
            assert_eq!(topo, before);
        }

        let zero_stall = FaultScript::new(vec![FaultEvent {
            at_subframe: 0,
            kind: FaultKind::InferenceStall { factor: 0 },
        }]);
        assert!(zero_stall.validate(4, 2).is_err());

        let bad_poison = FaultScript::new(vec![FaultEvent {
            at_subframe: 0,
            kind: FaultKind::StatPoison { rate: f64::NAN },
        }]);
        assert!(bad_poison.validate(4, 2).is_err());
    }

    #[test]
    fn cell_crash_is_non_topological_and_enumerable() {
        let script = FaultScript::new(vec![
            FaultEvent {
                at_subframe: 9_000,
                kind: FaultKind::CellCrash,
            },
            FaultEvent {
                at_subframe: 3_000,
                kind: FaultKind::CellCrash,
            },
            FaultEvent {
                at_subframe: 100,
                kind: FaultKind::MisclassifyRate { rate: 0.05 },
            },
        ]);
        assert_eq!(script.validate(4, 2), Ok(()));
        assert!(script.has_crash_faults());
        assert_eq!(script.crash_subframes(), vec![3_000, 9_000]);
        // A crash never perturbs the captured air or the runtime
        // fault knobs — it is strictly a process-level event.
        assert!(!FaultKind::CellCrash.is_topological());
        assert!(script.topology_event_subframes().is_empty());
        assert!(!script.runtime_state_at(10_000).is_faulty());
        let mut topo = base_topo();
        let before = topo.clone();
        assert!(!apply_topology_fault(&mut topo, &FaultKind::CellCrash).unwrap());
        assert_eq!(topo, before);
        // And it round-trips through serde like every other kind.
        let json = serde_json::to_string(&script).unwrap();
        let back: FaultScript = serde_json::from_str(&json).unwrap();
        assert_eq!(back, script);

        assert!(!FaultScript::none().has_crash_faults());
        assert!(FaultScript::none().crash_subframes().is_empty());
    }

    #[test]
    fn rng_and_channel_round_trip_through_serde() {
        // Freeze a channel mid-stream, thaw it, and check both copies
        // continue identically — the property checkpoint/restore
        // leans on.
        let state = ObsFaultState {
            misclassify_rate: 0.3,
            drop_rate: 0.1,
        };
        let observed = ClientSet::from_iter([0, 1, 2]);
        let accessible = ClientSet::from_iter([0, 2]);
        let mut ch = ObservationChannel::new(DetRng::seed_from_u64(77));
        for _ in 0..57 {
            ch.corrupt(state, observed, accessible);
        }
        let json = serde_json::to_string(&ch).unwrap();
        let mut thawed: ObservationChannel = serde_json::from_str(&json).unwrap();
        assert_eq!(thawed, ch);
        for _ in 0..200 {
            assert_eq!(
                thawed.corrupt(state, observed, accessible),
                ch.corrupt(state, observed, accessible)
            );
        }

        // Same for a bare DetRng with a cached Gaussian spare.
        let mut rng = DetRng::seed_from_u64(5);
        let _ = rng.gaussian(); // populates gauss_spare
        let json = serde_json::to_string(&rng).unwrap();
        let mut thawed: DetRng = serde_json::from_str(&json).unwrap();
        assert_eq!(thawed, rng);
        assert_eq!(thawed.gaussian(), rng.gaussian());
        assert_eq!(thawed.f64(), rng.f64());
    }

    #[test]
    fn script_round_trips_through_serde() {
        let script = FaultScript::new(vec![
            FaultEvent {
                at_subframe: 42,
                kind: FaultKind::HtAppear {
                    q: 0.45,
                    edges: ClientSet::from_iter([0, 1]),
                },
            },
            FaultEvent {
                at_subframe: 42,
                kind: FaultKind::DropRate { rate: 0.1 },
            },
        ]);
        let json = serde_json::to_string(&script).unwrap();
        let back: FaultScript = serde_json::from_str(&json).unwrap();
        assert_eq!(back, script);
    }
}
