//! Propagation path-loss models with consistent log-normal shadowing.
//!
//! The testbed is an indoor enterprise floor at 5 GHz-class unlicensed
//! frequencies; we provide the standard log-distance model with an
//! indoor exponent plus the ITU indoor model, and a [`ShadowingField`]
//! that samples a per-link shadowing value **once** and then keeps it
//! fixed, so that the hidden-terminal relation (who hears whom) is a
//! stable property of a topology — exactly the stationarity regime the
//! paper assumes (§3.5).

use crate::geometry::Point;
use crate::power::{Db, Dbm};
use crate::rng::DetRng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A path-loss model: distance (meters) → loss (dB).
pub trait PathLossModel {
    /// Path loss at the given distance in meters (≥ 0 dB).
    fn loss(&self, distance_m: f64) -> Db;

    /// Received power over this model (no shadowing/fading).
    fn receive(&self, tx_power: Dbm, distance_m: f64) -> Dbm {
        tx_power - self.loss(distance_m)
    }
}

/// Classic log-distance path loss:
/// `PL(d) = PL(d0) + 10·n·log10(d/d0)`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LogDistance {
    /// Reference loss at `ref_distance_m`, in dB.
    pub ref_loss_db: f64,
    /// Path-loss exponent `n` (2 free space, 3–4 indoor obstructed).
    pub exponent: f64,
    /// Reference distance in meters (usually 1 m).
    pub ref_distance_m: f64,
}

impl LogDistance {
    /// Indoor enterprise profile at 5 GHz-class frequencies:
    /// 1 m free-space reference loss ≈ 47 dB, exponent 3.2.
    pub fn indoor_5ghz() -> Self {
        LogDistance {
            ref_loss_db: 47.0,
            exponent: 3.2,
            ref_distance_m: 1.0,
        }
    }

    /// Free-space profile at 5.2 GHz (exponent 2).
    pub fn free_space_5ghz() -> Self {
        LogDistance {
            ref_loss_db: 47.0,
            exponent: 2.0,
            ref_distance_m: 1.0,
        }
    }
}

impl PathLossModel for LogDistance {
    fn loss(&self, distance_m: f64) -> Db {
        let d = distance_m.max(self.ref_distance_m);
        Db(self.ref_loss_db + 10.0 * self.exponent * (d / self.ref_distance_m).log10())
    }
}

/// ITU indoor propagation model (P.1238-style, office environment):
/// `PL(d) = 20·log10(f_MHz) + N·log10(d) + Lf − 28`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ItuIndoor {
    /// Carrier frequency in MHz.
    pub freq_mhz: f64,
    /// Distance power-loss coefficient (office ≈ 30 at 5 GHz).
    pub power_loss_coeff: f64,
    /// Floor-penetration loss in dB (0 for same floor).
    pub floor_loss_db: f64,
}

impl ItuIndoor {
    /// Same-floor office at 5.2 GHz.
    pub fn office_5ghz() -> Self {
        ItuIndoor {
            freq_mhz: 5_200.0,
            power_loss_coeff: 30.0,
            floor_loss_db: 0.0,
        }
    }
}

impl PathLossModel for ItuIndoor {
    fn loss(&self, distance_m: f64) -> Db {
        let d = distance_m.max(1.0);
        Db(
            20.0 * self.freq_mhz.log10() + self.power_loss_coeff * d.log10() + self.floor_loss_db
                - 28.0,
        )
    }
}

/// Per-link log-normal shadowing, sampled lazily and then frozen.
///
/// Shadowing is symmetric (`shadow(a,b) == shadow(b,a)`) and
/// deterministic given the field's RNG stream, so a topology's
/// hidden-terminal structure never flickers between queries.
#[derive(Debug, Clone)]
pub struct ShadowingField {
    sigma_db: f64,
    rng: DetRng,
    cache: HashMap<(u32, u32), Db>,
}

impl ShadowingField {
    /// Create a shadowing field with standard deviation `sigma_db`.
    pub fn new(sigma_db: f64, rng: DetRng) -> Self {
        assert!(sigma_db >= 0.0, "shadowing sigma must be non-negative");
        ShadowingField {
            sigma_db,
            rng,
            cache: HashMap::new(),
        }
    }

    /// A field with no shadowing (all links 0 dB extra loss).
    pub fn disabled() -> Self {
        ShadowingField::new(0.0, DetRng::seed_from_u64(0))
    }

    /// The shadowing value for the unordered link `(a, b)`.
    ///
    /// The *first* query of a link samples its value; later queries
    /// (in either direction) return the same value.
    pub fn shadow(&mut self, a: u32, b: u32) -> Db {
        if self.sigma_db == 0.0 {
            return Db(0.0);
        }
        let key = if a <= b { (a, b) } else { (b, a) };
        // Derive the sample from the key, not from a shared stream, so
        // query *order* cannot change any link's value.
        let sigma = self.sigma_db;
        *self.cache.entry(key).or_insert_with(|| {
            let mut link_rng = self
                .rng
                .derive_indexed("shadow", (u64::from(key.0) << 32) | u64::from(key.1));
            Db(link_rng.gaussian_with(0.0, sigma))
        })
    }
}

/// Full large-scale link gain: path loss plus frozen shadowing.
pub struct Propagation<M: PathLossModel> {
    /// The distance-dependent path-loss model.
    pub model: M,
    /// The per-link shadowing field.
    pub shadowing: ShadowingField,
}

impl<M: PathLossModel> Propagation<M> {
    /// Create a propagation environment.
    pub fn new(model: M, shadowing: ShadowingField) -> Self {
        Propagation { model, shadowing }
    }

    /// Received power at `rx` for a transmitter at `tx`, identified by
    /// node ids (for shadowing consistency).
    pub fn receive(
        &mut self,
        tx_power: Dbm,
        tx_id: u32,
        tx_pos: Point,
        rx_id: u32,
        rx_pos: Point,
    ) -> Dbm {
        let pl = self.model.loss(tx_pos.distance(&rx_pos));
        let sh = self.shadowing.shadow(tx_id, rx_id);
        tx_power - pl + sh
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_distance_monotone_in_distance() {
        let m = LogDistance::indoor_5ghz();
        let mut prev = m.loss(1.0);
        for d in [2.0, 5.0, 10.0, 25.0, 60.0, 150.0] {
            let l = m.loss(d);
            assert!(l > prev, "loss not monotone at {d} m");
            prev = l;
        }
    }

    #[test]
    fn log_distance_reference_point() {
        let m = LogDistance::indoor_5ghz();
        assert!((m.loss(1.0).0 - 47.0).abs() < 1e-12);
        // Ten-fold distance adds 10·n dB.
        assert!((m.loss(10.0).0 - (47.0 + 32.0)).abs() < 1e-9);
    }

    #[test]
    fn below_reference_distance_clamps() {
        let m = LogDistance::indoor_5ghz();
        assert_eq!(m.loss(0.1), m.loss(1.0));
        assert_eq!(m.loss(0.0), m.loss(1.0));
    }

    #[test]
    fn itu_indoor_plausible_at_10m() {
        let m = ItuIndoor::office_5ghz();
        let l = m.loss(10.0);
        // 20·log10(5200) + 30·log10(10) − 28 ≈ 76.3 dB
        assert!((l.0 - 76.32).abs() < 0.1, "{l:?}");
    }

    #[test]
    fn receive_applies_loss() {
        let m = LogDistance::free_space_5ghz();
        let rx = m.receive(Dbm(20.0), 10.0);
        assert!((rx.0 - (20.0 - 67.0)).abs() < 1e-9);
    }

    #[test]
    fn shadowing_symmetric_and_stable() {
        let mut f = ShadowingField::new(6.0, DetRng::seed_from_u64(4));
        let ab = f.shadow(3, 9);
        let ba = f.shadow(9, 3);
        assert_eq!(ab, ba);
        assert_eq!(f.shadow(3, 9), ab);
    }

    #[test]
    fn shadowing_order_independent() {
        let mut f1 = ShadowingField::new(6.0, DetRng::seed_from_u64(4));
        let mut f2 = ShadowingField::new(6.0, DetRng::seed_from_u64(4));
        let a1 = f1.shadow(1, 2);
        let _ = f2.shadow(7, 8);
        let a2 = f2.shadow(1, 2);
        assert_eq!(a1, a2, "query order changed shadowing");
    }

    #[test]
    fn shadowing_disabled_is_zero() {
        let mut f = ShadowingField::disabled();
        assert_eq!(f.shadow(1, 2), Db(0.0));
    }

    #[test]
    fn shadowing_spread_matches_sigma() {
        let mut f = ShadowingField::new(8.0, DetRng::seed_from_u64(5));
        let n = 5_000u32;
        let vals: Vec<f64> = (0..n).map(|i| f.shadow(i, i + 100_000).0).collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / vals.len() as f64;
        assert!(mean.abs() < 0.5, "mean {mean}");
        assert!((var.sqrt() - 8.0).abs() < 0.4, "std {}", var.sqrt());
    }
}
