//! Small-scale fading: complex channel coefficients and Rayleigh
//! block fading.
//!
//! The MU-MIMO receiver model in `blu-phy` needs per-antenna complex
//! channel vectors; the SISO rate model needs a per-sub-frame channel
//! power. Both are produced here. We implement a minimal complex type
//! rather than pulling in `num-complex` (only a handful of operations
//! are needed).

use crate::rng::DetRng;
use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A complex number (f64 parts). Minimal operations for channel math.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Construct from real and imaginary parts.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Complex {
        Complex::new(self.re, -self.im)
    }

    /// Squared magnitude `|z|²`.
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Multiplicative inverse. Panics on zero.
    pub fn inv(self) -> Complex {
        let n = self.norm_sq();
        assert!(n > 0.0, "inverse of zero complex number");
        Complex::new(self.re / n, -self.im / n)
    }

    /// Scale by a real factor.
    pub fn scale(self, s: f64) -> Complex {
        Complex::new(self.re * s, self.im * s)
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

/// Inner product `⟨a, b⟩ = Σ aᵢ·conj(bᵢ)` of two equal-length vectors.
pub fn inner(a: &[Complex], b: &[Complex]) -> Complex {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .fold(Complex::ZERO, |acc, (&x, &y)| acc + x * y.conj())
}

/// Squared Euclidean norm of a complex vector.
pub fn norm_sq(v: &[Complex]) -> f64 {
    v.iter().map(|z| z.norm_sq()).sum()
}

/// Rayleigh block-fading source.
///
/// Each (link, block) pair gets an i.i.d. circularly-symmetric complex
/// Gaussian coefficient per receive antenna (unit average power). The
/// *block* is the sub-frame index divided by the coherence length, so
/// the channel is constant within a coherence block — LTE's block
/// fading abstraction.
#[derive(Debug, Clone)]
pub struct RayleighBlockFading {
    rng: DetRng,
    /// Channel coherence length in sub-frames.
    pub coherence_subframes: u64,
}

impl RayleighBlockFading {
    /// Create a fading source; `coherence_subframes` must be ≥ 1.
    pub fn new(rng: DetRng, coherence_subframes: u64) -> Self {
        assert!(coherence_subframes >= 1);
        RayleighBlockFading {
            rng,
            coherence_subframes,
        }
    }

    /// The complex channel vector (one entry per receive antenna) for
    /// `link` during the coherence block containing `subframe`.
    ///
    /// Deterministic in `(link, block, antennas)`: queries never
    /// perturb each other.
    pub fn channel(&self, link: u64, subframe: u64, antennas: usize) -> Vec<Complex> {
        let block = subframe / self.coherence_subframes;
        let mut rng = self
            .rng
            .derive_indexed("fade", link ^ block.rotate_left(21));
        // Unit average power per antenna: each part has variance 1/2.
        let s = std::f64::consts::FRAC_1_SQRT_2;
        (0..antennas)
            .map(|_| Complex::new(rng.gaussian() * s, rng.gaussian() * s))
            .collect()
    }

    /// Scalar channel power gain `|h|²` for a SISO link (mean 1).
    pub fn power_gain(&self, link: u64, subframe: u64) -> f64 {
        self.channel(link, subframe, 1)[0].norm_sq()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complex_field_axioms() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-3.0, 0.5);
        assert_eq!(a + b, Complex::new(-2.0, 2.5));
        assert_eq!(a - b, Complex::new(4.0, 1.5));
        assert_eq!(a * Complex::ONE, a);
        assert_eq!(-a, Complex::new(-1.0, -2.0));
        // (1+2i)(−3+0.5i) = −3 + 0.5i − 6i + i² = −4 − 5.5i
        assert_eq!(a * b, Complex::new(-4.0, -5.5));
    }

    #[test]
    fn conj_and_norm() {
        let z = Complex::new(3.0, -4.0);
        assert_eq!(z.conj(), Complex::new(3.0, 4.0));
        assert_eq!(z.norm_sq(), 25.0);
        assert_eq!(z.abs(), 5.0);
        let zi = z * z.inv();
        assert!((zi.re - 1.0).abs() < 1e-12 && zi.im.abs() < 1e-12);
    }

    #[test]
    fn inner_product_properties() {
        let a = vec![Complex::new(1.0, 0.0), Complex::new(0.0, 1.0)];
        let b = vec![Complex::new(0.0, 1.0), Complex::new(1.0, 0.0)];
        // ⟨a, a⟩ = ‖a‖²
        assert!((inner(&a, &a).re - norm_sq(&a)).abs() < 1e-12);
        assert!(inner(&a, &a).im.abs() < 1e-12);
        // ⟨a, b⟩ = conj(⟨b, a⟩)
        let ab = inner(&a, &b);
        let ba = inner(&b, &a);
        assert!((ab.re - ba.re).abs() < 1e-12);
        assert!((ab.im + ba.im).abs() < 1e-12);
    }

    #[test]
    fn fading_is_deterministic_per_block() {
        let f = RayleighBlockFading::new(DetRng::seed_from_u64(6), 10);
        let h1 = f.channel(42, 5, 4);
        let h2 = f.channel(42, 9, 4); // same coherence block [0,10)
        let h3 = f.channel(42, 10, 4); // next block
        assert_eq!(h1, h2);
        assert_ne!(h1, h3);
    }

    #[test]
    fn different_links_fade_independently() {
        let f = RayleighBlockFading::new(DetRng::seed_from_u64(6), 1);
        assert_ne!(f.channel(1, 0, 2), f.channel(2, 0, 2));
    }

    #[test]
    fn unit_average_power() {
        let f = RayleighBlockFading::new(DetRng::seed_from_u64(7), 1);
        let n = 20_000;
        let mean: f64 = (0..n).map(|sf| f.power_gain(1, sf)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.03, "mean gain {mean}");
    }

    #[test]
    fn rayleigh_fraction_in_deep_fade() {
        // P(|h|² < 0.1) = 1 − e^(−0.1) ≈ 0.0952 for unit-mean Rayleigh power.
        let f = RayleighBlockFading::new(DetRng::seed_from_u64(8), 1);
        let n = 50_000;
        let frac = (0..n).filter(|&sf| f.power_gain(3, sf) < 0.1).count() as f64 / n as f64;
        assert!((frac - 0.0952).abs() < 0.01, "deep-fade fraction {frac}");
    }
}
