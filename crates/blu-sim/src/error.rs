//! Substrate error type.

use std::fmt;

/// Errors produced by the simulation substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A configuration value was invalid (message explains which).
    InvalidConfig(String),
    /// A referenced node id does not exist in the deployment.
    UnknownNode(u32),
    /// An index (client, hidden terminal, RB…) was out of range.
    IndexOutOfRange {
        /// What kind of index.
        what: &'static str,
        /// The offending index.
        index: usize,
        /// The exclusive bound.
        bound: usize,
    },
    /// A probability left the valid `[0, 1]` interval.
    InvalidProbability {
        /// Context for the failure.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SimError::UnknownNode(id) => write!(f, "unknown node id {id}"),
            SimError::IndexOutOfRange { what, index, bound } => {
                write!(f, "{what} index {index} out of range (< {bound})")
            }
            SimError::InvalidProbability { what, value } => {
                write!(f, "invalid probability for {what}: {value}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(SimError::InvalidConfig("x".into())
            .to_string()
            .contains("x"));
        assert!(SimError::UnknownNode(3).to_string().contains("3"));
        let e = SimError::IndexOutOfRange {
            what: "client",
            index: 9,
            bound: 4,
        };
        assert!(e.to_string().contains("client") && e.to_string().contains("9"));
        let p = SimError::InvalidProbability {
            what: "q(k)",
            value: 1.5,
        };
        assert!(p.to_string().contains("1.5"));
    }
}
