//! Power and gain units.
//!
//! Radio link budgets mix logarithmic (dBm, dB) and linear (mW)
//! quantities; confusing the two is the classic propagation-model bug.
//! We make the units distinct newtypes so the compiler rejects e.g.
//! adding a dBm level to another dBm level (power levels add in linear
//! domain, gains add in log domain).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Neg, Sub};

/// An absolute power level in dBm.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Dbm(pub f64);

/// A relative gain/loss in dB.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Db(pub f64);

/// An absolute power in milliwatts (linear domain).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct MilliWatts(pub f64);

impl Dbm {
    /// A level far below any sensing threshold ("no signal").
    pub const FLOOR: Dbm = Dbm(-200.0);

    /// Convert to linear milliwatts.
    pub fn to_milliwatts(self) -> MilliWatts {
        MilliWatts(10f64.powf(self.0 / 10.0))
    }
}

impl MilliWatts {
    /// Zero power.
    pub const ZERO: MilliWatts = MilliWatts(0.0);

    /// Convert to dBm; zero/negative power maps to [`Dbm::FLOOR`].
    pub fn to_dbm(self) -> Dbm {
        if self.0 <= 0.0 {
            Dbm::FLOOR
        } else {
            Dbm(10.0 * self.0.log10())
        }
    }
}

/// Applying a gain to a power level: `dBm + dB = dBm`.
impl Add<Db> for Dbm {
    type Output = Dbm;
    fn add(self, rhs: Db) -> Dbm {
        Dbm(self.0 + rhs.0)
    }
}

/// Removing a loss from a power level: `dBm − dB = dBm`.
impl Sub<Db> for Dbm {
    type Output = Dbm;
    fn sub(self, rhs: Db) -> Dbm {
        Dbm(self.0 - rhs.0)
    }
}

/// Difference of two levels is a gain: `dBm − dBm = dB`.
impl Sub<Dbm> for Dbm {
    type Output = Db;
    fn sub(self, rhs: Dbm) -> Db {
        Db(self.0 - rhs.0)
    }
}

impl Add for Db {
    type Output = Db;
    fn add(self, rhs: Db) -> Db {
        Db(self.0 + rhs.0)
    }
}

impl AddAssign for Db {
    fn add_assign(&mut self, rhs: Db) {
        self.0 += rhs.0;
    }
}

impl Sub for Db {
    type Output = Db;
    fn sub(self, rhs: Db) -> Db {
        Db(self.0 - rhs.0)
    }
}

impl Neg for Db {
    type Output = Db;
    fn neg(self) -> Db {
        Db(-self.0)
    }
}

impl Add for MilliWatts {
    type Output = MilliWatts;
    fn add(self, rhs: MilliWatts) -> MilliWatts {
        MilliWatts(self.0 + rhs.0)
    }
}

impl AddAssign for MilliWatts {
    fn add_assign(&mut self, rhs: MilliWatts) {
        self.0 += rhs.0;
    }
}

impl Sum for MilliWatts {
    fn sum<I: Iterator<Item = MilliWatts>>(iter: I) -> MilliWatts {
        MilliWatts(iter.map(|m| m.0).sum())
    }
}

impl fmt::Display for Dbm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} dBm", self.0)
    }
}

impl fmt::Display for Db {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} dB", self.0)
    }
}

/// Linear SNR/SINR ratio → dB.
pub fn ratio_to_db(ratio: f64) -> Db {
    if ratio <= 0.0 {
        Db(-200.0)
    } else {
        Db(10.0 * ratio.log10())
    }
}

/// dB → linear ratio.
pub fn db_to_ratio(db: Db) -> f64 {
    10f64.powf(db.0 / 10.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dbm_milliwatt_roundtrip() {
        for level in [-90.0, -30.0, 0.0, 10.0, 23.0] {
            let back = Dbm(level).to_milliwatts().to_dbm();
            assert!((back.0 - level).abs() < 1e-9, "{level} -> {back:?}");
        }
    }

    #[test]
    fn zero_mw_maps_to_floor() {
        assert_eq!(MilliWatts::ZERO.to_dbm(), Dbm::FLOOR);
        assert_eq!(MilliWatts(-1.0).to_dbm(), Dbm::FLOOR);
    }

    #[test]
    fn known_conversions() {
        assert!((Dbm(0.0).to_milliwatts().0 - 1.0).abs() < 1e-12);
        assert!((Dbm(30.0).to_milliwatts().0 - 1000.0).abs() < 1e-9);
        assert!((Dbm(-30.0).to_milliwatts().0 - 0.001).abs() < 1e-12);
    }

    #[test]
    fn gain_arithmetic() {
        let p = Dbm(-40.0) + Db(10.0);
        assert_eq!(p, Dbm(-30.0));
        let q = p - Db(5.0);
        assert_eq!(q, Dbm(-35.0));
        assert_eq!(Dbm(-30.0) - Dbm(-40.0), Db(10.0));
        assert_eq!(-Db(3.0), Db(-3.0));
    }

    #[test]
    fn powers_sum_linearly() {
        // Two equal powers add to +3.01 dB.
        let p = Dbm(-50.0).to_milliwatts();
        let total = (p + p).to_dbm();
        assert!((total.0 - (-46.9897)).abs() < 1e-3, "{total:?}");
        let summed: MilliWatts = [p, p, p].into_iter().sum();
        assert!((summed.0 - 3.0 * p.0).abs() < 1e-15);
    }

    #[test]
    fn ratio_db_roundtrip() {
        for r in [0.01, 0.5, 1.0, 4.0, 1000.0] {
            let back = db_to_ratio(ratio_to_db(r));
            assert!((back - r).abs() / r < 1e-9);
        }
        assert_eq!(ratio_to_db(0.0), Db(-200.0));
    }
}
