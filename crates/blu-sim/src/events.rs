//! A minimal discrete-event engine.
//!
//! The WiFi DCF simulation in `blu-wifi` is event-driven at µs
//! resolution (backoff expiries, frame ends, DIFS timers). This module
//! provides the classic calendar: a time-ordered queue with stable
//! FIFO tie-breaking so simultaneous events execute in schedule order,
//! keeping runs deterministic.

use crate::time::Micros;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled entry: fire time, insertion sequence, payload.
struct Entry<E> {
    at: Micros,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for min-heap behaviour on BinaryHeap (max-heap).
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic discrete-event queue.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: Micros,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: Micros::ZERO,
        }
    }

    /// Current simulation time (time of the last popped event).
    pub fn now(&self) -> Micros {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// Panics if `at` is in the past — discrete-event time must not
    /// run backwards.
    pub fn schedule_at(&mut self, at: Micros, event: E) {
        assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Schedule `event` `delay` after the current time.
    pub fn schedule_in(&mut self, delay: Micros, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Pop the next event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(Micros, E)> {
        self.heap.pop().map(|e| {
            debug_assert!(e.at >= self.now);
            self.now = e.at;
            (e.at, e.event)
        })
    }

    /// Time of the next pending event, if any.
    pub fn peek_time(&self) -> Option<Micros> {
        self.heap.peek().map(|e| e.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(Micros(30), "c");
        q.schedule_at(Micros(10), "a");
        q.schedule_at(Micros(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        q.schedule_at(Micros(5), 1);
        q.schedule_at(Micros(5), 2);
        q.schedule_at(Micros(5), 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_at(Micros(7), ());
        assert_eq!(q.now(), Micros::ZERO);
        q.pop();
        assert_eq!(q.now(), Micros(7));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule_at(Micros(10), "first");
        q.pop();
        q.schedule_in(Micros(5), "second");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, Micros(15));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(Micros(10), ());
        q.pop();
        q.schedule_at(Micros(5), ());
    }

    #[test]
    fn len_and_peek() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule_at(Micros(3), ());
        q.schedule_at(Micros(1), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Micros(1)));
    }
}
