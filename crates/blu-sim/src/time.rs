//! Simulation time.
//!
//! Two clocks coexist in the BLU world:
//!
//! * LTE is slotted: the scheduler thinks in **sub-frames** of 1 ms
//!   ([`SubframeIndex`]).
//! * WiFi interference is asynchronous: DCF timing (DIFS, slot times,
//!   frame airtime) is expressed in **microseconds** ([`Micros`]).
//!
//! The conversion is fixed (`1 sub-frame == 1000 µs`) and captured by
//! [`SubframeIndex::start`] / [`SubframeIndex::end`].

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Duration of one LTE sub-frame in microseconds (LTE numerology: 1 ms).
pub const SUBFRAME_US: u64 = 1_000;

/// Number of sub-frames per second.
pub const SUBFRAMES_PER_SECOND: u64 = 1_000;

/// A point in simulation time, in microseconds since simulation start.
///
/// `Micros` is also used for durations; the arithmetic operators treat
/// it as a plain unsigned microsecond count.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Micros(pub u64);

impl Micros {
    /// Zero time (simulation start).
    pub const ZERO: Micros = Micros(0);

    /// Construct from a millisecond count.
    pub fn from_millis(ms: u64) -> Self {
        Micros(ms * 1_000)
    }

    /// Construct from a second count.
    pub fn from_secs(s: u64) -> Self {
        Micros(s * 1_000_000)
    }

    /// The raw microsecond count.
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// This instant expressed in (possibly fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This instant expressed in (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The sub-frame this instant falls into.
    pub fn subframe(self) -> SubframeIndex {
        SubframeIndex(self.0 / SUBFRAME_US)
    }

    /// Saturating subtraction, useful for backing off timers.
    pub fn saturating_sub(self, rhs: Micros) -> Micros {
        Micros(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Micros {
    type Output = Micros;
    fn add(self, rhs: Micros) -> Micros {
        Micros(self.0 + rhs.0)
    }
}

impl AddAssign for Micros {
    fn add_assign(&mut self, rhs: Micros) {
        self.0 += rhs.0;
    }
}

impl Sub for Micros {
    type Output = Micros;
    fn sub(self, rhs: Micros) -> Micros {
        Micros(self.0 - rhs.0)
    }
}

impl fmt::Display for Micros {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}µs", self.0)
    }
}

/// Index of an LTE sub-frame (1 ms granularity) since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SubframeIndex(pub u64);

impl SubframeIndex {
    /// First microsecond of this sub-frame.
    pub fn start(self) -> Micros {
        Micros(self.0 * SUBFRAME_US)
    }

    /// One-past-the-end microsecond of this sub-frame.
    pub fn end(self) -> Micros {
        Micros((self.0 + 1) * SUBFRAME_US)
    }

    /// The next sub-frame.
    pub fn next(self) -> SubframeIndex {
        SubframeIndex(self.0 + 1)
    }

    /// Advance by `n` sub-frames.
    pub fn advance(self, n: u64) -> SubframeIndex {
        SubframeIndex(self.0 + n)
    }
}

impl fmt::Display for SubframeIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SF#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micros_constructors_agree() {
        assert_eq!(Micros::from_millis(3), Micros(3_000));
        assert_eq!(Micros::from_secs(2), Micros(2_000_000));
        assert_eq!(Micros::from_secs(1), Micros::from_millis(1_000));
    }

    #[test]
    fn micros_arithmetic() {
        let a = Micros(1_500);
        let b = Micros(500);
        assert_eq!(a + b, Micros(2_000));
        assert_eq!(a - b, Micros(1_000));
        assert_eq!(b.saturating_sub(a), Micros::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c, Micros(2_000));
    }

    #[test]
    fn subframe_boundaries() {
        let sf = SubframeIndex(7);
        assert_eq!(sf.start(), Micros(7_000));
        assert_eq!(sf.end(), Micros(8_000));
        assert_eq!(sf.next(), SubframeIndex(8));
        assert_eq!(sf.advance(3), SubframeIndex(10));
    }

    #[test]
    fn micros_to_subframe_mapping() {
        assert_eq!(Micros(0).subframe(), SubframeIndex(0));
        assert_eq!(Micros(999).subframe(), SubframeIndex(0));
        assert_eq!(Micros(1_000).subframe(), SubframeIndex(1));
        assert_eq!(Micros(123_456).subframe(), SubframeIndex(123));
    }

    #[test]
    fn float_conversions() {
        assert!((Micros(1_500).as_millis_f64() - 1.5).abs() < 1e-12);
        assert!((Micros(2_500_000).as_secs_f64() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Micros(42).to_string(), "42µs");
        assert_eq!(SubframeIndex(3).to_string(), "SF#3");
    }
}
