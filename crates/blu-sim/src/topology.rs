//! The ground-truth hidden-terminal interference topology.
//!
//! This is the object at the heart of the paper (Fig. 6b): a bipartite
//! graph between **hidden terminals** (WiFi transmitters the eNB
//! cannot hear) and **clients** (UEs), where an edge `z_ik = 1` means
//! client `i` senses hidden terminal `k`'s transmissions and defers.
//! Each hidden terminal `k` has an access probability `q(k)` — the
//! probability it is on the air at a CCA instant.
//!
//! Under the paper's generative model (independent HT activity,
//! binary impact), the client access probabilities have closed forms:
//!
//! ```text
//! p(i)    = Π_{k: z_ik=1} (1 − q(k))
//! p(i,j)  = Π_{k: z_ik ∨ z_jk} (1 − q(k))
//! P(U, V̄) = Π_{k ∈ A(U)} (1−q_k) · Σ_{S⊆V} (−1)^|S| Π_{k ∈ A(S)\A(U)} (1−q_k)
//! ```
//!
//! where `A(X)` is the set of HTs adjacent to any client in `X`. The
//! last identity (inclusion–exclusion over the "failing" clients) is
//! the *oracle* against which `blu-core`'s recursive topology
//! conditioning (paper §3.6) is property-tested.
//!
//! The same type doubles as BLU's *inferred* blue-print: the inference
//! algorithm in `blu-core::blueprint` produces an
//! [`InterferenceTopology`] and the scheduler consumes one without
//! caring whether it is ground truth or inferred.

use crate::cca::SensingThresholds;
use crate::clientset::ClientSet;
use crate::error::SimError;
use crate::node::Node;
use crate::pathloss::PathLossModel;
use crate::pathloss::Propagation;
use crate::rng::DetRng;
use serde::{Deserialize, Serialize};

/// One hidden terminal in the blue-print.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HiddenTerminal {
    /// Probability the terminal is on the air at a CCA instant.
    pub q: f64,
    /// Clients that sense this terminal (edge set `z_·k`).
    pub edges: ClientSet,
}

impl HiddenTerminal {
    /// Construct; validates `q ∈ [0, 1]`.
    pub fn new(q: f64, edges: ClientSet) -> Result<Self, SimError> {
        if !(0.0..=1.0).contains(&q) || q.is_nan() {
            return Err(SimError::InvalidProbability {
                what: "hidden-terminal access q(k)",
                value: q,
            });
        }
        Ok(HiddenTerminal { q, edges })
    }
}

/// A bipartite hidden-terminal → client interference topology.
///
/// ```
/// use blu_sim::clientset::ClientSet;
/// use blu_sim::topology::{HiddenTerminal, InterferenceTopology};
///
/// // One hidden terminal, 40% active, silencing clients 0 and 1.
/// let topo = InterferenceTopology::new(
///     3,
///     vec![HiddenTerminal::new(0.4, ClientSet::from_iter([0, 1])).unwrap()],
/// )
/// .unwrap();
/// assert_eq!(topo.p_individual(0), 0.6);
/// assert_eq!(topo.p_individual(2), 1.0);
/// // Clients 0 and 1 share the terminal: their accesses coincide.
/// assert_eq!(topo.p_pair(0, 1), 0.6);
/// // P(0 accesses while 1 is blocked) is impossible here.
/// assert_eq!(
///     topo.p_joint(ClientSet::from_iter([0]), ClientSet::from_iter([1])),
///     0.0
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterferenceTopology {
    /// Number of clients (UEs) in the cell.
    pub n_clients: usize,
    /// The hidden terminals with their activity and edges.
    pub hts: Vec<HiddenTerminal>,
}

impl InterferenceTopology {
    /// A topology with no hidden terminals (every client always
    /// accesses).
    pub fn interference_free(n_clients: usize) -> Self {
        InterferenceTopology {
            n_clients,
            hts: Vec::new(),
        }
    }

    /// Construct, validating every HT.
    pub fn new(n_clients: usize, hts: Vec<HiddenTerminal>) -> Result<Self, SimError> {
        assert!(n_clients <= ClientSet::CAPACITY);
        let valid_clients = ClientSet::all(n_clients);
        for ht in &hts {
            if !(0.0..=1.0).contains(&ht.q) || ht.q.is_nan() {
                return Err(SimError::InvalidProbability {
                    what: "hidden-terminal access q(k)",
                    value: ht.q,
                });
            }
            if !ht.edges.is_subset_of(valid_clients) {
                let bad = ht
                    .edges
                    .iter()
                    .find(|&i| i >= n_clients)
                    .unwrap_or(n_clients);
                return Err(SimError::IndexOutOfRange {
                    what: "hidden-terminal edge client",
                    index: bad,
                    bound: n_clients,
                });
            }
        }
        Ok(InterferenceTopology { n_clients, hts })
    }

    /// Number of hidden terminals.
    pub fn n_hidden(&self) -> usize {
        self.hts.len()
    }

    /// Generate a random topology: `n_hts` terminals, each with
    /// activity drawn from `q_range` and each client attached with
    /// probability `edge_prob`. Edgeless terminals are re-rolled so
    /// the result has exactly `n_hts` *effective* terminals.
    pub fn random(
        n_clients: usize,
        n_hts: usize,
        q_range: (f64, f64),
        edge_prob: f64,
        rng: &mut DetRng,
    ) -> Self {
        assert!((1..=ClientSet::CAPACITY).contains(&n_clients));
        assert!((0.0..=1.0).contains(&edge_prob));
        let mut hts = Vec::with_capacity(n_hts);
        for _ in 0..n_hts {
            let q = rng.range_f64(q_range.0, q_range.1);
            let mut edges = ClientSet::EMPTY;
            // Re-roll until at least one edge exists (an edgeless HT
            // is unobservable and would silently shrink the topology).
            while edges.is_empty() {
                for i in 0..n_clients {
                    if rng.chance(edge_prob) {
                        edges.insert(i);
                    }
                }
                if edge_prob == 0.0 {
                    edges.insert(rng.below(n_clients));
                }
            }
            hts.push(HiddenTerminal { q, edges });
        }
        InterferenceTopology { n_clients, hts }
    }

    /// Set of HTs (by index) adjacent to any client in `clients`.
    fn adjacent_hts(&self, clients: ClientSet) -> u128 {
        let mut mask = 0u128;
        for (k, ht) in self.hts.iter().enumerate() {
            if !ht.edges.is_disjoint(clients) {
                mask |= 1 << k;
            }
        }
        mask
    }

    /// `Π (1 − q_k)` over the HTs in `mask` — the probability that
    /// all of them are simultaneously idle.
    fn idle_product(&self, mask: u128) -> f64 {
        let mut p = 1.0;
        let mut m = mask;
        while m != 0 {
            let k = m.trailing_zeros() as usize;
            m &= m - 1;
            p *= 1.0 - self.hts[k].q;
        }
        p
    }

    /// Individual access probability `p(i)`.
    pub fn p_individual(&self, i: usize) -> f64 {
        assert!(i < self.n_clients);
        self.idle_product(self.adjacent_hts(ClientSet::singleton(i)))
    }

    /// Pairwise joint access probability `p(i, j)` — both clients can
    /// use their grants.
    pub fn p_pair(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n_clients && j < self.n_clients);
        self.idle_product(self.adjacent_hts(ClientSet::singleton(i).with(j)))
    }

    /// Probability that *all* clients in `clients` can access
    /// (`P(U)` in the paper's notation).
    pub fn p_all_access(&self, clients: ClientSet) -> f64 {
        self.idle_product(self.adjacent_hts(clients))
    }

    /// Exact joint probability `P(U, V̄)`: all clients in `succeed`
    /// access while all clients in `fail` are blocked. The two sets
    /// must be disjoint. Inclusion–exclusion over subsets of `fail`
    /// (`2^|fail|` terms; callers keep `|fail| ≤ 2M ≤ 16`).
    pub fn p_joint(&self, succeed: ClientSet, fail: ClientSet) -> f64 {
        assert!(succeed.is_disjoint(fail), "success/fail sets overlap");
        let a_u = self.adjacent_hts(succeed);
        let base = self.idle_product(a_u);
        if base == 0.0 {
            return 0.0;
        }
        // P(every v in `fail` blocked | HTs adjacent to U idle)
        //   = Σ_{S ⊆ fail} (−1)^{|S|} Π_{k ∈ A(S)\A(U)} (1 − q_k)
        let mut blocked = 0.0;
        for s in fail.subsets() {
            let a_s = self.adjacent_hts(s) & !a_u;
            let sign = if s.len() % 2 == 0 { 1.0 } else { -1.0 };
            blocked += sign * self.idle_product(a_s);
        }
        // Guard tiny negative values from float cancellation.
        base * blocked.max(0.0)
    }

    /// Sample one CCA instant: draw each HT's on-air state
    /// independently and return the set of clients that pass CCA.
    pub fn sample_access(&self, rng: &mut DetRng) -> ClientSet {
        let mut blocked = ClientSet::EMPTY;
        for ht in &self.hts {
            if rng.chance(ht.q) {
                blocked = blocked.union(ht.edges);
            }
        }
        ClientSet::all(self.n_clients).difference(blocked)
    }

    /// Canonical form: drop edgeless HTs, merge HTs with identical
    /// edge sets (their idle probabilities multiply), sort by edge
    /// mask. Two topologies that induce the same access distributions
    /// through duplicate/empty HTs normalize to the same value.
    pub fn canonicalize(&self) -> InterferenceTopology {
        use std::collections::BTreeMap;
        let mut merged: BTreeMap<u128, f64> = BTreeMap::new();
        for ht in &self.hts {
            if ht.edges.is_empty() || ht.q <= 0.0 {
                continue;
            }
            // (1−q) products merge multiplicatively.
            let idle = merged.entry(ht.edges.0).or_insert(1.0);
            *idle *= 1.0 - ht.q;
        }
        let hts = merged
            .into_iter()
            .filter(|&(_, idle)| idle < 1.0)
            .map(|(mask, idle)| HiddenTerminal {
                q: 1.0 - idle,
                edges: ClientSet(mask),
            })
            .collect();
        InterferenceTopology {
            n_clients: self.n_clients,
            hts,
        }
    }

    /// Total violation of this topology against measured transformed
    /// constraints would live in `blu-core`; here we expose the raw
    /// per-client adjacency for inspection.
    pub fn clients_of(&self, ht_index: usize) -> ClientSet {
        self.hts[ht_index].edges
    }

    /// HT indices impacting client `i`.
    pub fn hts_of(&self, i: usize) -> Vec<usize> {
        self.hts
            .iter()
            .enumerate()
            .filter(|(_, ht)| ht.edges.contains(i))
            .map(|(k, _)| k)
            .collect()
    }
}

/// Result of extracting ground truth from a geometric deployment.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// The interference topology (HTs × UEs) with placeholder
    /// `q(k) = 0`; activity is filled in from traffic simulation.
    pub topology: InterferenceTopology,
    /// For each HT in `topology.hts`, the node id of the WiFi
    /// transmitter it corresponds to.
    pub ht_nodes: Vec<crate::node::NodeId>,
    /// For each client index, the UE node id.
    pub ue_nodes: Vec<crate::node::NodeId>,
}

/// Extract the ground-truth hidden-terminal topology from node
/// geometry: a WiFi transmitter is a *hidden terminal* if the eNB
/// does **not** sense it (so the eNB's TxOP acquisition cannot
/// protect against it) while at least one UE **does** sense it (so
/// that UE's CCA blocks on it). Edges connect it to every UE that
/// senses it.
pub fn extract_ground_truth<M: PathLossModel>(
    enb: &Node,
    ues: &[Node],
    wifi: &[Node],
    prop: &mut Propagation<M>,
    thresholds: &SensingThresholds,
) -> GroundTruth {
    assert!(ues.len() <= ClientSet::CAPACITY);
    let mut hts = Vec::new();
    let mut ht_nodes = Vec::new();
    for w in wifi {
        debug_assert!(w.kind.is_wifi());
        let at_enb = prop.receive(w.tx_power, w.id.0, w.pos, enb.id.0, enb.pos);
        // LTE eNB senses WiFi via energy detection.
        let enb_hears = thresholds.senses(false, true, at_enb);
        if enb_hears {
            continue; // not hidden: eNB defers to it during TxOP acquisition
        }
        let mut edges = ClientSet::EMPTY;
        for (i, ue) in ues.iter().enumerate() {
            let at_ue = prop.receive(w.tx_power, w.id.0, w.pos, ue.id.0, ue.pos);
            // UE CCA is energy detection too.
            if thresholds.senses(false, true, at_ue) {
                edges.insert(i);
            }
        }
        if !edges.is_empty() {
            hts.push(HiddenTerminal { q: 0.0, edges });
            ht_nodes.push(w.id);
        }
    }
    GroundTruth {
        topology: InterferenceTopology {
            n_clients: ues.len(),
            hts,
        },
        ht_nodes,
        ue_nodes: ues.iter().map(|u| u.id).collect(),
    }
}

/// Count hidden terminals in a deployment for Fig. 4c.
///
/// A terminal `o` is *hidden* with respect to an uplink transmission
/// from client `c` to the cell head when (a) `c` cannot sense `o`
/// under its technology's sensing rules — so `c` would transmit
/// concurrently — and (b) `o`'s signal still arrives at the head
/// strongly enough to corrupt reception (`interference_floor`).
/// The paper's Fig. 4c compares the count for an all-WiFi cell
/// (preamble detection, −82 dBm) against an LTE cell in the same
/// geometry (energy detection, −72 dBm): the 10 dB sensitivity loss
/// more than doubles the hidden set.
///
/// Returns the number of distinct terminals hidden to at least one
/// client, and the total number of hidden (client, terminal) pairs.
pub fn count_hidden_terminals<M: PathLossModel>(
    head: &Node,
    clients: &[Node],
    others: &[Node],
    prop: &mut Propagation<M>,
    thresholds: &SensingThresholds,
    cell_is_lte: bool,
    interference_floor: crate::power::Dbm,
) -> (usize, usize) {
    let mut distinct = 0usize;
    let mut pairs = 0usize;
    for o in others {
        let src_is_wifi = o.kind.is_wifi();
        let at_head = prop.receive(o.tx_power, o.id.0, o.pos, head.id.0, head.pos);
        if at_head < interference_floor {
            continue; // too weak to matter at the receiver
        }
        let mut hidden_for_any = false;
        for c in clients {
            let at_c = prop.receive(o.tx_power, o.id.0, o.pos, c.id.0, c.pos);
            let c_hears = thresholds.senses(!cell_is_lte, src_is_wifi, at_c);
            if !c_hears {
                pairs += 1;
                hidden_for_any = true;
            }
        }
        if hidden_for_any {
            distinct += 1;
        }
    }
    (distinct, pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Point;
    use crate::node::NodeKind;
    use crate::pathloss::{LogDistance, Propagation, ShadowingField};

    fn topo(n: usize, spec: &[(f64, &[usize])]) -> InterferenceTopology {
        InterferenceTopology {
            n_clients: n,
            hts: spec
                .iter()
                .map(|&(q, edges)| HiddenTerminal {
                    q,
                    edges: edges.iter().copied().collect(),
                })
                .collect(),
        }
    }

    #[test]
    fn individual_access_closed_form() {
        // Client 0 hears HTs with q=0.3 and q=0.5; p(0) = 0.7*0.5.
        let t = topo(2, &[(0.3, &[0]), (0.5, &[0, 1]), (0.2, &[1])]);
        assert!((t.p_individual(0) - 0.35).abs() < 1e-12);
        assert!((t.p_individual(1) - 0.5 * 0.8).abs() < 1e-12);
    }

    #[test]
    fn pairwise_access_counts_shared_ht_once() {
        let t = topo(2, &[(0.3, &[0]), (0.5, &[0, 1]), (0.2, &[1])]);
        // p(0,1) = (1−0.3)(1−0.5)(1−0.2): the shared HT appears once.
        assert!((t.p_pair(0, 1) - 0.7 * 0.5 * 0.8).abs() < 1e-12);
        assert_eq!(t.p_pair(0, 1), t.p_pair(1, 0));
    }

    #[test]
    fn interference_free_always_accesses() {
        let t = InterferenceTopology::interference_free(4);
        for i in 0..4 {
            assert_eq!(t.p_individual(i), 1.0);
        }
        assert_eq!(t.p_joint(ClientSet::all(4), ClientSet::EMPTY), 1.0);
        let mut rng = DetRng::seed_from_u64(1);
        assert_eq!(t.sample_access(&mut rng), ClientSet::all(4));
    }

    #[test]
    fn joint_succeed_only_matches_all_access() {
        let mut rng = DetRng::seed_from_u64(2);
        let t = InterferenceTopology::random(6, 4, (0.1, 0.6), 0.4, &mut rng);
        for mask in 1u128..1 << 6 {
            let s = ClientSet(mask);
            assert!(
                (t.p_joint(s, ClientSet::EMPTY) - t.p_all_access(s)).abs() < 1e-12,
                "mismatch for {s}"
            );
        }
    }

    #[test]
    fn joint_distribution_sums_to_one() {
        let mut rng = DetRng::seed_from_u64(3);
        let t = InterferenceTopology::random(5, 3, (0.1, 0.7), 0.5, &mut rng);
        let all = ClientSet::all(5);
        let total: f64 = all.subsets().map(|s| t.p_joint(s, all.difference(s))).sum();
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
    }

    #[test]
    fn joint_agrees_with_monte_carlo() {
        let t = topo(3, &[(0.4, &[0, 1]), (0.3, &[1, 2]), (0.2, &[2])]);
        let mut rng = DetRng::seed_from_u64(4);
        let n = 200_000;
        let succeed = ClientSet::from_iter([0]);
        let fail = ClientSet::from_iter([1, 2]);
        let mut hits = 0usize;
        for _ in 0..n {
            let acc = t.sample_access(&mut rng);
            if succeed.is_subset_of(acc) && fail.is_disjoint(acc) {
                hits += 1;
            }
        }
        let mc = hits as f64 / n as f64;
        let exact = t.p_joint(succeed, fail);
        assert!((mc - exact).abs() < 0.005, "mc {mc} vs exact {exact}");
    }

    #[test]
    fn sample_access_distribution_matches_p_individual() {
        let t = topo(2, &[(0.3, &[0]), (0.5, &[0, 1])]);
        let mut rng = DetRng::seed_from_u64(5);
        let n = 100_000;
        let mut c0 = 0;
        for _ in 0..n {
            if t.sample_access(&mut rng).contains(0) {
                c0 += 1;
            }
        }
        let emp = c0 as f64 / n as f64;
        assert!((emp - 0.35).abs() < 0.005, "{emp}");
    }

    #[test]
    fn canonicalize_merges_duplicates_and_drops_empty() {
        let t = topo(
            3,
            &[(0.5, &[0, 1]), (0.5, &[0, 1]), (0.0, &[2]), (0.3, &[])],
        );
        let c = t.canonicalize();
        assert_eq!(c.n_hidden(), 1);
        // Two q=0.5 HTs on {0,1} merge to q = 1 − 0.25 = 0.75.
        assert!((c.hts[0].q - 0.75).abs() < 1e-12);
        assert_eq!(c.hts[0].edges, ClientSet::from_iter([0, 1]));
        // Access probabilities preserved.
        for i in 0..3 {
            assert!((c.p_individual(i) - t.p_individual(i)).abs() < 1e-12);
        }
    }

    #[test]
    fn random_topology_has_no_edgeless_hts() {
        let mut rng = DetRng::seed_from_u64(6);
        for trial in 0..50 {
            let t = InterferenceTopology::random(8, 5, (0.1, 0.9), 0.2, &mut rng);
            assert_eq!(t.n_hidden(), 5, "trial {trial}");
            assert!(t.hts.iter().all(|ht| !ht.edges.is_empty()));
        }
    }

    #[test]
    fn validation_rejects_bad_q_and_edges() {
        assert!(HiddenTerminal::new(1.5, ClientSet::singleton(0)).is_err());
        assert!(HiddenTerminal::new(f64::NAN, ClientSet::singleton(0)).is_err());
        let bad = InterferenceTopology::new(
            2,
            vec![HiddenTerminal {
                q: 0.5,
                edges: ClientSet::singleton(5),
            }],
        );
        assert!(bad.is_err());
    }

    #[test]
    fn hts_of_lists_adjacency() {
        let t = topo(3, &[(0.4, &[0, 1]), (0.3, &[1, 2])]);
        assert_eq!(t.hts_of(0), vec![0]);
        assert_eq!(t.hts_of(1), vec![0, 1]);
        assert_eq!(t.hts_of(2), vec![1]);
        assert_eq!(t.clients_of(0), ClientSet::from_iter([0, 1]));
    }

    fn make_prop() -> Propagation<LogDistance> {
        Propagation::new(LogDistance::indoor_5ghz(), ShadowingField::disabled())
    }

    #[test]
    fn extraction_finds_hidden_terminal() {
        // eNB far from the WiFi node (can't sense it); UE 0 close to
        // it (senses it); UE 1 also far.
        let enb = Node::new(0, NodeKind::Enb, Point::new(0.0, 0.0));
        let ues = [
            Node::new(1, NodeKind::Ue, Point::new(60.0, 0.0)),
            Node::new(2, NodeKind::Ue, Point::new(5.0, 5.0)),
        ];
        let wifi = [Node::new(3, NodeKind::WifiSta, Point::new(70.0, 0.0))];
        let mut prop = make_prop();
        let gt = extract_ground_truth(&enb, &ues, &wifi, &mut prop, &SensingThresholds::default());
        assert_eq!(gt.topology.n_hidden(), 1);
        assert!(gt.topology.hts[0].edges.contains(0));
        assert!(!gt.topology.hts[0].edges.contains(1));
        assert_eq!(gt.ht_nodes.len(), 1);
    }

    #[test]
    fn extraction_ignores_wifi_near_enb() {
        let enb = Node::new(0, NodeKind::Enb, Point::new(0.0, 0.0));
        let ues = [Node::new(1, NodeKind::Ue, Point::new(10.0, 0.0))];
        let wifi = [Node::new(2, NodeKind::WifiSta, Point::new(3.0, 0.0))];
        let mut prop = make_prop();
        let gt = extract_ground_truth(&enb, &ues, &wifi, &mut prop, &SensingThresholds::default());
        assert_eq!(gt.topology.n_hidden(), 0);
    }

    #[test]
    fn lte_cell_sees_more_hidden_terminals_than_wifi_cell() {
        // Fig. 4c's mechanism: the same geometry yields more hidden
        // terminals when the cell uses energy detection (LTE) than
        // when it uses preamble detection (WiFi).
        let mut rng = DetRng::seed_from_u64(7);
        let region = crate::geometry::Region::square(120.0);
        let mut lte_total = 0usize;
        let mut wifi_total = 0usize;
        for _trial in 0..20 {
            let mut prop = make_prop();
            let head = Node::new(0, NodeKind::Enb, region.center());
            let clients: Vec<Node> = region
                .sample_uniform_n(4, &mut rng)
                .into_iter()
                .enumerate()
                .map(|(i, p)| Node::new(1 + i as u32, NodeKind::Ue, p))
                .collect();
            let others: Vec<Node> = region
                .sample_uniform_n(10, &mut rng)
                .into_iter()
                .enumerate()
                .map(|(i, p)| Node::new(100 + i as u32, NodeKind::WifiSta, p))
                .collect();
            let th = SensingThresholds::default();
            let floor = crate::power::Dbm(-90.0);
            lte_total +=
                count_hidden_terminals(&head, &clients, &others, &mut prop, &th, true, floor).1;
            wifi_total +=
                count_hidden_terminals(&head, &clients, &others, &mut prop, &th, false, floor).1;
        }
        assert!(
            lte_total > wifi_total,
            "lte {lte_total} should exceed wifi {wifi_total}"
        );
    }
}
