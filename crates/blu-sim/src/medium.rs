//! Medium activity timelines.
//!
//! A transmitter's behaviour, as far as a CCA-performing listener is
//! concerned, is fully described by *when it is on the air*. The WiFi
//! DCF simulation emits one [`ActivityTimeline`] per hidden terminal;
//! the LTE side queries them at CCA instants. Timelines are also the
//! unit of trace capture/combination in `blu-traces` (the paper builds
//! large emulated topologies by splicing independently recorded
//! activity timelines together, §4.2.1).

use crate::time::Micros;
use serde::{Deserialize, Serialize};

/// A half-open busy interval `[start, end)` on the medium.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BusyInterval {
    /// First busy microsecond.
    pub start: Micros,
    /// One past the last busy microsecond.
    pub end: Micros,
}

impl BusyInterval {
    /// Construct; `end` must be after `start`.
    pub fn new(start: Micros, end: Micros) -> Self {
        assert!(end > start, "empty or negative busy interval");
        BusyInterval { start, end }
    }

    /// Interval duration.
    pub fn duration(&self) -> Micros {
        self.end - self.start
    }

    /// Whether instant `t` lies inside.
    pub fn contains(&self, t: Micros) -> bool {
        self.start <= t && t < self.end
    }

    /// Whether this interval overlaps `[t0, t1)`.
    pub fn overlaps(&self, t0: Micros, t1: Micros) -> bool {
        self.start < t1 && t0 < self.end
    }
}

/// A single transmitter's on-air history: sorted, non-overlapping
/// busy intervals.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ActivityTimeline {
    intervals: Vec<BusyInterval>,
}

impl ActivityTimeline {
    /// An empty (always idle) timeline.
    pub fn new() -> Self {
        ActivityTimeline::default()
    }

    /// Build from pre-sorted, non-overlapping intervals.
    ///
    /// Panics (debug) if invariants are violated.
    pub fn from_intervals(intervals: Vec<BusyInterval>) -> Self {
        for w in intervals.windows(2) {
            debug_assert!(
                w[0].end <= w[1].start,
                "intervals overlap or out of order: {w:?}"
            );
        }
        ActivityTimeline { intervals }
    }

    /// Append a busy interval; must start at or after the previous
    /// interval's end (merges if touching).
    pub fn push(&mut self, start: Micros, end: Micros) {
        assert!(end > start, "empty busy interval");
        if let Some(last) = self.intervals.last_mut() {
            assert!(
                start >= last.end,
                "busy interval not appended in time order"
            );
            if start == last.end {
                last.end = end;
                return;
            }
        }
        self.intervals.push(BusyInterval::new(start, end));
    }

    /// The recorded intervals.
    pub fn intervals(&self) -> &[BusyInterval] {
        &self.intervals
    }

    /// Number of busy intervals.
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// Whether the timeline has no busy time.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Whether the transmitter is on the air at instant `t`.
    /// O(log n) binary search.
    pub fn busy_at(&self, t: Micros) -> bool {
        self.intervals
            .binary_search_by(|iv| {
                if iv.end <= t {
                    std::cmp::Ordering::Less
                } else if iv.start > t {
                    std::cmp::Ordering::Greater
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// Whether the transmitter is on the air at any point in `[t0, t1)`.
    pub fn busy_in(&self, t0: Micros, t1: Micros) -> bool {
        if t1 <= t0 {
            return false;
        }
        // First interval ending after t0:
        let idx = self.intervals.partition_point(|iv| iv.end <= t0);
        self.intervals
            .get(idx)
            .is_some_and(|iv| iv.overlaps(t0, t1))
    }

    /// Total busy microseconds within `[t0, t1)`.
    pub fn busy_time_in(&self, t0: Micros, t1: Micros) -> Micros {
        if t1 <= t0 {
            return Micros::ZERO;
        }
        let idx = self.intervals.partition_point(|iv| iv.end <= t0);
        let mut total = 0u64;
        for iv in &self.intervals[idx..] {
            if iv.start >= t1 {
                break;
            }
            let s = iv.start.max(t0);
            let e = iv.end.min(t1);
            total += e.as_u64() - s.as_u64();
        }
        Micros(total)
    }

    /// Fraction of `[t0, t1)` that is busy (airtime utilization).
    pub fn airtime_in(&self, t0: Micros, t1: Micros) -> f64 {
        if t1 <= t0 {
            return 0.0;
        }
        self.busy_time_in(t0, t1).as_u64() as f64 / (t1 - t0).as_u64() as f64
    }

    /// Earliest instant at or after `t` when the medium is idle
    /// (i.e. the end of the busy interval containing `t`, or `t`).
    pub fn idle_at_or_after(&self, t: Micros) -> Micros {
        let idx = self.intervals.partition_point(|iv| iv.end <= t);
        match self.intervals.get(idx) {
            Some(iv) if iv.contains(t) => iv.end,
            _ => t,
        }
    }

    /// Start of the first busy interval at or after `t`, if any.
    pub fn next_busy_start(&self, t: Micros) -> Option<Micros> {
        let idx = self.intervals.partition_point(|iv| iv.end <= t);
        self.intervals.get(idx).map(|iv| iv.start.max(t))
    }

    /// End of the last busy interval (timeline horizon).
    pub fn horizon(&self) -> Micros {
        self.intervals.last().map_or(Micros::ZERO, |iv| iv.end)
    }

    /// Shift every interval later by `offset` (used when splicing
    /// independently recorded traces onto a common clock).
    pub fn shifted(&self, offset: Micros) -> ActivityTimeline {
        ActivityTimeline {
            intervals: self
                .intervals
                .iter()
                .map(|iv| BusyInterval::new(iv.start + offset, iv.end + offset))
                .collect(),
        }
    }

    /// Restrict to `[t0, t1)` and rebase so `t0` becomes time zero.
    pub fn window(&self, t0: Micros, t1: Micros) -> ActivityTimeline {
        let mut out = ActivityTimeline::new();
        for iv in &self.intervals {
            if iv.end <= t0 {
                continue;
            }
            if iv.start >= t1 {
                break;
            }
            let s = iv.start.max(t0) - t0;
            let e = iv.end.min(t1) - t0;
            out.push(s, e);
        }
        out
    }
}

/// Merge several timelines into the union "any of them busy" timeline
/// (used to compute a listener's aggregate channel occupancy).
pub fn union(timelines: &[&ActivityTimeline]) -> ActivityTimeline {
    let mut all: Vec<BusyInterval> = timelines
        .iter()
        .flat_map(|t| t.intervals().iter().copied())
        .collect();
    all.sort_by_key(|iv| iv.start);
    let mut out = ActivityTimeline::new();
    let mut cur: Option<BusyInterval> = None;
    for iv in all {
        match cur {
            None => cur = Some(iv),
            Some(ref mut c) => {
                if iv.start <= c.end {
                    c.end = c.end.max(iv.end);
                } else {
                    out.push(c.start, c.end);
                    cur = Some(iv);
                }
            }
        }
    }
    if let Some(c) = cur {
        out.push(c.start, c.end);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tl(spec: &[(u64, u64)]) -> ActivityTimeline {
        let mut t = ActivityTimeline::new();
        for &(s, e) in spec {
            t.push(Micros(s), Micros(e));
        }
        t
    }

    #[test]
    fn busy_at_point_queries() {
        let t = tl(&[(10, 20), (30, 40)]);
        assert!(!t.busy_at(Micros(5)));
        assert!(t.busy_at(Micros(10)));
        assert!(t.busy_at(Micros(19)));
        assert!(!t.busy_at(Micros(20)));
        assert!(!t.busy_at(Micros(25)));
        assert!(t.busy_at(Micros(35)));
        assert!(!t.busy_at(Micros(40)));
    }

    #[test]
    fn busy_in_range_queries() {
        let t = tl(&[(10, 20), (30, 40)]);
        assert!(t.busy_in(Micros(0), Micros(11)));
        assert!(!t.busy_in(Micros(20), Micros(30)));
        assert!(t.busy_in(Micros(25), Micros(31)));
        assert!(t.busy_in(Micros(15), Micros(16)));
        assert!(!t.busy_in(Micros(40), Micros(100)));
        assert!(!t.busy_in(Micros(5), Micros(5)));
    }

    #[test]
    fn busy_time_accumulates_partial_overlaps() {
        let t = tl(&[(10, 20), (30, 40)]);
        assert_eq!(t.busy_time_in(Micros(0), Micros(50)), Micros(20));
        assert_eq!(t.busy_time_in(Micros(15), Micros(35)), Micros(10));
        assert_eq!(t.busy_time_in(Micros(12), Micros(18)), Micros(6));
        assert!((t.airtime_in(Micros(0), Micros(100)) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn push_merges_touching_intervals() {
        let mut t = ActivityTimeline::new();
        t.push(Micros(0), Micros(10));
        t.push(Micros(10), Micros(20));
        assert_eq!(t.len(), 1);
        assert_eq!(t.intervals()[0], BusyInterval::new(Micros(0), Micros(20)));
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_push_panics() {
        let mut t = ActivityTimeline::new();
        t.push(Micros(10), Micros(20));
        t.push(Micros(5), Micros(8));
    }

    #[test]
    fn union_merges_overlaps() {
        let a = tl(&[(0, 10), (20, 30)]);
        let b = tl(&[(5, 25), (40, 50)]);
        let u = union(&[&a, &b]);
        assert_eq!(
            u.intervals(),
            &[
                BusyInterval::new(Micros(0), Micros(30)),
                BusyInterval::new(Micros(40), Micros(50)),
            ]
        );
    }

    #[test]
    fn union_of_nothing_is_empty() {
        let u = union(&[]);
        assert!(u.is_empty());
        assert_eq!(u.horizon(), Micros::ZERO);
    }

    #[test]
    fn shifted_and_window() {
        let t = tl(&[(10, 20), (30, 40)]);
        let s = t.shifted(Micros(100));
        assert!(s.busy_at(Micros(115)));
        assert!(!s.busy_at(Micros(15)));

        let w = t.window(Micros(15), Micros(35));
        // [15,20) -> [0,5); [30,35) -> [15,20)
        assert_eq!(
            w.intervals(),
            &[
                BusyInterval::new(Micros(0), Micros(5)),
                BusyInterval::new(Micros(15), Micros(20)),
            ]
        );
    }

    #[test]
    fn horizon_tracks_last_interval() {
        assert_eq!(tl(&[(10, 20), (30, 44)]).horizon(), Micros(44));
    }

    #[test]
    fn idle_at_or_after_skips_busy() {
        let t = tl(&[(10, 20), (30, 40)]);
        assert_eq!(t.idle_at_or_after(Micros(5)), Micros(5));
        assert_eq!(t.idle_at_or_after(Micros(10)), Micros(20));
        assert_eq!(t.idle_at_or_after(Micros(15)), Micros(20));
        assert_eq!(t.idle_at_or_after(Micros(20)), Micros(20));
        assert_eq!(t.idle_at_or_after(Micros(35)), Micros(40));
        assert_eq!(t.idle_at_or_after(Micros(50)), Micros(50));
    }

    #[test]
    fn next_busy_start_lookahead() {
        let t = tl(&[(10, 20), (30, 40)]);
        assert_eq!(t.next_busy_start(Micros(0)), Some(Micros(10)));
        assert_eq!(t.next_busy_start(Micros(15)), Some(Micros(15)));
        assert_eq!(t.next_busy_start(Micros(20)), Some(Micros(30)));
        assert_eq!(t.next_busy_start(Micros(40)), None);
    }
}
