//! Link budget and SINR computation.
//!
//! Combines large-scale propagation (path loss + shadowing) with
//! small-scale fading into received power, and aggregates interference
//! in the linear domain into an SINR that `blu-phy` maps to a rate.

use crate::power::{ratio_to_db, Db, Dbm, MilliWatts};
use serde::{Deserialize, Serialize};

/// Thermal noise floor for a given bandwidth at room temperature with
/// a typical receiver noise figure.
///
/// `N = −174 dBm/Hz + 10·log10(BW) + NF`.
pub fn noise_floor(bandwidth_hz: f64, noise_figure_db: f64) -> Dbm {
    assert!(bandwidth_hz > 0.0);
    Dbm(-174.0 + 10.0 * bandwidth_hz.log10() + noise_figure_db)
}

/// Noise floor for a 10 MHz LTE carrier with a 7 dB noise figure
/// (the paper's configuration: 10 MHz LTE signal).
pub fn lte_10mhz_noise_floor() -> Dbm {
    noise_floor(10e6, 7.0)
}

/// One received signal component at a receiver.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Received {
    /// Average received power (large-scale only).
    pub power: Dbm,
    /// Small-scale power gain multiplier (`|h|²`, mean 1); 1.0 if
    /// fading is not modelled on this link.
    pub fading_gain: f64,
}

impl Received {
    /// Effective linear received power including fading.
    pub fn effective_mw(&self) -> MilliWatts {
        MilliWatts(self.power.to_milliwatts().0 * self.fading_gain.max(0.0))
    }
}

/// Compute SINR (as a linear ratio) of a desired signal against a set
/// of interferers and a noise floor.
pub fn sinr_linear(signal: Received, interferers: &[Received], noise: Dbm) -> f64 {
    let s = signal.effective_mw().0;
    let i: f64 = interferers.iter().map(|r| r.effective_mw().0).sum();
    let n = noise.to_milliwatts().0;
    s / (i + n)
}

/// Compute SINR in dB.
pub fn sinr_db(signal: Received, interferers: &[Received], noise: Dbm) -> Db {
    ratio_to_db(sinr_linear(signal, interferers, noise))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_floor_10mhz() {
        // −174 + 70 + 7 = −97 dBm
        let n = lte_10mhz_noise_floor();
        assert!((n.0 - (-97.0)).abs() < 1e-9, "{n:?}");
    }

    #[test]
    fn snr_without_interference() {
        let sig = Received {
            power: Dbm(-67.0),
            fading_gain: 1.0,
        };
        let snr = sinr_db(sig, &[], lte_10mhz_noise_floor());
        assert!((snr.0 - 30.0).abs() < 1e-6, "{snr:?}");
    }

    #[test]
    fn interference_dominates_noise() {
        let sig = Received {
            power: Dbm(-60.0),
            fading_gain: 1.0,
        };
        let intf = Received {
            power: Dbm(-70.0),
            fading_gain: 1.0,
        };
        let sinr = sinr_db(sig, &[intf], Dbm(-120.0));
        assert!((sinr.0 - 10.0).abs() < 0.01, "{sinr:?}");
    }

    #[test]
    fn fading_scales_power() {
        let sig = Received {
            power: Dbm(-60.0),
            fading_gain: 0.5,
        };
        // Half power = −3.01 dB.
        let snr = sinr_db(sig, &[], Dbm(-90.0));
        assert!((snr.0 - (30.0 - 3.0103)).abs() < 0.01, "{snr:?}");
    }

    #[test]
    fn multiple_interferers_sum_linearly() {
        let sig = Received {
            power: Dbm(-60.0),
            fading_gain: 1.0,
        };
        let i1 = Received {
            power: Dbm(-70.0),
            fading_gain: 1.0,
        };
        let sinr_one = sinr_linear(sig, &[i1], Dbm(-150.0));
        let sinr_two = sinr_linear(sig, &[i1, i1], Dbm(-150.0));
        assert!((sinr_one / sinr_two - 2.0).abs() < 1e-6);
    }

    #[test]
    fn negative_fading_clamped() {
        let sig = Received {
            power: Dbm(-60.0),
            fading_gain: -1.0,
        };
        assert_eq!(sig.effective_mw(), MilliWatts(0.0));
    }
}
