//! Clear-channel assessment and the WiFi/LTE sensing asymmetry.
//!
//! The root cause of the paper's Fig. 4c: WiFi nodes detect other WiFi
//! via *preamble (carrier) sensing* at ≈ −82 dBm, but a heterogeneous
//! LTE/WiFi pair must fall back to *energy detection* at −72 dBm (LAA
//! rule) or −62 dBm (WiFi's ED threshold for non-WiFi signals). The
//! weaker sensitivity inflates the number of hidden terminals when an
//! LTE cell replaces a WiFi cell.

use crate::power::Dbm;
use serde::{Deserialize, Serialize};

/// How a node detects an ongoing transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SensingMode {
    /// WiFi preamble/carrier sensing of another WiFi signal.
    PreambleDetect,
    /// Energy detection (used across technologies: LTE↔WiFi and
    /// LAA's own CCA).
    EnergyDetect,
}

/// Sensing thresholds in force for a deployment.
///
/// Defaults follow 802.11/3GPP practice and the ranges quoted in the
/// paper (§2.2: WiFi −85…−82 dBm carrier sense; energy detection
/// −72…−62 dBm).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensingThresholds {
    /// WiFi→WiFi preamble-detection threshold.
    pub preamble_dbm: Dbm,
    /// LAA energy-detection threshold (LTE node sensing anything,
    /// and the UE's pre-grant CCA).
    pub lte_energy_dbm: Dbm,
    /// WiFi's energy-detection threshold for non-WiFi signals.
    pub wifi_energy_dbm: Dbm,
}

impl Default for SensingThresholds {
    fn default() -> Self {
        SensingThresholds {
            preamble_dbm: Dbm(-82.0),
            lte_energy_dbm: Dbm(-72.0),
            wifi_energy_dbm: Dbm(-62.0),
        }
    }
}

impl SensingThresholds {
    /// Threshold a *listener* technology applies to a *source*
    /// technology's signal.
    ///
    /// * WiFi listening to WiFi → preamble detect (most sensitive).
    /// * WiFi listening to LTE → WiFi energy detection.
    /// * LTE listening to anything → LAA energy detection.
    pub fn threshold(&self, listener_is_wifi: bool, source_is_wifi: bool) -> Dbm {
        match (listener_is_wifi, source_is_wifi) {
            (true, true) => self.preamble_dbm,
            (true, false) => self.wifi_energy_dbm,
            (false, _) => self.lte_energy_dbm,
        }
    }

    /// Whether a listener senses (and thus defers to) a source whose
    /// signal arrives at `rx_power`.
    pub fn senses(&self, listener_is_wifi: bool, source_is_wifi: bool, rx_power: Dbm) -> bool {
        rx_power >= self.threshold(listener_is_wifi, source_is_wifi)
    }
}

/// Result of a UE's pre-grant CCA (LAA type-1/type-2 access).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CcaOutcome {
    /// Channel idle: the UE may use its grant.
    Idle,
    /// Channel busy: the UE must forfeit the grant (the paper's
    /// under-utilization event).
    Busy,
}

impl CcaOutcome {
    /// Evaluate energy-detect CCA from a total received interference
    /// power against a threshold.
    pub fn from_energy(total_interference: Dbm, threshold: Dbm) -> Self {
        if total_interference >= threshold {
            CcaOutcome::Busy
        } else {
            CcaOutcome::Idle
        }
    }

    /// Whether the outcome permits transmission.
    pub fn is_idle(self) -> bool {
        matches!(self, CcaOutcome::Idle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_thresholds_ordering() {
        let t = SensingThresholds::default();
        // Preamble detection is the most sensitive (lowest threshold).
        assert!(t.preamble_dbm < t.lte_energy_dbm);
        assert!(t.lte_energy_dbm < t.wifi_energy_dbm);
    }

    #[test]
    fn threshold_matrix() {
        let t = SensingThresholds::default();
        assert_eq!(t.threshold(true, true), t.preamble_dbm);
        assert_eq!(t.threshold(true, false), t.wifi_energy_dbm);
        assert_eq!(t.threshold(false, true), t.lte_energy_dbm);
        assert_eq!(t.threshold(false, false), t.lte_energy_dbm);
    }

    #[test]
    fn asymmetry_creates_hidden_terminals() {
        // A WiFi signal arriving at −78 dBm: a WiFi listener defers
        // (−78 ≥ −82) but an LTE listener does not (−78 < −72) — the
        // source is *hidden* to LTE. This is Fig. 4c's mechanism.
        let t = SensingThresholds::default();
        let rx = Dbm(-78.0);
        assert!(t.senses(true, true, rx));
        assert!(!t.senses(false, true, rx));
    }

    #[test]
    fn cca_outcome() {
        let th = Dbm(-72.0);
        assert_eq!(CcaOutcome::from_energy(Dbm(-70.0), th), CcaOutcome::Busy);
        assert_eq!(CcaOutcome::from_energy(Dbm(-72.0), th), CcaOutcome::Busy);
        assert_eq!(CcaOutcome::from_energy(Dbm(-80.0), th), CcaOutcome::Idle);
        assert!(CcaOutcome::Idle.is_idle());
        assert!(!CcaOutcome::Busy.is_idle());
    }
}
