//! Compact sets of client indices.
//!
//! Client/UE counts in the paper top out at 24–25 (plus headroom for
//! stress tests), so a 128-bit bitmask is a perfect fit: set algebra
//! is a single instruction and the scheduler's inner loops (which
//! enumerate subsets of an RB's over-scheduled group, Eqn. 4) stay
//! allocation-free.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A set of client indices in `[0, 128)`, stored as a bitmask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct ClientSet(pub u128);

impl ClientSet {
    /// The empty set.
    pub const EMPTY: ClientSet = ClientSet(0);

    /// Maximum representable client index plus one.
    pub const CAPACITY: usize = 128;

    /// A singleton set.
    pub fn singleton(i: usize) -> Self {
        assert!(i < Self::CAPACITY, "client index {i} out of range");
        ClientSet(1u128 << i)
    }

    /// The set `{0, 1, …, n−1}`.
    pub fn all(n: usize) -> Self {
        assert!(n <= Self::CAPACITY);
        if n == Self::CAPACITY {
            ClientSet(u128::MAX)
        } else {
            ClientSet((1u128 << n) - 1)
        }
    }

    /// Build from an iterator of indices (also available through the
    /// `FromIterator` impl; the inherent method keeps callers free of
    /// a `use` for the common case).
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = ClientSet::EMPTY;
        for i in iter {
            s.insert(i);
        }
        s
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of members.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Membership test.
    pub fn contains(self, i: usize) -> bool {
        i < Self::CAPACITY && (self.0 >> i) & 1 == 1
    }

    /// Insert a member in place.
    pub fn insert(&mut self, i: usize) {
        assert!(i < Self::CAPACITY, "client index {i} out of range");
        self.0 |= 1u128 << i;
    }

    /// Remove a member in place.
    pub fn remove(&mut self, i: usize) {
        if i < Self::CAPACITY {
            self.0 &= !(1u128 << i);
        }
    }

    /// Set union.
    pub fn union(self, other: ClientSet) -> ClientSet {
        ClientSet(self.0 | other.0)
    }

    /// Set intersection.
    pub fn intersection(self, other: ClientSet) -> ClientSet {
        ClientSet(self.0 & other.0)
    }

    /// Set difference `self \ other`.
    pub fn difference(self, other: ClientSet) -> ClientSet {
        ClientSet(self.0 & !other.0)
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset_of(self, other: ClientSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Whether the two sets share no members.
    pub fn is_disjoint(self, other: ClientSet) -> bool {
        self.0 & other.0 == 0
    }

    /// With member `i` added (pure).
    pub fn with(self, i: usize) -> ClientSet {
        let mut s = self;
        s.insert(i);
        s
    }

    /// With member `i` removed (pure).
    pub fn without(self, i: usize) -> ClientSet {
        let mut s = self;
        s.remove(i);
        s
    }

    /// Iterate members in increasing order.
    pub fn iter(self) -> ClientSetIter {
        ClientSetIter(self.0)
    }

    /// Iterate all subsets of this set (including the empty set and
    /// the set itself). Number of subsets is `2^len`; callers guard
    /// set size (the scheduler bounds groups at `2M ≤ 16`).
    pub fn subsets(self) -> SubsetIter {
        SubsetIter {
            mask: self.0,
            current: 0,
            done: false,
        }
    }

    /// Iterate subsets of exactly `k` members.
    pub fn subsets_of_size(self, k: usize) -> impl Iterator<Item = ClientSet> {
        self.subsets().filter(move |s| s.len() == k)
    }
}

impl FromIterator<usize> for ClientSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        ClientSet::from_iter(iter)
    }
}

impl IntoIterator for ClientSet {
    type Item = usize;
    type IntoIter = ClientSetIter;
    fn into_iter(self) -> ClientSetIter {
        self.iter()
    }
}

impl fmt::Display for ClientSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (n, i) in self.iter().enumerate() {
            if n > 0 {
                write!(f, ",")?;
            }
            write!(f, "{i}")?;
        }
        write!(f, "}}")
    }
}

/// Iterator over set members (ascending).
#[derive(Debug, Clone)]
pub struct ClientSetIter(u128);

impl Iterator for ClientSetIter {
    type Item = usize;
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            return None;
        }
        let i = self.0.trailing_zeros() as usize;
        self.0 &= self.0 - 1;
        Some(i)
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for ClientSetIter {}

/// Iterator over all subsets of a mask, using the standard
/// `(current − mask) & mask` sub-mask enumeration trick.
#[derive(Debug, Clone)]
pub struct SubsetIter {
    mask: u128,
    current: u128,
    done: bool,
}

impl Iterator for SubsetIter {
    type Item = ClientSet;
    fn next(&mut self) -> Option<ClientSet> {
        if self.done {
            return None;
        }
        let out = ClientSet(self.current);
        if self.current == self.mask {
            self.done = true;
        } else {
            self.current = (self.current.wrapping_sub(self.mask)) & self.mask;
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_membership() {
        let mut s = ClientSet::EMPTY;
        assert!(s.is_empty());
        s.insert(3);
        s.insert(17);
        assert_eq!(s.len(), 2);
        assert!(s.contains(3) && s.contains(17));
        assert!(!s.contains(4));
        s.remove(3);
        assert!(!s.contains(3));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn all_and_singleton() {
        assert_eq!(ClientSet::all(5).len(), 5);
        assert_eq!(ClientSet::all(0), ClientSet::EMPTY);
        assert_eq!(ClientSet::all(128).len(), 128);
        assert_eq!(ClientSet::singleton(7).iter().collect::<Vec<_>>(), vec![7]);
    }

    #[test]
    fn set_algebra() {
        let a = ClientSet::from_iter([1, 2, 3]);
        let b = ClientSet::from_iter([3, 4]);
        assert_eq!(a.union(b), ClientSet::from_iter([1, 2, 3, 4]));
        assert_eq!(a.intersection(b), ClientSet::singleton(3));
        assert_eq!(a.difference(b), ClientSet::from_iter([1, 2]));
        assert!(ClientSet::from_iter([1, 2]).is_subset_of(a));
        assert!(!a.is_subset_of(b));
        assert!(a.is_disjoint(ClientSet::from_iter([5, 6])));
        assert!(!a.is_disjoint(b));
    }

    #[test]
    fn iteration_ascending() {
        let s = ClientSet::from_iter([9, 1, 64, 127]);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 9, 64, 127]);
        assert_eq!(s.iter().len(), 4);
    }

    #[test]
    fn subsets_enumeration() {
        let s = ClientSet::from_iter([2, 5, 9]);
        let subs: Vec<ClientSet> = s.subsets().collect();
        assert_eq!(subs.len(), 8);
        assert!(subs.contains(&ClientSet::EMPTY));
        assert!(subs.contains(&s));
        for sub in &subs {
            assert!(sub.is_subset_of(s));
        }
        // All distinct.
        let mut raw: Vec<u128> = subs.iter().map(|s| s.0).collect();
        raw.sort_unstable();
        raw.dedup();
        assert_eq!(raw.len(), 8);
    }

    #[test]
    fn subsets_of_empty_set() {
        let subs: Vec<ClientSet> = ClientSet::EMPTY.subsets().collect();
        assert_eq!(subs, vec![ClientSet::EMPTY]);
    }

    #[test]
    fn subsets_of_size_counts() {
        let s = ClientSet::all(6);
        assert_eq!(s.subsets_of_size(0).count(), 1);
        assert_eq!(s.subsets_of_size(2).count(), 15);
        assert_eq!(s.subsets_of_size(3).count(), 20);
        assert_eq!(s.subsets_of_size(6).count(), 1);
    }

    #[test]
    fn with_without_pure() {
        let s = ClientSet::from_iter([1]);
        let t = s.with(2);
        assert!(t.contains(2) && !s.contains(2));
        assert_eq!(t.without(2), s);
    }

    #[test]
    fn display_format() {
        assert_eq!(ClientSet::from_iter([0, 3, 7]).to_string(), "{0,3,7}");
        assert_eq!(ClientSet::EMPTY.to_string(), "{}");
    }

    #[test]
    #[should_panic]
    fn out_of_range_insert_panics() {
        let mut s = ClientSet::EMPTY;
        s.insert(128);
    }
}
