//! End-to-end tests of `blu serve` + `blu ctl` as real processes:
//! a full client session against the daemon, and the graceful-drain
//! contract under a real SIGTERM — final versioned checkpoint, exit
//! code 0, and a `--resume` run that replays bit-identically.

#![cfg(unix)]

use std::path::PathBuf;
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

fn blu() -> Command {
    Command::new(env!("CARGO_BIN_EXE_blu"))
}

fn temp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("blu-serve-cli-{}-{name}", std::process::id()))
}

/// Start a daemon on an ephemeral port; returns the child and the
/// address file it publishes.
fn spawn_serve(dir: &PathBuf, resume: bool, tag: &str) -> (Child, PathBuf) {
    let addr_file = temp(&format!("{tag}.addr"));
    let _ = std::fs::remove_file(&addr_file);
    let mut cmd = blu();
    cmd.args(["serve", "--addr", "127.0.0.1:0", "--dir"])
        .arg(dir)
        .arg("--port-file")
        .arg(&addr_file)
        .stdout(Stdio::null())
        .stderr(Stdio::inherit());
    if resume {
        cmd.arg("--resume");
    }
    let child = cmd.spawn().expect("spawn blu serve");
    // Wait for the daemon to publish its bound address.
    let deadline = Instant::now() + Duration::from_secs(30);
    while !addr_file.exists() {
        assert!(Instant::now() < deadline, "daemon never published its addr");
        std::thread::sleep(Duration::from_millis(20));
    }
    (child, addr_file)
}

fn ctl(addr_file: &PathBuf, args: &[&str]) -> Output {
    let out = blu()
        .args(["ctl", "--addr-file"])
        .arg(addr_file)
        .args(args)
        .output()
        .expect("run blu ctl");
    assert!(
        out.status.success(),
        "ctl {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

fn digest(addr_file: &PathBuf) -> String {
    String::from_utf8(ctl(addr_file, &["digest"]).stdout).unwrap()
}

fn add_two_cells(addr_file: &PathBuf) {
    ctl(addr_file, &["add", "--seed", "91", "--seconds", "15"]);
    ctl(addr_file, &["add", "--seed", "92", "--seconds", "15"]);
}

/// An uninterrupted golden session: admit, run to completion, digest.
fn golden_run(tag: &str) -> String {
    let dir = temp(&format!("{tag}-golden-dir"));
    let _ = std::fs::remove_dir_all(&dir);
    let (mut child, addr_file) = spawn_serve(&dir, false, &format!("{tag}-golden"));
    add_two_cells(&addr_file);
    ctl(&addr_file, &["step", "--rounds", "100000"]);
    let golden = digest(&addr_file);
    ctl(&addr_file, &["shutdown"]);
    let status = child.wait().expect("wait for daemon");
    assert!(status.success(), "golden daemon exited {status}");
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_file(&addr_file);
    golden
}

#[test]
fn client_session_end_to_end() {
    let dir = temp("session-dir");
    let _ = std::fs::remove_dir_all(&dir);
    let (mut child, addr_file) = spawn_serve(&dir, false, "session");

    let hello = String::from_utf8(ctl(&addr_file, &["hello"]).stdout).unwrap();
    assert!(hello.contains("\"resumed_cells\": 0"), "{hello}");
    add_two_cells(&addr_file);
    ctl(&addr_file, &["step", "--rounds", "20"]);
    let status = String::from_utf8(ctl(&addr_file, &["status"]).stdout).unwrap();
    assert!(status.contains("\"Status\""), "{status}");
    let metrics = String::from_utf8(ctl(&addr_file, &["metrics"]).stdout).unwrap();
    assert!(
        metrics.contains("blu_serve_admissions_total 2"),
        "{metrics}"
    );
    assert!(metrics.contains("blu_serve_cells 2"), "{metrics}");
    ctl(&addr_file, &["snapshot"]);
    assert!(dir.join("cell-0.json").exists());
    assert!(dir.join("cell-1.serve.json").exists());
    ctl(&addr_file, &["shutdown"]);
    assert!(child.wait().unwrap().success());

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_file(&addr_file);
}

#[test]
fn sigterm_mid_burst_drains_and_resume_replays_bit_identical() {
    let golden = golden_run("sigterm");

    // Interrupted run: SIGTERM lands while a long step burst is in
    // flight.
    let dir = temp("sigterm-dir");
    let _ = std::fs::remove_dir_all(&dir);
    let (mut child, addr_file) = spawn_serve(&dir, false, "sigterm-kill");
    add_two_cells(&addr_file);
    ctl(&addr_file, &["step", "--rounds", "10"]);
    // Fire the burst from a ctl child we do NOT wait on for success:
    // the daemon may interrupt it or close the socket under it.
    let mut burst = blu()
        .args(["ctl", "--addr-file"])
        .arg(&addr_file)
        .args(["step", "--rounds", "100000"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn burst");
    std::thread::sleep(Duration::from_millis(300));

    let term = Command::new("kill")
        .arg(child.id().to_string())
        .status()
        .expect("send SIGTERM");
    assert!(term.success());
    let deadline = Instant::now() + Duration::from_secs(60);
    let status = loop {
        if let Some(status) = child.try_wait().expect("poll daemon") {
            break status;
        }
        assert!(Instant::now() < deadline, "daemon ignored SIGTERM");
        std::thread::sleep(Duration::from_millis(50));
    };
    assert!(status.success(), "SIGTERM drain must exit 0, got {status}");
    let _ = burst.wait();

    // The drain left a loadable fleet behind: versioned checkpoint and
    // sidecar per cell.
    for id in 0..2 {
        assert!(dir.join(format!("cell-{id}.json")).exists(), "cell {id}");
        assert!(dir.join(format!("cell-{id}.serve.json")).exists());
    }

    // Resume, run to completion: digests match the uninterrupted run.
    let (mut child, addr_file) = spawn_serve(&dir, true, "sigterm-resume");
    let hello = String::from_utf8(ctl(&addr_file, &["hello"]).stdout).unwrap();
    assert!(hello.contains("\"resumed_cells\": 2"), "{hello}");
    ctl(&addr_file, &["step", "--rounds", "100000"]);
    ctl(
        &addr_file,
        &["wait-done", "--min-cells", "2", "--timeout-ms", "120000"],
    );
    let resumed = digest(&addr_file);
    assert_eq!(resumed, golden, "resume must replay bit-identically");
    ctl(&addr_file, &["shutdown"]);
    assert!(child.wait().unwrap().success());

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_file(&addr_file);
}
