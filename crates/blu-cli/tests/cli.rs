//! End-to-end tests of the `blu` binary: each subcommand driven via
//! the compiled executable, chained through a real trace file.

use std::path::PathBuf;
use std::process::Command;

fn blu() -> Command {
    Command::new(env!("CARGO_BIN_EXE_blu"))
}

fn temp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("blu-cli-test-{}-{name}", std::process::id()))
}

#[test]
fn generate_inspect_infer_eval_pipeline() {
    let trace = temp("pipeline.json");
    // generate
    let out = blu()
        .args([
            "generate",
            "--ues",
            "4",
            "--wifi",
            "6",
            "--seconds",
            "10",
            "--seed",
            "5",
            "--out",
        ])
        .arg(&trace)
        .output()
        .expect("run blu generate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(trace.exists());

    // inspect
    let out = blu().arg("inspect").arg(&trace).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("hidden terminals"), "{text}");
    assert!(text.contains("UE 0"), "{text}");

    // infer
    let out = blu().arg("infer").arg(&trace).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("inferred blue-print"), "{text}");
    assert!(text.contains("vs ground truth"), "{text}");

    // eval (small, fast configuration)
    let out = blu()
        .arg("eval")
        .arg(&trace)
        .args(["--rbs", "6", "--txops", "50", "--scheduler", "pf"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("PF:"), "{text}");
    assert!(text.contains("Mbps"), "{text}");

    std::fs::remove_file(&trace).ok();
}

#[test]
fn plan_prints_schedule() {
    let out = blu()
        .args([
            "plan",
            "--clients",
            "8",
            "--k",
            "4",
            "--t",
            "3",
            "--show",
            "2",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("measurement sub-frames"), "{text}");
    assert!(text.contains("SF    0"), "{text}");
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = blu().arg("bogus").output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown command"), "{err}");
    assert!(err.contains("USAGE"), "{err}");
}

#[test]
fn missing_file_reports_error() {
    let out = blu()
        .args(["inspect", "/nonexistent/t.json"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));
}

#[test]
fn help_flags_work() {
    for cmd in ["generate", "inspect", "infer", "eval", "plan"] {
        let out = blu().args([cmd, "--help"]).output().unwrap();
        assert!(out.status.success(), "{cmd} --help failed");
        assert!(!out.stdout.is_empty());
    }
    let out = blu().arg("help").output().unwrap();
    assert!(out.status.success());
}
