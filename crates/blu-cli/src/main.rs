//! `blu` — command-line front end to the BLU reproduction.
//!
//! ```text
//! blu generate --ues 8 --wifi 10 --seconds 60 --seed 7 --out trace.json
//! blu inspect trace.json
//! blu infer trace.json
//! blu eval trace.json --scheduler blu --txops 500
//! blu plan --clients 20 --k 8 --t 50
//! blu robust --seconds 90 --faults "appear@20000 q=0.6 edges=0,1,2,3"
//! blu chaos --cells 6 --crash-frac 0.34 --torn-frac 0.5 --poison-frac 0.05
//! ```
//!
//! Every subcommand works on the JSON trace format of `blu-traces`
//! (see `blu generate`), so traces can be produced once and analyzed
//! repeatedly — the same capture-then-replay workflow the paper uses.

mod args;
mod commands;

use std::process::ExitCode;

fn usage() -> &'static str {
    "blu — blue-printing interference for LTE in unlicensed spectrum

USAGE:
    blu <COMMAND> [OPTIONS]

COMMANDS:
    generate   Generate a geometric scenario and write its trace
    inspect    Summarize a trace: topology, activity, access stats
    infer      Blue-print the hidden-terminal topology from a trace
    eval       Replay a trace through a scheduler and report metrics
    plan       Print an Algorithm-1 measurement plan
    robust     Run the degraded-mode orchestrator under scripted faults
    chaos      Storm the supervised fleet and check recovery invariants
    serve      Run the resident fleet daemon (wire protocol on TCP)
    ctl        Control a running daemon: add/step/status/drain/shutdown
    help       Show this message

Run `blu <COMMAND> --help` for per-command options."
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "generate" => commands::generate::run(rest),
        "inspect" => commands::inspect::run(rest),
        "infer" => commands::infer::run(rest),
        "eval" => commands::eval::run(rest),
        "plan" => commands::plan::run(rest),
        "robust" => commands::robust::run(rest),
        "chaos" => commands::chaos::run(rest),
        "serve" => commands::serve::run(rest),
        "ctl" => commands::ctl::run(rest),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
