//! Tiny flag parser shared by the subcommands (keeps the dependency
//! set to the workspace crates).

use std::collections::HashMap;

/// Parsed `--key value` flags plus positional arguments.
pub struct Flags {
    positional: Vec<String>,
    named: HashMap<String, String>,
    bools: Vec<String>,
}

impl Flags {
    /// Parse; `bool_flags` lists flags that take no value.
    pub fn parse(args: &[String], bool_flags: &[&str]) -> Result<Flags, String> {
        let mut positional = Vec::new();
        let mut named = HashMap::new();
        let mut bools = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                if bool_flags.contains(&name) {
                    bools.push(name.to_string());
                } else {
                    let v = it
                        .next()
                        .ok_or_else(|| format!("--{name} expects a value"))?;
                    named.insert(name.to_string(), v.clone());
                }
            } else {
                positional.push(a.clone());
            }
        }
        Ok(Flags {
            positional,
            named,
            bools,
        })
    }

    /// Positional argument by index.
    pub fn positional(&self, idx: usize) -> Option<&str> {
        self.positional.get(idx).map(|s| s.as_str())
    }

    /// A named flag's raw value.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.named.get(name).map(|s| s.as_str())
    }

    /// A parsed named flag with a default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name}: cannot parse `{v}`")),
        }
    }

    /// Whether a boolean flag was given.
    pub fn has(&self, name: &str) -> bool {
        self.bools.iter().any(|b| b == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(xs: &[&str]) -> Vec<String> {
        xs.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_mixed_args() {
        let f = Flags::parse(
            &sv(&["trace.json", "--ues", "8", "--quick", "--seed", "7"]),
            &["quick"],
        )
        .unwrap();
        assert_eq!(f.positional(0), Some("trace.json"));
        assert_eq!(f.get_or("ues", 0usize).unwrap(), 8);
        assert_eq!(f.get_or("seed", 0u64).unwrap(), 7);
        assert_eq!(f.get_or("missing", 42i32).unwrap(), 42);
        assert!(f.has("quick"));
        assert!(!f.has("verbose"));
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(Flags::parse(&sv(&["--ues"]), &[]).is_err());
    }

    #[test]
    fn bad_parse_is_an_error() {
        let f = Flags::parse(&sv(&["--ues", "eight"]), &[]).unwrap();
        assert!(f.get_or("ues", 0usize).is_err());
    }
}
