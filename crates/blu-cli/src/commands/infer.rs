//! `blu infer` — blue-print the hidden-terminal topology from a trace.

use crate::args::Flags;
use blu_core::blueprint::{
    topology_accuracy, ConstraintSystem, InferenceBackend, InferenceConfig, McmcConfig,
};
use blu_core::orchestrator::run_measurement_phase;
use blu_traces::io::load_json;
use blu_traces::stats::EmpiricalAccess;
use std::path::Path;
use std::time::Instant;

const HELP: &str = "blu infer <trace.json> — blue-print the interference topology

OPTIONS:
    --t <samples>     use an Algorithm-1 measurement phase with this many
                      joint samples per pair instead of full-trace stats
    --k <clients>     distinct clients per measurement sub-frame (default 8)
    --restarts <n>    extra random inference restarts (default 6)
    --mcmc-steps <n>  use the annealed MCMC backend with this many
                      proposals instead of gradient repair
    --t-start <f>     MCMC start temperature (default 1.0)
    --t-end <f>       MCMC end temperature (default 0.005)
    --seed <u64>      MCMC chain seed (default 1)";

/// Run the subcommand.
pub fn run(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, &["help"])?;
    if flags.has("help") {
        println!("{HELP}");
        return Ok(());
    }
    let path = flags.positional(0).ok_or("usage: blu infer <trace.json>")?;
    let t = load_json(Path::new(path)).map_err(|e| e.to_string())?;
    t.validate()?;

    let sys = match flags.get("t") {
        Some(_) => {
            let samples: u64 = flags.get_or("t", 50u64)?;
            let k: usize = flags.get_or("k", 8usize)?;
            let (est, t_max) = run_measurement_phase(&t, k, samples).map_err(|e| e.to_string())?;
            println!("measurement phase: {t_max} sub-frames (T = {samples}, K = {k})");
            ConstraintSystem::from_measurements(est.stats())
        }
        None => {
            println!("using full-trace access statistics");
            ConstraintSystem::from_measurements(&EmpiricalAccess::from_trace(&t.access))
        }
    };
    let config = InferenceConfig {
        random_restarts: flags.get_or("restarts", 6usize)?,
        ..Default::default()
    };
    let backend = match flags.get("mcmc-steps") {
        Some(_) => InferenceBackend::Mcmc {
            config: McmcConfig {
                steps: flags.get_or("mcmc-steps", 20_000usize)?,
                t_start: flags.get_or("t-start", 1.0f64)?,
                t_end: flags.get_or("t-end", 0.005f64)?,
                ..Default::default()
            },
            seed: flags.get_or("seed", 1u64)?,
        },
        None => InferenceBackend::Gradient,
    };
    let t0 = Instant::now();
    let result = backend.infer(&sys, &config);
    let latency_ms = t0.elapsed().as_secs_f64() * 1e3;

    println!(
        "\ninferred blue-print ({} repair iterations over {} restarts, residual violation {:.5}, {latency_ms:.2} ms):",
        result.iterations, result.restarts, result.violation
    );
    for (k, ht) in result.topology.hts.iter().enumerate() {
        println!("  HT {k}: q = {:.3}, blocks UEs {}", ht.q, ht.edges);
    }
    let acc = topology_accuracy(&t.ground_truth, &result.topology);
    println!(
        "\nvs ground truth: {} of {} terminals exact ({:.0}%), {} spurious, q MAE {:.3}",
        acc.exact_matches,
        acc.n_truth,
        acc.exact_fraction() * 100.0,
        acc.excess(),
        acc.q_mae
    );
    Ok(())
}
