//! Subcommand implementations.

pub mod chaos;
pub mod ctl;
pub mod eval;
pub mod generate;
pub mod infer;
pub mod inspect;
pub mod plan;
pub mod robust;
pub mod serve;

/// Silence the default panic hook for scripted fault-injection
/// panics (payloads mentioning "injected"): the robust runtime
/// catches them and converts them into fallbacks or restarts, so the
/// default hook's message-plus-backtrace would only shout over the
/// command output. Any other panic still reaches the previous hook.
/// Installed for the rest of the process — fine in a one-command
/// binary.
pub(crate) fn quiet_injected_panics() {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let payload = info.payload();
        let injected = payload
            .downcast_ref::<&str>()
            .map(|s| s.contains("injected"))
            .or_else(|| {
                payload
                    .downcast_ref::<String>()
                    .map(|s| s.contains("injected"))
            })
            .unwrap_or(false);
        if !injected {
            prev(info);
        }
    }));
}
