//! Subcommand implementations.

pub mod eval;
pub mod generate;
pub mod infer;
pub mod inspect;
pub mod plan;
pub mod robust;
