//! `blu ctl` — wire-protocol client for a running `blu serve` daemon.
//!
//! One verb per invocation, one frame each way, JSON (or raw metrics
//! text) on stdout — deliberately script-friendly: the CI smoke job
//! is a handful of `blu ctl` lines.
//!
//! ```text
//! blu ctl --addr 127.0.0.1:4915 add --seed 7 --seconds 30
//! blu ctl --addr-file /tmp/fleet.addr step --rounds 500
//! blu ctl --addr-file /tmp/fleet.addr wait-done --timeout-ms 120000
//! blu ctl --addr-file /tmp/fleet.addr digest
//! ```

use crate::args::Flags;
use blu_core::runtime::wire::{
    roundtrip, CellSpec, Request, Response, DEFAULT_MAX_FRAME, WIRE_VERSION,
};
use std::net::TcpStream;
use std::time::{Duration, Instant};

const HELP: &str = "blu ctl — control a running `blu serve` daemon

CONNECTION:
    --addr <host:port>   daemon address
    --addr-file <path>   read the address from a `blu serve --port-file`
    --timeout-ms <ms>    socket read deadline for the reply (default 600000)

VERBS:
    hello                          handshake; prints daemon version and
                                   how many cells it resumed
    add --seed <u64> --seconds <s> admit a cell (deterministic capture)
        [--priority <n>]           shed-last/readmit-first weight (default 0)
        [--stall-at <sf>]          scripted inference stall start
        [--stall-factor <n>]       stall wall-clock multiplier (default 4)
        [--churn-rate <hz>]        Poisson topology churn rate (default 0 =
                                   off; stored as integral milli-hertz)
        [--window <sf>]            streaming observation-window capacity
                                   (default 0 = phased loop)
    remove --cell <id>             final checkpoint, then retire the cell
    step --rounds <n>              advance the fleet n rounds
    status                         full JSON status report, including each
                                   streaming cell's window occupancy
    digest                         one `cell-<id> <fnv64>` line per cell
                                   (timing-normalized state digests)
    metrics                        Prometheus text counters
    snapshot                       force-persist every cell now
    drain                          close admissions, keep serving
    shutdown                       graceful stop: final checkpoints, exit
    wait-done [--min-cells <n>]    poll status until every cell's trace
              [--poll-ms <ms>]     is exhausted (default min 1 cell,
                                   poll 200 ms, bounded by --timeout-ms)

Busy and Rejected are protocol outcomes, printed and exited 0 — scripts
count them. Transport failures and daemon Errors exit nonzero.";

fn resolve_addr(flags: &Flags) -> Result<String, String> {
    if let Some(addr) = flags.get("addr") {
        return Ok(addr.to_string());
    }
    if let Some(path) = flags.get("addr-file") {
        return std::fs::read_to_string(path)
            .map(|s| s.trim().to_string())
            .map_err(|e| format!("reading --addr-file {path}: {e}"));
    }
    Err("one of --addr or --addr-file is required".into())
}

fn connect(addr: &str, timeout_ms: u64) -> Result<TcpStream, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_millis(timeout_ms)))
        .map_err(|e| format!("configuring socket: {e}"))?;
    Ok(stream)
}

fn send(addr: &str, timeout_ms: u64, req: &Request) -> Result<Response, String> {
    let mut stream = connect(addr, timeout_ms)?;
    roundtrip(&mut stream, req, DEFAULT_MAX_FRAME).map_err(|e| e.to_string())
}

/// Print a reply and fold it into an exit status. `Busy`/`Rejected`
/// are expected protocol outcomes, not command failures.
fn report(resp: &Response) -> Result<(), String> {
    match resp {
        Response::Metrics { text } => {
            print!("{text}");
            Ok(())
        }
        Response::Error { message } => Err(format!("daemon error: {message}")),
        other => {
            println!(
                "{}",
                serde_json::to_string_pretty(other).map_err(|e| e.to_string())?
            );
            Ok(())
        }
    }
}

/// Run the subcommand.
pub fn run(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, &["help"])?;
    if flags.has("help") {
        println!("{HELP}");
        return Ok(());
    }
    let verb = flags
        .positional(0)
        .ok_or("a verb is required (see --help)")?;
    let addr = resolve_addr(&flags)?;
    let timeout_ms = flags.get_or("timeout-ms", 600_000u64)?;

    match verb {
        "hello" => report(&send(
            &addr,
            timeout_ms,
            &Request::Hello {
                version: WIRE_VERSION,
            },
        )?),
        "add" => {
            let spec = CellSpec {
                seed: flags.get_or("seed", 7u64)?,
                seconds: flags.get_or("seconds", 30u64)?,
                priority: flags.get_or("priority", 0u32)?,
                stall_at: flags
                    .get("stall-at")
                    .map(str::parse)
                    .transpose()
                    .map_err(|e: std::num::ParseIntError| format!("--stall-at: {e}"))?,
                stall_factor: flags.get_or("stall-factor", 4u32)?,
                churn_millihz: {
                    let rate: f64 = flags.get_or("churn-rate", 0.0f64)?;
                    if !rate.is_finite() || rate < 0.0 {
                        return Err(format!("--churn-rate must be finite and >= 0, got {rate}"));
                    }
                    (rate * 1_000.0).round() as u64
                },
                stream_window: flags.get_or("window", 0u64)?,
            };
            report(&send(&addr, timeout_ms, &Request::AddCell { spec })?)
        }
        "remove" => {
            let cell = flags.get_or("cell", u64::MAX)?;
            if cell == u64::MAX {
                return Err("remove requires --cell <id>".into());
            }
            report(&send(&addr, timeout_ms, &Request::RemoveCell { cell })?)
        }
        "step" => {
            let rounds = flags.get_or("rounds", 1u64)?;
            report(&send(&addr, timeout_ms, &Request::Step { rounds })?)
        }
        "status" => report(&send(&addr, timeout_ms, &Request::Status)?),
        "digest" => match send(&addr, timeout_ms, &Request::Status)? {
            Response::Status(report) => {
                for cell in &report.cells {
                    println!("cell-{} {}", cell.cell, cell.digest);
                }
                Ok(())
            }
            other => report(&other),
        },
        "metrics" => report(&send(&addr, timeout_ms, &Request::Metrics)?),
        "snapshot" => report(&send(&addr, timeout_ms, &Request::Snapshot)?),
        "drain" => report(&send(&addr, timeout_ms, &Request::Drain)?),
        "shutdown" => report(&send(&addr, timeout_ms, &Request::Shutdown)?),
        "wait-done" => {
            let min_cells = flags.get_or("min-cells", 1u64)?;
            let poll = Duration::from_millis(flags.get_or("poll-ms", 200u64)?);
            let deadline = Instant::now() + Duration::from_millis(timeout_ms);
            loop {
                match send(&addr, timeout_ms, &Request::Status)? {
                    Response::Status(status) => {
                        let done = status.cells.len() as u64 >= min_cells
                            && status.cells.iter().all(|c| c.done);
                        if done {
                            println!(
                                "all {} cell(s) done after {} round(s)",
                                status.cells.len(),
                                status.counters.rounds
                            );
                            return Ok(());
                        }
                    }
                    Response::Busy => {}
                    other => report(&other)?,
                }
                if Instant::now() >= deadline {
                    return Err(format!("wait-done timed out after {timeout_ms} ms"));
                }
                std::thread::sleep(poll);
            }
        }
        other => Err(format!("unknown ctl verb `{other}`\n\n{HELP}")),
    }
}
