//! `blu chaos` — compile a deterministic fleet-scale fault storm,
//! run the supervised fleet through it, and check the recovery
//! invariants.
//!
//! The storm is compiled by [`blu_harness::chaos::ChaosPlan`] from a
//! seed and a handful of fractions, so the same command line always
//! reproduces the same faults. The run is scored against a fault-free
//! golden fleet; any violated invariant is printed and the command
//! exits nonzero.
//!
//! ```text
//! blu chaos --cells 6 --seconds 60 --seed 7 \
//!     --crash-frac 0.34 --torn-frac 0.5 --poison-frac 0.05
//! ```

use crate::args::Flags;
use blu_core::blueprint::FleetBlueprintCache;
use blu_core::orchestrator::BluConfig;
use blu_core::robust::{CheckpointPolicy, RobustConfig};
use blu_core::runtime::supervisor::{CellHealth, SupervisorConfig};
use blu_core::EmulationConfig;
use blu_harness::chaos::{
    run_chaos, verify_cache_transparency, verify_invariants, ChaosConfig, ChaosPlan,
};
use blu_phy::cell::CellConfig;
use std::path::PathBuf;

const HELP: &str = "blu chaos — deterministic fault storm against the supervised fleet

STORM SHAPE:
    --cells <n>        fleet size (default 6)
    --seconds <s>      capture duration per cell (default 60)
    --seed <u64>       master seed: cell selection, fault placement
                       and captures all derive from it (default 7)
    --crash-frac <f>   fraction of cells whose task crashes (default 0.34)
    --crashes <n>      crashes per crash-faulted cell (default 1)
    --crash-at <sf>    subframe of the first crash (default 30000)
    --crash-gap <sf>   spacing between a cell's crashes (default 4000)
    --stall-frac <f>   fraction of cells with a correlated inference
                       stall (default 0)
    --stall-factor <n> stall wall-clock multiplier (default 4)
    --poison-frac <f>  fraction of cells with NaN-poisoned
                       observations (default 0.05)
    --poison-rate <f>  per-constraint poison probability (default 0.25)
    --torn-frac <f>    fraction of crash-faulted cells whose
                       checkpoints are torn on every save (default 0.5)
    --churn-rate <hz>  Poisson topology-churn rate per cell (default 0
                       = off; churn alters the captured air, so every
                       cell counts as faulted)
    --churn-at <sf>    subframe the churn window opens (default 20000)

RUNTIME:
    --rbs <n>              resource blocks per cell (default 10)
    --stream-window <sf>   run every cell in streaming mode with this
                           observation-window capacity (0 = phased,
                           the default)
    --checkpoint-dir <dir> where cell checkpoints + supervisor
                           sidecars live (default: a throwaway
                           directory under the system temp dir)
    --checkpoint-every <sf> checkpoint cadence (default 2000)
    --max-restarts <n>     restarts before quarantine (default 3)
    --fleet-cache-capacity <n>  share blue-printing results fleet-wide
                           through the fleet blueprint cache
                           (n entries; 0 = off, the default). The
                           storm then runs twice — cached and
                           uncached — and the two outcomes must be
                           indistinguishable outside wall-clock

Exits nonzero if any recovery invariant is violated (or, with the
fleet cache on, if caching changed any observable outcome).";

/// Run the subcommand.
pub fn run(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, &["help"])?;
    if flags.has("help") {
        println!("{HELP}");
        return Ok(());
    }

    let chaos_config = ChaosConfig {
        n_cells: flags.get_or("cells", 6usize)?,
        seconds: flags.get_or("seconds", 60u64)?,
        seed: flags.get_or("seed", 7u64)?,
        crash_fraction: flags.get_or("crash-frac", 0.34f64)?,
        crashes_per_cell: flags.get_or("crashes", 1u32)?,
        crash_start_subframe: flags.get_or("crash-at", 30_000u64)?,
        crash_spacing_subframes: flags.get_or("crash-gap", 4_000u64)?,
        stall_fraction: flags.get_or("stall-frac", 0.0f64)?,
        stall_factor: flags.get_or("stall-factor", 4u32)?,
        stall_at_subframe: flags.get_or("stall-at", 10_000u64)?,
        poison_fraction: flags.get_or("poison-frac", 0.05f64)?,
        poison_rate: flags.get_or("poison-rate", 0.25f64)?,
        poison_at_subframe: flags.get_or("poison-at", 0u64)?,
        torn_fraction: flags.get_or("torn-frac", 0.5f64)?,
        churn_rate_hz: flags.get_or("churn-rate", 0.0f64)?,
        churn_start_subframe: flags.get_or("churn-at", 20_000u64)?,
    };
    let plan = ChaosPlan::compile(chaos_config).map_err(|e| e.to_string())?;
    println!("plan: {}", plan.describe());

    let mut cell = CellConfig::testbed_siso();
    cell.numerology.n_rbs = flags.get_or("rbs", 10usize)?;
    let mut config = RobustConfig::new(BluConfig::new(EmulationConfig::new(cell)));
    if let window @ 1.. = flags.get_or("stream-window", 0usize)? {
        let streaming = blu_core::robust::StreamingConfig::new(window);
        streaming.validate().map_err(|e| e.to_string())?;
        config.streaming = Some(streaming);
    }
    let (dir, throwaway) = match flags.get("checkpoint-dir") {
        Some(d) => (PathBuf::from(d), false),
        None => (
            std::env::temp_dir().join(format!("blu-chaos-{}", std::process::id())),
            true,
        ),
    };
    config.checkpoint = Some(CheckpointPolicy {
        dir: dir.clone(),
        every_subframes: flags.get_or("checkpoint-every", 2_000u64)?,
        resume: false,
    });
    let sup = SupervisorConfig {
        max_restarts: flags.get_or("max-restarts", 3u32)?,
        ..SupervisorConfig::default()
    };

    let fleet_cache = match flags.get_or("fleet-cache-capacity", 0usize)? {
        0 => None,
        cap => {
            let cache = std::sync::Arc::new(FleetBlueprintCache::new(cap));
            config.fleet_cache = Some(std::sync::Arc::clone(&cache));
            Some(cache)
        }
    };

    super::quiet_injected_panics();
    let result = run_chaos(&plan, &config, &sup).map_err(|e| e.to_string())?;

    // With the cache on, replay the identical storm uncached (into a
    // sibling checkpoint dir so the runs cannot collide on disk) and
    // demand the outcomes match outside wall-clock.
    let mut transparency = Vec::new();
    if let Some(cache) = &fleet_cache {
        let mut uncached_config = config.clone();
        uncached_config.fleet_cache = None;
        let uncached_dir = dir.with_file_name(format!(
            "{}-uncached",
            dir.file_name().and_then(|n| n.to_str()).unwrap_or("chaos")
        ));
        if let Some(policy) = &mut uncached_config.checkpoint {
            policy.dir = uncached_dir.clone();
        }
        let uncached = run_chaos(&plan, &uncached_config, &sup).map_err(|e| e.to_string())?;
        let _ = std::fs::remove_dir_all(&uncached_dir);
        transparency = verify_cache_transparency(&result, &uncached);
        let s = cache.stats();
        println!(
            "\nfleet cache: {} hit(s), {} delayed hit(s), {} miss(es), {} bypass(es), \
             {} eviction(s) | work saved: {:.1}%",
            s.hits,
            s.delayed_hits,
            s.misses,
            s.bypasses,
            s.evictions,
            100.0 * s.work_saved()
        );
    }
    if throwaway {
        let _ = std::fs::remove_dir_all(&dir);
    }

    let health = &result.outcome.health;
    println!(
        "\nfleet: {} round(s), {} checkpoint(s) torn, {} restart(s), {} quarantined",
        health.rounds,
        result.tears,
        health.total_restarts(),
        health.quarantined()
    );
    println!("\n cell  faults      health       restarts  crashes  notes");
    for (i, h) in health.cells.iter().enumerate() {
        let mut faults = String::new();
        for (set, tag) in [
            (&plan.crash_cells, 'C'),
            (&plan.stall_cells, 'S'),
            (&plan.poison_cells, 'P'),
            (&plan.torn_cells, 'T'),
        ] {
            faults.push(if set.contains(&i) { tag } else { '-' });
        }
        let notes = if h.restart_sources.is_empty() {
            String::new()
        } else {
            format!("{:?}", h.restart_sources)
        };
        println!(
            "  {i:>3}  {faults:<10}  {:<11}  {:>8}  {:>7}  {notes}",
            format!("{:?}", h.final_health),
            h.restarts,
            h.crashes_observed
        );
    }
    let quarantined: Vec<usize> = health
        .cells
        .iter()
        .enumerate()
        .filter(|(_, h)| h.final_health == CellHealth::Quarantined)
        .map(|(i, _)| i)
        .collect();
    if !quarantined.is_empty() {
        println!("\nquarantined to static PF: {quarantined:?}");
    }

    let mut violations = verify_invariants(&plan, &result);
    violations.extend(transparency);
    if violations.is_empty() {
        if fleet_cache.is_some() {
            println!("\nall recovery invariants held; caching changed no observable outcome");
        } else {
            println!("\nall recovery invariants held");
        }
        Ok(())
    } else {
        println!();
        for v in &violations {
            println!("VIOLATION: {v}");
        }
        Err(format!(
            "{} recovery invariant(s) violated",
            violations.len()
        ))
    }
}
