//! `blu serve` — run the resident fleet daemon.
//!
//! Binds a TCP socket, resumes any persisted fleet (with `--resume`),
//! and serves the wire protocol until a shutdown command or a
//! SIGINT/SIGTERM arrives; either triggers the graceful path (stop
//! admissions → final fleet checkpoint → clean exit). Drive it with
//! `blu ctl`.
//!
//! ```text
//! blu serve --dir /tmp/fleet --addr 127.0.0.1:0 --port-file /tmp/fleet.addr
//! blu ctl --addr-file /tmp/fleet.addr add --seed 7 --seconds 30
//! blu ctl --addr-file /tmp/fleet.addr step --rounds 500
//! blu ctl --addr-file /tmp/fleet.addr status
//! blu ctl --addr-file /tmp/fleet.addr shutdown
//! ```

use crate::args::Flags;
use blu_core::blueprint::FleetBlueprintCache;
use blu_core::orchestrator::BluConfig;
use blu_core::robust::RobustConfig;
use blu_core::runtime::supervisor::SupervisorConfig;
use blu_core::runtime::{BluService, ServiceConfig};
use blu_core::EmulationConfig;
use blu_phy::cell::CellConfig;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};

const HELP: &str = "blu serve — resident fleet daemon with admission control and crash-safe resume

SOCKET:
    --addr <host:port>     listen address (default 127.0.0.1:0 = ephemeral)
    --port-file <path>     write the actually-bound address here once
                           listening (atomic rename; lets scripts use :0)
    --max-frame <bytes>    per-frame payload ceiling (default 1 MiB)
    --read-timeout-ms <ms> per-connection read deadline (default 5000)
    --queue-depth <n>      control-command queue bound; a full queue
                           answers Busy (default 16)

FLEET:
    --dir <path>           checkpoint directory (required)
    --resume               resume every cell persisted in --dir
    --max-cells <n>        admission budget (default 64)
    --cadence-ms <ms>      step the fleet every <ms> (0 = manual via
                           `blu ctl step`, the default)
    --every-subframes <sf> grid-aligned checkpoint cadence (default 2000)
    --high <pressure>      shed low-priority cells above this fleet
                           inference pressure (default: off)
    --low <pressure>       re-admit one shed cell per round at or below
                           this (default: --high)
    --max-restarts <n>     per-cell restarts before quarantine (default 3)
    --rbs <n>              resource blocks per cell (default 10)
    --seed <u64>           robust-loop seed (default 0xD1F7)
    --fleet-cache-capacity <n>  share blue-printing results through the
                           fleet blueprint cache (0 = off, the default)
    --stream-window <sf>   run every cell in streaming mode with this
                           observation-window capacity (0 = phased, the
                           default; per-cell `blu ctl add --window` still
                           overrides upward from phased)

SIGINT/SIGTERM drain gracefully: admissions close, every cell persists
a final checkpoint + sidecar, and the process exits 0. A later
`blu serve --resume --dir <same>` replays to bit-identical state.";

/// Set by the SIGINT/SIGTERM handlers; polled by the serve loop.
static STOP: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" fn on_signal(_sig: i32) {
        STOP.store(true, Ordering::SeqCst);
    }
    // Declared directly (no libc crate in the workspace): SIGINT=2,
    // SIGTERM=15 on every supported platform.
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    unsafe {
        signal(2, on_signal);
        signal(15, on_signal);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

/// Run the subcommand.
pub fn run(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, &["help", "resume"])?;
    if flags.has("help") {
        println!("{HELP}");
        return Ok(());
    }
    let dir = PathBuf::from(
        flags
            .get("dir")
            .ok_or("--dir <path> is required (the checkpoint directory)")?,
    );

    let mut cell = CellConfig::testbed_siso();
    cell.numerology.n_rbs = flags.get_or("rbs", 10usize)?;
    let mut robust = RobustConfig::new(BluConfig::new(EmulationConfig::new(cell)));
    robust.seed = flags.get_or("seed", robust.seed)?;
    if let cap @ 1.. = flags.get_or("fleet-cache-capacity", 0usize)? {
        robust.fleet_cache = Some(std::sync::Arc::new(FleetBlueprintCache::new(cap)));
    }
    if let window @ 1.. = flags.get_or("stream-window", 0usize)? {
        let streaming = blu_core::robust::StreamingConfig::new(window);
        streaming.validate().map_err(|e| e.to_string())?;
        robust.streaming = Some(streaming);
    }

    let high = flags.get_or("high", f64::INFINITY)?;
    let mut config = ServiceConfig::new(robust, dir);
    config.addr = flags.get_or("addr", config.addr)?;
    config.resume = flags.has("resume");
    config.every_subframes = flags.get_or("every-subframes", config.every_subframes)?;
    config.max_cells = flags.get_or("max-cells", config.max_cells)?;
    config.queue_depth = flags.get_or("queue-depth", config.queue_depth)?;
    config.max_frame = flags.get_or("max-frame", config.max_frame)?;
    config.read_timeout_ms = flags.get_or("read-timeout-ms", config.read_timeout_ms)?;
    config.cadence_ms = flags.get_or("cadence-ms", 0u64)?;
    config.high_watermark = high;
    config.low_watermark = flags.get_or("low", high)?;
    config.supervisor = SupervisorConfig {
        max_restarts: flags.get_or("max-restarts", 3u32)?,
        ..SupervisorConfig::default()
    };

    super::quiet_injected_panics();
    install_signal_handlers();
    let handle = BluService::start(config).map_err(|e| e.to_string())?;
    let addr = handle.addr();
    println!("blu serve: listening on {addr}");
    if let Some(port_file) = flags.get("port-file") {
        let tmp = format!("{port_file}.tmp");
        std::fs::write(&tmp, addr.to_string())
            .and_then(|()| std::fs::rename(&tmp, port_file))
            .map_err(|e| format!("writing --port-file {port_file}: {e}"))?;
    }

    // Serve until a wire `shutdown` stops the engine (which raises the
    // shared flag) or a signal lands; then drain gracefully.
    let engine_stop = handle.stop_flag();
    while !STOP.load(Ordering::SeqCst) && !engine_stop.load(Ordering::SeqCst) {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    if STOP.load(Ordering::SeqCst) {
        println!("blu serve: signal received, draining");
    }
    handle.shutdown();
    handle.wait().map_err(|e| e.to_string())?;
    println!("blu serve: stopped cleanly");
    Ok(())
}
