//! `blu eval` — replay a trace through a scheduler and report.

use crate::args::Flags;
use blu_core::blueprint::{infer_topology, ConstraintSystem, InferenceConfig};
use blu_core::emulator::{EmulationConfig, Emulator};
use blu_core::joint::{EmpiricalPatternAccess, TopologyAccess};
use blu_core::metrics::UplinkMetrics;
use blu_core::sched::{AccessAwareScheduler, PfScheduler, SpeculativeScheduler};
use blu_phy::cell::CellConfig;
use blu_traces::io::load_json;
use blu_traces::stats::EmpiricalAccess;
use std::path::Path;

const HELP: &str = "blu eval <trace.json> — replay through a scheduler

OPTIONS:
    --scheduler <s>   pf | aa | blu | blu-inferred | blu-empirical | all
                      (default all)
    --antennas <m>    eNB antennas (default 1 = SISO)
    --rbs <n>         resource blocks (default 50)
    --txops <n>       TxOPs to run (default 500)
    --k <n>           distinct UEs per sub-frame (default 10)";

fn print_metrics(name: &str, m: &UplinkMetrics) {
    println!(
        "{name:>14}: {:.2} Mbps | RB util {:.1}% | blocked {} collided {} faded {} | Jain {:.3}",
        m.throughput_mbps(),
        100.0 * m.rb_utilization(),
        m.rbs_blocked,
        m.rbs_collided,
        m.rbs_faded,
        m.jain_fairness()
    );
}

/// Run the subcommand.
pub fn run(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, &["help"])?;
    if flags.has("help") {
        println!("{HELP}");
        return Ok(());
    }
    let path = flags.positional(0).ok_or("usage: blu eval <trace.json>")?;
    let t = load_json(Path::new(path)).map_err(|e| e.to_string())?;
    t.validate()?;

    let scheduler = flags.get("scheduler").unwrap_or("all").to_string();
    let mut cell = CellConfig::testbed_siso();
    cell.m_antennas = flags.get_or("antennas", 1usize)?;
    cell.numerology.n_rbs = flags.get_or("rbs", 50usize)?;
    cell.max_ues_per_subframe = flags.get_or("k", 10usize)?;
    cell.validate().map_err(|e| e.to_string())?;
    if t.csi.n_antennas < cell.m_antennas {
        return Err(format!(
            "trace CSI has {} antennas; --antennas {} requested",
            t.csi.n_antennas, cell.m_antennas
        ));
    }
    let mut cfg = EmulationConfig::new(cell);
    cfg.n_txops = flags.get_or("txops", 500u64)?;

    let n = t.ground_truth.n_clients;
    let want = |s: &str| scheduler == "all" || scheduler == s;

    if want("pf") {
        let m = Emulator::new(&t, cfg.clone())
            .expect("emulator setup")
            .run(&mut PfScheduler, None)
            .metrics;
        print_metrics("PF", &m);
    }
    if want("aa") {
        let p: Vec<f64> = (0..n).map(|i| t.ground_truth.p_individual(i)).collect();
        let m = Emulator::new(&t, cfg.clone())
            .expect("emulator setup")
            .run(&mut AccessAwareScheduler::new(p), None)
            .metrics;
        print_metrics("AA", &m);
    }
    if want("blu") {
        let acc = TopologyAccess::new(&t.ground_truth);
        let m = Emulator::new(&t, cfg.clone())
            .expect("emulator setup")
            .run(&mut SpeculativeScheduler::new(&acc), None)
            .metrics;
        print_metrics("BLU(truth)", &m);
    }
    if want("blu-inferred") {
        let sys = ConstraintSystem::from_measurements(&EmpiricalAccess::from_trace(&t.access));
        let bp = infer_topology(&sys, &InferenceConfig::default()).topology;
        let acc = TopologyAccess::new(&bp);
        let m = Emulator::new(&t, cfg.clone())
            .expect("emulator setup")
            .run(&mut SpeculativeScheduler::new(&acc), None)
            .metrics;
        print_metrics("BLU(inferred)", &m);
    }
    if want("blu-empirical") {
        let acc = EmpiricalPatternAccess::new(&t.access).expect("non-empty access trace");
        let m = Emulator::new(&t, cfg.clone())
            .expect("emulator setup")
            .run(&mut SpeculativeScheduler::new(&acc), None)
            .metrics;
        print_metrics("BLU(empirical)", &m);
    }
    Ok(())
}
