//! `blu plan` — print an Algorithm-1 measurement plan.

use crate::args::Flags;
use blu_core::measure::{measurement_schedule, min_subframes};

const HELP: &str = "blu plan — print an Algorithm-1 measurement schedule

OPTIONS:
    --clients <n>   clients in the cell (default 20)
    --k <n>         distinct clients per sub-frame (default 8)
    --t <n>         joint samples required per pair (default 50)
    --show <n>      print the first n sub-frame schedules (default 10)";

/// Run the subcommand.
pub fn run(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, &["help"])?;
    if flags.has("help") {
        println!("{HELP}");
        return Ok(());
    }
    let n: usize = flags.get_or("clients", 20usize)?;
    let k: usize = flags.get_or("k", 8usize)?;
    let t: u64 = flags.get_or("t", 50u64)?;
    let show: usize = flags.get_or("show", 10usize)?;
    if n < 2 || k < 2 {
        return Err("need at least 2 clients and K ≥ 2".into());
    }

    let plan = measurement_schedule(n, k, t).map_err(|e| e.to_string())?;
    let floor = min_subframes(n, k.min(n), t).map_err(|e| e.to_string())?;
    println!(
        "N = {n}, K = {k}, T = {t}: {} measurement sub-frames (floor {floor}, +{:.1}%)",
        plan.t_max(),
        100.0 * (plan.t_max() as f64 / floor as f64 - 1.0)
    );
    println!(
        "pair samples: min {} max {}",
        plan.min_pair_count(),
        plan.pair_counts.iter().max().unwrap()
    );
    println!("\nfirst {} sub-frames:", show.min(plan.subframes.len()));
    for (sf, s) in plan.subframes.iter().take(show).enumerate() {
        println!("  SF {sf:>4}: {s}");
    }
    Ok(())
}
