//! `blu inspect` — summarize a trace file.

use crate::args::Flags;
use blu_traces::io::load_json;
use blu_traces::stats::EmpiricalAccess;
use std::path::Path;

const HELP: &str = "blu inspect <trace.json> — summarize a trace

Prints the ground-truth topology, per-terminal airtime, per-UE access
probabilities (measured vs closed-form), SNRs, and trace dimensions.";

/// Run the subcommand.
pub fn run(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, &["help"])?;
    if flags.has("help") {
        println!("{HELP}");
        return Ok(());
    }
    let path = flags
        .positional(0)
        .ok_or("usage: blu inspect <trace.json>")?;
    let t = load_json(Path::new(path)).map_err(|e| e.to_string())?;
    t.validate()?;

    println!("{}", t.description);
    println!(
        "dimensions: {} UEs × {} sub-frames, {} hidden terminals, {} CSI antennas",
        t.ground_truth.n_clients,
        t.access.len(),
        t.ground_truth.n_hidden(),
        t.csi.n_antennas
    );

    println!("\nhidden terminals:");
    for (k, ht) in t.ground_truth.hts.iter().enumerate() {
        println!(
            "  HT {k}: airtime q = {:.3}, blocks UEs {} (measured {:.3})",
            ht.q,
            ht.edges,
            t.wifi.airtime(k)
        );
    }

    let emp = EmpiricalAccess::from_trace(&t.access);
    println!("\nper-UE access probability (measured / closed-form) and uplink SNR:");
    for i in 0..t.ground_truth.n_clients {
        println!(
            "  UE {i}: p = {:.3} / {:.3}   SNR {:.1} dB",
            emp.p_individual(i).unwrap_or(f64::NAN),
            t.ground_truth.p_individual(i),
            t.mean_snr_db[i]
        );
    }
    Ok(())
}
