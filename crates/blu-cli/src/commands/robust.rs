//! `blu robust` — run the degraded-mode orchestrator under scripted
//! faults.
//!
//! Synthesizes a fault-scripted capture (same generator as the robust
//! test-bench) and drives [`blu_core::robust::run_blu_robust`] over
//! it, printing the state-machine timeline, the inference verdicts,
//! and the effective-throughput accounting.
//!
//! Fault scripts are given on the command line in a small DSL —
//! events separated by `;`, each `kind@subframe key=value...`:
//!
//! ```text
//! blu robust --seconds 90 \
//!     --faults "appear@20000 q=0.6 edges=0,1,2,3; misclassify@0 rate=0.05"
//! ```

use crate::args::Flags;
use blu_core::blueprint::{FleetBlueprintCache, InferenceBackend, McmcConfig};
use blu_core::orchestrator::BluConfig;
use blu_core::robust::{run_blu_robust, CheckpointPolicy, RobustConfig};
use blu_core::runtime::supervisor::{run_supervised_fleet, CellHealthReport, SupervisorConfig};
use blu_core::runtime::Deadline;
use blu_core::EmulationConfig;
use blu_phy::cell::CellConfig;
use blu_sim::clientset::ClientSet;
use blu_sim::faults::{FaultEvent, FaultKind, FaultScript};
use blu_sim::time::Micros;
use blu_traces::capture::CaptureConfig;
use blu_traces::faults::capture_with_faults;

const HELP: &str = "blu robust — degraded-mode BLU under scripted faults

OPTIONS:
    --faults <spec>   fault script (see below; default: none)
    --ues <n>         number of UEs (default 6)
    --hts <n>         initial hidden terminals (default 8)
    --seconds <s>     capture duration (default 60)
    --rbs <n>         resource blocks (default 25)
    --seed <u64>      RNG seed, shared by capture and MCMC (default 1)
    --mcmc-steps <n>  blue-print with the annealed MCMC backend
                      (this many proposals) instead of gradient repair
    --t-start <f>     MCMC start temperature (default 1.0)
    --t-end <f>       MCMC end temperature (default 0.005)
    --deadline-steps <n>  anytime inference: cap each blue-printing
                      pass at n work units, speculate on best-so-far
    --fleet-cache-capacity <n>  share blue-printing results through
                      the fleet blueprint cache (n entries; 0 = off,
                      the default). Hits are byte-identical to a
                      fresh solve; counters print at end of run

STREAMING (continuous churn absorption):
    --stream          run the streaming online-inference loop: a
                      sliding observation window feeds incremental
                      blue-print refinement between sub-frames; full
                      re-measurement demotes to the drift-monitor
                      fallback arm
    --window <sf>     observation-window capacity in sub-frame
                      observations (default 2000; needs --stream)
    --churn-rate <hz> overlay Poisson UE/HT topology churn on the
                      capture at this total rate (default 0 = off;
                      composes with --faults)
    --churn-start <sf>  sub-frame the churn window opens at (default:
                      one third of the trace)
    --churn-seed <u64>  churn stream seed (default: derived from --seed)

SUPERVISION:
    --supervise               run under the fleet supervisor: crashes
                              and stalls restart the cell from its
                              latest checkpoint (or quarantine it to
                              PF once the retry budget is spent)
    --max-restarts <n>        restarts before quarantine (default 3)
    --stall-threshold <n>     consecutive silent steps before the
                              watchdog fires (default 6)
    --stall-factor-limit <n>  scripted stall factor treated as a hard
                              stall while measuring (default 8)

CRASH RECOVERY:
    --checkpoint-dir <dir>    persist orchestrator snapshots to
                              <dir>/cell-0.json (atomic temp+rename)
    --checkpoint-every <sf>   also save every <sf> sub-frames of
                              progress (default 10000; 0 = only at
                              clean shutdown)
    --resume                  restore from an existing snapshot in
                              --checkpoint-dir and continue; the
                              resumed run is bit-identical to an
                              uninterrupted one

FAULT SCRIPT:
    events separated by `;`, each `kind@subframe key=value ...`:
      appear@SF q=Q edges=I,J,..     new hidden terminal
      disappear@SF ht=H              remove terminal H
      qdrift@SF ht=H q=Q             terminal H's duty cycle drifts
      churn@SF ht=H toggle=I,J,..    flip edges of terminal H
      misclassify@SF rate=R          pilot misclassification onward
      drop@SF rate=R                 measurement reports dropped
      stall@SF factor=N              inference runs N× slower onward
      panic@SF active=1|0            inference panics (contained and
                                     routed to PF fallback) onward
      poison@SF rate=R               constraint targets NaN-poisoned
                                     at rate R (quarantined) onward
      crash@SF                       the whole cell task crashes once
                                     at SF (needs --supervise)

    example:
      --faults \"appear@20000 q=0.6 edges=0,1,2,3; misclassify@0 rate=0.05\"";

fn parse_clientset(s: &str) -> Result<ClientSet, String> {
    let mut set = ClientSet::EMPTY;
    for part in s.split(',').filter(|p| !p.is_empty()) {
        let ue: usize = part
            .trim()
            .parse()
            .map_err(|_| format!("bad client index `{part}`"))?;
        set.insert(ue);
    }
    if set.is_empty() {
        return Err("empty client set".into());
    }
    Ok(set)
}

fn parse_event(spec: &str) -> Result<FaultEvent, String> {
    let mut words = spec.split_whitespace();
    let head = words.next().ok_or("empty fault event")?;
    let (kind, at) = head
        .split_once('@')
        .ok_or_else(|| format!("`{head}`: expected kind@subframe"))?;
    let at_subframe: u64 = at
        .parse()
        .map_err(|_| format!("`{head}`: bad subframe `{at}`"))?;
    let mut kv = std::collections::HashMap::new();
    for w in words {
        let (k, v) = w
            .split_once('=')
            .ok_or_else(|| format!("`{w}`: expected key=value"))?;
        kv.insert(k, v);
    }
    let need = |k: &str| -> Result<&str, String> {
        kv.get(k)
            .copied()
            .ok_or_else(|| format!("`{kind}@{at}` needs {k}=..."))
    };
    let f64_of = |k: &str| -> Result<f64, String> {
        need(k)?
            .parse()
            .map_err(|_| format!("`{kind}@{at}`: bad {k}"))
    };
    let usize_of = |k: &str| -> Result<usize, String> {
        need(k)?
            .parse()
            .map_err(|_| format!("`{kind}@{at}`: bad {k}"))
    };
    let kind = match kind {
        "appear" => FaultKind::HtAppear {
            q: f64_of("q")?,
            edges: parse_clientset(need("edges")?)?,
        },
        "disappear" => FaultKind::HtDisappear {
            ht: usize_of("ht")?,
        },
        "qdrift" => FaultKind::QDrift {
            ht: usize_of("ht")?,
            q: f64_of("q")?,
        },
        "churn" => FaultKind::EdgeChurn {
            ht: usize_of("ht")?,
            toggle: parse_clientset(need("toggle")?)?,
        },
        "misclassify" => FaultKind::MisclassifyRate {
            rate: f64_of("rate")?,
        },
        "drop" => FaultKind::DropRate {
            rate: f64_of("rate")?,
        },
        "stall" => {
            let factor: u32 = need("factor")?
                .parse()
                .map_err(|_| format!("`{kind}@{at}`: bad factor"))?;
            if factor < 1 {
                return Err(format!("`{kind}@{at}`: factor must be >= 1, got {factor}"));
            }
            FaultKind::InferenceStall { factor }
        }
        "panic" => FaultKind::InferencePanic {
            active: match need("active")? {
                "1" | "true" => true,
                "0" | "false" => false,
                bad => return Err(format!("`{kind}@{at}`: bad active `{bad}` (want 1|0)")),
            },
        },
        "poison" => {
            // "nan".parse::<f64>() succeeds, so an explicit range +
            // finiteness check is the only thing standing between the
            // command line and a NaN poison rate.
            let rate = f64_of("rate")?;
            if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
                return Err(format!(
                    "`{kind}@{at}`: rate must be finite in [0, 1], got {rate}"
                ));
            }
            FaultKind::StatPoison { rate }
        }
        "crash" => FaultKind::CellCrash,
        other => return Err(format!("unknown fault kind `{other}`")),
    };
    Ok(FaultEvent { at_subframe, kind })
}

/// Parse the `;`-separated fault-script DSL.
pub fn parse_fault_script(spec: &str) -> Result<FaultScript, String> {
    let events = spec
        .split(';')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(parse_event)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(FaultScript::new(events))
}

/// Run the subcommand.
pub fn run(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, &["help", "resume", "supervise", "stream"])?;
    if flags.has("help") {
        println!("{HELP}");
        return Ok(());
    }
    let mut script = match flags.get("faults") {
        Some(spec) => parse_fault_script(spec)?,
        None => FaultScript::none(),
    };
    if script.has_crash_faults() && !flags.has("supervise") {
        return Err("crash@ faults escape the unsupervised loop; add --supervise".into());
    }
    let seconds = flags.get_or("seconds", 60u64)?;
    let cfg = CaptureConfig {
        n_ues: flags.get_or("ues", 6usize)?,
        n_hts: flags.get_or("hts", 8usize)?,
        duration: Micros::from_secs(seconds),
        q_range: (0.25, 0.55),
        ..CaptureConfig::testbed_default()
    };
    let seed = flags.get_or("seed", 1u64)?;
    let churn_rate: f64 = flags.get_or("churn-rate", 0.0f64)?;
    if !churn_rate.is_finite() || churn_rate < 0.0 {
        return Err(format!(
            "--churn-rate must be finite and >= 0, got {churn_rate}"
        ));
    }
    if churn_rate > 0.0 {
        let total = seconds
            .checked_mul(1_000)
            .ok_or("--seconds too large for a sub-frame count")?;
        let start = flags.get_or("churn-start", total / 3)?;
        let duration = total.saturating_sub(start);
        if duration == 0 {
            return Err(format!(
                "--churn-start {start} leaves no room in a {total} sub-frame trace"
            ));
        }
        let churn_cfg =
            blu_sim::churn::ChurnConfig::with_total_rate(cfg.n_ues, duration, churn_rate);
        let churn_seed = flags.get_or("churn-seed", seed.wrapping_add(0xC0FF))?;
        let churn = blu_sim::churn::generate_churn(&churn_cfg, cfg.n_hts, churn_seed)
            .map_err(|e| e.to_string())?;
        let mut events = script.events.clone();
        events.extend(
            blu_core::robust::compile_churn_script(&churn, start)
                .map_err(|e| e.to_string())?
                .events,
        );
        script = FaultScript::new(events);
    }
    script
        .validate(cfg.n_ues, cfg.n_hts)
        .map_err(|e| e.to_string())?;
    let cap = capture_with_faults(&cfg, &script, seed).map_err(|e| e.to_string())?;

    let mut cell = CellConfig::testbed_siso();
    cell.numerology.n_rbs = flags.get_or("rbs", 25usize)?;
    let mut config = RobustConfig::new(BluConfig::new(EmulationConfig::new(cell)));
    if let Some(budget) = flags.get("deadline-steps") {
        let steps: u64 = budget
            .parse()
            .map_err(|_| format!("bad --deadline-steps `{budget}`"))?;
        config.blu.inference.deadline = Deadline::Steps(steps);
    }
    if flags.has("stream") {
        let streaming = blu_core::robust::StreamingConfig::new(flags.get_or("window", 2_000usize)?);
        streaming.validate().map_err(|e| e.to_string())?;
        config.streaming = Some(streaming);
    } else if flags.get("window").is_some() {
        return Err("--window needs --stream".into());
    }
    if flags.has("resume") && flags.get("checkpoint-dir").is_none() {
        return Err("--resume needs --checkpoint-dir".into());
    }
    if let Some(dir) = flags.get("checkpoint-dir") {
        config.checkpoint = Some(CheckpointPolicy {
            dir: std::path::PathBuf::from(dir),
            every_subframes: flags.get_or("checkpoint-every", 10_000u64)?,
            resume: flags.has("resume"),
        });
    }
    let fleet_cache = match flags.get_or("fleet-cache-capacity", 0usize)? {
        0 => None,
        cap => {
            let cache = std::sync::Arc::new(FleetBlueprintCache::new(cap));
            config.fleet_cache = Some(std::sync::Arc::clone(&cache));
            Some(cache)
        }
    };
    if flags.get("mcmc-steps").is_some() {
        config.backend = InferenceBackend::Mcmc {
            config: McmcConfig {
                steps: flags.get_or("mcmc-steps", 20_000usize)?,
                t_start: flags.get_or("t-start", 1.0f64)?,
                t_end: flags.get_or("t-end", 0.005f64)?,
                ..Default::default()
            },
            seed,
        };
    }
    super::quiet_injected_panics();
    let (report, health): (_, Option<CellHealthReport>) = if flags.has("supervise") {
        let sup = SupervisorConfig {
            max_restarts: flags.get_or("max-restarts", 3u32)?,
            stall_threshold_steps: flags.get_or("stall-threshold", 6u32)?,
            stall_factor_limit: flags.get_or("stall-factor-limit", 8u32)?,
            ..SupervisorConfig::default()
        };
        let mut outcome = run_supervised_fleet(std::slice::from_ref(&cap), &config, &sup)
            .map_err(|e| e.to_string())?;
        let report = outcome
            .reports
            .pop()
            .ok_or("supervised run lost its cell")?;
        let health = outcome.health.cells.pop();
        (report, health)
    } else {
        (
            run_blu_robust(&cap, &config).map_err(|e| e.to_string())?,
            None,
        )
    };

    println!(
        "{} sub-frames, {} fault event(s), {} epoch(s)",
        cap.trace.access.len(),
        cap.script.len(),
        cap.epochs.len()
    );
    println!("\nstate timeline:");
    for t in &report.transitions {
        println!("  sf {:>8}  -> {}", t.at_subframe, t.state);
    }
    println!("\nverdicts: {:?}", report.verdicts);
    println!(
        "re-measurements: {} | speculative TxOPs: {} | fallback TxOPs: {}",
        report.n_remeasurements, report.speculative_txops, report.fallback_txops
    );
    println!(
        "inference latency: {:.2} ms total across {} blue-printing pass(es)",
        report.inference_micros as f64 / 1e3,
        report.verdicts.len()
    );
    println!(
        "peak drift score: {:.3} | final confidence: {:.3} | final state: {}",
        report.peak_drift,
        report.final_confidence,
        report.final_state()
    );
    println!(
        "throughput: {:.2} Mbps raw, {:.2} Mbps effective ({} measurement sub-frames charged)",
        report.metrics.throughput_mbps(),
        report.effective_throughput_mbps(),
        report.measurement_subframes
    );
    if config.streaming.is_some() {
        println!(
            "streaming: {} incremental refine(s) ({} installed) | {} fallback \
             re-measurement(s) | {} churn event(s) applied | window occupancy {}",
            report.stream_refines,
            report.stream_refines_installed,
            report.stream_fallback_remeasurements,
            report.stream_churn_events,
            report.stream_window_occupancy
        );
    }
    if !report.breaker_transitions.is_empty() {
        println!("\ncircuit breaker:");
        for t in &report.breaker_transitions {
            println!("  sf {:>8}  {:?} -> {:?}", t.at_subframe, t.from, t.to);
        }
    }
    if report.inference_panics > 0
        || report.deadline_misses > 0
        || report.quarantined_constraints > 0
    {
        println!(
            "resilience: {} contained panic(s), {} deadline miss(es), {} constraint(s) quarantined",
            report.inference_panics, report.deadline_misses, report.quarantined_constraints
        );
    }
    if let Some(h) = &health {
        println!(
            "\nsupervision: final health {:?} | {} restart(s) | {} crash(es) observed",
            h.final_health, h.restarts, h.crashes_observed
        );
        if !h.restart_sources.is_empty() {
            println!("  restored from: {:?}", h.restart_sources);
        }
        if let Some(err) = &h.last_error {
            println!("  last contained failure: {err}");
        }
        if !h.transitions.is_empty() {
            println!("  health timeline:");
            for t in &h.transitions {
                println!(
                    "    sf {:>8}  {:?} -> {:?} ({:?})",
                    t.at_subframe, t.from, t.to, t.cause
                );
            }
        }
    }
    if let Some(cache) = &fleet_cache {
        let s = cache.stats();
        println!(
            "\nfleet cache: {} hit(s), {} delayed hit(s), {} miss(es), {} bypass(es), \
             {} eviction(s) | work saved: {:.1}%",
            s.hits,
            s.delayed_hits,
            s.misses,
            s.bypasses,
            s.evictions,
            100.0 * s.work_saved()
        );
    }
    if let Some(policy) = &config.checkpoint {
        println!(
            "checkpoint saved to {}",
            policy.dir.join("cell-0.json").display()
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dsl_round_trip() {
        let s = parse_fault_script("appear@20000 q=0.6 edges=0,1,2,3; misclassify@0 rate=0.05")
            .unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.events[0].at_subframe, 0); // sorted by subframe
        assert!(matches!(
            s.events[0].kind,
            FaultKind::MisclassifyRate { rate } if (rate - 0.05).abs() < 1e-12
        ));
        match &s.events[1].kind {
            FaultKind::HtAppear { q, edges } => {
                assert!((q - 0.6).abs() < 1e-12);
                assert_eq!(edges.len(), 4);
            }
            other => panic!("wrong kind {other:?}"),
        }
    }

    #[test]
    fn dsl_all_kinds_parse() {
        let s = parse_fault_script(
            "disappear@5 ht=1; qdrift@6 ht=0 q=0.9; churn@7 ht=2 toggle=1,3; drop@8 rate=0.2",
        )
        .unwrap();
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn dsl_runtime_kinds_parse() {
        let s = parse_fault_script("stall@100 factor=10; panic@200 active=1; poison@300 rate=0.25")
            .unwrap();
        assert_eq!(s.len(), 3);
        assert!(matches!(
            s.events[0].kind,
            FaultKind::InferenceStall { factor: 10 }
        ));
        assert!(matches!(
            s.events[1].kind,
            FaultKind::InferencePanic { active: true }
        ));
        assert!(matches!(
            s.events[2].kind,
            FaultKind::StatPoison { rate } if (rate - 0.25).abs() < 1e-12
        ));
        assert!(parse_fault_script("panic@0 active=maybe").is_err());
        assert!(parse_fault_script("stall@0").is_err()); // missing factor
    }

    #[test]
    fn dsl_crash_parses_bare() {
        let s = parse_fault_script("crash@30000").unwrap();
        assert!(matches!(s.events[0].kind, FaultKind::CellCrash));
        assert!(s.has_crash_faults());
        assert_eq!(s.crash_subframes(), vec![30_000]);
    }

    #[test]
    fn dsl_rejects_degenerate_runtime_faults_at_parse_time() {
        // A zero stall factor would divide the runtime's pacing.
        let err = parse_fault_script("stall@0 factor=0").unwrap_err();
        assert!(err.contains("factor must be >= 1"), "{err}");
        // "nan" and "inf" parse as f64 — the validator must catch them.
        for bad in ["nan", "inf", "-0.5", "1.5"] {
            let err = parse_fault_script(&format!("poison@0 rate={bad}")).unwrap_err();
            assert!(err.contains("finite in [0, 1]"), "rate={bad}: {err}");
        }
        // Boundary rates stay valid.
        assert!(parse_fault_script("poison@0 rate=0").is_ok());
        assert!(parse_fault_script("poison@0 rate=1").is_ok());
        assert!(parse_fault_script("stall@0 factor=1").is_ok());
    }

    #[test]
    fn dsl_errors_are_descriptive() {
        assert!(parse_fault_script("appear@x q=0.5 edges=0").is_err());
        assert!(parse_fault_script("appear@10 edges=0").is_err()); // missing q
        assert!(parse_fault_script("warp@10 q=0.5").is_err());
        assert!(parse_fault_script("appear@10 q=0.5 edges=").is_err());
    }

    #[test]
    fn empty_script_is_none() {
        let s = parse_fault_script("  ").unwrap();
        assert!(s.is_empty());
    }
}
