//! `blu generate` — produce a geometric scenario trace.

use crate::args::Flags;
use blu_sim::time::Micros;
use blu_traces::io::save_json;
use blu_traces::scenario::{generate, ActivityModel, ScenarioConfig};
use blu_wifi::traffic::TrafficGen;
use std::path::Path;

const HELP: &str = "blu generate — generate a scenario and write its trace as JSON

OPTIONS:
    --out <path>        output file (default trace.json)
    --ues <n>           number of UEs (default 6)
    --wifi <n>          number of WiFi nodes (default 10)
    --region <meters>   square region side (default 80)
    --seconds <s>       trace duration (default 60)
    --antennas <m>      eNB antennas for CSI (default 4)
    --seed <u64>        RNG seed (default 1)
    --dcf               full 802.11 DCF contention (default: on/off sources)
    --q-lo / --q-hi     on/off duty-cycle range (default 0.15 / 0.6)";

/// Run the subcommand.
pub fn run(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, &["dcf", "help"])?;
    if flags.has("help") {
        println!("{HELP}");
        return Ok(());
    }
    let out = flags.get("out").unwrap_or("trace.json").to_string();
    let mut cfg = ScenarioConfig::testbed();
    cfg.n_ues = flags.get_or("ues", 6usize)?;
    cfg.n_wifi = flags.get_or("wifi", 10usize)?;
    cfg.region_m = flags.get_or("region", 80.0f64)?;
    cfg.duration = Micros::from_secs(flags.get_or("seconds", 60u64)?);
    cfg.n_antennas = flags.get_or("antennas", 4usize)?;
    if flags.has("dcf") {
        cfg.activity = ActivityModel::Dcf;
        cfg.wifi_traffic = TrafficGen::Bursty {
            mean_on_us: 20_000.0,
            mean_off_us: 15_000.0,
            bytes: 1470,
        };
    } else {
        cfg.activity = ActivityModel::OnOff {
            q_range: (
                flags.get_or("q-lo", 0.15f64)?,
                flags.get_or("q-hi", 0.6f64)?,
            ),
            mean_on_us: 1_500.0,
        };
    }
    let seed = flags.get_or("seed", 1u64)?;

    let scenario = generate(&cfg, seed);
    let t = &scenario.trace;
    save_json(t, Path::new(&out)).map_err(|e| e.to_string())?;
    println!("{}", t.description);
    println!(
        "  {} UEs, {} hidden terminals (of {} WiFi nodes), {} sub-frames",
        t.ground_truth.n_clients,
        t.ground_truth.n_hidden(),
        cfg.n_wifi,
        t.access.len()
    );
    println!("wrote {out}");
    Ok(())
}
