//! Small statistics helpers for experiment outputs.

/// `p`-th percentile (0–100) by linear interpolation; input need not
/// be sorted. Panics on empty input.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of empty data");
    assert!((0.0..=100.0).contains(&p));
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = p / 100.0 * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = rank - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// Arithmetic mean. Panics on empty input.
pub fn mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Empirical CDF sample points `(value, F(value))`, sorted by value.
pub fn cdf_points(xs: &[f64]) -> Vec<(f64, f64)> {
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = v.len() as f64;
    v.into_iter()
        .enumerate()
        .map(|(i, x)| (x, (i + 1) as f64 / n))
        .collect()
}

/// Fraction of samples ≥ a threshold.
pub fn fraction_at_least(xs: &[f64], threshold: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().filter(|&&x| x >= threshold).count() as f64 / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_basics() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 50.0), 3.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
        assert_eq!(percentile(&xs, 25.0), 2.0);
        // Interpolation.
        let ys = [0.0, 10.0];
        assert_eq!(percentile(&ys, 30.0), 3.0);
    }

    #[test]
    fn mean_and_cdf() {
        let xs = [2.0, 4.0, 6.0];
        assert_eq!(mean(&xs), 4.0);
        let cdf = cdf_points(&xs);
        assert_eq!(cdf, vec![(2.0, 1.0 / 3.0), (4.0, 2.0 / 3.0), (6.0, 1.0)]);
    }

    #[test]
    fn fraction_threshold() {
        let xs = [0.5, 0.9, 1.0, 1.0];
        assert_eq!(fraction_at_least(&xs, 0.9), 0.75);
        assert_eq!(fraction_at_least(&xs, 2.0), 0.0);
        assert_eq!(fraction_at_least(&[], 0.0), 0.0);
    }
}
