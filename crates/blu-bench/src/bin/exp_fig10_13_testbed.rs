//! Figures 10–13 — testbed-scale gains of BLU over PF.
//!
//! The paper's WARP testbed: 4 UEs, 6 WiFi-laptop hidden terminals,
//! 500 frames of 3 sub-frames each, SISO and 2-antenna MU-MIMO.
//! Sweeping the number of hidden terminals per UE, we report:
//!
//! * Fig. 10 — SISO aggregate throughput gain of BLU over PF;
//! * Fig. 11 — MU-MIMO (M = 2) throughput gain;
//! * Fig. 12 — SISO RB-utilization gain;
//! * Fig. 13 — MU-MIMO RB utilization (absolute, BLU vs PF).
//!
//! Paper shape: utilization boost up to ≈ 80 %, throughput gains of
//! 50–80 %, both growing with interference.

use blu_bench::runners::{compare_schedulers, fan_out, topology_with_hts_per_ue, CompareOpts};
use blu_bench::statsutil::mean;
use blu_bench::table::save_results_json;
use blu_bench::{ExpArgs, Table};
use blu_phy::cell::CellConfig;
use blu_sim::time::Micros;
use blu_traces::capture::capture_from_topology;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    hts_per_ue: usize,
    siso_tput_gain_pct: f64,
    mumimo_tput_gain_pct: f64,
    siso_util_gain_pct: f64,
    mumimo_util_pf: f64,
    mumimo_util_blu: f64,
}

fn main() {
    let args = ExpArgs::parse();
    // Paper: 500 bursts of 3 sub-frames.
    let n_txops = args.scaled(500, 60);
    let trials = args.scaled(6, 2);

    let mut table = Table::new(
        "Figs 10-13: testbed (4 UEs, 6 HTs) — BLU vs PF",
        &[
            "HTs/UE",
            "SISO tput gain %",
            "MUMIMO tput gain %",
            "SISO util gain %",
            "MUMIMO util PF",
            "MUMIMO util BLU",
        ],
    );
    let mut rows = Vec::new();
    for hts_per_ue in [1usize, 2, 3, 4] {
        // Trials are independent runs with per-trial seeds: fan them
        // out over the thread pool. Results come back in trial order,
        // so the aggregated means are identical to the old loop.
        let trial_seeds: Vec<u64> = (0..trials)
            .map(|trial| args.seed + trial * 1000 + hts_per_ue as u64)
            .collect();
        let runs = fan_out(trial_seeds, |seed| {
            // Heavier WiFi activity than the default: the testbed's
            // laptops run saturated iperf.
            let topo = topology_with_hts_per_ue(4, 6, hts_per_ue, (0.3, 0.6), seed);
            let trace = capture_from_topology(
                &topo,
                Micros::from_secs(args.scaled(60, 10)),
                1_500.0,
                2,
                50,
                (12.0, 28.0),
                seed + 7,
            );
            let siso = compare_schedulers(
                &trace,
                &CompareOpts::new(CellConfig::testbed_siso(), n_txops),
            );
            let mumimo = compare_schedulers(
                &trace,
                &CompareOpts::new(CellConfig::testbed_mumimo2(), n_txops),
            );
            (siso, mumimo)
        });
        let mut siso_tg = Vec::new();
        let mut mu_tg = Vec::new();
        let mut siso_ug = Vec::new();
        let mut mu_u_pf = Vec::new();
        let mut mu_u_blu = Vec::new();
        for (siso, mumimo) in &runs {
            siso_tg
                .push(100.0 * (siso.blu_truth.throughput_mbps() / siso.pf.throughput_mbps() - 1.0));
            mu_tg.push(
                100.0 * (mumimo.blu_truth.throughput_mbps() / mumimo.pf.throughput_mbps() - 1.0),
            );
            siso_ug
                .push(100.0 * (siso.blu_truth.rb_utilization() / siso.pf.rb_utilization() - 1.0));
            mu_u_pf.push(mumimo.pf.rb_utilization());
            mu_u_blu.push(mumimo.blu_truth.rb_utilization());
        }
        let row = Row {
            hts_per_ue,
            siso_tput_gain_pct: mean(&siso_tg),
            mumimo_tput_gain_pct: mean(&mu_tg),
            siso_util_gain_pct: mean(&siso_ug),
            mumimo_util_pf: mean(&mu_u_pf),
            mumimo_util_blu: mean(&mu_u_blu),
        };
        table.row(vec![
            hts_per_ue.to_string(),
            format!("{:.1}", row.siso_tput_gain_pct),
            format!("{:.1}", row.mumimo_tput_gain_pct),
            format!("{:.1}", row.siso_util_gain_pct),
            format!("{:.2}", row.mumimo_util_pf),
            format!("{:.2}", row.mumimo_util_blu),
        ]);
        rows.push(row);
    }
    table.print();
    save_results_json("fig10_13", &rows).expect("write results");
    println!("\nresults written to results/fig10_13.json");
}
