//! Figure 17 — MU-MIMO throughput gains with 24 UEs as the eNB
//! antenna count (degrees of freedom) grows.
//!
//! Paper shape: BLU's gain over PF/AA grows with `M`, reaching ≈ 2×
//! at M = 4 — more concurrent streams mean more scheduled UEs can be
//! silenced, so speculative over-scheduling recovers more.

use blu_bench::runners::{compare_schedulers, emulated_large_trace, CompareOpts};
use blu_bench::table::save_results_json;
use blu_bench::{ExpArgs, Table};
use blu_phy::cell::CellConfig;
use serde::Serialize;

#[derive(Serialize)]
struct Fig17Row {
    m_antennas: usize,
    pf_mbps: f64,
    aa_mbps: f64,
    blu_mbps: f64,
    blu_over_pf: f64,
    aa_over_pf: f64,
}

fn main() {
    let args = ExpArgs::parse();
    let n_txops = args.scaled(1000, 120);
    let trace = emulated_large_trace(6, 4, 6, args.scaled(120, 20), args.seed);

    let mut table = Table::new(
        "Fig 17: throughput gain over PF vs MU-MIMO order (24 UEs, 36 HTs)",
        &["M", "PF Mbps", "AA Mbps", "BLU Mbps", "AA/PF", "BLU/PF"],
    );
    let mut rows = Vec::new();
    for m in [1usize, 2, 4] {
        let mut cell = CellConfig::testbed_siso();
        cell.m_antennas = m;
        cell.max_ues_per_subframe = 10;
        let cmp = compare_schedulers(&trace, &CompareOpts::new(cell, n_txops));
        let row = Fig17Row {
            m_antennas: m,
            pf_mbps: cmp.pf.throughput_mbps(),
            aa_mbps: cmp.aa.throughput_mbps(),
            blu_mbps: cmp.blu_truth.throughput_mbps(),
            blu_over_pf: cmp.blu_truth.throughput_mbps() / cmp.pf.throughput_mbps(),
            aa_over_pf: cmp.aa.throughput_mbps() / cmp.pf.throughput_mbps(),
        };
        table.row(vec![
            m.to_string(),
            format!("{:.2}", row.pf_mbps),
            format!("{:.2}", row.aa_mbps),
            format!("{:.2}", row.blu_mbps),
            format!("{:.2}x", row.aa_over_pf),
            format!("{:.2}x", row.blu_over_pf),
        ]);
        rows.push(row);
    }
    table.print();
    println!("\npaper: BLU reaches ~2x over PF and AA at M = 4");
    save_results_json("fig17", &rows).expect("write results");
    println!("results written to results/fig17.json");
}
