//! Extension experiment: HARQ and BLU are orthogonal repairs.
//!
//! Release-10 HARQ retransmits transport blocks that failed to
//! decode; chase combining sums the received SINRs. HARQ can only
//! help when energy reached the eNB — i.e. **fading** losses. BLU's
//! over-scheduling targets **blocking** losses (no energy at all).
//! This experiment shows the two compose: sweeping the SNR regime,
//! HARQ recovers the fading share, BLU recovers the blocking share,
//! and together they stack.

use blu_bench::statsutil::mean;
use blu_bench::table::save_results_json;
use blu_bench::{ExpArgs, Table};
use blu_core::emulator::{EmulationConfig, Emulator};
use blu_core::joint::TopologyAccess;
use blu_core::sched::{PfScheduler, SpeculativeScheduler, UlScheduler};
use blu_phy::cell::CellConfig;
use blu_sim::time::Micros;
use blu_traces::capture::{capture_synthetic, CaptureConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    snr_regime: String,
    variant: String,
    tput_mbps: f64,
    faded_rbs: f64,
    blocked_rbs: f64,
}

fn main() {
    let args = ExpArgs::parse();
    let n_txops = args.scaled(600, 100);
    let trials = args.scaled(4, 2);

    let mut table = Table::new(
        "Extension: HARQ (fading repair) × BLU (blocking repair)",
        &[
            "SNR regime",
            "variant",
            "tput Mbps",
            "faded RBs",
            "blocked RBs",
        ],
    );
    let mut rows = Vec::new();
    for (regime, snr_lo, snr_hi) in [
        ("low SNR (8-12 dB)", 8.0, 12.0),
        ("high SNR (18-28 dB)", 18.0, 28.0),
    ] {
        for (variant, harq, blu) in [
            ("PF", 0u8, false),
            ("PF+HARQ", 3, false),
            ("BLU", 0, true),
            ("BLU+HARQ", 3, true),
        ] {
            let mut tput = Vec::new();
            let mut faded = Vec::new();
            let mut blocked = Vec::new();
            for trial in 0..trials {
                let seed = args.seed + trial * 13;
                let trace = capture_synthetic(
                    &CaptureConfig {
                        duration: Micros::from_secs(args.scaled(40, 10)),
                        snr_range_db: (snr_lo, snr_hi),
                        q_range: (0.3, 0.55),
                        ..CaptureConfig::testbed_default()
                    },
                    seed,
                );
                let mut cell = CellConfig::testbed_siso();
                cell.numerology.n_rbs = 25;
                let mut cfg = EmulationConfig::new(cell);
                cfg.n_txops = n_txops;
                cfg.harq_max_retx = harq;
                // Aggressive link adaptation amplifies fading losses
                // so the HARQ effect is visible in short runs.
                cfg.mcs_margin_db = -1.0;
                let acc = TopologyAccess::new(&trace.ground_truth);
                let mut blu_sched = SpeculativeScheduler::new(&acc);
                let mut pf_sched = PfScheduler;
                let sched: &mut dyn UlScheduler = if blu { &mut blu_sched } else { &mut pf_sched };
                let m = Emulator::new(&trace, cfg)
                    .expect("emulator setup")
                    .run(sched, None)
                    .metrics;
                tput.push(m.throughput_mbps());
                faded.push(m.rbs_faded as f64);
                blocked.push(m.rbs_blocked as f64);
            }
            let row = Row {
                snr_regime: regime.into(),
                variant: variant.into(),
                tput_mbps: mean(&tput),
                faded_rbs: mean(&faded),
                blocked_rbs: mean(&blocked),
            };
            table.row(vec![
                row.snr_regime.clone(),
                row.variant.clone(),
                format!("{:.2}", row.tput_mbps),
                format!("{:.0}", row.faded_rbs),
                format!("{:.0}", row.blocked_rbs),
            ]);
            rows.push(row);
        }
    }
    table.print();
    println!("\nHARQ shrinks faded RBs (energy received), BLU shrinks blocked RBs\n(grants unused); the repairs compose");
    save_results_json("ext_harq", &rows).expect("write");
    println!("results written to results/ext_harq.json");
}
