//! Extension experiment: access-aware scheduling on the downlink
//! (paper §3.7).
//!
//! On the DL the hidden-terminal conflict shows up as collisions at
//! the clients' receivers. Over-scheduling is impossible, but the
//! blue-print enables *access-aware* DL scheduling (Eqn. 5 applied to
//! DL): weight clients by their clear-channel probability. We compare
//! PF-DL against AA-DL fed ground-truth `p(i)` and against AA-DL fed
//! `p(i)` from an inferred blue-print, sweeping interference load.

use blu_bench::runners::topology_with_hts_per_ue;
use blu_bench::statsutil::mean;
use blu_bench::table::save_results_json;
use blu_bench::{ExpArgs, Table};
use blu_core::blueprint::{infer_topology, ConstraintSystem, InferenceConfig};
use blu_core::downlink::run_downlink;
use blu_core::sched::{AccessAwareScheduler, PfScheduler};
use blu_phy::cell::CellConfig;
use blu_sim::time::Micros;
use blu_traces::capture::capture_from_topology;
use blu_traces::stats::EmpiricalAccess;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    hts_per_ue: usize,
    pf_goodput_mbps: f64,
    aa_truth_goodput_mbps: f64,
    aa_inferred_goodput_mbps: f64,
    pf_collision_rate: f64,
    aa_collision_rate: f64,
}

fn main() {
    let args = ExpArgs::parse();
    let n_subframes = args.scaled(2000, 400);
    let trials = args.scaled(5, 2);

    let mut table = Table::new(
        "Extension: DL access-aware scheduling (6 UEs, SISO)",
        &[
            "HTs/UE",
            "PF Mbps",
            "AA(truth) Mbps",
            "AA(blueprint) Mbps",
            "PF coll%",
            "AA coll%",
        ],
    );
    let mut rows = Vec::new();
    for hts_per_ue in [1usize, 2, 3] {
        let mut pf_g = Vec::new();
        let mut aat_g = Vec::new();
        let mut aai_g = Vec::new();
        let mut pf_c = Vec::new();
        let mut aa_c = Vec::new();
        for trial in 0..trials {
            let seed = args.seed + trial * 53 + hts_per_ue as u64;
            let topo = topology_with_hts_per_ue(6, 8, hts_per_ue, (0.25, 0.55), seed);
            let trace = capture_from_topology(
                &topo,
                Micros::from_secs(args.scaled(40, 10)),
                1_500.0,
                2,
                50,
                (14.0, 26.0),
                seed + 3,
            );
            let cell = CellConfig::testbed_siso();
            let pf =
                run_downlink(&trace, &mut PfScheduler, &cell, n_subframes).expect("downlink run");
            let p_truth: Vec<f64> = (0..6).map(|i| trace.ground_truth.p_individual(i)).collect();
            let aa_truth = run_downlink(
                &trace,
                &mut AccessAwareScheduler::new(p_truth),
                &cell,
                n_subframes,
            )
            .expect("downlink run");
            // Blueprint-driven p(i).
            let emp = EmpiricalAccess::from_trace(&trace.access);
            let sys = ConstraintSystem::from_measurements(&emp);
            let bp = infer_topology(&sys, &InferenceConfig::default()).topology;
            let p_inferred: Vec<f64> = (0..6).map(|i| bp.p_individual(i)).collect();
            let aa_inf = run_downlink(
                &trace,
                &mut AccessAwareScheduler::new(p_inferred),
                &cell,
                n_subframes,
            )
            .expect("downlink run");
            pf_g.push(pf.throughput_mbps());
            aat_g.push(aa_truth.throughput_mbps());
            aai_g.push(aa_inf.throughput_mbps());
            pf_c.push(pf.rbs_blocked as f64 / pf.rbs_scheduled.max(1) as f64);
            aa_c.push(aa_truth.rbs_blocked as f64 / aa_truth.rbs_scheduled.max(1) as f64);
        }
        let row = Row {
            hts_per_ue,
            pf_goodput_mbps: mean(&pf_g),
            aa_truth_goodput_mbps: mean(&aat_g),
            aa_inferred_goodput_mbps: mean(&aai_g),
            pf_collision_rate: mean(&pf_c),
            aa_collision_rate: mean(&aa_c),
        };
        table.row(vec![
            hts_per_ue.to_string(),
            format!("{:.2}", row.pf_goodput_mbps),
            format!("{:.2}", row.aa_truth_goodput_mbps),
            format!("{:.2}", row.aa_inferred_goodput_mbps),
            format!("{:.1}", row.pf_collision_rate * 100.0),
            format!("{:.1}", row.aa_collision_rate * 100.0),
        ]);
        rows.push(row);
    }
    table.print();
    println!("\npaper §3.7: the blue-print enables access-aware DL scheduling that\nreduces collisions and lifts efficiency");
    save_results_json("ext_downlink", &rows).expect("write");
    println!("results written to results/ext_downlink.json");
}
