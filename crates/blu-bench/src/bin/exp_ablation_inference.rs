//! Ablation: topology-inference design choices (paper §3.4).
//!
//! * **gradient repair vs MCMC** — the paper replaced MCMC with a
//!   deterministic repair because MCMC converges only in distribution
//!   and needs sampling before real-time use; we compare accuracy at
//!   matched (and generous) step budgets.
//! * **measurement budget T** — accuracy as a function of the number
//!   of joint samples per pair (Algorithm-1 phase), up to the
//!   full-trace statistics the paper uses for Fig. 14.
//! * **Algorithm 1 vs naive measurement schedules** — round-robin and
//!   random-K schedules need more sub-frames for the same coverage.

use blu_bench::statsutil::mean;
use blu_bench::table::save_results_json;
use blu_bench::{ExpArgs, Table};
use blu_core::blueprint::mcmc::{infer_mcmc, McmcConfig};
use blu_core::blueprint::{infer_topology, topology_accuracy, ConstraintSystem, InferenceConfig};
use blu_core::measure::{measurement_schedule, min_subframes};
use blu_core::orchestrator::{blueprint_from_measurements, run_measurement_phase};
use blu_sim::clientset::ClientSet;
use blu_sim::rng::DetRng;
use blu_sim::time::Micros;

use blu_traces::stats::{n_pairs, pair_index, EmpiricalAccess};
use serde::Serialize;

#[derive(Serialize)]
struct MethodRow {
    method: String,
    mean_accuracy: f64,
    mean_violation: f64,
    mean_ms: f64,
}

#[derive(Serialize)]
struct BudgetRow {
    t_samples: String,
    mean_accuracy: f64,
}

#[derive(Serialize)]
struct ScheduleRow {
    schedule: String,
    subframes_to_cover: u64,
    floor: u64,
}

/// A geometric enterprise-floor trace (same population as Fig. 14's
/// testbed CDF) — edges from propagation, activity from on/off
/// sources.
fn trace_for(seed: u64, duration_s: u64) -> blu_traces::schema::TestbedTrace {
    use blu_traces::scenario::{generate, ActivityModel, ScenarioConfig};
    let mut cfg = ScenarioConfig::testbed();
    cfg.n_ues = 6;
    cfg.n_wifi = 9;
    cfg.region_m = 85.0;
    cfg.duration = Micros::from_secs(duration_s);
    cfg.activity = ActivityModel::OnOff {
        q_range: (0.2, 0.55),
        mean_on_us: 1_500.0,
    };
    generate(&cfg, seed).trace
}

fn main() {
    let args = ExpArgs::parse();
    let trials = args.scaled(10, 3);

    // ---- gradient vs MCMC ----
    let mut grad = (Vec::new(), Vec::new(), Vec::new());
    let mut mcmc = (Vec::new(), Vec::new(), Vec::new());
    for trial in 0..trials {
        let trace = trace_for(args.seed + trial, args.scaled(60, 15));
        let truth = &trace.ground_truth;
        let sys = ConstraintSystem::from_topology(truth);

        let t0 = std::time::Instant::now();
        let g = infer_topology(&sys, &InferenceConfig::default());
        grad.2.push(t0.elapsed().as_secs_f64() * 1e3);
        grad.0
            .push(topology_accuracy(truth, &g.topology).exact_fraction());
        grad.1.push(g.violation);

        let t0 = std::time::Instant::now();
        let m = infer_mcmc(&sys, &McmcConfig::default(), args.seed + trial);
        mcmc.2.push(t0.elapsed().as_secs_f64() * 1e3);
        mcmc.0
            .push(topology_accuracy(truth, &m.topology).exact_fraction());
        mcmc.1.push(m.violation);
    }
    let mut table = Table::new(
        "Ablation: gradient repair vs MCMC (geometric 6-UE floors, noiseless)",
        &["method", "mean exact acc", "mean violation", "mean ms"],
    );
    let mut method_rows = Vec::new();
    for (name, (acc, viol, ms)) in [("gradient", &grad), ("mcmc-20k", &mcmc)] {
        let row = MethodRow {
            method: name.into(),
            mean_accuracy: mean(acc),
            mean_violation: mean(viol),
            mean_ms: mean(ms),
        };
        table.row(vec![
            row.method.clone(),
            format!("{:.2}", row.mean_accuracy),
            format!("{:.4}", row.mean_violation),
            format!("{:.1}", row.mean_ms),
        ]);
        method_rows.push(row);
    }
    table.print();
    println!();

    // ---- T sweep ----
    let mut table_t = Table::new(
        "Ablation: inference accuracy vs measurement budget T",
        &["T per pair", "mean exact acc"],
    );
    let mut budget_rows = Vec::new();
    for &t in &[10u64, 25, 50, 100, 250, 1000] {
        let mut accs = Vec::new();
        for trial in 0..trials {
            let trace = trace_for(args.seed + 100 + trial, args.scaled(60, 15));
            let (est, _) = run_measurement_phase(&trace, 8, t).expect("measurement phase");
            let inf = blueprint_from_measurements(&est, &InferenceConfig::default());
            accs.push(topology_accuracy(&trace.ground_truth, &inf.topology).exact_fraction());
        }
        let row = BudgetRow {
            t_samples: t.to_string(),
            mean_accuracy: mean(&accs),
        };
        table_t.row(vec![
            row.t_samples.clone(),
            format!("{:.2}", row.mean_accuracy),
        ]);
        budget_rows.push(row);
    }
    // Full-trace statistics (the Fig. 14 inputs).
    {
        let mut accs = Vec::new();
        for trial in 0..trials {
            let trace = trace_for(args.seed + 100 + trial, args.scaled(60, 15));
            let emp = EmpiricalAccess::from_trace(&trace.access);
            let sys = ConstraintSystem::from_measurements(&emp);
            let inf = infer_topology(&sys, &InferenceConfig::default());
            accs.push(topology_accuracy(&trace.ground_truth, &inf.topology).exact_fraction());
        }
        let row = BudgetRow {
            t_samples: "full trace".into(),
            mean_accuracy: mean(&accs),
        };
        table_t.row(vec![
            row.t_samples.clone(),
            format!("{:.2}", row.mean_accuracy),
        ]);
        budget_rows.push(row);
    }
    table_t.print();
    println!();

    // ---- Algorithm 1 vs naive schedules ----
    // Coverage cost: sub-frames until every pair has T joint samples.
    let (n, k, t) = (16usize, 6usize, 20u64);
    let floor = min_subframes(n, k, t).expect("floor");

    let alg1 = measurement_schedule(n, k, t).expect("plan").t_max();

    // Shuffled round-robin: each round shuffles the clients and
    // partitions them into ⌈N/K⌉ windows of K. (Plain contiguous
    // round-robin windows never co-schedule cyclically distant pairs
    // at all — the naive baseline has to shuffle to even terminate.)
    let rr = {
        let mut rng = DetRng::seed_from_u64(args.seed ^ 0x55);
        let mut counts = vec![0u64; n_pairs(n)];
        let mut sf = 0u64;
        while counts.iter().any(|&c| c < t) {
            let mut order: Vec<usize> = (0..n).collect();
            rng.shuffle(&mut order);
            for window in order.chunks(k) {
                if window.len() < 2 {
                    continue;
                }
                for (a, &i) in window.iter().enumerate() {
                    for &j in &window[a + 1..] {
                        let (lo, hi) = if i < j { (i, j) } else { (j, i) };
                        counts[pair_index(n, lo, hi)] += 1;
                    }
                }
                sf += 1;
            }
            assert!(sf < 10_000_000);
        }
        sf
    };

    // Random K-subsets.
    let rand = {
        let mut rng = DetRng::seed_from_u64(args.seed);
        let mut counts = vec![0u64; n_pairs(n)];
        let mut sf = 0u64;
        while counts.iter().any(|&c| c < t) {
            let members: ClientSet = rng.choose_indices(n, k).into_iter().collect();
            let mv: Vec<usize> = members.iter().collect();
            for (a, &i) in mv.iter().enumerate() {
                for &j in &mv[a + 1..] {
                    counts[pair_index(n, i, j)] += 1;
                }
            }
            sf += 1;
            assert!(sf < 1_000_000);
        }
        sf
    };

    let mut table_s = Table::new(
        "Ablation: measurement schedules (N=16, K=6, T=20)",
        &["schedule", "sub-frames", "vs floor"],
    );
    let mut sched_rows = Vec::new();
    for (name, sf) in [
        ("Algorithm 1", alg1),
        ("round-robin", rr),
        ("random-K", rand),
    ] {
        let row = ScheduleRow {
            schedule: name.into(),
            subframes_to_cover: sf,
            floor,
        };
        table_s.row(vec![
            row.schedule.clone(),
            sf.to_string(),
            format!("{:.2}x", sf as f64 / floor as f64),
        ]);
        sched_rows.push(row);
    }
    table_s.print();

    save_results_json("ablation_inference_methods", &method_rows).expect("write");
    save_results_json("ablation_inference_budget", &budget_rows).expect("write");
    save_results_json("ablation_measurement_schedules", &sched_rows).expect("write");
    println!("\nresults written to results/ablation_inference_*.json");
}
