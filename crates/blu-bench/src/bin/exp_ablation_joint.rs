//! Ablation: why the *joint* access distribution matters (paper
//! §3.2.2, "Importance of Joint Access Distribution", and the Fig. 5
//! failure case).
//!
//! Three information regimes drive the same speculative scheduler:
//!
//! * **joint (blue-print)** — full dependency structure;
//! * **independence** — only individual `p(i)`: the scheduler
//!   over-schedules as if clients were blocked independently, pairing
//!   clients that share hidden terminals;
//! * **none (PF)** — no access information at all.
//!
//! The gap between *independence* and *joint* grows with edge
//! sharing; we sweep the sharing level by varying how many hidden
//! terminals each UE draws from a fixed pool.

use blu_bench::runners::topology_with_hts_per_ue;
use blu_bench::statsutil::mean;
use blu_bench::table::save_results_json;
use blu_bench::{ExpArgs, Table};
use blu_core::emulator::{EmulationConfig, Emulator};
use blu_core::joint::{IndependentAccess, TopologyAccess};
use blu_core::sched::{PfScheduler, SpeculativeScheduler};
use blu_phy::cell::CellConfig;
use blu_sim::time::Micros;
use blu_traces::capture::capture_from_topology;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    ht_pool: usize,
    pf_mbps: f64,
    independent_mbps: f64,
    joint_mbps: f64,
    independent_collision_rate: f64,
    joint_collision_rate: f64,
}

fn main() {
    let args = ExpArgs::parse();
    let n_txops = args.scaled(400, 80);
    let trials = args.scaled(4, 2);

    let mut table = Table::new(
        "Ablation: joint vs independence access model (6 UEs, 3 HTs/UE)",
        &[
            "HT pool",
            "PF Mbps",
            "BLU-indep Mbps",
            "BLU-joint Mbps",
            "indep coll%",
            "joint coll%",
        ],
    );
    let mut rows = Vec::new();
    // Smaller pool → heavier edge sharing → independence hurts more.
    for &pool in &[18usize, 9, 6, 4] {
        let mut pf_v = Vec::new();
        let mut ind_v = Vec::new();
        let mut joint_v = Vec::new();
        let mut ind_c = Vec::new();
        let mut joint_c = Vec::new();
        for trial in 0..trials {
            let seed = args.seed + trial * 131 + pool as u64;
            let topo = topology_with_hts_per_ue(6, pool, 3.min(pool), (0.3, 0.6), seed);
            let trace = capture_from_topology(
                &topo,
                Micros::from_secs(args.scaled(40, 10)),
                1_500.0,
                2,
                50,
                (14.0, 26.0),
                seed + 5,
            );
            let cfg = {
                let mut c = EmulationConfig::new(CellConfig::testbed_siso());
                c.n_txops = n_txops;
                c
            };
            let pf = Emulator::new(&trace, cfg.clone())
                .expect("emulator setup")
                .run(&mut PfScheduler, None)
                .metrics;
            let p: Vec<f64> = (0..6).map(|i| trace.ground_truth.p_individual(i)).collect();
            let ind_acc = IndependentAccess::new(p).expect("probabilities in [0, 1]");
            let ind = Emulator::new(&trace, cfg.clone())
                .expect("emulator setup")
                .run(&mut SpeculativeScheduler::new(&ind_acc), None)
                .metrics;
            let joint_acc = TopologyAccess::new(&trace.ground_truth);
            let joint = Emulator::new(&trace, cfg)
                .expect("emulator setup")
                .run(&mut SpeculativeScheduler::new(&joint_acc), None)
                .metrics;
            pf_v.push(pf.throughput_mbps());
            ind_v.push(ind.throughput_mbps());
            joint_v.push(joint.throughput_mbps());
            ind_c.push(ind.rbs_collided as f64 / ind.rbs_scheduled.max(1) as f64);
            joint_c.push(joint.rbs_collided as f64 / joint.rbs_scheduled.max(1) as f64);
        }
        let row = Row {
            ht_pool: pool,
            pf_mbps: mean(&pf_v),
            independent_mbps: mean(&ind_v),
            joint_mbps: mean(&joint_v),
            independent_collision_rate: mean(&ind_c),
            joint_collision_rate: mean(&joint_c),
        };
        table.row(vec![
            pool.to_string(),
            format!("{:.2}", row.pf_mbps),
            format!("{:.2}", row.independent_mbps),
            format!("{:.2}", row.joint_mbps),
            format!("{:.2}", row.independent_collision_rate * 100.0),
            format!("{:.2}", row.joint_collision_rate * 100.0),
        ]);
        rows.push(row);
    }
    table.print();
    println!("\nsmaller pool = more shared hidden terminals: the independence\nassumption over-schedules correlated clients into collisions");
    save_results_json("ablation_joint", &rows).expect("write");
    println!("results written to results/ablation_joint.json");
}
