//! §3.3 — measurement-overhead comparison.
//!
//! The cost of estimating k-client joint access distributions
//! directly scales as `⌈C(N,k)/C(K,k)·T⌉` sub-frames and explodes
//! with the MU-MIMO order (k up to 2M); BLU's pairwise measurements
//! cost a constant `⌈C(N,2)/C(K,2)·T⌉`. The paper's example: all
//! 6-client joints for M = 3, N = 20, K = 8 need ≈ 1384·T sub-frames
//! versus < 7·T for pairwise. This binary regenerates that table and
//! reports the sub-frame counts Algorithm 1 actually achieves against
//! the pairwise floor.

use blu_bench::table::save_results_json;
use blu_bench::{ExpArgs, Table};
use blu_core::measure::{measurement_schedule, min_subframes};
use serde::Serialize;

/// `C(n, k)` as f64 (plenty of range for the table's sizes).
fn choose(n: usize, k: usize) -> f64 {
    if k > n {
        return 0.0;
    }
    let mut out = 1.0;
    for i in 0..k {
        out *= (n - i) as f64 / (i + 1) as f64;
    }
    out
}

/// Sub-frames (in units of T) to measure all k-client joints.
fn k_tuple_cost(n: usize, k_sched: usize, k: usize) -> f64 {
    (choose(n, k) / choose(k_sched, k)).ceil()
}

#[derive(Serialize)]
struct OverheadRow {
    n: usize,
    k_sched: usize,
    m: usize,
    tuple_cost_t: f64,
    pairwise_floor_t: f64,
    reduction: f64,
}

#[derive(Serialize)]
struct Algorithm1Row {
    n: usize,
    k_sched: usize,
    t: u64,
    floor: u64,
    achieved: u64,
    overhead_pct: f64,
}

fn main() {
    let args = ExpArgs::parse();

    let mut table = Table::new(
        "Measurement overhead (units of T sub-frames): k-tuple vs pairwise",
        &["N", "K", "M", "k=2M tuple cost", "pairwise", "reduction"],
    );
    let mut rows = Vec::new();
    for &(n, k_sched, m) in &[
        (20usize, 8usize, 1usize),
        (20, 8, 2),
        (20, 8, 3),
        (20, 8, 4),
        (24, 10, 2),
        (24, 10, 4),
        (12, 8, 2),
    ] {
        let k = 2 * m;
        let tuple = k_tuple_cost(n, k_sched, k);
        let pairwise = k_tuple_cost(n, k_sched, 2);
        let row = OverheadRow {
            n,
            k_sched,
            m,
            tuple_cost_t: tuple,
            pairwise_floor_t: pairwise,
            reduction: tuple / pairwise,
        };
        table.row(vec![
            n.to_string(),
            k_sched.to_string(),
            m.to_string(),
            format!("{:.0}T", row.tuple_cost_t),
            format!("{:.0}T", row.pairwise_floor_t),
            format!("{:.0}x", row.reduction),
        ]);
        rows.push(row);
    }
    table.print();
    println!("paper example: N=20, K=8, M=3 -> ~1384T vs <7T\n");

    let mut table_a1 = Table::new(
        "Algorithm 1: achieved measurement sub-frames vs floor",
        &["N", "K", "T", "floor", "achieved", "overhead"],
    );
    let mut rows_a1 = Vec::new();
    for &(n, k_sched, t) in &[
        (10usize, 4usize, 20u64),
        (20, 8, 50),
        (24, 10, 50),
        (16, 8, 30),
        (8, 8, 50),
    ] {
        let plan = measurement_schedule(n, k_sched, t).expect("plan");
        let floor = min_subframes(n, k_sched.min(n), t).expect("floor");
        let row = Algorithm1Row {
            n,
            k_sched,
            t,
            floor,
            achieved: plan.t_max(),
            overhead_pct: 100.0 * (plan.t_max() as f64 / floor as f64 - 1.0),
        };
        table_a1.row(vec![
            n.to_string(),
            k_sched.to_string(),
            t.to_string(),
            floor.to_string(),
            row.achieved.to_string(),
            format!("{:.1}%", row.overhead_pct),
        ]);
        rows_a1.push(row);
    }
    table_a1.print();
    println!("paper operating point: N=20, T=50, K=8 -> t_max ~340 sub-frames");

    save_results_json("overhead_tuple_vs_pairwise", &rows).expect("write");
    save_results_json("overhead_algorithm1", &rows_a1).expect("write");
    println!("\nresults written to results/overhead_*.json");
    let _ = args;
}
