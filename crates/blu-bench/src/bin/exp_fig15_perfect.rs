//! Figure 15 — isolating the speculative scheduler with perfect
//! interference knowledge.
//!
//! The paper's setup: 24 UEs (single-antenna, SISO eNB) from the
//! emulated large deployment, at most 10 UEs schedulable per
//! sub-frame; `p(i)` and `p(i,j)` — and all the joint patterns the
//! schedulers consume — computed **directly from the traces** rather
//! than from the inferred topology. Paper numbers: PF 3.8 Mbps,
//! AA 3.5 Mbps, BLU 6.8 Mbps (1.8× / 1.9×). The substrate differs, so
//! the reproduced quantity is the *shape*: AA ≈ PF, BLU ≈ 1.5–2× both.

use blu_bench::runners::{compare_schedulers, emulated_large_trace, CompareOpts};
use blu_bench::table::save_results_json;
use blu_bench::{ExpArgs, Table};
use blu_phy::cell::CellConfig;
use serde::Serialize;

#[derive(Serialize)]
struct Fig15Result {
    pf_mbps: f64,
    aa_mbps: f64,
    blu_mbps: f64,
    blu_over_pf: f64,
    blu_over_aa: f64,
}

fn main() {
    let args = ExpArgs::parse();
    let n_txops = args.scaled(1500, 150);

    // 6 groups × 4 UEs = 24 UEs; 6 HTs per group = 36 HTs.
    let trace = emulated_large_trace(6, 4, 6, args.scaled(120, 20), args.seed);

    let mut cell = CellConfig::testbed_siso();
    cell.max_ues_per_subframe = 10;
    let mut opts = CompareOpts::new(cell, n_txops);
    opts.with_empirical = true;
    let cmp = compare_schedulers(&trace, &opts);

    let blu = cmp.blu_empirical.as_ref().expect("empirical run requested");
    let result = Fig15Result {
        pf_mbps: cmp.pf.throughput_mbps(),
        aa_mbps: cmp.aa.throughput_mbps(),
        blu_mbps: blu.throughput_mbps(),
        blu_over_pf: blu.throughput_mbps() / cmp.pf.throughput_mbps(),
        blu_over_aa: blu.throughput_mbps() / cmp.aa.throughput_mbps(),
    };

    let mut table = Table::new(
        "Fig 15: LTE SISO throughput, 24 UEs, perfect interference knowledge",
        &["scheduler", "throughput Mbps", "vs PF"],
    );
    table.row(vec![
        "PF".into(),
        format!("{:.2}", result.pf_mbps),
        "1.00x".into(),
    ]);
    table.row(vec![
        "AA".into(),
        format!("{:.2}", result.aa_mbps),
        format!("{:.2}x", result.aa_mbps / result.pf_mbps),
    ]);
    table.row(vec![
        "BLU".into(),
        format!("{:.2}", result.blu_mbps),
        format!("{:.2}x", result.blu_over_pf),
    ]);
    table.print();
    println!("\npaper: PF 3.8, AA 3.5, BLU 6.8 Mbps (1.8x over PF, 1.9x over AA)");

    save_results_json("fig15", &result).expect("write results");
    println!("results written to results/fig15.json");
}
