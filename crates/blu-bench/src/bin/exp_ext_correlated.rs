//! Extension experiment: robustness to *correlated* hidden-terminal
//! activity.
//!
//! The blue-print's generative model assumes hidden terminals are
//! active independently. Real WiFi interferers share the channel
//! through carrier sensing: co-located terminals' activities are
//! *negatively* correlated (they take turns), and collisions couple
//! hidden pairs. This experiment drives the full 802.11 DCF stack as
//! the interference source and asks how much of BLU survives:
//!
//! * inference accuracy against the geometric ground truth;
//! * speculative-scheduling gains with the inferred blue-print vs the
//!   empirical pattern statistics (which capture the correlation
//!   exactly).

use blu_bench::statsutil::mean;
use blu_bench::table::save_results_json;
use blu_bench::{ExpArgs, Table};
use blu_core::blueprint::{infer_topology, topology_accuracy, ConstraintSystem, InferenceConfig};
use blu_core::emulator::{EmulationConfig, Emulator};
use blu_core::joint::{EmpiricalPatternAccess, TopologyAccess};
use blu_core::sched::{PfScheduler, SpeculativeScheduler};
use blu_phy::cell::CellConfig;
use blu_sim::time::Micros;
use blu_traces::scenario::{generate, ActivityModel, ScenarioConfig};
use blu_wifi::traffic::TrafficGen;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    activity: String,
    inference_accuracy: f64,
    pf_mbps: f64,
    blu_blueprint_mbps: f64,
    blu_empirical_mbps: f64,
}

fn main() {
    let args = ExpArgs::parse();
    let trials = args.scaled(6, 2);
    let n_txops = args.scaled(500, 100);

    let mut table = Table::new(
        "Extension: independent vs DCF-correlated interferer activity",
        &[
            "activity model",
            "inference acc",
            "PF Mbps",
            "BLU(blueprint) Mbps",
            "BLU(empirical) Mbps",
        ],
    );
    let mut rows = Vec::new();
    for (name, dcf) in [("independent on/off", false), ("802.11 DCF", true)] {
        let mut acc_v = Vec::new();
        let mut pf_v = Vec::new();
        let mut bp_v = Vec::new();
        let mut emp_v = Vec::new();
        for trial in 0..trials {
            let seed = args.seed + trial * 211;
            let mut cfg = ScenarioConfig::testbed();
            cfg.n_ues = 6;
            cfg.n_wifi = 12;
            cfg.region_m = 95.0;
            cfg.duration = Micros::from_secs(args.scaled(60, 15));
            cfg.activity = if dcf {
                ActivityModel::Dcf
            } else {
                ActivityModel::OnOff {
                    q_range: (0.3, 0.6),
                    mean_on_us: 1_500.0,
                }
            };
            cfg.wifi_traffic = TrafficGen::Bursty {
                mean_on_us: 60_000.0,
                mean_off_us: 20_000.0,
                bytes: 1470,
            };
            let scen = generate(&cfg, seed);
            if scen.trace.ground_truth.n_hidden() == 0 {
                continue;
            }
            let trace = &scen.trace;

            let emp_stats = blu_traces::stats::EmpiricalAccess::from_trace(&trace.access);
            let sys = ConstraintSystem::from_measurements(&emp_stats);
            let inf = infer_topology(&sys, &InferenceConfig::default());
            acc_v.push(topology_accuracy(&trace.ground_truth, &inf.topology).exact_fraction());

            let mut cell = CellConfig::testbed_siso();
            cell.numerology.n_rbs = 25;
            let mut emu_cfg = EmulationConfig::new(cell);
            emu_cfg.n_txops = n_txops;

            let pf = Emulator::new(trace, emu_cfg.clone())
                .expect("emulator setup")
                .run(&mut PfScheduler, None)
                .metrics;
            let bp_acc = TopologyAccess::new(&inf.topology);
            let bp = Emulator::new(trace, emu_cfg.clone())
                .expect("emulator setup")
                .run(&mut SpeculativeScheduler::new(&bp_acc), None)
                .metrics;
            let emp_acc =
                EmpiricalPatternAccess::new(&trace.access).expect("non-empty access trace");
            let emp = Emulator::new(trace, emu_cfg)
                .expect("emulator setup")
                .run(&mut SpeculativeScheduler::new(&emp_acc), None)
                .metrics;
            pf_v.push(pf.throughput_mbps());
            bp_v.push(bp.throughput_mbps());
            emp_v.push(emp.throughput_mbps());
        }
        let row = Row {
            activity: name.into(),
            inference_accuracy: mean(&acc_v),
            pf_mbps: mean(&pf_v),
            blu_blueprint_mbps: mean(&bp_v),
            blu_empirical_mbps: mean(&emp_v),
        };
        table.row(vec![
            row.activity.clone(),
            format!("{:.2}", row.inference_accuracy),
            format!("{:.2}", row.pf_mbps),
            format!("{:.2}", row.blu_blueprint_mbps),
            format!("{:.2}", row.blu_empirical_mbps),
        ]);
        rows.push(row);
    }
    table.print();
    println!("\ncarrier sensing correlates co-located interferers; the gap between\nblueprint-driven and empirical-pattern BLU measures what the\nindependence assumption costs");
    save_results_json("ext_correlated", &rows).expect("write");
    println!("results written to results/ext_correlated.json");
}
