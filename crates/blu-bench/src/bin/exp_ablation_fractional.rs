//! Ablation: binary vs fractional interference impact (paper §3.5).
//!
//! The blue-print assumes a hidden terminal's effect on a client is
//! binary, but fading makes real impacts fractional. We generate
//! ground truth from the *fractional* model, let BLU infer a binary
//! blue-print from the measured pairwise statistics, and compare the
//! speculative scheduler driven by that binary blue-print against
//! (a) the scheduler driven by exact empirical pattern statistics
//! (no model error at all) and (b) PF. The paper's claim: the binary
//! assumption costs little.
//!
//! Evaluation is at the access level (flat rates, SISO): per
//! sub-frame, a scheduled RB is *utilized* iff exactly one of its
//! grantees passes CCA; throughput-free so the comparison isolates
//! the access model.

use blu_bench::statsutil::mean;
use blu_bench::table::save_results_json;
use blu_bench::{ExpArgs, Table};
use blu_core::blueprint::{infer_topology, ConstraintSystem, InferenceConfig};
use blu_core::joint::{EmpiricalPatternAccess, TopologyAccess};
use blu_core::sched::SpeculativeScheduler;
use blu_core::sched::{MatrixRates, PfAverager, PfScheduler, SchedInput, UlScheduler};
use blu_sim::clientset::ClientSet;
use blu_sim::fractional::FractionalTopology;
use blu_sim::rng::DetRng;
use blu_traces::schema::AccessTrace;
use blu_traces::stats::EmpiricalAccess;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    frac_soft: f64,
    pf_utilization: f64,
    blu_binary_utilization: f64,
    blu_exact_utilization: f64,
    binary_penalty_pct: f64,
}

/// Access-level evaluation: run a scheduler over the trace and count
/// the fraction of scheduled RBs with exactly one transmitter (SISO
/// success).
fn evaluate(scheduler: &mut dyn UlScheduler, trace: &AccessTrace, n_rbs: usize) -> f64 {
    let n = trace.n_ues;
    let rates = MatrixRates::flat(n, n_rbs, 100.0);
    let mut averager = PfAverager::new(n, 100.0);
    let mut scheduled = 0u64;
    let mut utilized = 0u64;
    for (sf, &accessible) in trace.accessible.iter().enumerate() {
        let input = SchedInput {
            n_clients: n,
            n_rbs,
            m_antennas: 1,
            k_max: 10,
            max_group: 2,
            rates: &rates,
            avg_tput: &averager.avg,
        };
        let schedule = scheduler.schedule(&input);
        let mut delivered = vec![0.0; n];
        for rb in 0..n_rbs {
            let group = schedule.group(rb);
            if group.is_empty() {
                continue;
            }
            scheduled += 1;
            let tx = group.intersection(accessible);
            if tx.len() == 1 {
                utilized += 1;
                delivered[tx.iter().next().unwrap()] += 100.0;
            }
        }
        averager.update(&delivered);
        let _ = sf;
    }
    utilized as f64 / scheduled.max(1) as f64
}

fn main() {
    let args = ExpArgs::parse();
    let trials = args.scaled(6, 2);
    let n_subframes = args.scaled(3000, 600) as usize;
    let n_rbs = 10;

    let mut table = Table::new(
        "Ablation: fractional interference impact (6 UEs, 5 HTs, SISO access level)",
        &[
            "soft-impact frac",
            "PF util",
            "BLU(binary bp) util",
            "BLU(exact stats) util",
            "binary penalty %",
        ],
    );
    let mut rows = Vec::new();
    for &frac_soft in &[0.0f64, 0.25, 0.5, 0.75, 1.0] {
        let mut pf_u = Vec::new();
        let mut bin_u = Vec::new();
        let mut exact_u = Vec::new();
        for trial in 0..trials {
            let mut rng =
                DetRng::seed_from_u64(args.seed + trial * 97 + (frac_soft * 100.0) as u64);
            let truth = FractionalTopology::random(6, 5, (0.35, 0.65), 0.4, frac_soft, &mut rng);
            let accessible: Vec<ClientSet> = (0..n_subframes)
                .map(|_| truth.sample_access(&mut rng))
                .collect();
            let trace = AccessTrace {
                n_ues: 6,
                accessible,
            };

            // PF baseline.
            pf_u.push(evaluate(&mut PfScheduler, &trace, n_rbs));

            // BLU with a *binary* blue-print inferred from the
            // fractional world's measured statistics.
            let emp = EmpiricalAccess::from_trace(&trace);
            let sys = ConstraintSystem::from_measurements(&emp);
            let blueprint = infer_topology(&sys, &InferenceConfig::default()).topology;
            let acc_bin = TopologyAccess::new(&blueprint);
            bin_u.push(evaluate(
                &mut SpeculativeScheduler::new(&acc_bin),
                &trace,
                n_rbs,
            ));

            // BLU with exact empirical pattern statistics (no binary
            // model error).
            let acc_exact = EmpiricalPatternAccess::new(&trace).expect("non-empty access trace");
            exact_u.push(evaluate(
                &mut SpeculativeScheduler::new(&acc_exact),
                &trace,
                n_rbs,
            ));
        }
        let row = Row {
            frac_soft,
            pf_utilization: mean(&pf_u),
            blu_binary_utilization: mean(&bin_u),
            blu_exact_utilization: mean(&exact_u),
            binary_penalty_pct: 100.0 * (1.0 - mean(&bin_u) / mean(&exact_u).max(1e-9)),
        };
        table.row(vec![
            format!("{frac_soft:.2}"),
            format!("{:.3}", row.pf_utilization),
            format!("{:.3}", row.blu_binary_utilization),
            format!("{:.3}", row.blu_exact_utilization),
            format!("{:.1}", row.binary_penalty_pct),
        ]);
        rows.push(row);
    }
    table.print();
    println!("\npaper §3.5: the binary-impact assumption costs little even when\nmost impacts are fractional");
    save_results_json("ablation_fractional", &rows).expect("write");
    println!("results written to results/ablation_fractional.json");
}
