//! Extension experiment: coexistence wall-clock accounting.
//!
//! The main evaluation (like the paper's) counts throughput per UL
//! sub-frame; on a loaded channel the eNB also has to *win* each TxOP
//! through Cat-4 LBT against the WiFi it can hear. This experiment
//! reports wall-clock throughput as the audible WiFi load grows, and
//! verifies that BLU's relative gain over PF survives contention (the
//! two effects are orthogonal: LBT delays TxOPs, hidden terminals
//! waste grants *inside* TxOPs).

use blu_bench::statsutil::mean;
use blu_bench::table::save_results_json;
use blu_bench::{ExpArgs, Table};
use blu_core::emulator::{EmulationConfig, Emulator};
use blu_core::joint::TopologyAccess;
use blu_core::sched::{PfScheduler, SpeculativeScheduler};
use blu_phy::cell::CellConfig;
use blu_sim::medium::ActivityTimeline;
use blu_sim::rng::DetRng;
use blu_sim::time::Micros;
use blu_traces::capture::{capture_synthetic, CaptureConfig};
use blu_wifi::onoff::OnOffSource;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    audible_duty: f64,
    enb_airtime_share: f64,
    pf_wall_mbps: f64,
    blu_wall_mbps: f64,
    blu_gain: f64,
}

fn main() {
    let args = ExpArgs::parse();
    let n_txops = args.scaled(600, 100);
    let trials = args.scaled(4, 2);

    let mut table = Table::new(
        "Extension: wall-clock throughput under LBT contention",
        &[
            "audible duty",
            "eNB airtime",
            "PF Mbps (wall)",
            "BLU Mbps (wall)",
            "BLU gain",
        ],
    );
    let mut rows = Vec::new();
    for &duty in &[0.0f64, 0.2, 0.4, 0.6] {
        let mut share_v = Vec::new();
        let mut pf_v = Vec::new();
        let mut blu_v = Vec::new();
        for trial in 0..trials {
            let seed = args.seed + trial * 17 + (duty * 100.0) as u64;
            let trace = capture_synthetic(
                &CaptureConfig {
                    q_range: (0.3, 0.6),
                    duration: Micros::from_secs(args.scaled(60, 15)),
                    ..CaptureConfig::testbed_default()
                },
                seed,
            );
            let busy = if duty == 0.0 {
                ActivityTimeline::new()
            } else {
                let mut rng = DetRng::seed_from_u64(seed ^ 0xA1B);
                OnOffSource::with_duty_cycle(duty, 10_000.0)
                    .generate(Micros::from_secs(3_600), &mut rng)
            };
            let cfg = EmulationConfig::new(CellConfig::testbed_siso());
            let mut cfg = cfg;
            cfg.n_txops = n_txops;

            let pf = Emulator::new(&trace, cfg.clone())
                .expect("emulator setup")
                .run_contended(
                    &mut PfScheduler,
                    None,
                    &busy,
                    DetRng::seed_from_u64(seed ^ 0x17),
                );
            let acc = TopologyAccess::new(&trace.ground_truth);
            let blu = Emulator::new(&trace, cfg)
                .expect("emulator setup")
                .run_contended(
                    &mut SpeculativeScheduler::new(&acc),
                    None,
                    &busy,
                    DetRng::seed_from_u64(seed ^ 0x17),
                );
            let wall_pf = pf.wall_clock.unwrap().as_secs_f64();
            let wall_blu = blu.wall_clock.unwrap().as_secs_f64();
            // eNB airtime share: TxOP airtime / wall clock (PF run).
            let airtime_s = (pf.metrics.subframes
                + n_txops * CellConfig::testbed_siso().txop.dl_subframes)
                as f64
                / 1_000.0;
            share_v.push(airtime_s / wall_pf);
            pf_v.push(pf.metrics.bits_delivered / wall_pf / 1e6);
            blu_v.push(blu.metrics.bits_delivered / wall_blu / 1e6);
        }
        let row = Row {
            audible_duty: duty,
            enb_airtime_share: mean(&share_v),
            pf_wall_mbps: mean(&pf_v),
            blu_wall_mbps: mean(&blu_v),
            blu_gain: mean(&blu_v) / mean(&pf_v).max(1e-9),
        };
        table.row(vec![
            format!("{duty:.1}"),
            format!("{:.2}", row.enb_airtime_share),
            format!("{:.2}", row.pf_wall_mbps),
            format!("{:.2}", row.blu_wall_mbps),
            format!("{:.2}x", row.blu_gain),
        ]);
        rows.push(row);
    }
    table.print();
    println!("\nLBT cedes airtime to audible WiFi (coexistence); BLU's gain over PF\npersists because it fixes what happens *inside* the won TxOPs");
    save_results_json("ext_contention", &rows).expect("write");
    println!("results written to results/ext_contention.json");
}
