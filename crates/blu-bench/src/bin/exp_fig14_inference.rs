//! Figure 14 — accuracy of BLU's topology inference.
//!
//! Two trace populations, as in the paper:
//!
//! * **testbed-scale**: 150 small topologies (4–8 UEs, 4–8 hidden
//!   terminals), with access probabilities computed from the full
//!   activity trace (the paper's Fig-14 inputs) plus a sensitivity
//!   variant using only an Algorithm-1 measurement phase at `T = 50`;
//! * **NS3-scale**: 300 random geometric deployments sweeping UEs and
//!   WiFi nodes over {5, 10, 15, 20, 25}.
//!
//! The metric is the paper's strict exact-edge-set match fraction.
//! Paper result: accuracy is 100 % for ≈ 70 % of cases and ≥ 90 % for
//! 90 % of cases; the median stays ≈ 100 % as the topology grows.

use blu_bench::statsutil::{fraction_at_least, mean, percentile};
use blu_bench::table::save_results_json;
use blu_bench::{ExpArgs, Table};
use blu_core::blueprint::{infer_topology, topology_accuracy, ConstraintSystem, InferenceConfig};
use blu_core::orchestrator::{blueprint_from_measurements, run_measurement_phase};
use blu_sim::time::Micros;
use blu_traces::capture::{capture_synthetic, CaptureConfig};
use blu_traces::scenario::{generate, ActivityModel, ScenarioConfig};
use blu_traces::schema::TestbedTrace;
use blu_traces::stats::EmpiricalAccess;
use rayon::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct Fig14Summary {
    population: String,
    cases: usize,
    frac_exact: f64,
    frac_ge_90: f64,
    median: f64,
    p10: f64,
    mean: f64,
}

/// Paper methodology: access probabilities computed from the full
/// activity trace (§4.2.2 "WiFi activity traces … are used to
/// calculate the channel-access probabilities").
fn accuracy_full_trace(trace: &TestbedTrace) -> f64 {
    let emp = EmpiricalAccess::from_trace(&trace.access);
    let sys = ConstraintSystem::from_measurements(&emp);
    let inf = infer_topology(&sys, &InferenceConfig::default());
    topology_accuracy(&trace.ground_truth, &inf.topology).exact_fraction()
}

/// Sensitivity extension: probabilities from an Algorithm-1
/// measurement phase with only `t_samples` joint samples per pair.
fn accuracy_of(trace: &TestbedTrace, t_samples: u64) -> f64 {
    let (est, _) = run_measurement_phase(trace, 8, t_samples).expect("measurement phase");
    let inf = blueprint_from_measurements(&est, &InferenceConfig::default());
    topology_accuracy(&trace.ground_truth, &inf.topology).exact_fraction()
}

fn summarize(name: &str, accs: &[f64]) -> Fig14Summary {
    Fig14Summary {
        population: name.to_string(),
        cases: accs.len(),
        frac_exact: fraction_at_least(accs, 0.999),
        frac_ge_90: fraction_at_least(accs, 0.9),
        median: percentile(accs, 50.0),
        p10: percentile(accs, 10.0),
        mean: mean(accs),
    }
}

fn main() {
    let args = ExpArgs::parse();
    let n_testbed = args.scaled(150, 20) as usize;
    let per_size = args.scaled(12, 2) as usize; // ×25 (5×5 grid) ≈ 300

    // --- testbed-scale population: geometric enterprise floors, as
    // in the paper's 150 testbed topologies (UEs and laptops at
    // varying positions; hidden-terminal edges from the propagation
    // geometry) ---
    let testbed_results: Vec<(f64, f64)> = (0..n_testbed)
        .into_par_iter()
        .filter_map(|i| {
            let seed = args.seed + i as u64;
            let mut rng = blu_sim::rng::DetRng::seed_from_u64(seed ^ 0xF16);
            let mut cfg = ScenarioConfig::testbed();
            cfg.n_ues = rng.range_usize(4, 9);
            cfg.n_wifi = rng.range_usize(6, 11);
            cfg.region_m = rng.range_f64(70.0, 100.0);
            cfg.duration = Micros::from_secs(args.scaled(120, 30));
            cfg.activity = ActivityModel::OnOff {
                q_range: (0.15, 0.6),
                mean_on_us: 1_500.0,
            };
            let scen = generate(&cfg, 500 + seed);
            if scen.trace.ground_truth.n_hidden() == 0 {
                return None; // nothing to infer in this draw
            }
            Some((
                accuracy_full_trace(&scen.trace),
                accuracy_of(&scen.trace, 50),
            ))
        })
        .collect();
    let testbed_accs: Vec<f64> = testbed_results.iter().map(|&(a, _)| a).collect();
    let testbed_t50: Vec<f64> = testbed_results.iter().map(|&(_, a)| a).collect();

    // --- stress population: uniformly random (non-geometric) edge
    // structures with HTs ≈ UEs — the skewed regime of §3.5 where
    // pairwise statistics may admit several explanations ---
    let stress_accs: Vec<f64> = (0..n_testbed)
        .into_par_iter()
        .map(|i| {
            let seed = args.seed + 7_000 + i as u64;
            let mut rng = blu_sim::rng::DetRng::seed_from_u64(seed ^ 0xF17);
            let cfg = CaptureConfig {
                n_ues: rng.range_usize(4, 9),
                n_hts: rng.range_usize(4, 9),
                n_antennas: 2,
                duration: Micros::from_secs(args.scaled(120, 30)),
                q_range: (0.15, 0.6),
                edge_prob: 0.4,
                mean_on_us: 1_500.0,
                coherence_subframes: 50,
                snr_range_db: (12.0, 28.0),
            };
            let trace = capture_synthetic(&cfg, seed);
            accuracy_full_trace(&trace)
        })
        .collect();

    // --- NS3-scale population: sweep UE and WiFi counts ---
    let sizes = [5usize, 10, 15, 20, 25];
    let mut ns3_jobs = Vec::new();
    for &n_ues in &sizes {
        for &n_wifi in &sizes {
            for rep in 0..per_size {
                ns3_jobs.push((n_ues, n_wifi, rep));
            }
        }
    }
    let ns3_results: Vec<(usize, f64)> = ns3_jobs
        .par_iter()
        .map(|&(n_ues, n_wifi, rep)| {
            let mut cfg = ScenarioConfig::ns3(n_ues, n_wifi);
            cfg.duration = Micros::from_secs(args.scaled(120, 30));
            let seed =
                args.seed + (n_ues as u64) * 1_000_003 + (n_wifi as u64) * 10_007 + rep as u64;
            let scen = generate(&cfg, seed);
            (n_ues, accuracy_full_trace(&scen.trace))
        })
        .collect();
    let ns3_accs: Vec<f64> = ns3_results.iter().map(|&(_, a)| a).collect();

    // --- report ---
    let mut table = Table::new(
        "Fig 14: topology-inference accuracy (exact-edge-set metric)",
        &[
            "population",
            "cases",
            "frac 100%",
            "frac >=90%",
            "median",
            "p10",
            "mean",
        ],
    );
    let mut summaries = Vec::new();
    for (name, accs) in [
        ("testbed", &testbed_accs),
        ("ns3", &ns3_accs),
        ("testbed-T50", &testbed_t50),
        ("random-stress", &stress_accs),
    ] {
        let s = summarize(name, accs);
        table.row(vec![
            s.population.clone(),
            s.cases.to_string(),
            format!("{:.2}", s.frac_exact),
            format!("{:.2}", s.frac_ge_90),
            format!("{:.2}", s.median),
            format!("{:.2}", s.p10),
            format!("{:.2}", s.mean),
        ]);
        summaries.push(s);
    }
    table.print();
    println!();

    // Fig 14a: accuracy vs number of UEs (NS3 population).
    let mut table_a = Table::new(
        "Fig 14a: accuracy vs cell size (NS3 population)",
        &["UEs", "cases", "median", "mean"],
    );
    let mut by_size = Vec::new();
    for &n_ues in &sizes {
        let accs: Vec<f64> = ns3_results
            .iter()
            .filter(|&&(u, _)| u == n_ues)
            .map(|&(_, a)| a)
            .collect();
        if accs.is_empty() {
            continue;
        }
        let s = summarize(&format!("{n_ues}ues"), &accs);
        table_a.row(vec![
            n_ues.to_string(),
            s.cases.to_string(),
            format!("{:.2}", s.median),
            format!("{:.2}", s.mean),
        ]);
        by_size.push(s);
    }
    table_a.print();

    save_results_json("fig14_summary", &summaries).expect("write");
    save_results_json("fig14_by_size", &by_size).expect("write");
    save_results_json(
        "fig14_raw",
        &serde_json::json!({ "testbed": testbed_accs, "ns3": ns3_accs }),
    )
    .expect("write");
    println!("\nresults written to results/fig14_*.json");
}
