//! Figure 16 — SISO throughput with varying numbers of UEs, with the
//! joint access distributions coming from BLU's **inferred** topology
//! (i.e. the full pipeline: measure → blue-print → condition →
//! speculate).
//!
//! Paper shape: the gain over PF with the inferred topology is close
//! to the perfect-knowledge gain (≈ 1.8× at 24 UEs), and grows with
//! the number of UEs (more room for interference diversity).

use blu_bench::runners::{compare_schedulers, emulated_large_trace, fan_out, CompareOpts};
use blu_bench::table::save_results_json;
use blu_bench::{ExpArgs, Table};
use blu_phy::cell::CellConfig;
use serde::Serialize;

#[derive(Serialize)]
struct Fig16Row {
    n_ues: usize,
    pf_mbps: f64,
    blu_inferred_mbps: f64,
    blu_truth_mbps: f64,
    inferred_gain: f64,
    truth_gain: f64,
    inference_accuracy: f64,
}

fn main() {
    let args = ExpArgs::parse();
    let n_txops = args.scaled(1000, 120);

    let mut table = Table::new(
        "Fig 16: SISO throughput gain vs number of UEs (inferred topology)",
        &[
            "UEs",
            "PF Mbps",
            "BLU(inf) Mbps",
            "BLU(truth) Mbps",
            "gain(inf)",
            "gain(truth)",
            "inference acc",
        ],
    );
    // Each cell size is an independent scenario: fan them out over
    // the thread pool (results come back in scenario order).
    let rows: Vec<Fig16Row> = fan_out(vec![2usize, 3, 4, 5, 6], |n_groups| {
        let n_ues = 4 * n_groups;
        let trace = emulated_large_trace(
            n_groups,
            4,
            6,
            args.scaled(120, 20),
            args.seed + n_groups as u64,
        );
        let mut cell = CellConfig::testbed_siso();
        cell.max_ues_per_subframe = 10;
        let mut opts = CompareOpts::new(cell, n_txops);
        opts.with_inferred = true;
        let cmp = compare_schedulers(&trace, &opts);
        let inf = cmp.blu_inferred.as_ref().expect("inferred run");
        Fig16Row {
            n_ues,
            pf_mbps: cmp.pf.throughput_mbps(),
            blu_inferred_mbps: inf.throughput_mbps(),
            blu_truth_mbps: cmp.blu_truth.throughput_mbps(),
            inferred_gain: inf.throughput_mbps() / cmp.pf.throughput_mbps(),
            truth_gain: cmp.blu_truth.throughput_mbps() / cmp.pf.throughput_mbps(),
            inference_accuracy: cmp.inference_accuracy.unwrap_or(f64::NAN),
        }
    });
    for row in &rows {
        table.row(vec![
            row.n_ues.to_string(),
            format!("{:.2}", row.pf_mbps),
            format!("{:.2}", row.blu_inferred_mbps),
            format!("{:.2}", row.blu_truth_mbps),
            format!("{:.2}x", row.inferred_gain),
            format!("{:.2}x", row.truth_gain),
            format!("{:.2}", row.inference_accuracy),
        ]);
    }
    table.print();
    save_results_json("fig16", &rows).expect("write results");
    println!("\nresults written to results/fig16.json");
}
