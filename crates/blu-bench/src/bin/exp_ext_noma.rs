//! Extension experiment: BLU × NOMA (paper §5, related work).
//!
//! "Being designed for licensed spectrum, the benefits from BLU's
//! speculative scheduler … will apply to NOMA too." We check the
//! converse composition: power-domain NOMA with SIC rescues the
//! over-scheduling *collisions* BLU occasionally accepts, because two
//! piled-up clients with a sufficient receive-power gap remain
//! separable even on a single antenna. The SNR spread across clients
//! controls how often the gap exists.

use blu_bench::statsutil::mean;
use blu_bench::table::save_results_json;
use blu_bench::{ExpArgs, Table};
use blu_core::emulator::{EmulationConfig, Emulator};
use blu_core::joint::TopologyAccess;
use blu_core::sched::SpeculativeScheduler;
use blu_phy::cell::CellConfig;
use blu_sim::time::Micros;
use blu_traces::capture::{capture_synthetic, CaptureConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    snr_spread: String,
    blu_mbps: f64,
    blu_noma_mbps: f64,
    collisions_plain: f64,
    collisions_noma: f64,
    rescued_pct: f64,
}

fn main() {
    let args = ExpArgs::parse();
    let n_txops = args.scaled(600, 120);
    let trials = args.scaled(5, 2);

    let mut table = Table::new(
        "Extension: SIC-NOMA rescue of over-scheduling collisions (SISO BLU)",
        &[
            "SNR spread",
            "BLU Mbps",
            "BLU+NOMA Mbps",
            "collisions",
            "collisions (NOMA)",
            "rescued",
        ],
    );
    let mut rows = Vec::new();
    for (name, lo, hi) in [
        ("narrow (18-22 dB)", 18.0, 22.0),
        ("medium (12-28 dB)", 12.0, 28.0),
        ("wide (6-32 dB)", 6.0, 32.0),
    ] {
        let mut blu_v = Vec::new();
        let mut noma_v = Vec::new();
        let mut cp = Vec::new();
        let mut cn = Vec::new();
        for trial in 0..trials {
            let seed = args.seed + trial * 71;
            let trace = capture_synthetic(
                &CaptureConfig {
                    duration: Micros::from_secs(args.scaled(40, 10)),
                    q_range: (0.4, 0.65),
                    snr_range_db: (lo, hi),
                    ..CaptureConfig::testbed_default()
                },
                seed,
            );
            let acc = TopologyAccess::new(&trace.ground_truth);
            let mut cell = CellConfig::testbed_siso();
            cell.numerology.n_rbs = 25;
            let mut cfg = EmulationConfig::new(cell);
            cfg.n_txops = n_txops;
            let plain = Emulator::new(&trace, cfg.clone())
                .expect("emulator setup")
                .run(&mut SpeculativeScheduler::new(&acc), None)
                .metrics;
            cfg.noma_sic = true;
            let noma = Emulator::new(&trace, cfg)
                .expect("emulator setup")
                .run(&mut SpeculativeScheduler::new(&acc), None)
                .metrics;
            blu_v.push(plain.throughput_mbps());
            noma_v.push(noma.throughput_mbps());
            cp.push(plain.rbs_collided as f64);
            cn.push(noma.rbs_collided as f64);
        }
        let row = Row {
            snr_spread: name.into(),
            blu_mbps: mean(&blu_v),
            blu_noma_mbps: mean(&noma_v),
            collisions_plain: mean(&cp),
            collisions_noma: mean(&cn),
            rescued_pct: 100.0 * (1.0 - mean(&cn) / mean(&cp).max(1.0)),
        };
        table.row(vec![
            row.snr_spread.clone(),
            format!("{:.2}", row.blu_mbps),
            format!("{:.2}", row.blu_noma_mbps),
            format!("{:.0}", row.collisions_plain),
            format!("{:.0}", row.collisions_noma),
            format!("{:.0}%", row.rescued_pct),
        ]);
        rows.push(row);
    }
    table.print();
    println!("\na wider power spread across clients lets SIC separate more of the\npile-ups that SISO over-scheduling occasionally accepts");
    save_results_json("ext_noma", &rows).expect("write");
    println!("results written to results/ext_noma.json");
}
