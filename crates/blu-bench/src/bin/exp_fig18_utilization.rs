//! Figure 18 — average RB utilization per sub-frame.
//!
//! All RBs are allocated every sub-frame; the question is how many
//! carry data. Paper shape: conventional UL leaves roughly half the
//! assigned RBs unused; BLU nearly doubles utilization over PF for
//! both SISO and MU-MIMO, while AA cannot compensate (it never
//! over-schedules).

use blu_bench::runners::{compare_schedulers, emulated_large_trace, CompareOpts};
use blu_bench::table::save_results_json;
use blu_bench::{ExpArgs, Table};
use blu_phy::cell::CellConfig;
use serde::Serialize;

#[derive(Serialize)]
struct Fig18Row {
    config: String,
    pf_util: f64,
    aa_util: f64,
    blu_util: f64,
    blu_over_pf: f64,
}

fn main() {
    let args = ExpArgs::parse();
    let n_txops = args.scaled(1000, 120);
    let trace = emulated_large_trace(6, 4, 6, args.scaled(120, 20), args.seed);

    let mut table = Table::new(
        "Fig 18: average RB utilization per sub-frame (24 UEs, 36 HTs)",
        &["config", "PF", "AA", "BLU", "BLU/PF"],
    );
    let mut rows = Vec::new();
    for (name, m) in [("SISO", 1usize), ("MU-MIMO M=2", 2), ("MU-MIMO M=4", 4)] {
        let mut cell = CellConfig::testbed_siso();
        cell.m_antennas = m;
        cell.max_ues_per_subframe = 10;
        let cmp = compare_schedulers(&trace, &CompareOpts::new(cell, n_txops));
        let row = Fig18Row {
            config: name.to_string(),
            pf_util: cmp.pf.rb_utilization(),
            aa_util: cmp.aa.rb_utilization(),
            blu_util: cmp.blu_truth.rb_utilization(),
            blu_over_pf: cmp.blu_truth.rb_utilization() / cmp.pf.rb_utilization(),
        };
        table.row(vec![
            row.config.clone(),
            format!("{:.2}", row.pf_util),
            format!("{:.2}", row.aa_util),
            format!("{:.2}", row.blu_util),
            format!("{:.2}x", row.blu_over_pf),
        ]);
        rows.push(row);
    }
    table.print();
    println!("\npaper: BLU almost doubles RB utilization over PF; AA cannot");
    save_results_json("fig18", &rows).expect("write results");
    println!("results written to results/fig18.json");
}
