//! Perf telemetry for the blueprint-inference fast path.
//!
//! Times three things and writes `BENCH_infer.json` (repo root) so
//! the inference perf trajectory is tracked in-tree alongside
//! `BENCH_sched.json`:
//!
//! * **single-run latency** — mean wall-clock of one blue-printing
//!   pass (measurement statistics → inferred topology), on the same
//!   scenario, estimator, and backend + scratch entry point
//!   ([`blueprint_from_measurements_with`]) `perf_sched` uses, so
//!   the two files report the same code path and must agree;
//! * **MCMC proposals/sec** — the incremental delta-energy chain
//!   ([`infer_mcmc`]) versus the pre-fast-path reference that clones
//!   the state and recomputes the full energy every proposal
//!   ([`infer_mcmc_scratch`]), with the measured speedup. The two
//!   chains draw the same RNG stream and return bit-identical
//!   topologies (pinned by blu-core's differential tests), so this is
//!   a pure like-for-like kernel comparison;
//! * **batch cells/sec** — N independent cells blue-printed through
//!   the parallel [`infer_batch`] front end versus the sequential
//!   reference.
//!
//! `--quick` shrinks every loop for CI smoke runs; the JSON is
//! written either way.

use blu_bench::runners::topology_with_hts_per_ue;
use blu_bench::{ExpArgs, Table};
use blu_core::blueprint::batch::{
    infer_batch, infer_batch_cached, infer_batch_sequential, infer_batch_with,
};
use blu_core::blueprint::mcmc::{infer_mcmc, infer_mcmc_scratch, McmcConfig};
use blu_core::blueprint::{
    ConstraintSystem, FleetBlueprintCache, FleetCacheStats, InferScratch, InferenceBackend,
    InferenceConfig, TopologySignature,
};
use blu_core::measure::{measurement_schedule, OutcomeEstimator};
use blu_core::orchestrator::{blueprint_from_measurements_with, BluConfig};
use blu_core::robust::{run_blu_robust, RobustConfig, StreamingConfig};
use blu_core::EmulationConfig;
use blu_phy::cell::CellConfig;
use blu_sim::clientset::ClientSet;
use blu_sim::faults::{FaultEvent, FaultKind, FaultScript};
use blu_sim::rng::DetRng;
use blu_sim::time::Micros;
use blu_sim::topology::InterferenceTopology;
use blu_traces::capture::{capture_from_topology, CaptureConfig};
use blu_traces::faults::capture_with_faults;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct BenchInfer {
    quick: bool,
    seed: u64,
    // Blue-printing latency (same scenario as perf_sched).
    inference_runs: u64,
    inference_latency_ms: f64,
    // MCMC chain throughput: incremental vs from-scratch energy
    // (10 UEs / 8 HTs system with triple constraints).
    mcmc_steps: u64,
    mcmc_chains: u64,
    incremental_proposals_per_sec: f64,
    scratch_proposals_per_sec: f64,
    mcmc_speedup: f64,
    // Multi-cell batch inference (gradient backend per cell),
    // best-of-`batch_rounds` alternating measurement.
    batch_cells: u64,
    batch_rounds: u64,
    batch_cells_per_sec: f64,
    sequential_cells_per_sec: f64,
    batch_speedup: f64,
    // Fleet blueprint cache on a repeat-topology fleet (16 cells, 4
    // distinct topology classes): cached vs cold-cache batch
    // throughput, plus the fraction of solves the cache absorbed.
    fleet_cells: u64,
    fleet_classes: u64,
    fleet_cached_cells_per_sec: f64,
    fleet_cold_cells_per_sec: f64,
    fleet_cache_speedup: f64,
    fleet_infer_work_saved: f64,
    // Cache counters summed over the timed fleet rounds *and* the
    // coalescing phase below, so the delayed-hit path shows up here.
    // (`fleet_infer_work_saved` above stays a pure timed-rounds
    // quantity: `fleet_cache_hits / fleet_cells` of one round.)
    fleet_cache_hits: u64,
    fleet_cache_delayed_hits: u64,
    fleet_cache_misses: u64,
    // Coalescing phase: barrier-released racers on one signature of a
    // fresh cache — exactly one owner solve, everyone else served
    // from it, at least one parked in flight (a delayed hit).
    coalesce_threads: u64,
    coalesce_attempts: u64,
    // Streaming online inference vs the phased re-measurement loop on
    // a step-change capture (a hidden terminal appears mid-trace).
    // `remeasure_budget_ratio` is streaming's extra measurement
    // sub-frames over the phased loop's — the ISSUE-10 acceptance
    // bound is <= 0.5 at no worse effective throughput.
    stream_seconds: u64,
    stream_refines: u64,
    stream_refines_per_sec: f64,
    remeasure_budget_ratio: f64,
    stream_effective_mbps: f64,
    phased_effective_mbps: f64,
}

fn time_secs<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64())
}

/// A denser system where the full-energy recompute actually bites:
/// every pair constraint is present and the topology contributes
/// triple constraints too.
fn dense_system(seed: u64) -> ConstraintSystem {
    let mut rng = DetRng::seed_from_u64(seed);
    let topo = InterferenceTopology::random(10, 8, (0.2, 0.6), 0.4, &mut rng);
    let mut sys = ConstraintSystem::from_topology(&topo);
    sys.add_triples_from_topology(&topo, &[(0, 1, 2), (2, 4, 5), (3, 6, 9)]);
    sys
}

fn main() {
    let args = ExpArgs::parse();

    // Single-run blue-printing latency on the perf_sched scenario so
    // BENCH_infer.json and BENCH_sched.json report the same quantity.
    let topo = topology_with_hts_per_ue(4, 6, 3, (0.3, 0.6), args.seed);
    let trace = capture_from_topology(
        &topo,
        Micros::from_secs(args.scaled(60, 8)),
        1_500.0,
        2,
        50,
        (12.0, 28.0),
        args.seed + 7,
    );
    let inference_runs = args.scaled(20, 3);
    let mut est = OutcomeEstimator::new(trace.ground_truth.n_clients);
    *est.stats_mut() = blu_traces::stats::EmpiricalAccess::from_trace(&trace.access);
    let backend = InferenceBackend::default();
    let mut inf_scratch = InferScratch::default();
    let (_, inf_secs) = time_secs(|| {
        for _ in 0..inference_runs {
            std::hint::black_box(blueprint_from_measurements_with(
                &est,
                &InferenceConfig::default(),
                &backend,
                &mut inf_scratch,
            ));
        }
    });

    // MCMC kernel throughput: incremental tracker vs clone+recompute.
    let sys = dense_system(args.seed + 13);
    let mcmc_steps = args.scaled(20_000, 2_000);
    let mcmc_chains = args.scaled(4, 1);
    let cfg = McmcConfig {
        steps: mcmc_steps as usize,
        ..Default::default()
    };
    let (_, inc_secs) = time_secs(|| {
        for c in 0..mcmc_chains {
            std::hint::black_box(infer_mcmc(&sys, &cfg, args.seed + c));
        }
    });
    let (_, scr_secs) = time_secs(|| {
        for c in 0..mcmc_chains {
            std::hint::black_box(infer_mcmc_scratch(&sys, &cfg, args.seed + c));
        }
    });
    let proposals = (mcmc_steps * mcmc_chains) as f64;
    let inc_pps = proposals / inc_secs.max(1e-9);
    let scr_pps = proposals / scr_secs.max(1e-9);

    // Batch inference: one constraint system per cell, gradient
    // backend, sharded fan-out with per-shard scratch vs sequential
    // reference.
    let batch_cells = args.scaled(16, 8);
    let systems: Vec<ConstraintSystem> = (0..batch_cells)
        .map(|c| {
            let mut rng = DetRng::seed_from_u64(args.seed + 100 + c);
            let t = InterferenceTopology::random(8, 6, (0.15, 0.6), 0.4, &mut rng);
            ConstraintSystem::from_topology(&t)
        })
        .collect();
    let icfg = InferenceConfig::default();
    // Untimed warm-up of both paths: fault in code/data pages and
    // spin up the shard threads once, so neither timed pass pays
    // first-run costs the other doesn't.
    std::hint::black_box(infer_batch(&systems, &icfg));
    std::hint::black_box(infer_batch_sequential(
        &systems,
        &icfg,
        &InferenceBackend::Gradient,
    ));
    // Alternating min-of-rounds: the per-cell math of the two paths
    // is pinned bit-identical by the differential tests, so the
    // measurement must reject scheduler noise rather than average it
    // in. Interleaving cancels frequency drift between the paths and
    // the minimum is robust to one-sided interference on a loaded
    // host.
    let batch_rounds = args.scaled(7, 3);
    let mut par_secs = f64::INFINITY;
    let mut seq_secs = f64::INFINITY;
    for _ in 0..batch_rounds {
        let (_, p) = time_secs(|| std::hint::black_box(infer_batch(&systems, &icfg)));
        let (_, s) = time_secs(|| {
            std::hint::black_box(infer_batch_sequential(
                &systems,
                &icfg,
                &InferenceBackend::Gradient,
            ))
        });
        par_secs = par_secs.min(p);
        seq_secs = seq_secs.min(s);
    }
    let par_cps = batch_cells as f64 / par_secs.max(1e-9);
    let seq_cps = batch_cells as f64 / seq_secs.max(1e-9);

    // Fleet blueprint cache on the ISSUE-8 acceptance workload: a
    // 16-cell fleet drawn from 4 distinct topology classes (each
    // class repeated 4×), the clustering stochastic-geometry models
    // predict at fleet scale. Fixed size even under --quick so the
    // `fleet_infer_work_saved` floor is the same quantity everywhere.
    let fleet_cells: u64 = 16;
    let fleet_classes: u64 = 4;
    let class_systems: Vec<ConstraintSystem> = (0..fleet_classes)
        .map(|c| {
            let mut rng = DetRng::seed_from_u64(args.seed + 300 + c);
            let t = InterferenceTopology::random(8, 6, (0.15, 0.6), 0.4, &mut rng);
            ConstraintSystem::from_topology(&t)
        })
        .collect();
    let fleet_systems: Vec<ConstraintSystem> = (0..fleet_cells)
        .map(|i| class_systems[(i % fleet_classes) as usize].clone())
        .collect();
    let fleet_backend = InferenceBackend::Gradient;
    // Warm-up + in-bench determinism check: cached results must equal
    // the cache-free batch bit for bit.
    let cold_reference = infer_batch_with(&fleet_systems, &icfg, &fleet_backend);
    {
        let warm_cache = FleetBlueprintCache::new(64);
        let cached_reference =
            infer_batch_cached(&fleet_systems, &icfg, &fleet_backend, &warm_cache);
        for (a, b) in cached_reference.iter().zip(&cold_reference) {
            let (a, b) = (a.as_ref().expect("cached"), b.as_ref().expect("cold"));
            assert_eq!(a.topology, b.topology, "cached fleet result diverged");
            assert!(
                a.violation.to_bits() == b.violation.to_bits()
                    && a.iterations == b.iterations
                    && a.verdict == b.verdict,
                "cached fleet result diverged"
            );
        }
    }
    // Alternating min-of-rounds, fresh cache per cached round so each
    // timed pass does the same deterministic work: `fleet_classes`
    // solves plus `fleet_cells - fleet_classes` (possibly delayed)
    // hits.
    let mut cached_secs = f64::INFINITY;
    let mut cold_secs = f64::INFINITY;
    let mut fleet_stats = blu_core::blueprint::FleetCacheStats::default();
    for _ in 0..batch_rounds {
        let round_cache = FleetBlueprintCache::new(64);
        let (_, c) = time_secs(|| {
            std::hint::black_box(infer_batch_cached(
                &fleet_systems,
                &icfg,
                &fleet_backend,
                &round_cache,
            ))
        });
        let (_, u) = time_secs(|| {
            std::hint::black_box(infer_batch_with(&fleet_systems, &icfg, &fleet_backend))
        });
        cached_secs = cached_secs.min(c);
        cold_secs = cold_secs.min(u);
        fleet_stats = round_cache.stats();
    }
    let fleet_cached_cps = fleet_cells as f64 / cached_secs.max(1e-9);
    let fleet_cold_cps = fleet_cells as f64 / cold_secs.max(1e-9);

    // Coalescing phase. The timed rounds above cannot guarantee a
    // delayed hit: a shard often finishes a class's solve before the
    // next same-class cell even computes its signature, so the
    // in-flight parking path would go unexercised (and unreported).
    // Drive it deliberately: barrier-release `coalesce_threads`
    // racers on one signature of a fresh cache. Exactly one owns the
    // miss; with the barrier in front of a multi-ms gradient solve
    // the rest overwhelmingly park on the in-flight entry. Scheduler
    // luck can still let a racer lose the barrier wake-up race past
    // the whole solve, so retry until a delayed hit is observed
    // (bounded; every attempt's counters are kept).
    let coalesce_threads: u64 = 8;
    let mut coalesce_attempts: u64 = 0;
    let mut coalesce_stats = FleetCacheStats::default();
    while coalesce_attempts < 16 {
        coalesce_attempts += 1;
        let cache = FleetBlueprintCache::new(4);
        let sys = &class_systems[(coalesce_attempts % fleet_classes) as usize];
        let sig = TopologySignature::new(sys, &icfg, &fleet_backend);
        let barrier = std::sync::Barrier::new(coalesce_threads as usize);
        std::thread::scope(|scope| {
            for _ in 0..coalesce_threads {
                let (barrier, cache, sig, backend, icfg) =
                    (&barrier, &cache, &sig, &fleet_backend, &icfg);
                scope.spawn(move || {
                    barrier.wait();
                    std::hint::black_box(
                        cache.get_or_solve_infallible(sig, || backend.infer(sys, icfg)),
                    );
                });
            }
        });
        let s = cache.stats();
        assert_eq!(s.misses, 1, "one racer owns the solve");
        assert_eq!(
            s.lookups(),
            coalesce_threads,
            "every racer is served exactly once"
        );
        coalesce_stats.hits += s.hits;
        coalesce_stats.delayed_hits += s.delayed_hits;
        coalesce_stats.misses += s.misses;
        if coalesce_stats.delayed_hits > 0 {
            break;
        }
    }
    assert!(
        coalesce_stats.delayed_hits > 0,
        "no delayed hit in {coalesce_attempts} coalescing attempts"
    );

    // Streaming phase on the ISSUE-10 acceptance workload: a hidden
    // terminal appears at sub-frame 20k of a 90 s capture. The phased
    // loop pays a full Algorithm-1 re-measurement for the step change;
    // the streaming loop absorbs it with incremental window refines
    // and must land within half the phased loop's extra measurement
    // budget at no worse effective throughput. Fixed size even under
    // --quick so `remeasure_budget_ratio` is the same quantity
    // everywhere (the churn-smoke CI job asserts on it).
    let stream_seconds: u64 = 90;
    let step_change = FaultScript::new(vec![FaultEvent {
        at_subframe: 20_000,
        kind: FaultKind::HtAppear {
            q: 0.6,
            edges: ClientSet::from_iter([0, 1, 2, 3]),
        },
    }]);
    let stream_cap = capture_with_faults(
        &CaptureConfig {
            duration: Micros::from_secs(stream_seconds),
            q_range: (0.25, 0.55),
            ..CaptureConfig::testbed_default()
        },
        &step_change,
        12,
    )
    .expect("step-change capture");
    let mut stream_cell = CellConfig::testbed_siso();
    stream_cell.numerology.n_rbs = 10;
    let phased_cfg = RobustConfig::new(BluConfig::new(EmulationConfig::new(stream_cell)));
    let mut stream_cfg = phased_cfg.clone();
    stream_cfg.streaming = Some(StreamingConfig::new(1_000));
    let (phased, _) = time_secs(|| run_blu_robust(&stream_cap, &phased_cfg).expect("phased run"));
    let (streamed, stream_run_secs) =
        time_secs(|| run_blu_robust(&stream_cap, &stream_cfg).expect("streaming run"));
    // Both loops pay the same initial measurement phase; everything
    // past it is what the step change cost each of them.
    let initial = measurement_schedule(
        stream_cap.trace.ground_truth.n_clients,
        phased_cfg.blu.emulation.cell.max_ues_per_subframe,
        phased_cfg.blu.t_samples,
    )
    .expect("measurement schedule")
    .t_max();
    let phased_extra = phased.measurement_subframes.saturating_sub(initial);
    let stream_extra = streamed.measurement_subframes.saturating_sub(initial);
    assert!(
        phased_extra > 0,
        "phased baseline never re-measured; the step change went unnoticed"
    );
    let remeasure_budget_ratio = stream_extra as f64 / phased_extra as f64;

    let out = BenchInfer {
        quick: args.quick,
        seed: args.seed,
        inference_runs,
        inference_latency_ms: 1e3 * inf_secs / inference_runs.max(1) as f64,
        mcmc_steps,
        mcmc_chains,
        incremental_proposals_per_sec: inc_pps,
        scratch_proposals_per_sec: scr_pps,
        mcmc_speedup: inc_pps / scr_pps.max(1e-9),
        batch_cells,
        batch_rounds,
        batch_cells_per_sec: par_cps,
        sequential_cells_per_sec: seq_cps,
        batch_speedup: par_cps / seq_cps.max(1e-9),
        fleet_cells,
        fleet_classes,
        fleet_cached_cells_per_sec: fleet_cached_cps,
        fleet_cold_cells_per_sec: fleet_cold_cps,
        fleet_cache_speedup: fleet_cached_cps / fleet_cold_cps.max(1e-9),
        fleet_infer_work_saved: fleet_stats.work_saved(),
        fleet_cache_hits: fleet_stats.hits + coalesce_stats.hits,
        fleet_cache_delayed_hits: fleet_stats.delayed_hits + coalesce_stats.delayed_hits,
        fleet_cache_misses: fleet_stats.misses + coalesce_stats.misses,
        coalesce_threads,
        coalesce_attempts,
        stream_seconds,
        stream_refines: streamed.stream_refines,
        stream_refines_per_sec: streamed.stream_refines as f64 / stream_run_secs.max(1e-9),
        remeasure_budget_ratio,
        stream_effective_mbps: streamed.effective_throughput_mbps(),
        phased_effective_mbps: phased.effective_throughput_mbps(),
    };

    let mut table = Table::new(
        "perf_infer: inference fast-path telemetry",
        &["metric", "value"],
    );
    table.row(vec![
        "inference latency".into(),
        format!("{:.2} ms", out.inference_latency_ms),
    ]);
    table.row(vec![
        "incremental proposals/sec".into(),
        format!("{:.0}", out.incremental_proposals_per_sec),
    ]);
    table.row(vec![
        "scratch proposals/sec".into(),
        format!("{:.0}", out.scratch_proposals_per_sec),
    ]);
    table.row(vec![
        "MCMC speedup".into(),
        format!("{:.2}x", out.mcmc_speedup),
    ]);
    table.row(vec![
        "batch cells/sec".into(),
        format!("{:.1}", out.batch_cells_per_sec),
    ]);
    table.row(vec![
        "sequential cells/sec".into(),
        format!("{:.1}", out.sequential_cells_per_sec),
    ]);
    table.row(vec![
        "batch speedup".into(),
        format!("{:.2}x", out.batch_speedup),
    ]);
    table.row(vec![
        "fleet cached cells/sec".into(),
        format!("{:.1}", out.fleet_cached_cells_per_sec),
    ]);
    table.row(vec![
        "fleet cold cells/sec".into(),
        format!("{:.1}", out.fleet_cold_cells_per_sec),
    ]);
    table.row(vec![
        "fleet cache speedup".into(),
        format!("{:.2}x", out.fleet_cache_speedup),
    ]);
    table.row(vec![
        "fleet infer work saved".into(),
        format!("{:.2}", out.fleet_infer_work_saved),
    ]);
    table.row(vec![
        "fleet cache delayed hits".into(),
        format!(
            "{} ({} racers, {} attempt(s))",
            out.fleet_cache_delayed_hits, out.coalesce_threads, out.coalesce_attempts
        ),
    ]);
    table.row(vec![
        "stream refines/sec".into(),
        format!("{:.0}", out.stream_refines_per_sec),
    ]);
    table.row(vec![
        "remeasure budget ratio".into(),
        format!("{:.3}", out.remeasure_budget_ratio),
    ]);
    table.row(vec![
        "stream vs phased Mbps".into(),
        format!(
            "{:.2} vs {:.2}",
            out.stream_effective_mbps, out.phased_effective_mbps
        ),
    ]);
    table.print();

    let json = serde_json::to_string_pretty(&out).expect("serializable");
    std::fs::write("BENCH_infer.json", json + "\n").expect("write BENCH_infer.json");
    println!("\nperf telemetry written to BENCH_infer.json");
}
