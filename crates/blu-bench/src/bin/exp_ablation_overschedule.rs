//! Ablation: the over-scheduling factor `f` (paper §3.2.2).
//!
//! BLU schedules up to `f·M` clients per RB. The paper argues f = 2
//! is the sweet spot: beyond it, the extra clients mostly add
//! collision risk (diminishing returns). We sweep `f ∈ {1, 1.5, 2, 3}`
//! for SISO and M = 2, reporting throughput and collision rates.
//! `f = 1` disables over-scheduling entirely (BLU degenerates to an
//! access-aware-flavoured PF).

use blu_bench::statsutil::mean;
use blu_bench::table::save_results_json;
use blu_bench::{ExpArgs, Table};
use blu_core::emulator::{EmulationConfig, Emulator};
use blu_core::joint::TopologyAccess;
use blu_core::sched::SpeculativeScheduler;
use blu_phy::cell::CellConfig;
use blu_sim::time::Micros;
use blu_traces::capture::capture_from_topology;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    m_antennas: usize,
    factor: f64,
    throughput_mbps: f64,
    rb_utilization: f64,
    collision_rate: f64,
}

fn main() {
    let args = ExpArgs::parse();
    let n_txops = args.scaled(400, 80);
    let trials = args.scaled(4, 2);

    let mut table = Table::new(
        "Ablation: over-scheduling factor f (cap = f·M clients per RB)",
        &["M", "f", "tput Mbps", "RB util", "collision rate"],
    );
    let mut rows = Vec::new();
    for &m in &[1usize, 2] {
        for &factor in &[1.0f64, 1.5, 2.0, 3.0] {
            if ((m as f64) * factor).floor() as usize > blu_phy::pilot::MAX_ORTHOGONAL_SHIFTS {
                continue;
            }
            let mut tput = Vec::new();
            let mut util = Vec::new();
            let mut coll = Vec::new();
            for trial in 0..trials {
                let seed = args.seed + trial * 77;
                let topo = blu_bench::runners::topology_with_hts_per_ue(6, 8, 3, (0.3, 0.6), seed);
                let trace = capture_from_topology(
                    &topo,
                    Micros::from_secs(args.scaled(40, 10)),
                    1_500.0,
                    2,
                    50,
                    (14.0, 26.0),
                    seed + 5,
                );
                let mut cell = CellConfig::testbed_siso();
                cell.m_antennas = m;
                cell.overschedule_factor = factor;
                cell.validate().expect("valid cell");
                let mut cfg = EmulationConfig::new(cell);
                cfg.n_txops = n_txops;
                let acc = TopologyAccess::new(&trace.ground_truth);
                let metrics = Emulator::new(&trace, cfg)
                    .expect("emulator setup")
                    .run(&mut SpeculativeScheduler::new(&acc), None)
                    .metrics;
                tput.push(metrics.throughput_mbps());
                util.push(metrics.rb_utilization());
                coll.push(metrics.rbs_collided as f64 / metrics.rbs_scheduled.max(1) as f64);
            }
            let row = Row {
                m_antennas: m,
                factor,
                throughput_mbps: mean(&tput),
                rb_utilization: mean(&util),
                collision_rate: mean(&coll),
            };
            table.row(vec![
                m.to_string(),
                format!("{factor:.1}"),
                format!("{:.2}", row.throughput_mbps),
                format!("{:.2}", row.rb_utilization),
                format!("{:.4}", row.collision_rate),
            ]);
            rows.push(row);
        }
    }
    table.print();
    println!("\npaper: gains saturate around f = 2; beyond it collisions erode them");
    save_results_json("ablation_overschedule", &rows).expect("write");
    println!("results written to results/ablation_overschedule.json");
}
