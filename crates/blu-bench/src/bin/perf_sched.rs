//! Hot-path perf telemetry for the speculative scheduler.
//!
//! Times three things on a testbed-scale scenario and writes
//! `BENCH_sched.json` (repo root) so the perf trajectory is tracked
//! in-tree:
//!
//! * **subframes/sec** — full emulator replays under PF and BLU;
//! * **schedules/sec** — raw sub-frame scheduling throughput of the
//!   current hot path (bounded `Arc` cache + pruned incremental
//!   greedy) versus a reconstruction of the pre-overhaul baseline
//!   (per-query vector clone + exhaustive candidate loop), with the
//!   measured speedup;
//! * **inference latency** — mean wall-clock of one blue-printing
//!   pass (measurement statistics → inferred topology), routed
//!   through the same backend + scratch entry point
//!   ([`blueprint_from_measurements_with`]) `perf_infer` times, so
//!   `BENCH_sched.json` and `BENCH_infer.json` report the same code
//!   path and must agree.
//!
//! `--quick` shrinks every loop for CI smoke runs; the JSON is
//! written either way.

use blu_bench::runners::topology_with_hts_per_ue;
use blu_bench::{ExpArgs, Table};
use blu_core::blueprint::{InferScratch, InferenceBackend, InferenceConfig};
use blu_core::emulator::{EmulationConfig, Emulator};
use blu_core::error::BluError;
use blu_core::joint::{AccessDistribution, TopologyAccess};
use blu_core::measure::OutcomeEstimator;
use blu_core::orchestrator::blueprint_from_measurements_with;
use blu_core::sched::{MatrixRates, PfScheduler, SchedInput, SpeculativeScheduler, UlScheduler};
use blu_phy::cell::CellConfig;
use blu_sim::clientset::ClientSet;
use blu_sim::rng::DetRng;
use blu_sim::time::Micros;
use blu_sim::topology::InterferenceTopology;
use blu_traces::capture::capture_from_topology;
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

/// Reconstruction of the pre-overhaul provider behavior: every query
/// hands back a freshly allocated vector (the old unbounded
/// `RefCell<HashMap>` cloned a `2^|w|` `Vec` out of the map on every
/// hit). Pair with [`SpeculativeScheduler::exhaustive`] to get the
/// pre-overhaul scheduling path end to end.
struct CloningAccess<'a>(TopologyAccess<'a>);

impl AccessDistribution for CloningAccess<'_> {
    fn pattern_distribution(&self, w: ClientSet) -> Result<Arc<[f64]>, BluError> {
        let d = self.0.pattern_distribution(w)?;
        Ok(Arc::from(d.to_vec()))
    }
}

#[derive(Serialize)]
struct BenchSched {
    quick: bool,
    seed: u64,
    // Emulator replays (4 UEs / 6 HTs testbed trace, SISO cell).
    emu_n_txops: u64,
    emu_rounds: u64,
    pf_subframes_per_sec: f64,
    blu_subframes_per_sec: f64,
    /// Mean wall-clock of one emulated BLU sub-frame, in nanoseconds
    /// (`1e9 / blu_subframes_per_sec`) — the CI floor metric.
    subframe_ns: f64,
    // Raw scheduler throughput (10 UEs / 8 HTs, MU-MIMO cell).
    sched_iters: u64,
    hot_schedules_per_sec: f64,
    baseline_schedules_per_sec: f64,
    sched_speedup: f64,
    // Distribution-cache counters of the emulator's shared provider:
    // each replay round constructs a fresh scheduler (fresh private
    // memo), so these count how much pattern-distribution work the
    // shared bounded LRU absorbs across scheduler instances — the
    // fleet sharing pattern.
    sched_cache_hits: u64,
    sched_cache_misses: u64,
    sched_cache_hit_rate: f64,
    // Blue-printing (measurement stats -> topology).
    inference_runs: u64,
    inference_latency_ms: f64,
}

fn time_secs<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64())
}

/// Emulator subframes/sec for one scheduler over the trace.
fn emu_rate(
    trace: &blu_traces::schema::TestbedTrace,
    cell: &CellConfig,
    n_txops: u64,
    sched: &mut dyn UlScheduler,
) -> f64 {
    let mut cfg = EmulationConfig::new(cell.clone());
    cfg.n_txops = n_txops;
    let mut emu = Emulator::new(trace, cfg).expect("emulator setup");
    let (report, secs) = time_secs(|| emu.run(sched, None));
    report.metrics.subframes as f64 / secs.max(1e-9)
}

/// Raw schedules/sec: drive `schedule()` over a fixed rate matrix
/// with slowly rotating PF averages (so candidate orderings shift the
/// way they do across real sub-frames).
fn sched_rate(sched: &mut SpeculativeScheduler<'_>, n: usize, n_rbs: usize, iters: u64) -> f64 {
    let rates = MatrixRates::build(n, n_rbs, |u, b| {
        600.0 + ((u * 31 + b * 17) % 13) as f64 * 40.0
    });
    let avgs: Vec<Vec<f64>> = (0..8)
        .map(|k| {
            (0..n)
                .map(|u| 400.0 + ((u + k) % n) as f64 * 120.0)
                .collect()
        })
        .collect();
    let (_, secs) = time_secs(|| {
        for i in 0..iters {
            let input = SchedInput {
                n_clients: n,
                n_rbs,
                m_antennas: 2,
                k_max: n,
                max_group: 4,
                rates: &rates,
                avg_tput: &avgs[(i % 8) as usize],
            };
            std::hint::black_box(sched.schedule(&input));
        }
    });
    iters as f64 / secs.max(1e-9)
}

fn main() {
    let args = ExpArgs::parse();

    // Emulator replays on the testbed-scale trace.
    let topo = topology_with_hts_per_ue(4, 6, 3, (0.3, 0.6), args.seed);
    let trace = capture_from_topology(
        &topo,
        Micros::from_secs(args.scaled(60, 8)),
        1_500.0,
        2,
        50,
        (12.0, 28.0),
        args.seed + 7,
    );
    let cell = CellConfig::testbed_siso();
    // Long enough that the per-subframe figure (and the blu-vs-pf
    // ratio CI asserts on) is dominated by steady-state work, not
    // timer granularity or first-touch faults — in quick mode too,
    // since CI runs the floor assertions against the quick JSON.
    let emu_n_txops = args.scaled(2_000, 300);
    let access = TopologyAccess::new(&trace.ground_truth);
    // Alternating best-of-rounds: both replays are deterministic, so
    // timing noise is one-sided (interference only ever slows a
    // pass). Interleaving PF and BLU passes cancels frequency drift
    // between them, and the per-path maximum rate rejects one-sided
    // slowdowns instead of averaging them into the blu/pf ratio CI
    // asserts on — same discipline as perf_infer's batch timing.
    let emu_rounds = args.scaled(5, 3);
    let mut pf_sps = 0.0f64;
    let mut blu_sps = 0.0f64;
    for _ in 0..emu_rounds {
        pf_sps = pf_sps.max(emu_rate(&trace, &cell, emu_n_txops, &mut PfScheduler));
        blu_sps = blu_sps.max(emu_rate(
            &trace,
            &cell,
            emu_n_txops,
            &mut SpeculativeScheduler::new(&access),
        ));
    }
    // Counters of the provider shared by every BLU replay round: each
    // round's scheduler starts with a cold private memo, so round 2+
    // traffic is served by the shared DistributionCache.
    let sched_cache = access.cache_stats();

    // Raw scheduler throughput: hot path vs pre-overhaul baseline on
    // a denser cell where the 2^w expectations actually bite.
    let mut rng = DetRng::seed_from_u64(args.seed + 13);
    let dense = InterferenceTopology::random(10, 8, (0.2, 0.6), 0.4, &mut rng);
    let sched_iters = args.scaled(3_000, 100);
    let hot_access = TopologyAccess::new(&dense);
    let hot = sched_rate(
        &mut SpeculativeScheduler::new(&hot_access),
        10,
        20,
        sched_iters,
    );
    let base_access = CloningAccess(TopologyAccess::new(&dense));
    let baseline = sched_rate(
        &mut SpeculativeScheduler::exhaustive(&base_access),
        10,
        20,
        sched_iters,
    );

    // Blue-printing latency from full-trace statistics, through the
    // same backend + scratch path perf_infer times (the two JSON
    // files must agree; CI cross-checks them).
    let inference_runs = args.scaled(20, 3);
    let mut est = OutcomeEstimator::new(trace.ground_truth.n_clients);
    *est.stats_mut() = blu_traces::stats::EmpiricalAccess::from_trace(&trace.access);
    let backend = InferenceBackend::default();
    let mut inf_scratch = InferScratch::default();
    let (_, inf_secs) = time_secs(|| {
        for _ in 0..inference_runs {
            std::hint::black_box(blueprint_from_measurements_with(
                &est,
                &InferenceConfig::default(),
                &backend,
                &mut inf_scratch,
            ));
        }
    });

    let out = BenchSched {
        quick: args.quick,
        seed: args.seed,
        emu_n_txops,
        emu_rounds,
        pf_subframes_per_sec: pf_sps,
        blu_subframes_per_sec: blu_sps,
        subframe_ns: 1e9 / blu_sps.max(1e-9),
        sched_iters,
        hot_schedules_per_sec: hot,
        baseline_schedules_per_sec: baseline,
        sched_speedup: hot / baseline.max(1e-9),
        sched_cache_hits: sched_cache.hits,
        sched_cache_misses: sched_cache.misses,
        sched_cache_hit_rate: sched_cache.hit_rate(),
        inference_runs,
        inference_latency_ms: 1e3 * inf_secs / inference_runs.max(1) as f64,
    };

    let mut table = Table::new("perf_sched: hot-path telemetry", &["metric", "value"]);
    table.row(vec![
        "PF subframes/sec".into(),
        format!("{:.0}", out.pf_subframes_per_sec),
    ]);
    table.row(vec![
        "BLU subframes/sec".into(),
        format!("{:.0}", out.blu_subframes_per_sec),
    ]);
    table.row(vec![
        "BLU subframe".into(),
        format!("{:.0} ns", out.subframe_ns),
    ]);
    table.row(vec![
        "hot schedules/sec".into(),
        format!("{:.0}", out.hot_schedules_per_sec),
    ]);
    table.row(vec![
        "baseline schedules/sec".into(),
        format!("{:.0}", out.baseline_schedules_per_sec),
    ]);
    table.row(vec![
        "sched speedup".into(),
        format!("{:.2}x", out.sched_speedup),
    ]);
    table.row(vec![
        "sched cache hit rate".into(),
        format!(
            "{:.3} ({} hits / {} lookups)",
            out.sched_cache_hit_rate,
            out.sched_cache_hits,
            out.sched_cache_hits + out.sched_cache_misses
        ),
    ]);
    table.row(vec![
        "inference latency".into(),
        format!("{:.2} ms", out.inference_latency_ms),
    ]);
    table.print();

    let json = serde_json::to_string_pretty(&out).expect("serializable");
    std::fs::write("BENCH_sched.json", json + "\n").expect("write BENCH_sched.json");
    println!("\nperf telemetry written to BENCH_sched.json");
}
