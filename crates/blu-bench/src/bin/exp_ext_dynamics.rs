//! Extension experiment: tracking topology dynamics (paper §3.7).
//!
//! Clients and interferers move at the tens-of-seconds scale; BLU
//! re-measures and re-blue-prints every `L` sub-frames so it always
//! schedules within the stationary regime. We emulate a sequence of
//! environment epochs (each a fresh topology) and compare:
//!
//! * **adaptive** — re-measure + re-infer at every epoch (the paper's
//!   operation);
//! * **stale** — blue-print once and never update;
//! * **PF** — no interference knowledge at all.

use blu_bench::table::save_results_json;
use blu_bench::{ExpArgs, Table};
use blu_core::emulator::{EmulationConfig, Emulator};
use blu_core::orchestrator::{run_blu_adaptive, run_blu_stale, BluConfig};
use blu_core::sched::PfScheduler;
use blu_phy::cell::CellConfig;
use blu_sim::time::Micros;
use blu_traces::capture::{capture_synthetic, CaptureConfig};
use serde::Serialize;

#[derive(Serialize, Clone)]
struct Row {
    epoch: usize,
    pf_mbps: f64,
    stale_mbps: f64,
    adaptive_mbps: f64,
    stale_accuracy: f64,
    adaptive_accuracy: f64,
    measurement_overhead_pct: f64,
}

fn main() {
    let args = ExpArgs::parse();
    let n_epochs = 4usize;
    let n_txops = args.scaled(600, 120);
    let trials = args.scaled(4, 2);

    let mut table = Table::new(
        "Extension: topology dynamics — adaptive vs stale blue-print",
        &[
            "epoch",
            "PF Mbps",
            "stale Mbps",
            "adaptive Mbps",
            "stale acc",
            "adaptive acc",
            "meas overhead %",
        ],
    );
    let mut acc = vec![
        Row {
            epoch: 0,
            pf_mbps: 0.0,
            stale_mbps: 0.0,
            adaptive_mbps: 0.0,
            stale_accuracy: 0.0,
            adaptive_accuracy: 0.0,
            measurement_overhead_pct: 0.0,
        };
        n_epochs
    ];
    for trial in 0..trials {
        let epochs: Vec<_> = (0..n_epochs)
            .map(|e| {
                capture_synthetic(
                    &CaptureConfig {
                        duration: Micros::from_secs(args.scaled(40, 10)),
                        q_range: (0.3, 0.6),
                        ..CaptureConfig::testbed_default()
                    },
                    args.seed + trial * 1000 + e as u64 * 37,
                )
            })
            .collect();
        let refs: Vec<&_> = epochs.iter().collect();
        let mut cell = CellConfig::testbed_siso();
        cell.numerology.n_rbs = 25;
        let mut emu_cfg = EmulationConfig::new(cell);
        emu_cfg.n_txops = n_txops;
        let config = BluConfig::new(emu_cfg.clone());

        let adaptive = run_blu_adaptive(&refs, &config).expect("adaptive run");
        let stale = run_blu_stale(&refs, &config).expect("stale run");
        for (e, trace) in epochs.iter().enumerate() {
            let pf = Emulator::new(trace, emu_cfg.clone())
                .expect("emulator setup")
                .run(&mut PfScheduler, None)
                .metrics;
            acc[e].epoch = e;
            acc[e].pf_mbps += pf.throughput_mbps();
            acc[e].stale_mbps += stale[e].speculative.metrics.throughput_mbps();
            acc[e].adaptive_mbps += adaptive[e].speculative.metrics.throughput_mbps();
            acc[e].stale_accuracy += stale[e].accuracy.exact_fraction();
            acc[e].adaptive_accuracy += adaptive[e].accuracy.exact_fraction();
            // Measurement overhead per epoch: t_max vs the epoch's
            // speculative sub-frames (L).
            let l = adaptive[e].speculative.metrics.subframes as f64;
            acc[e].measurement_overhead_pct +=
                100.0 * adaptive[e].measurement_subframes as f64 / l.max(1.0);
        }
    }
    let t = trials as f64;
    let rows: Vec<Row> = acc
        .into_iter()
        .map(|r| Row {
            epoch: r.epoch,
            pf_mbps: r.pf_mbps / t,
            stale_mbps: r.stale_mbps / t,
            adaptive_mbps: r.adaptive_mbps / t,
            stale_accuracy: r.stale_accuracy / t,
            adaptive_accuracy: r.adaptive_accuracy / t,
            measurement_overhead_pct: r.measurement_overhead_pct / t,
        })
        .collect();
    for r in &rows {
        table.row(vec![
            r.epoch.to_string(),
            format!("{:.2}", r.pf_mbps),
            format!("{:.2}", r.stale_mbps),
            format!("{:.2}", r.adaptive_mbps),
            format!("{:.2}", r.stale_accuracy),
            format!("{:.2}", r.adaptive_accuracy),
            format!("{:.1}", r.measurement_overhead_pct),
        ]);
    }
    table.print();
    println!("\nafter the environment changes (epoch ≥ 1) the stale blue-print's\naccuracy collapses while re-measurement keeps BLU at full gain; the\nper-epoch measurement overhead stays small (t_max << L, §3.7)");
    save_results_json("ext_dynamics", &rows).expect("write");
    println!("results written to results/ext_dynamics.json");
}
