//! Figure 4 — motivation: the cost of hidden terminals on LTE's
//! scheduled uplink.
//!
//! * **Fig. 4a** — loss in sub-frame (RB) utilization under the
//!   native PF scheduler as the number of hidden terminals per UE
//!   grows (SISO and 2×2 MU-MIMO, 8-UE cell).
//! * **Fig. 4b** — fraction of *fully occupied* sub-frames under the
//!   same sweep.
//! * **Fig. 4c** — number of hidden terminals when one WiFi cell is
//!   replaced by an LTE cell in the same geometry (preamble vs
//!   energy-detection sensing).

use blu_bench::statsutil::mean;
use blu_bench::table::save_results_json;
use blu_bench::{ExpArgs, Table};
use blu_core::emulator::{EmulationConfig, Emulator};
use blu_core::sched::PfScheduler;
use blu_phy::cell::CellConfig;
use blu_sim::cca::SensingThresholds;
use blu_sim::geometry::Region;
use blu_sim::node::{Node, NodeKind};
use blu_sim::pathloss::{LogDistance, Propagation, ShadowingField};
use blu_sim::power::Dbm;
use blu_sim::rng::DetRng;
use blu_sim::time::Micros;
use blu_sim::topology::count_hidden_terminals;
use blu_traces::capture::capture_from_topology;
use serde::Serialize;

#[derive(Serialize)]
struct Fig4Row {
    hts_per_ue: usize,
    siso_utilization_loss: f64,
    mumimo_utilization_loss: f64,
    siso_full_subframes: f64,
    mumimo_full_subframes: f64,
}

#[derive(Serialize)]
struct Fig4cRow {
    wifi_nodes: usize,
    hidden_all_wifi: f64,
    hidden_lte_wifi: f64,
    ratio: f64,
}

fn pf_metrics(
    trace: &blu_traces::schema::TestbedTrace,
    cell: CellConfig,
    n_txops: u64,
) -> blu_core::metrics::UplinkMetrics {
    let mut cfg = EmulationConfig::new(cell);
    cfg.n_txops = n_txops;
    Emulator::new(trace, cfg)
        .expect("emulator setup")
        .run(&mut PfScheduler, None)
        .metrics
}

fn main() {
    let args = ExpArgs::parse();
    let n_txops = args.scaled(400, 60);
    let trials = args.scaled(5, 2);

    // ---- Fig. 4a / 4b ----
    let mut table_ab = Table::new(
        "Fig 4a/4b: PF under-utilization vs hidden terminals per UE (8 UEs)",
        &[
            "HTs/UE",
            "SISO util-loss %",
            "MUMIMO util-loss %",
            "SISO full-SF %",
            "MUMIMO full-SF %",
        ],
    );
    let mut rows = Vec::new();
    for hts_per_ue in [1usize, 2, 3, 4, 5, 6] {
        let mut siso_loss = Vec::new();
        let mut mu_loss = Vec::new();
        let mut siso_full = Vec::new();
        let mut mu_full = Vec::new();
        for trial in 0..trials {
            let topo = blu_bench::runners::topology_with_hts_per_ue(
                8,
                12,
                hts_per_ue,
                (0.2, 0.5),
                args.seed + trial * 100 + hts_per_ue as u64,
            );
            let trace = capture_from_topology(
                &topo,
                Micros::from_secs(args.scaled(60, 10)),
                1_500.0,
                2,
                50,
                (12.0, 28.0),
                args.seed + trial,
            );
            let mut siso = CellConfig::testbed_siso();
            siso.max_ues_per_subframe = 10;
            let m_siso = pf_metrics(&trace, siso, n_txops);
            let mut mumimo = CellConfig::testbed_mumimo2();
            mumimo.max_ues_per_subframe = 10;
            let m_mu = pf_metrics(&trace, mumimo, n_txops);
            siso_loss.push(1.0 - m_siso.rb_utilization());
            mu_loss.push(1.0 - m_mu.rb_utilization());
            siso_full.push(m_siso.full_subframe_fraction());
            mu_full.push(m_mu.full_subframe_fraction());
        }
        let row = Fig4Row {
            hts_per_ue,
            siso_utilization_loss: mean(&siso_loss),
            mumimo_utilization_loss: mean(&mu_loss),
            siso_full_subframes: mean(&siso_full),
            mumimo_full_subframes: mean(&mu_full),
        };
        table_ab.row(vec![
            hts_per_ue.to_string(),
            format!("{:.1}", row.siso_utilization_loss * 100.0),
            format!("{:.1}", row.mumimo_utilization_loss * 100.0),
            format!("{:.1}", row.siso_full_subframes * 100.0),
            format!("{:.1}", row.mumimo_full_subframes * 100.0),
        ]);
        rows.push(row);
    }
    table_ab.print();
    println!();

    // ---- Fig. 4c ----
    let mut table_c = Table::new(
        "Fig 4c: hidden terminals, all-WiFi cell vs LTE cell in WiFi field",
        &[
            "WiFi nodes",
            "hidden (all WiFi)",
            "hidden (LTE cell)",
            "ratio",
        ],
    );
    let mut rows_c = Vec::new();
    let mut rng = DetRng::seed_from_u64(args.seed);
    for &n_wifi in &[10usize, 20, 30] {
        let mut all_wifi = Vec::new();
        let mut lte = Vec::new();
        for _ in 0..args.scaled(40, 10) {
            let region = Region::square(55.0);
            let mut prop = Propagation::new(LogDistance::indoor_5ghz(), ShadowingField::disabled());
            let head = Node::new(0, NodeKind::Enb, region.center());
            let clients: Vec<Node> = region
                .sample_uniform_n(4, &mut rng)
                .into_iter()
                .enumerate()
                .map(|(i, p)| Node::new(1 + i as u32, NodeKind::Ue, p))
                .collect();
            let others: Vec<Node> = region
                .sample_uniform_n(n_wifi, &mut rng)
                .into_iter()
                .enumerate()
                .map(|(i, p)| Node::new(100 + i as u32, NodeKind::WifiSta, p))
                .collect();
            let th = SensingThresholds::default();
            let floor = Dbm(-90.0);
            let (w, _) =
                count_hidden_terminals(&head, &clients, &others, &mut prop, &th, false, floor);
            let (l, _) =
                count_hidden_terminals(&head, &clients, &others, &mut prop, &th, true, floor);
            all_wifi.push(w as f64);
            lte.push(l as f64);
        }
        let row = Fig4cRow {
            wifi_nodes: n_wifi,
            hidden_all_wifi: mean(&all_wifi),
            hidden_lte_wifi: mean(&lte),
            ratio: mean(&lte) / mean(&all_wifi).max(1e-9),
        };
        table_c.row(vec![
            n_wifi.to_string(),
            format!("{:.2}", row.hidden_all_wifi),
            format!("{:.2}", row.hidden_lte_wifi),
            format!("{:.2}x", row.ratio),
        ]);
        rows_c.push(row);
    }
    table_c.print();

    save_results_json("fig04ab", &rows).expect("write results");
    save_results_json("fig04c", &rows_c).expect("write results");
    println!("\nresults written to results/fig04ab.json, results/fig04c.json");
}
