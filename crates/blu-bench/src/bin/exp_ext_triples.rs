//! Extension experiment: triple measurements for skewed topologies
//! (paper §3.5).
//!
//! When hidden terminals outnumber clients, several topologies can
//! satisfy the pairwise statistics; the fewest-terminals tie-break
//! then picks a wrong (cheaper) explanation. The paper suggests that
//! "additional joint access distribution of clients (beyond
//! pair-wise, say triplets) … can provide additional constraints".
//! We construct skewed instances (star + per-client singles, which a
//! triangle explains more cheaply pairwise) embedded in random
//! surroundings, and measure inference accuracy with and without
//! triple constraints.

use blu_bench::statsutil::mean;
use blu_bench::table::save_results_json;
use blu_bench::{ExpArgs, Table};
use blu_core::blueprint::{infer_topology, topology_accuracy, ConstraintSystem, InferenceConfig};
use blu_sim::clientset::ClientSet;
use blu_sim::rng::DetRng;
use blu_sim::topology::{HiddenTerminal, InterferenceTopology};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    n_clients: usize,
    accuracy_pairwise: f64,
    accuracy_with_triples: f64,
}

/// A skewed instance: a 3-client star (one shared HT + three
/// singles) embedded among `n − 3` extra clients with random
/// terminals — more HTs than clients overall.
fn skewed_instance(n: usize, seed: u64) -> InterferenceTopology {
    let mut rng = DetRng::seed_from_u64(seed);
    let q = rng.range_f64(0.3, 0.5);
    let mut hts = vec![
        HiddenTerminal {
            q,
            edges: ClientSet::from_iter([0, 1, 2]),
        },
        HiddenTerminal {
            q,
            edges: ClientSet::singleton(0),
        },
        HiddenTerminal {
            q,
            edges: ClientSet::singleton(1),
        },
        HiddenTerminal {
            q,
            edges: ClientSet::singleton(2),
        },
    ];
    // Surroundings: one private HT per extra client plus a couple of
    // random pair terminals.
    for c in 3..n {
        hts.push(HiddenTerminal {
            q: rng.range_f64(0.15, 0.6),
            edges: ClientSet::singleton(c),
        });
    }
    for _ in 0..(n / 3) {
        let a = rng.below(n);
        let mut b = rng.below(n);
        if b == a {
            b = (b + 1) % n;
        }
        hts.push(HiddenTerminal {
            q: rng.range_f64(0.15, 0.5),
            edges: ClientSet::from_iter([a, b]),
        });
    }
    InterferenceTopology { n_clients: n, hts }
}

/// All client triples touching the embedded star (what an operator
/// would measure after spotting residual ambiguity).
fn star_triples() -> Vec<(usize, usize, usize)> {
    vec![(0, 1, 2)]
}

fn main() {
    let args = ExpArgs::parse();
    let trials = args.scaled(15, 5);

    let mut table = Table::new(
        "Extension: triple measurements on skewed topologies",
        &["clients", "pairwise-only acc", "with triples acc"],
    );
    let mut rows = Vec::new();
    for &n in &[4usize, 6, 8] {
        let mut acc_pair = Vec::new();
        let mut acc_tri = Vec::new();
        for trial in 0..trials {
            let truth = skewed_instance(n, args.seed + trial * 31 + n as u64);
            let sys = ConstraintSystem::from_topology(&truth);
            let r = infer_topology(&sys, &InferenceConfig::default());
            acc_pair.push(topology_accuracy(&truth, &r.topology).exact_fraction());

            let mut sys3 = ConstraintSystem::from_topology(&truth);
            sys3.add_triples_from_topology(&truth, &star_triples());
            let r3 = infer_topology(&sys3, &InferenceConfig::default());
            acc_tri.push(topology_accuracy(&truth, &r3.topology).exact_fraction());
        }
        let row = Row {
            n_clients: n,
            accuracy_pairwise: mean(&acc_pair),
            accuracy_with_triples: mean(&acc_tri),
        };
        table.row(vec![
            n.to_string(),
            format!("{:.2}", row.accuracy_pairwise),
            format!("{:.2}", row.accuracy_with_triples),
        ]);
        rows.push(row);
    }
    table.print();
    println!("\nthe star-vs-triangle ambiguity is resolved by a single triple constraint");
    save_results_json("ext_triples", &rows).expect("write");
    println!("results written to results/ext_triples.json");
}
