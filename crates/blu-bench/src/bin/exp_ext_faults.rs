//! Extension experiment: robust orchestration under injected faults.
//!
//! Mid-run the interference topology is rearranged — three of the
//! initial hidden terminals leave the air and a new terminal
//! blanketing four clients appears — while 5% of pilot observations
//! are misclassified throughout. The rearrangement keeps aggregate
//! channel capacity roughly constant (what disappears offsets what
//! appears) but invalidates any blueprint measured before it: exactly
//! the regime the degraded-mode orchestrator exists for.
//!
//! Three runners over the same fault-scripted captures, all fed
//! through the same corrupted observation channel:
//!
//! * **robust** — drift detection + shortened §3.7 re-measurement +
//!   PF fallback (the full state machine);
//! * **static** — identical machinery with the drift monitor disabled
//!   (`drift_threshold = ∞`): measure once, speculate forever on the
//!   stale blueprint;
//! * **PF** — proportional fair, no interference knowledge.
//!
//! The headline number is `recovery = robust_faulted / robust_clean`
//! (effective throughput, measurement overhead charged): the
//! acceptance bar is ≥ 0.8 while the static baseline lands visibly
//! below the robust runner on the same faulted capture.

use blu_bench::table::save_results_json;
use blu_bench::{ExpArgs, Table};
use blu_core::emulator::{EmulationConfig, Emulator};
use blu_core::orchestrator::BluConfig;
use blu_core::robust::{run_blu_robust, RobustConfig};
use blu_core::sched::PfScheduler;
use blu_phy::cell::CellConfig;
use blu_sim::clientset::ClientSet;
use blu_sim::faults::{FaultEvent, FaultKind, FaultScript};
use blu_sim::time::Micros;
use blu_traces::capture::CaptureConfig;
use blu_traces::faults::{capture_with_faults, FaultyCapture};
use serde::Serialize;

#[derive(Serialize, Clone, Default)]
struct Row {
    trial: u64,
    robust_clean_mbps: f64,
    robust_faulted_mbps: f64,
    static_faulted_mbps: f64,
    pf_faulted_mbps: f64,
    recovery_fraction: f64,
    static_vs_robust: f64,
    n_remeasurements: u32,
    peak_drift: f64,
    final_state: String,
}

/// Mid-run rearrangement + persistent 5% pilot misclassification.
fn fault_script(rearrange_sf: u64) -> FaultScript {
    FaultScript::new(vec![
        FaultEvent {
            at_subframe: 0,
            kind: FaultKind::MisclassifyRate { rate: 0.05 },
        },
        FaultEvent {
            at_subframe: rearrange_sf,
            kind: FaultKind::HtDisappear { ht: 0 },
        },
        FaultEvent {
            at_subframe: rearrange_sf,
            kind: FaultKind::HtDisappear { ht: 1 },
        },
        FaultEvent {
            at_subframe: rearrange_sf,
            kind: FaultKind::HtDisappear { ht: 2 },
        },
        FaultEvent {
            at_subframe: rearrange_sf,
            kind: FaultKind::HtAppear {
                q: 0.35,
                edges: ClientSet::from_iter([0, 1, 2, 3]),
            },
        },
    ])
}

fn capture(script: &FaultScript, secs: u64, seed: u64) -> FaultyCapture {
    capture_with_faults(
        &CaptureConfig {
            duration: Micros::from_secs(secs),
            q_range: (0.25, 0.55),
            ..CaptureConfig::testbed_default()
        },
        script,
        seed,
    )
    .expect("capture")
}

fn main() {
    let args = ExpArgs::parse();
    let secs = args.scaled(90, 45);
    let rearrange_sf = secs * 1_000 / 4; // first quarter: measure + settle
    let trials = args.scaled(4, 2);

    let mut cell = CellConfig::testbed_siso();
    cell.numerology.n_rbs = 25;
    let per_txop = cell.txop.total_subframes();

    let mut table = Table::new(
        "Extension: fault injection — robust vs static BLU vs PF",
        &[
            "trial",
            "robust clean",
            "robust faulted",
            "static faulted",
            "PF faulted",
            "recovery",
            "static/robust",
            "re-meas",
            "peak drift",
            "final",
        ],
    );

    let mut rows: Vec<Row> = Vec::new();
    for trial in 0..trials {
        let seed = args.seed + 101 * trial;
        let clean = capture(&FaultScript::none(), secs, seed);
        let faulted = capture(&fault_script(rearrange_sf), secs, seed);

        let emu_cfg = EmulationConfig::new(cell.clone());
        // The bench topologies carry heavier baseline interference
        // than the library defaults assume, so mispredict deviations
        // are smaller in absolute terms: lower the alarm threshold
        // (the clean yardstick runs the same config, so any false
        // alarms are charged to both sides of the recovery ratio).
        let mut robust_cfg = RobustConfig::new(BluConfig::new(emu_cfg.clone()));
        robust_cfg.drift_threshold = 0.15;

        // Static baseline = same machinery, same corrupted observation
        // channel, drift monitoring disabled: the blueprint is never
        // refreshed after the initial measurement phase.
        let mut static_cfg = robust_cfg.clone();
        static_cfg.drift_threshold = f64::INFINITY;

        let r_clean = run_blu_robust(&clean, &robust_cfg).expect("robust clean run");
        let r_faulted = run_blu_robust(&faulted, &robust_cfg).expect("robust faulted run");
        let s_faulted = run_blu_robust(&faulted, &static_cfg).expect("static faulted run");

        let mut pf_cfg = emu_cfg.clone();
        pf_cfg.n_txops = secs * 1_000 / per_txop;
        let pf = Emulator::new(&faulted.trace, pf_cfg)
            .expect("emulator setup")
            .run(&mut PfScheduler, None)
            .metrics;

        let clean_mbps = r_clean.effective_throughput_mbps();
        let faulted_mbps = r_faulted.effective_throughput_mbps();
        let static_mbps = s_faulted.effective_throughput_mbps();
        let row = Row {
            trial,
            robust_clean_mbps: clean_mbps,
            robust_faulted_mbps: faulted_mbps,
            static_faulted_mbps: static_mbps,
            pf_faulted_mbps: pf.throughput_mbps(),
            recovery_fraction: faulted_mbps / clean_mbps.max(1e-12),
            static_vs_robust: static_mbps / faulted_mbps.max(1e-12),
            n_remeasurements: r_faulted.n_remeasurements,
            peak_drift: r_faulted.peak_drift,
            final_state: r_faulted.final_state().to_string(),
        };
        table.row(vec![
            row.trial.to_string(),
            format!("{:.2}", row.robust_clean_mbps),
            format!("{:.2}", row.robust_faulted_mbps),
            format!("{:.2}", row.static_faulted_mbps),
            format!("{:.2}", row.pf_faulted_mbps),
            format!("{:.3}", row.recovery_fraction),
            format!("{:.3}", row.static_vs_robust),
            row.n_remeasurements.to_string(),
            format!("{:.2}", row.peak_drift),
            row.final_state.clone(),
        ]);
        rows.push(row);
    }
    table.print();

    let t = rows.len() as f64;
    let mean_recovery = rows.iter().map(|r| r.recovery_fraction).sum::<f64>() / t;
    let mean_static_ratio = rows.iter().map(|r| r.static_vs_robust).sum::<f64>() / t;
    let total_remeas: u32 = rows.iter().map(|r| r.n_remeasurements).sum();
    println!(
        "\nmean recovery (robust faulted / robust clean): {mean_recovery:.3}  (acceptance: >= 0.80)"
    );
    println!(
        "mean static/robust throughput ratio on faults:  {mean_static_ratio:.3}  (static degrades when < 1)"
    );
    println!("total re-measurements triggered across trials: {total_remeas}");
    assert!(
        mean_recovery >= 0.80,
        "robust orchestrator recovered only {mean_recovery:.3} of clean throughput"
    );
    assert!(
        total_remeas >= 1,
        "the injected rearrangement never triggered a re-measurement"
    );
    println!(
        "\nthe rearranged terminals stale the static blueprint; the robust\nloop's drift monitor catches the mispredicts, a shortened\nre-measurement (§3.7) rebuilds the blue-print, and effective\nthroughput recovers"
    );
    save_results_json("ext_faults", &rows).expect("write");
    println!("results written to results/ext_faults.json");
}
