//! Shared experiment runners.

use blu_core::blueprint::{topology_accuracy, InferenceConfig};
use blu_core::emulator::{EmulationConfig, Emulator};
use blu_core::joint::{EmpiricalPatternAccess, TopologyAccess};
use blu_core::metrics::UplinkMetrics;
use blu_core::orchestrator::{blueprint_from_measurements, run_measurement_phase};
use blu_core::sched::{AccessAwareScheduler, PfScheduler, SpeculativeScheduler};
use blu_phy::cell::CellConfig;
use blu_traces::schema::TestbedTrace;
use serde::Serialize;

/// Which scheduler variants to evaluate.
#[derive(Debug, Clone)]
pub struct CompareOpts {
    /// Cell configuration.
    pub cell: CellConfig,
    /// TxOPs per run.
    pub n_txops: u64,
    /// Also run BLU with a topology inferred from a measurement
    /// phase (Figs. 16–18 path).
    pub with_inferred: bool,
    /// Also run BLU with joint distributions counted directly from
    /// the trace (Fig. 15's perfect-knowledge path).
    pub with_empirical: bool,
    /// Measurement samples per pair when inferring.
    pub t_samples: u64,
    /// Infer from full-trace access statistics (the paper's Fig-15/16
    /// methodology) instead of an Algorithm-1 measurement phase of
    /// `t_samples` per pair.
    pub infer_from_full_trace: bool,
}

impl CompareOpts {
    /// Defaults for a cell.
    pub fn new(cell: CellConfig, n_txops: u64) -> Self {
        CompareOpts {
            cell,
            n_txops,
            with_inferred: false,
            with_empirical: false,
            t_samples: 50,
            infer_from_full_trace: true,
        }
    }
}

/// Results of running the scheduler suite over one trace.
#[derive(Debug, Clone, Serialize)]
pub struct SchedulerComparison {
    /// Native proportional fair (Eqn. 1).
    pub pf: UplinkMetrics,
    /// Access-aware baseline (Eqn. 5), fed ground-truth `p(i)`.
    pub aa: UplinkMetrics,
    /// BLU speculative with the ground-truth topology.
    pub blu_truth: UplinkMetrics,
    /// BLU with a blue-printed (inferred) topology.
    pub blu_inferred: Option<UplinkMetrics>,
    /// BLU with empirical joint distributions from the full trace.
    pub blu_empirical: Option<UplinkMetrics>,
    /// Exact-edge-set accuracy of the inference used above.
    pub inference_accuracy: Option<f64>,
    /// Measurement sub-frames spent for the inference.
    pub measurement_subframes: Option<u64>,
}

fn emu<'a>(trace: &'a TestbedTrace, cell: &CellConfig, n_txops: u64) -> Emulator<'a> {
    let mut cfg = EmulationConfig::new(cell.clone());
    cfg.n_txops = n_txops;
    Emulator::new(trace, cfg).expect("emulator setup")
}

/// Run PF / AA / BLU(+variants) over a trace.
pub fn compare_schedulers(trace: &TestbedTrace, opts: &CompareOpts) -> SchedulerComparison {
    let n = trace.ground_truth.n_clients;

    let pf = emu(trace, &opts.cell, opts.n_txops)
        .run(&mut PfScheduler, None)
        .metrics;

    let p: Vec<f64> = (0..n).map(|i| trace.ground_truth.p_individual(i)).collect();
    let aa = emu(trace, &opts.cell, opts.n_txops)
        .run(&mut AccessAwareScheduler::new(p), None)
        .metrics;

    let truth_access = TopologyAccess::new(&trace.ground_truth);
    let blu_truth = emu(trace, &opts.cell, opts.n_txops)
        .run(&mut SpeculativeScheduler::new(&truth_access), None)
        .metrics;

    let (blu_inferred, inference_accuracy, measurement_subframes) = if opts.with_inferred {
        let (est, t_max) = if opts.infer_from_full_trace {
            let mut e = blu_core::measure::OutcomeEstimator::new(n);
            *e.stats_mut() = blu_traces::stats::EmpiricalAccess::from_trace(&trace.access);
            (e, trace.access.len() as u64)
        } else {
            run_measurement_phase(trace, opts.cell.max_ues_per_subframe, opts.t_samples)
                .expect("measurement phase")
        };
        let inf = blueprint_from_measurements(&est, &InferenceConfig::default());
        let acc = topology_accuracy(&trace.ground_truth, &inf.topology).exact_fraction();
        let access = TopologyAccess::new(&inf.topology);
        let m = emu(trace, &opts.cell, opts.n_txops)
            .run(&mut SpeculativeScheduler::new(&access), None)
            .metrics;
        (Some(m), Some(acc), Some(t_max))
    } else {
        (None, None, None)
    };

    let blu_empirical = if opts.with_empirical {
        let access = EmpiricalPatternAccess::new(&trace.access).expect("non-empty access trace");
        Some(
            emu(trace, &opts.cell, opts.n_txops)
                .run(&mut SpeculativeScheduler::new(&access), None)
                .metrics,
        )
    } else {
        None
    };

    SchedulerComparison {
        pf,
        aa,
        blu_truth,
        blu_inferred,
        blu_empirical,
        inference_accuracy,
        measurement_subframes,
    }
}

/// Fan independent scenario inputs out over the worker-thread pool,
/// running `run` on each; results come back **in input order** (the
/// rayon shim joins chunks in spawn order), so the output is
/// byte-identical to `scenarios.into_iter().map(run).collect()` — the
/// fan-out reorders wall-clock execution, never results.
pub fn fan_out<T, R, F>(scenarios: Vec<T>, run: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    use rayon::prelude::*;
    scenarios.into_par_iter().map(run).collect()
}

/// Run [`compare_schedulers`] once per seed in parallel (one trace
/// per seed via `make_trace`), returning comparisons in seed order.
/// Deterministic: identical output to
/// [`compare_over_seeds_sequential`].
pub fn compare_over_seeds<F>(
    seeds: &[u64],
    make_trace: F,
    opts: &CompareOpts,
) -> Vec<SchedulerComparison>
where
    F: Fn(u64) -> TestbedTrace + Sync,
{
    fan_out(seeds.to_vec(), |seed| {
        compare_schedulers(&make_trace(seed), opts)
    })
}

/// Sequential reference for [`compare_over_seeds`] — kept alive for
/// differential testing and single-thread profiling.
pub fn compare_over_seeds_sequential<F>(
    seeds: &[u64],
    make_trace: F,
    opts: &CompareOpts,
) -> Vec<SchedulerComparison>
where
    F: Fn(u64) -> TestbedTrace,
{
    seeds
        .iter()
        .map(|&seed| compare_schedulers(&make_trace(seed), opts))
        .collect()
}

/// Build a topology with exactly `hts_per_ue` hidden terminals
/// impacting every UE (the x-axis of Figs. 4a/10–13), drawing each
/// UE's blockers from a pool of `n_hts` terminals.
pub fn topology_with_hts_per_ue(
    n_ues: usize,
    n_hts: usize,
    hts_per_ue: usize,
    q_range: (f64, f64),
    seed: u64,
) -> blu_sim::topology::InterferenceTopology {
    use blu_sim::clientset::ClientSet;
    use blu_sim::rng::DetRng;
    use blu_sim::topology::{HiddenTerminal, InterferenceTopology};
    assert!(hts_per_ue <= n_hts);
    let mut rng = DetRng::seed_from_u64(seed);
    let mut edges = vec![ClientSet::EMPTY; n_hts];
    // Least-loaded assignment (random tie-breaks): hidden terminals
    // are spatially local to specific UEs in the paper's testbed, so
    // edge-sharing only appears once the pool is saturated. This is
    // the "interference diversity" regime BLU exploits.
    for ue in 0..n_ues {
        let mut order: Vec<usize> = (0..n_hts).collect();
        rng.shuffle(&mut order);
        order.sort_by_key(|&k| edges[k].len());
        for &k in order.iter().take(hts_per_ue) {
            edges[k].insert(ue);
        }
    }
    let hts = edges
        .into_iter()
        .filter(|e| !e.is_empty())
        .map(|e| HiddenTerminal {
            q: rng.range_f64(q_range.0, q_range.1),
            edges: e,
        })
        .collect();
    InterferenceTopology {
        n_clients: n_ues,
        hts,
    }
}

/// Build the paper's large emulated deployment (§4.2.1): `n_groups`
/// testbed-scale traces of `ues_per_group` UEs and `hts_per_group`
/// hidden terminals each, spliced into one cell (24 UEs / 36 HTs at
/// the paper's scale = 6 groups × 4 UEs × 6 HTs).
pub fn emulated_large_trace(
    n_groups: usize,
    ues_per_group: usize,
    hts_per_group: usize,
    duration_s: u64,
    seed: u64,
) -> TestbedTrace {
    use blu_sim::time::Micros;
    use blu_traces::capture::{capture_synthetic, CaptureConfig};
    use blu_traces::combine::emulate_large;
    let groups: Vec<TestbedTrace> = (0..n_groups)
        .map(|g| {
            capture_synthetic(
                &CaptureConfig {
                    n_ues: ues_per_group,
                    n_hts: hts_per_group,
                    n_antennas: 4,
                    duration: Micros::from_secs(duration_s),
                    q_range: (0.15, 0.45),
                    edge_prob: 0.35,
                    mean_on_us: 1_500.0,
                    coherence_subframes: 50,
                    snr_range_db: (12.0, 28.0),
                },
                seed.wrapping_mul(1000).wrapping_add(g as u64),
            )
        })
        .collect();
    emulate_large(&groups, &[])
}

#[cfg(test)]
mod tests {
    use super::*;
    use blu_sim::time::Micros;
    use blu_traces::capture::{capture_synthetic, CaptureConfig};

    #[test]
    fn hts_per_ue_construction() {
        let t = topology_with_hts_per_ue(8, 10, 3, (0.2, 0.5), 1);
        for ue in 0..8 {
            let deg = t.hts.iter().filter(|ht| ht.edges.contains(ue)).count();
            assert_eq!(deg, 3, "UE {ue}");
        }
    }

    #[test]
    fn emulated_trace_scale() {
        let t = emulated_large_trace(3, 4, 3, 5, 1);
        assert_eq!(t.ground_truth.n_clients, 12);
        assert_eq!(t.ground_truth.n_hidden(), 9);
        assert_eq!(t.validate(), Ok(()));
    }

    #[test]
    fn full_comparison_runs() {
        let trace = capture_synthetic(
            &CaptureConfig {
                duration: Micros::from_secs(30),
                q_range: (0.3, 0.6),
                ..CaptureConfig::testbed_default()
            },
            1,
        );
        let mut cell = CellConfig::testbed_siso();
        cell.numerology.n_rbs = 10;
        let mut opts = CompareOpts::new(cell, 100);
        opts.with_inferred = true;
        opts.with_empirical = true;
        opts.t_samples = 40;
        let cmp = compare_schedulers(&trace, &opts);
        assert!(cmp.pf.bits_delivered > 0.0);
        assert!(cmp.blu_truth.rb_utilization() >= cmp.pf.rb_utilization());
        assert!(cmp.blu_inferred.is_some());
        assert!(cmp.blu_empirical.is_some());
        let acc = cmp.inference_accuracy.unwrap();
        assert!((0.0..=1.0).contains(&acc));
    }
}
