//! Minimal argument parsing shared by the experiment binaries.

/// Common experiment arguments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpArgs {
    /// Reduced trials/TxOPs for smoke runs.
    pub quick: bool,
    /// Base RNG seed.
    pub seed: u64,
}

impl ExpArgs {
    /// Parse from `std::env::args()`: `--quick`, `--seed <u64>`.
    pub fn parse() -> Self {
        Self::from_iter(std::env::args().skip(1))
    }

    /// Parse from an explicit iterator (testable).
    #[allow(clippy::should_implement_trait)] // parser entry point, not collection building
    pub fn from_iter<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut out = ExpArgs {
            quick: false,
            seed: 42,
        };
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => out.quick = true,
                "--seed" => {
                    let v = it.next().expect("--seed needs a value");
                    out.seed = v.parse().expect("--seed must be a u64");
                }
                other => panic!("unknown argument: {other} (supported: --quick, --seed <u64>)"),
            }
        }
        out
    }

    /// Pick between a full and a quick value.
    pub fn scaled(&self, full: u64, quick: u64) -> u64 {
        if self.quick {
            quick
        } else {
            full
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let a = ExpArgs::from_iter(Vec::<String>::new());
        assert!(!a.quick);
        assert_eq!(a.seed, 42);
    }

    #[test]
    fn parses_flags() {
        let a = ExpArgs::from_iter(["--quick", "--seed", "7"].iter().map(|s| s.to_string()));
        assert!(a.quick);
        assert_eq!(a.seed, 7);
        assert_eq!(a.scaled(100, 5), 5);
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn rejects_unknown() {
        ExpArgs::from_iter(["--bogus".to_string()]);
    }
}
