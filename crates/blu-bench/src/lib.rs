//! # blu-bench — experiment harnesses and shared benchmark plumbing
//!
//! One binary per figure of the paper's evaluation (see DESIGN.md's
//! per-experiment index), plus Criterion micro-benchmarks over the
//! compute kernels. The binaries print the paper-style series to
//! stdout and write machine-readable JSON into `results/`.
//!
//! Every binary accepts `--quick` (reduced trials/TxOPs, for smoke
//! runs) and `--seed <u64>`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod runners;
pub mod statsutil;
pub mod table;

pub use cli::ExpArgs;
pub use runners::{compare_schedulers, SchedulerComparison};
pub use table::Table;
