//! Plain-text result tables with CSV/JSON export.

use std::fmt::Write as _;
use std::path::Path;

/// A simple column-aligned table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Table title (printed above).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of stringified cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// New empty table.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render as aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Write as CSV.
    pub fn save_csv(&self, path: &Path) -> std::io::Result<()> {
        let mut s = String::new();
        let esc = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let _ = writeln!(
            s,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                s,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        std::fs::write(path, s)
    }
}

/// Write a serializable result object as pretty JSON under
/// `results/<name>.json` (creating the directory as needed).
pub fn save_results_json<T: serde::Serialize>(name: &str, value: &T) -> std::io::Result<()> {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serializable");
    std::fs::write(path, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1.50".into()]);
        t.row(vec!["long-name".into(), "2".into()]);
        let r = t.render();
        assert!(r.contains("== demo =="));
        assert!(r.contains("long-name"));
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new("x", &["a"]);
        t.row(vec!["with,comma".into()]);
        let p = std::env::temp_dir().join(format!("blu-bench-{}.csv", std::process::id()));
        t.save_csv(&p).unwrap();
        let s = std::fs::read_to_string(&p).unwrap();
        assert!(s.contains("\"with,comma\""));
        std::fs::remove_file(&p).ok();
    }
}
