//! Joint-access-distribution cost: topology-driven computation
//! (BLU's §3.6 approach) vs counting patterns from raw traces.
//!
//! The paper notes that computing joint distributions directly from
//! traces in real time is impractical even for 2-user MU-MIMO; the
//! topology-driven DP is orders of magnitude cheaper and independent
//! of trace length.

use blu_core::joint::conditioning::Conditioning;
use blu_core::joint::{AccessDistribution, EmpiricalPatternAccess, TopologyAccess};
use blu_sim::clientset::ClientSet;
use blu_sim::rng::DetRng;
use blu_sim::topology::InterferenceTopology;
use blu_traces::schema::AccessTrace;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_joint(c: &mut Criterion) {
    let mut rng = DetRng::seed_from_u64(7);
    let topo = InterferenceTopology::random(24, 16, (0.15, 0.5), 0.25, &mut rng);
    // A 5-minute trace at sub-frame granularity (300k samples).
    let accessible: Vec<ClientSet> = (0..300_000).map(|_| topo.sample_access(&mut rng)).collect();
    let trace = AccessTrace {
        n_ues: 24,
        accessible,
    };
    let group_of_8 = ClientSet::from_iter([0, 3, 5, 8, 11, 14, 19, 23]);
    let succeed = ClientSet::from_iter([0, 3, 5, 8]);
    let fail = ClientSet::from_iter([11, 14, 19, 23]);

    let mut g = c.benchmark_group("joint_distributions");
    g.bench_function("topology_dp_8clients", |b| {
        b.iter(|| {
            // Fresh provider: measure the DP itself, not the cache.
            let acc = TopologyAccess::new(&topo);
            black_box(acc.pattern_distribution(black_box(group_of_8)))
        })
    });
    g.bench_function("conditioning_recursion_p_joint", |b| {
        let cond = Conditioning::new(&topo).expect("topology fits the conditioning mask");
        b.iter(|| black_box(cond.p_joint(black_box(succeed), black_box(fail))))
    });
    g.bench_function("empirical_from_trace_8clients", |b| {
        b.iter(|| {
            let acc = EmpiricalPatternAccess::new(&trace).expect("non-empty access trace");
            black_box(acc.pattern_distribution(black_box(group_of_8)))
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_joint
}
criterion_main!(benches);
