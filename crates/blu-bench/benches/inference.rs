//! Topology-inference cost: BLU's deterministic gradient repair vs
//! the MCMC baseline (the paper's §3.4 argument for the deterministic
//! design), at testbed and NS3 scales.

use blu_core::blueprint::mcmc::{infer_mcmc, McmcConfig};
use blu_core::blueprint::{infer_topology, ConstraintSystem, InferenceConfig};
use blu_sim::rng::DetRng;
use blu_sim::topology::InterferenceTopology;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn system(n: usize, h: usize, seed: u64) -> ConstraintSystem {
    let mut rng = DetRng::seed_from_u64(seed);
    let topo = InterferenceTopology::random(n, h, (0.15, 0.5), 0.35, &mut rng);
    ConstraintSystem::from_topology(&topo)
}

fn bench_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology_inference");
    for (name, n, h) in [("testbed_6x4", 6usize, 4usize), ("ns3_15x9", 15, 9)] {
        let sys = system(n, h, 42);
        group.bench_function(format!("gradient_{name}"), |b| {
            b.iter(|| black_box(infer_topology(black_box(&sys), &InferenceConfig::default())))
        });
        group.bench_function(format!("mcmc_{name}"), |b| {
            let cfg = McmcConfig {
                steps: 5_000,
                ..Default::default()
            };
            b.iter(|| black_box(infer_mcmc(black_box(&sys), &cfg, 1)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_inference
}
criterion_main!(benches);
