//! Substrate kernel costs: zero-forcing MU-MIMO separation, DCF
//! network simulation throughput, on/off trace generation, and the
//! per-sub-frame emulation step.

use blu_core::emulator::{EmulationConfig, Emulator};
use blu_core::sched::PfScheduler;
use blu_phy::cell::CellConfig;
use blu_phy::mimo::zf_sinrs;
use blu_sim::fading::Complex;
use blu_sim::rng::DetRng;
use blu_sim::time::Micros;
use blu_traces::capture::{capture_synthetic, CaptureConfig};
use blu_wifi::network::{WifiNetwork, WifiNetworkConfig, WifiStationSpec};
use blu_wifi::onoff::OnOffSource;
use blu_wifi::traffic::TrafficGen;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_zf(c: &mut Criterion) {
    let mut rng = DetRng::seed_from_u64(1);
    let s = std::f64::consts::FRAC_1_SQRT_2;
    let chans: Vec<Vec<Complex>> = (0..4)
        .map(|_| {
            (0..4)
                .map(|_| Complex::new(rng.gaussian() * s, rng.gaussian() * s))
                .collect()
        })
        .collect();
    c.bench_function("zf_sinrs_4x4", |b| {
        b.iter(|| black_box(zf_sinrs(black_box(&chans), &[1.0, 2.0, 0.5, 1.5], 0.01)))
    });
}

fn bench_dcf(c: &mut Criterion) {
    c.bench_function("dcf_6_stations_100ms", |b| {
        let stations: Vec<WifiStationSpec> = (0..6)
            .map(|i| WifiStationSpec {
                traffic: TrafficGen::iperf_default(),
                dest: (i + 1) % 6,
                snr_to_dest_db: 25.0,
            })
            .collect();
        let cfg = WifiNetworkConfig::fully_connected(stations, Micros::from_millis(100));
        b.iter(|| black_box(WifiNetwork::new(cfg.clone(), &DetRng::seed_from_u64(3)).run()))
    });
}

fn bench_onoff(c: &mut Criterion) {
    c.bench_function("onoff_generate_60s", |b| {
        let src = OnOffSource::with_duty_cycle(0.4, 1_500.0);
        b.iter(|| {
            let mut rng = DetRng::seed_from_u64(4);
            black_box(src.generate(Micros::from_secs(60), &mut rng))
        })
    });
}

fn bench_emulator(c: &mut Criterion) {
    let trace = capture_synthetic(
        &CaptureConfig {
            duration: Micros::from_secs(10),
            ..CaptureConfig::testbed_default()
        },
        5,
    );
    c.bench_function("emulate_pf_50_txops", |b| {
        b.iter(|| {
            let mut cfg = EmulationConfig::new(CellConfig::testbed_siso());
            cfg.n_txops = 50;
            black_box(
                Emulator::new(&trace, cfg)
                    .expect("emulator setup")
                    .run(&mut PfScheduler, None),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_zf, bench_dcf, bench_onoff, bench_emulator
}
criterion_main!(benches);
