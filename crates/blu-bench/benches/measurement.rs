//! Cost of planning the measurement phase (Algorithm 1) at the
//! paper's operating points.

use blu_core::measure::measurement_schedule;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_measurement(c: &mut Criterion) {
    let mut g = c.benchmark_group("algorithm1");
    for (n, k, t) in [(10usize, 4usize, 20u64), (20, 8, 50), (24, 10, 50)] {
        g.bench_function(format!("plan_n{n}_k{k}_t{t}"), |b| {
            b.iter(|| {
                black_box(measurement_schedule(
                    black_box(n),
                    black_box(k),
                    black_box(t),
                ))
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_measurement
}
criterion_main!(benches);
