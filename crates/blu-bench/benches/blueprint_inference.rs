//! Inference fast-path microbenchmarks: the incremental delta-energy
//! MCMC chain vs the clone-and-recompute reference, the
//! [`ResidualTracker`] shift kernel itself, and the parallel batch
//! front end vs its sequential twin.

use blu_core::blueprint::batch::{infer_batch, infer_batch_sequential};
use blu_core::blueprint::mcmc::{infer_mcmc, infer_mcmc_scratch, McmcConfig};
use blu_core::blueprint::{ConstraintSystem, InferenceBackend, InferenceConfig, ResidualTracker};
use blu_sim::rng::DetRng;
use blu_sim::topology::InterferenceTopology;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn system(n: usize, h: usize, seed: u64) -> ConstraintSystem {
    let mut rng = DetRng::seed_from_u64(seed);
    let topo = InterferenceTopology::random(n, h, (0.15, 0.5), 0.35, &mut rng);
    let mut sys = ConstraintSystem::from_topology(&topo);
    sys.add_triples_from_topology(&topo, &[(0, 1, 2), (1, 2, 3)]);
    sys
}

fn bench_mcmc_fast_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("mcmc_fast_path");
    let cfg = McmcConfig {
        steps: 5_000,
        ..Default::default()
    };
    for (name, n, h) in [("testbed_6x4", 6usize, 4usize), ("dense_10x8", 10, 8)] {
        let sys = system(n, h, 42);
        group.bench_function(format!("incremental_{name}"), |b| {
            b.iter(|| black_box(infer_mcmc(black_box(&sys), &cfg, 1)))
        });
        group.bench_function(format!("scratch_{name}"), |b| {
            b.iter(|| black_box(infer_mcmc_scratch(black_box(&sys), &cfg, 1)))
        });
    }
    group.finish();
}

fn bench_residual_kernel(c: &mut Criterion) {
    let sys = system(10, 8, 7);
    let mut tracker = ResidualTracker::new(&sys);
    let edges = blu_sim::clientset::ClientSet::from_iter([0, 2, 3, 7]);
    c.bench_function("residual_shift_kernel", |b| {
        b.iter(|| {
            // Shift up then back down: residuals end where they
            // started, so the iteration is state-neutral.
            black_box(tracker.shift(black_box(edges), 0.25));
            black_box(tracker.shift(black_box(edges), -0.25));
        })
    });
}

fn bench_batch(c: &mut Criterion) {
    let systems: Vec<ConstraintSystem> = (0..8).map(|s| system(8, 6, 100 + s)).collect();
    let cfg = InferenceConfig::default();
    let mut group = c.benchmark_group("batch_inference");
    group.sample_size(10);
    group.bench_function("parallel_8_cells", |b| {
        b.iter(|| black_box(infer_batch(black_box(&systems), &cfg)))
    });
    group.bench_function("sequential_8_cells", |b| {
        b.iter(|| {
            black_box(infer_batch_sequential(
                black_box(&systems),
                &cfg,
                &InferenceBackend::Gradient,
            ))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_mcmc_fast_path, bench_residual_kernel, bench_batch
}
criterion_main!(benches);
