//! Per-TxOP scheduling cost of PF, access-aware, and BLU speculative
//! schedulers (24 UEs, 50 RBs) — BLU must fit comfortably inside an
//! LTE scheduling interval to be deployable.

use blu_core::joint::TopologyAccess;
use blu_core::sched::{
    AccessAwareScheduler, MatrixRates, PfScheduler, SchedInput, SpeculativeScheduler, UlScheduler,
};
use blu_sim::rng::DetRng;
use blu_sim::topology::InterferenceTopology;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_schedulers(c: &mut Criterion) {
    let n = 24;
    let n_rbs = 50;
    let mut rng = DetRng::seed_from_u64(1);
    let topo = InterferenceTopology::random(n, 12, (0.15, 0.5), 0.25, &mut rng);
    let rates = MatrixRates::build(n, n_rbs, |ue, rb| {
        400.0 + ((ue * 31 + rb * 17) % 37) as f64 * 10.0
    });
    let avg: Vec<f64> = (0..n).map(|i| 50.0 + (i * 13 % 29) as f64).collect();
    let p: Vec<f64> = (0..n).map(|i| topo.p_individual(i)).collect();

    let mut group = c.benchmark_group("schedule_txop");
    for (name, m, max_group) in [("siso", 1usize, 2usize), ("mumimo4", 4, 8)] {
        let input = SchedInput {
            n_clients: n,
            n_rbs,
            m_antennas: m,
            k_max: 10,
            max_group,
            rates: &rates,
            avg_tput: &avg,
        };
        group.bench_function(format!("pf_{name}"), |b| {
            b.iter(|| black_box(PfScheduler.schedule(black_box(&input))))
        });
        group.bench_function(format!("aa_{name}"), |b| {
            let mut aa = AccessAwareScheduler::new(p.clone());
            b.iter(|| black_box(aa.schedule(black_box(&input))))
        });
        group.bench_function(format!("blu_{name}"), |b| {
            // Fresh provider per iteration batch; the cache warms up
            // exactly as it would across TxOPs in deployment.
            let access = TopologyAccess::new(&topo);
            let mut blu = SpeculativeScheduler::new(&access);
            b.iter(|| black_box(blu.schedule(black_box(&input))))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_schedulers
}
criterion_main!(benches);
