//! The bench runners' parallel fan-out must be a pure wall-clock
//! optimization: results (and their JSON serialization) have to be
//! byte-identical to the sequential reference, in input order.

use blu_bench::runners::{compare_over_seeds, compare_over_seeds_sequential, fan_out, CompareOpts};
use blu_phy::cell::CellConfig;
use blu_sim::time::Micros;
use blu_traces::capture::{capture_synthetic, CaptureConfig};
use blu_traces::schema::TestbedTrace;

fn make_trace(seed: u64) -> TestbedTrace {
    capture_synthetic(
        &CaptureConfig {
            duration: Micros::from_secs(10),
            q_range: (0.3, 0.6),
            ..CaptureConfig::testbed_default()
        },
        seed,
    )
}

#[test]
fn fan_out_preserves_input_order() {
    let out = fan_out((0..257u32).collect(), |x| x.wrapping_mul(31) ^ 7);
    let want: Vec<u32> = (0..257u32).map(|x| x.wrapping_mul(31) ^ 7).collect();
    assert_eq!(out, want);
}

#[test]
fn compare_over_seeds_json_identical_to_sequential() {
    let mut cell = CellConfig::testbed_siso();
    cell.numerology.n_rbs = 8;
    let mut opts = CompareOpts::new(cell, 50);
    opts.with_empirical = true;
    let seeds = [2u64, 9, 17, 23];
    let par = compare_over_seeds(&seeds, make_trace, &opts);
    let seq = compare_over_seeds_sequential(&seeds, make_trace, &opts);
    assert_eq!(par.len(), seq.len());
    assert_eq!(
        serde_json::to_string(&par).unwrap(),
        serde_json::to_string(&seq).unwrap(),
        "parallel fan-out must serialize byte-identically to the sequential reference"
    );
}
