//! Event-driven 802.11 DCF network simulation.
//!
//! Simulates a set of WiFi stations sharing the unlicensed channel:
//! DIFS + random backoff with contention-window doubling, frame
//! airtime from the 802.11n rate table, Minstrel-style rate
//! adaptation, and a **carrier-sensing graph** (`hears[a][b]`) so that
//! WiFi↔WiFi hidden terminals exist and collide, exactly as in the
//! paper's testbed where laptops at different locations interfere
//! asymmetrically.
//!
//! The output of a run is, per station, its [`ActivityTimeline`] (the
//! only thing the LTE side sees) plus MAC statistics. Determinism:
//! given the same config and seed, a run reproduces byte-for-byte.

use crate::minstrel::Minstrel;
use crate::rates::{delivery_probability, RateIdx};
use crate::timing::{exchange_airtime, CW_MAX, CW_MIN, DIFS_US, RETRY_LIMIT, SLOT_US};
use crate::traffic::{Packet, TrafficGen, TrafficState};
use blu_sim::events::EventQueue;
use blu_sim::medium::ActivityTimeline;
use blu_sim::power::Db;
use blu_sim::rng::DetRng;
use blu_sim::time::Micros;
use serde::{Deserialize, Serialize};

/// Static description of one station.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WifiStationSpec {
    /// Traffic this station offers.
    pub traffic: TrafficGen,
    /// Destination station index (e.g. its AP).
    pub dest: usize,
    /// Link SNR to the destination (drives rate adaptation and
    /// delivery probability).
    pub snr_to_dest_db: f64,
}

/// Network-level configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WifiNetworkConfig {
    /// The stations.
    pub stations: Vec<WifiStationSpec>,
    /// Carrier-sensing graph: `hears[a][b]` = station `a` senses
    /// station `b`'s transmissions. Must be `n×n`; the diagonal is
    /// ignored.
    pub hears: Vec<Vec<bool>>,
    /// Simulation horizon.
    pub horizon: Micros,
}

impl WifiNetworkConfig {
    /// A fully-connected sensing graph (no WiFi↔WiFi hidden nodes).
    pub fn fully_connected(stations: Vec<WifiStationSpec>, horizon: Micros) -> Self {
        let n = stations.len();
        WifiNetworkConfig {
            stations,
            hears: vec![vec![true; n]; n],
            horizon,
        }
    }

    fn validate(&self) {
        let n = self.stations.len();
        assert!(n > 0, "need at least one station");
        assert_eq!(self.hears.len(), n, "hears matrix row count");
        assert!(self.hears.iter().all(|r| r.len() == n), "hears matrix cols");
        assert!(
            self.stations.iter().all(|s| s.dest < n),
            "destination index out of range"
        );
    }
}

/// Per-station MAC statistics from a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StationStats {
    /// Frames put on the air (including retries).
    pub attempts: u64,
    /// Frames delivered (no collision, PHY decode succeeded).
    pub delivered: u64,
    /// Frames abandoned after the retry limit.
    pub dropped: u64,
    /// Total on-air time.
    pub airtime: Micros,
}

impl StationStats {
    /// Fraction of attempts delivered.
    pub fn delivery_ratio(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.delivered as f64 / self.attempts as f64
        }
    }
}

/// Result of a network run.
#[derive(Debug, Clone)]
pub struct WifiRunResult {
    /// Per-station busy timelines (what a CCA listener of that
    /// station experiences).
    pub timelines: Vec<ActivityTimeline>,
    /// Per-station MAC statistics.
    pub stats: Vec<StationStats>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Event {
    /// Traffic arrival at a station's MAC queue.
    Arrival(usize),
    /// Backoff completion timer (with a generation token so stale
    /// timers are ignored after a freeze).
    Timer(usize, u64),
    /// End of a station's transmission.
    TxEnd(usize),
}

#[derive(Debug)]
struct Ongoing {
    rate: RateIdx,
    interfered: bool,
}

struct Station {
    spec: WifiStationSpec,
    traffic: TrafficState,
    minstrel: Minstrel,
    rng: DetRng,
    pending: Option<Packet>,
    retries: u32,
    cw: u32,
    backoff_slots: u32,
    backoff_drawn: bool,
    /// Time the current idle countdown started (valid while a timer
    /// is armed).
    countdown_start: Micros,
    timer_gen: u64,
    timer_armed: bool,
    /// Number of heard ongoing transmissions.
    busy_count: u32,
    ongoing: Option<Ongoing>,
    timeline: ActivityTimeline,
    stats: StationStats,
}

impl Station {
    fn draw_backoff(&mut self) {
        self.backoff_slots = self.rng.below(self.cw as usize + 1) as u32;
        self.backoff_drawn = true;
    }
}

/// The DCF simulator.
pub struct WifiNetwork {
    config: WifiNetworkConfig,
    stations: Vec<Station>,
    queue: EventQueue<Event>,
}

impl WifiNetwork {
    /// Build a simulator; `rng` seeds all station-level randomness.
    pub fn new(config: WifiNetworkConfig, rng: &DetRng) -> Self {
        config.validate();
        let stations = config
            .stations
            .iter()
            .enumerate()
            .map(|(i, spec)| Station {
                spec: *spec,
                traffic: spec.traffic.start(rng.derive_indexed("traffic", i as u64)),
                minstrel: Minstrel::new(rng.derive_indexed("minstrel", i as u64)),
                rng: rng.derive_indexed("mac", i as u64),
                pending: None,
                retries: 0,
                cw: CW_MIN,
                backoff_slots: 0,
                backoff_drawn: false,
                countdown_start: Micros::ZERO,
                timer_gen: 0,
                timer_armed: false,
                busy_count: 0,
                ongoing: None,
                timeline: ActivityTimeline::new(),
                stats: StationStats::default(),
            })
            .collect();
        WifiNetwork {
            config,
            stations,
            queue: EventQueue::new(),
        }
    }

    /// Run to the horizon and return timelines + statistics.
    pub fn run(mut self) -> WifiRunResult {
        // Prime each station's first arrival.
        for i in 0..self.stations.len() {
            self.schedule_next_arrival(i, Micros::ZERO);
        }
        while let Some((now, ev)) = self.queue.pop() {
            if now >= self.config.horizon {
                break;
            }
            match ev {
                Event::Arrival(i) => self.on_arrival(i, now),
                Event::Timer(i, gen) => self.on_timer(i, gen, now),
                Event::TxEnd(i) => self.on_tx_end(i, now),
            }
        }
        WifiRunResult {
            timelines: self.stations.iter().map(|s| s.timeline.clone()).collect(),
            stats: self.stations.iter().map(|s| s.stats).collect(),
        }
    }

    fn schedule_next_arrival(&mut self, i: usize, now: Micros) {
        let horizon = self.config.horizon;
        if let Some(pkt) = self.stations[i].traffic.next_packet(now, horizon) {
            self.queue
                .schedule_at(pkt.arrival.max(now), Event::Arrival(i));
            self.stations[i].pending = Some(pkt);
        }
    }

    fn on_arrival(&mut self, i: usize, now: Micros) {
        let st = &mut self.stations[i];
        if st.ongoing.is_some() {
            return; // will start contention after TxEnd
        }
        if !st.backoff_drawn {
            st.draw_backoff();
        }
        self.try_start_countdown(i, now);
    }

    /// Arm the backoff timer if the station senses an idle medium.
    fn try_start_countdown(&mut self, i: usize, now: Micros) {
        let st = &mut self.stations[i];
        if st.pending.is_none() || st.ongoing.is_some() || st.timer_armed || st.busy_count > 0 {
            return;
        }
        st.countdown_start = now;
        st.timer_gen += 1;
        st.timer_armed = true;
        let fire = now + Micros(DIFS_US + u64::from(st.backoff_slots) * SLOT_US);
        self.queue.schedule_at(fire, Event::Timer(i, st.timer_gen));
    }

    /// Freeze a station's countdown (a heard transmission started).
    fn freeze(&mut self, i: usize, now: Micros) {
        let st = &mut self.stations[i];
        if !st.timer_armed {
            return;
        }
        st.timer_armed = false;
        st.timer_gen += 1; // invalidate the in-flight timer
        let difs_end = st.countdown_start + Micros(DIFS_US);
        if now > difs_end {
            let consumed = ((now - difs_end).as_u64() / SLOT_US) as u32;
            st.backoff_slots = st.backoff_slots.saturating_sub(consumed);
        }
    }

    fn on_timer(&mut self, i: usize, gen: u64, now: Micros) {
        if !self.stations[i].timer_armed || self.stations[i].timer_gen != gen {
            return; // stale timer
        }
        // Countdown complete: transmit.
        let (rate, airtime) = {
            let st = &mut self.stations[i];
            st.timer_armed = false;
            st.backoff_slots = 0;
            st.backoff_drawn = false;
            let pkt = st.pending.expect("timer without pending packet");
            let rate = st.minstrel.pick();
            let airtime = exchange_airtime(pkt.bytes, rate.mbps());
            st.ongoing = Some(Ongoing {
                rate,
                interfered: false,
            });
            st.stats.attempts += 1;
            st.stats.airtime += airtime;
            st.timeline.push(now, now + airtime);
            (rate, airtime)
        };
        let _ = rate;
        // Mark interference: any ongoing transmission whose
        // destination hears *us* is now corrupted — and if *our*
        // destination hears any ongoing transmitter, we are corrupted.
        let n = self.stations.len();
        let my_dest = self.stations[i].spec.dest;
        for j in 0..n {
            if j == i || self.stations[j].ongoing.is_none() {
                continue;
            }
            let their_dest = self.stations[j].spec.dest;
            if self.config.hears[their_dest][i] {
                self.stations[j].ongoing.as_mut().unwrap().interfered = true;
            }
            if self.config.hears[my_dest][j] {
                self.stations[i].ongoing.as_mut().unwrap().interfered = true;
            }
        }
        // Everyone who hears us goes busy (and freezes).
        for j in 0..n {
            if j == i || !self.config.hears[j][i] {
                continue;
            }
            self.stations[j].busy_count += 1;
            self.freeze(j, now);
        }
        self.queue.schedule_at(now + airtime, Event::TxEnd(i));
    }

    fn on_tx_end(&mut self, i: usize, now: Micros) {
        let n = self.stations.len();
        // Release listeners.
        for j in 0..n {
            if j == i || !self.config.hears[j][i] {
                continue;
            }
            let st = &mut self.stations[j];
            debug_assert!(st.busy_count > 0);
            st.busy_count -= 1;
            if st.busy_count == 0 {
                self.try_start_countdown(j, now);
            }
        }
        // Resolve our frame.
        let delivered = {
            let st = &mut self.stations[i];
            let ongoing = st.ongoing.take().expect("TxEnd without ongoing tx");
            let phy_ok = st.rng.chance(delivery_probability(
                ongoing.rate,
                Db(st.spec.snr_to_dest_db),
            ));
            let delivered = !ongoing.interfered && phy_ok;
            st.minstrel.report(ongoing.rate, delivered);
            delivered
        };
        let st = &mut self.stations[i];
        if delivered {
            st.stats.delivered += 1;
            st.retries = 0;
            st.cw = CW_MIN;
            st.pending = None;
        } else {
            st.retries += 1;
            st.cw = (st.cw * 2 + 1).min(CW_MAX);
            if st.retries > RETRY_LIMIT {
                st.stats.dropped += 1;
                st.retries = 0;
                st.cw = CW_MIN;
                st.pending = None;
            }
        }
        if st.pending.is_some() {
            // Retry: new backoff at the (possibly doubled) CW.
            st.draw_backoff();
            self.try_start_countdown(i, now);
        } else {
            self.schedule_next_arrival(i, now);
        }
    }
}

/// Build a `hears` matrix from pairwise received powers: `a` hears
/// `b` iff `rx_power(b → a) ≥ threshold` (WiFi preamble detection).
pub fn hears_from_rx_power(
    rx_power: impl Fn(usize, usize) -> blu_sim::power::Dbm,
    n: usize,
    threshold: blu_sim::power::Dbm,
) -> Vec<Vec<bool>> {
    (0..n)
        .map(|a| {
            (0..n)
                .map(|b| a == b || rx_power(b, a) >= threshold)
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sat_station(dest: usize) -> WifiStationSpec {
        WifiStationSpec {
            traffic: TrafficGen::iperf_default(),
            dest,
            snr_to_dest_db: 30.0,
        }
    }

    /// Two saturated stations + an AP, all in range.
    fn two_station_net(horizon_ms: u64) -> WifiNetworkConfig {
        WifiNetworkConfig::fully_connected(
            vec![sat_station(2), sat_station(2), {
                // The AP offers no traffic.
                WifiStationSpec {
                    traffic: TrafficGen::Poisson {
                        pkts_per_sec: 0.0001,
                        bytes: 100,
                    },
                    dest: 0,
                    snr_to_dest_db: 30.0,
                }
            }],
            Micros::from_millis(horizon_ms),
        )
    }

    #[test]
    fn saturated_pair_shares_channel_without_overlap() {
        let cfg = two_station_net(2_000);
        let result = WifiNetwork::new(cfg, &DetRng::seed_from_u64(1)).run();
        let a0 = result.timelines[0].airtime_in(Micros::ZERO, Micros::from_secs(2));
        let a1 = result.timelines[1].airtime_in(Micros::ZERO, Micros::from_secs(2));
        // Two saturated stations fully in range: combined airtime is
        // high but below 1 (DIFS/backoff overhead), split roughly
        // evenly, with essentially no overlap.
        assert!(a0 + a1 > 0.7, "combined airtime {a0}+{a1}");
        assert!(a0 + a1 <= 1.0 + 1e-9);
        assert!((a0 - a1).abs() < 0.15, "unfair split {a0} vs {a1}");
        // No overlap: union airtime == sum of airtimes.
        let u = blu_sim::medium::union(&[&result.timelines[0], &result.timelines[1]]);
        let ua = u.airtime_in(Micros::ZERO, Micros::from_secs(2));
        assert!((ua - (a0 + a1)).abs() < 0.01, "overlap detected");
    }

    #[test]
    fn connected_stations_rarely_collide() {
        let cfg = two_station_net(2_000);
        let result = WifiNetwork::new(cfg, &DetRng::seed_from_u64(2)).run();
        for (i, s) in result.stats.iter().take(2).enumerate() {
            assert!(s.attempts > 100, "station {i} barely transmitted");
            assert!(
                s.delivery_ratio() > 0.9,
                "station {i} delivery {}",
                s.delivery_ratio()
            );
        }
    }

    #[test]
    fn hidden_pair_collides_heavily() {
        // Stations 0 and 1 cannot hear each other; both send to AP 2
        // which hears both. Classic hidden-node collapse.
        let mut cfg = two_station_net(2_000);
        cfg.hears = vec![
            vec![true, false, true],
            vec![false, true, true],
            vec![true, true, true],
        ];
        let result = WifiNetwork::new(cfg, &DetRng::seed_from_u64(3)).run();
        let dr0 = result.stats[0].delivery_ratio();
        let dr1 = result.stats[1].delivery_ratio();
        // CW escalation desynchronizes the pair, so delivery does not
        // go to zero — but it must sit well below the >0.9 of the
        // connected case.
        assert!(
            dr0 < 0.75 && dr1 < 0.75,
            "hidden nodes should collide: {dr0}, {dr1}"
        );
        // And their timelines DO overlap.
        let a0 = result.timelines[0].airtime_in(Micros::ZERO, Micros::from_secs(2));
        let a1 = result.timelines[1].airtime_in(Micros::ZERO, Micros::from_secs(2));
        let u = blu_sim::medium::union(&[&result.timelines[0], &result.timelines[1]]);
        let ua = u.airtime_in(Micros::ZERO, Micros::from_secs(2));
        assert!(ua < a0 + a1 - 0.05, "no overlap despite hidden pair");
    }

    #[test]
    fn poisson_station_airtime_tracks_offered_load() {
        // One lightly-loaded station alone: airtime ≈ rate × airtime/frame.
        let cfg = WifiNetworkConfig::fully_connected(
            vec![
                WifiStationSpec {
                    traffic: TrafficGen::Poisson {
                        pkts_per_sec: 100.0,
                        bytes: 1470,
                    },
                    dest: 1,
                    snr_to_dest_db: 30.0,
                },
                WifiStationSpec {
                    traffic: TrafficGen::Poisson {
                        pkts_per_sec: 0.0001,
                        bytes: 100,
                    },
                    dest: 0,
                    snr_to_dest_db: 30.0,
                },
            ],
            Micros::from_secs(5),
        );
        let result = WifiNetwork::new(cfg, &DetRng::seed_from_u64(4)).run();
        let airtime = result.timelines[0].airtime_in(Micros::ZERO, Micros::from_secs(5));
        // ~100 frames/s × ~250 µs/frame ≈ 2.5 % airtime, loosely.
        assert!(
            (0.005..0.10).contains(&airtime),
            "airtime {airtime} implausible"
        );
    }

    #[test]
    fn deterministic_runs() {
        let cfg = two_station_net(500);
        let r1 = WifiNetwork::new(cfg.clone(), &DetRng::seed_from_u64(7)).run();
        let r2 = WifiNetwork::new(cfg, &DetRng::seed_from_u64(7)).run();
        assert_eq!(r1.timelines, r2.timelines);
        assert_eq!(r1.stats, r2.stats);
    }

    #[test]
    fn rate_adaptation_reacts_to_poor_link() {
        // A station with terrible SNR must fall back to low rates and
        // still deliver some frames.
        let cfg = WifiNetworkConfig::fully_connected(
            vec![
                WifiStationSpec {
                    traffic: TrafficGen::iperf_default(),
                    dest: 1,
                    snr_to_dest_db: 6.0,
                },
                WifiStationSpec {
                    traffic: TrafficGen::Poisson {
                        pkts_per_sec: 0.0001,
                        bytes: 100,
                    },
                    dest: 0,
                    snr_to_dest_db: 6.0,
                },
            ],
            Micros::from_secs(2),
        );
        let result = WifiNetwork::new(cfg, &DetRng::seed_from_u64(5)).run();
        let s = &result.stats[0];
        assert!(s.attempts > 50);
        assert!(
            s.delivery_ratio() > 0.5,
            "rate adaptation failed: {}",
            s.delivery_ratio()
        );
    }

    #[test]
    #[should_panic(expected = "destination index")]
    fn invalid_dest_rejected() {
        let cfg = WifiNetworkConfig::fully_connected(vec![sat_station(5)], Micros::from_millis(10));
        let _ = WifiNetwork::new(cfg, &DetRng::seed_from_u64(1));
    }

    #[test]
    fn hears_matrix_from_power() {
        use blu_sim::power::Dbm;
        let h = hears_from_rx_power(
            |tx, rx| {
                if tx + rx == 1 {
                    Dbm(-60.0) // 0↔1 close
                } else {
                    Dbm(-95.0) // others far
                }
            },
            3,
            Dbm(-82.0),
        );
        assert!(h[0][1] && h[1][0]);
        assert!(!h[0][2] && !h[2][1]);
        assert!(h[2][2], "diagonal true");
    }
}
