//! # blu-wifi — the 802.11 interferer substrate
//!
//! In the paper, hidden terminals are laptops running iperf UDP flows
//! over ath9k 802.11a/b/g/n cards with dynamic rate selection. What
//! BLU observes of them is purely their **channel occupancy**: when a
//! hidden terminal is on the air, nearby UEs fail CCA and forfeit
//! their grants.
//!
//! This crate reproduces that occupancy process two ways:
//!
//! * [`network::WifiNetwork`] — a full event-driven 802.11 DCF
//!   simulation (DIFS/backoff/CW doubling, frame airtime from the
//!   802.11n rate table, Minstrel-style rate adaptation, saturated or
//!   Poisson UDP traffic, carrier-sensing graph with WiFi↔WiFi hidden
//!   terminals). Activity emerges from contention, so co-located
//!   interferers share airtime — the *correlated* case that stresses
//!   the paper's independence assumption.
//! * [`onoff::OnOffSource`] — a renewal on/off process with a target
//!   duty cycle, matching the paper's independent-activity model
//!   `q(k)` exactly. Used where experiments need controlled ground
//!   truth.
//!
//! Both emit [`blu_sim::medium::ActivityTimeline`]s consumed by the
//! LTE side and by the trace tooling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod minstrel;
pub mod network;
pub mod onoff;
pub mod rates;
pub mod timing;
pub mod traffic;

pub use network::{WifiNetwork, WifiNetworkConfig, WifiStationSpec};
pub use onoff::OnOffSource;
pub use rates::{RateIdx, RATE_TABLE};
pub use traffic::TrafficGen;
