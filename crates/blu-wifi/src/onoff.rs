//! Renewal on/off activity sources.
//!
//! The paper's analytical model treats each hidden terminal `k` as an
//! independent process that is on the air with probability `q(k)` at
//! any CCA instant. An exponential on/off renewal process with mean
//! ON duration `μ_on` and OFF duration `μ_off` has exactly stationary
//! busy probability `q = μ_on / (μ_on + μ_off)` — so this source lets
//! experiments dial in ground-truth `q(k)` directly while still
//! producing a realistic µs-level timeline (WiFi-frame-scale bursts).

use blu_sim::medium::ActivityTimeline;
use blu_sim::rng::DetRng;
use blu_sim::time::Micros;
use serde::{Deserialize, Serialize};

/// An exponential on/off activity source.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OnOffSource {
    /// Mean ON (busy) duration in µs.
    pub mean_on_us: f64,
    /// Mean OFF (idle) duration in µs.
    pub mean_off_us: f64,
}

impl OnOffSource {
    /// Build a source with stationary busy probability `q` whose ON
    /// periods average `mean_on_us` (e.g. a WiFi frame exchange,
    /// ~1–2 ms).
    ///
    /// Panics unless `0 < q < 1`.
    pub fn with_duty_cycle(q: f64, mean_on_us: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "duty cycle must be in (0,1), got {q}");
        assert!(mean_on_us > 0.0);
        let mean_off_us = mean_on_us * (1.0 - q) / q;
        OnOffSource {
            mean_on_us,
            mean_off_us,
        }
    }

    /// Stationary busy probability `μ_on / (μ_on + μ_off)`.
    pub fn duty_cycle(&self) -> f64 {
        self.mean_on_us / (self.mean_on_us + self.mean_off_us)
    }

    /// Generate the busy timeline over `[0, horizon)`.
    ///
    /// Starts in a random phase (ON with probability `q`), so the
    /// process is stationary from time zero.
    pub fn generate(&self, horizon: Micros, rng: &mut DetRng) -> ActivityTimeline {
        let mut tl = ActivityTimeline::new();
        let mut t: u64 = 0;
        let h = horizon.as_u64();
        // Stationary initial phase.
        let mut on = rng.chance(self.duty_cycle());
        while t < h {
            let mean = if on {
                self.mean_on_us
            } else {
                self.mean_off_us
            };
            let dur = rng.exponential(mean).round().max(1.0) as u64;
            let end = (t + dur).min(h);
            if on && end > t {
                tl.push(Micros(t), Micros(end));
            }
            t = end;
            on = !on;
        }
        tl
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duty_cycle_construction() {
        let s = OnOffSource::with_duty_cycle(0.3, 1_500.0);
        assert!((s.duty_cycle() - 0.3).abs() < 1e-12);
        assert!((s.mean_off_us - 3_500.0).abs() < 1e-9);
    }

    #[test]
    fn generated_airtime_matches_duty_cycle() {
        let mut rng = DetRng::seed_from_u64(1);
        for &q in &[0.1, 0.35, 0.6, 0.85] {
            let s = OnOffSource::with_duty_cycle(q, 1_500.0);
            let horizon = Micros::from_secs(60);
            let tl = s.generate(horizon, &mut rng);
            let airtime = tl.airtime_in(Micros::ZERO, horizon);
            assert!(
                (airtime - q).abs() < 0.02,
                "q={q}: generated airtime {airtime}"
            );
        }
    }

    #[test]
    fn point_sampling_matches_duty_cycle() {
        // Sampling busy_at at sub-frame boundaries (what a UE CCA
        // does) must also see probability ≈ q.
        let s = OnOffSource::with_duty_cycle(0.4, 1_500.0);
        let mut rng = DetRng::seed_from_u64(2);
        let horizon = Micros::from_secs(30);
        let tl = s.generate(horizon, &mut rng);
        let n = 30_000u64;
        let busy = (0..n).filter(|&sf| tl.busy_at(Micros(sf * 1_000))).count() as f64 / n as f64;
        assert!((busy - 0.4).abs() < 0.02, "busy fraction {busy}");
    }

    #[test]
    fn timeline_respects_horizon() {
        let s = OnOffSource::with_duty_cycle(0.5, 2_000.0);
        let mut rng = DetRng::seed_from_u64(3);
        let horizon = Micros::from_millis(100);
        let tl = s.generate(horizon, &mut rng);
        assert!(tl.horizon() <= horizon);
    }

    #[test]
    fn deterministic_given_seed() {
        let s = OnOffSource::with_duty_cycle(0.25, 1_000.0);
        let a = s.generate(Micros::from_secs(1), &mut DetRng::seed_from_u64(9));
        let b = s.generate(Micros::from_secs(1), &mut DetRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn invalid_duty_cycle_panics() {
        OnOffSource::with_duty_cycle(1.0, 1_000.0);
    }
}
