//! 802.11n single-stream (MCS 0–7, 20 MHz, long GI) rate table and a
//! per-rate delivery model.

use blu_sim::power::Db;
use serde::{Deserialize, Serialize};

/// Index into [`RATE_TABLE`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RateIdx(pub usize);

/// One PHY rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rate {
    /// PHY rate in Mbps.
    pub mbps: f64,
    /// SNR (dB) at which frame delivery is ~50 % for a full frame;
    /// the success curve is a logistic around this point.
    pub snr_mid_db: f64,
}

/// 802.11n MCS 0–7 (1 spatial stream, 20 MHz, 800 ns GI).
pub const RATE_TABLE: [Rate; 8] = [
    Rate {
        mbps: 6.5,
        snr_mid_db: 4.0,
    },
    Rate {
        mbps: 13.0,
        snr_mid_db: 7.0,
    },
    Rate {
        mbps: 19.5,
        snr_mid_db: 10.0,
    },
    Rate {
        mbps: 26.0,
        snr_mid_db: 13.0,
    },
    Rate {
        mbps: 39.0,
        snr_mid_db: 17.0,
    },
    Rate {
        mbps: 52.0,
        snr_mid_db: 21.0,
    },
    Rate {
        mbps: 58.5,
        snr_mid_db: 24.0,
    },
    Rate {
        mbps: 65.0,
        snr_mid_db: 26.0,
    },
];

impl RateIdx {
    /// The lowest (most robust) rate.
    pub const LOWEST: RateIdx = RateIdx(0);
    /// The highest rate.
    pub const HIGHEST: RateIdx = RateIdx(RATE_TABLE.len() - 1);

    /// The rate entry.
    pub fn rate(self) -> Rate {
        RATE_TABLE[self.0]
    }

    /// PHY rate in Mbps.
    pub fn mbps(self) -> f64 {
        self.rate().mbps
    }
}

/// Probability a frame at this rate is delivered at the given SNR:
/// a logistic curve with 2 dB steepness around the rate's midpoint.
pub fn delivery_probability(rate: RateIdx, snr: Db) -> f64 {
    let mid = rate.rate().snr_mid_db;
    1.0 / (1.0 + (-(snr.0 - mid) / 1.0).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_monotone() {
        for w in RATE_TABLE.windows(2) {
            assert!(w[0].mbps < w[1].mbps);
            assert!(w[0].snr_mid_db < w[1].snr_mid_db);
        }
    }

    #[test]
    fn delivery_probability_behaviour() {
        // Far above midpoint: ~1. Far below: ~0. At midpoint: 0.5.
        let r = RateIdx(3);
        assert!(delivery_probability(r, Db(40.0)) > 0.99);
        assert!(delivery_probability(r, Db(-10.0)) < 0.01);
        let at_mid = delivery_probability(r, Db(13.0));
        assert!((at_mid - 0.5).abs() < 1e-9);
    }

    #[test]
    fn robust_rate_survives_lower_snr() {
        let snr = Db(8.0);
        assert!(
            delivery_probability(RateIdx::LOWEST, snr)
                > delivery_probability(RateIdx::HIGHEST, snr)
        );
    }

    #[test]
    fn rate_idx_helpers() {
        assert_eq!(RateIdx::LOWEST.mbps(), 6.5);
        assert_eq!(RateIdx::HIGHEST.mbps(), 65.0);
    }
}
