//! Minstrel-style rate adaptation.
//!
//! The paper's hidden terminals use "dynamic rate selection to ensure
//! that the best bitrate is used at the sender". We model the essence
//! of Linux's Minstrel: track an EWMA delivery probability per rate,
//! pick the rate with the best expected throughput, and spend a small
//! fraction of frames sampling other rates so the estimate stays
//! fresh.

use crate::rates::{RateIdx, RATE_TABLE};
use blu_sim::rng::DetRng;

/// Fraction of frames used to sample non-optimal rates.
const SAMPLE_FRACTION: f64 = 0.1;
/// EWMA weight of the newest observation.
const EWMA_ALPHA: f64 = 0.25;
/// Optimistic prior so untried rates get explored.
const PRIOR_SUCCESS: f64 = 0.5;

/// Per-link Minstrel state.
#[derive(Debug, Clone)]
pub struct Minstrel {
    /// EWMA delivery probability per rate.
    prob: [f64; RATE_TABLE.len()],
    rng: DetRng,
}

impl Minstrel {
    /// Fresh state with an optimistic prior.
    pub fn new(rng: DetRng) -> Self {
        Minstrel {
            prob: [PRIOR_SUCCESS; RATE_TABLE.len()],
            rng,
        }
    }

    /// Expected throughput of a rate (Mbps × delivery probability).
    fn expected_tput(&self, r: usize) -> f64 {
        RATE_TABLE[r].mbps * self.prob[r]
    }

    /// The current best rate by expected throughput.
    pub fn best_rate(&self) -> RateIdx {
        let best = (0..RATE_TABLE.len())
            .max_by(|&a, &b| {
                self.expected_tput(a)
                    .partial_cmp(&self.expected_tput(b))
                    .unwrap()
            })
            .unwrap();
        RateIdx(best)
    }

    /// Pick the rate for the next frame (mostly the best rate, with a
    /// sampling fraction spent on random other rates).
    pub fn pick(&mut self) -> RateIdx {
        if self.rng.chance(SAMPLE_FRACTION) {
            RateIdx(self.rng.below(RATE_TABLE.len()))
        } else {
            self.best_rate()
        }
    }

    /// Report the outcome of a frame sent at `rate`.
    pub fn report(&mut self, rate: RateIdx, delivered: bool) {
        let obs = if delivered { 1.0 } else { 0.0 };
        let p = &mut self.prob[rate.0];
        *p = EWMA_ALPHA * obs + (1.0 - EWMA_ALPHA) * *p;
    }

    /// Current delivery-probability estimate for a rate.
    pub fn probability(&self, rate: RateIdx) -> f64 {
        self.prob[rate.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rates::delivery_probability;
    use blu_sim::power::Db;

    /// Drive minstrel against a ground-truth SNR and check it settles
    /// near the throughput-optimal rate.
    fn converged_rate(snr: Db, seed: u64) -> RateIdx {
        let mut m = Minstrel::new(DetRng::seed_from_u64(seed));
        let mut chan = DetRng::seed_from_u64(seed + 1);
        for _ in 0..2_000 {
            let r = m.pick();
            let delivered = chan.chance(delivery_probability(r, snr));
            m.report(r, delivered);
        }
        m.best_rate()
    }

    fn optimal_rate(snr: Db) -> RateIdx {
        let best = (0..RATE_TABLE.len())
            .max_by(|&a, &b| {
                let ta = RATE_TABLE[a].mbps * delivery_probability(RateIdx(a), snr);
                let tb = RATE_TABLE[b].mbps * delivery_probability(RateIdx(b), snr);
                ta.partial_cmp(&tb).unwrap()
            })
            .unwrap();
        RateIdx(best)
    }

    #[test]
    fn converges_near_optimum_high_snr() {
        let got = converged_rate(Db(35.0), 1);
        assert_eq!(got, RateIdx::HIGHEST);
    }

    #[test]
    fn converges_near_optimum_low_snr() {
        let got = converged_rate(Db(5.0), 2);
        let opt = optimal_rate(Db(5.0));
        assert!(
            (got.0 as i64 - opt.0 as i64).abs() <= 1,
            "got {got:?}, optimal {opt:?}"
        );
    }

    #[test]
    fn converges_mid_snr() {
        let got = converged_rate(Db(15.0), 3);
        let opt = optimal_rate(Db(15.0));
        assert!(
            (got.0 as i64 - opt.0 as i64).abs() <= 1,
            "got {got:?}, optimal {opt:?}"
        );
    }

    #[test]
    fn report_moves_probability() {
        let mut m = Minstrel::new(DetRng::seed_from_u64(4));
        let before = m.probability(RateIdx(2));
        m.report(RateIdx(2), false);
        assert!(m.probability(RateIdx(2)) < before);
        m.report(RateIdx(2), true);
        m.report(RateIdx(2), true);
        m.report(RateIdx(2), true);
        assert!(m.probability(RateIdx(2)) > before * 0.9);
    }

    #[test]
    fn pick_samples_occasionally() {
        let mut m = Minstrel::new(DetRng::seed_from_u64(5));
        // Make rate 0 clearly best so deviations are samples.
        for r in 1..RATE_TABLE.len() {
            for _ in 0..40 {
                m.report(RateIdx(r), false);
            }
        }
        for _ in 0..40 {
            m.report(RateIdx(0), true);
        }
        let picks: Vec<RateIdx> = (0..1_000).map(|_| m.pick()).collect();
        let non_best = picks.iter().filter(|&&r| r != RateIdx(0)).count();
        assert!(non_best > 30, "sampling too rare: {non_best}");
        assert!(non_best < 250, "sampling too frequent: {non_best}");
    }
}
