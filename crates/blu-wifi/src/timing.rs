//! 802.11 (OFDM, 5 GHz) MAC timing and frame airtime.

use blu_sim::time::Micros;

/// Backoff slot time (µs).
pub const SLOT_US: u64 = 9;
/// Short inter-frame space (µs).
pub const SIFS_US: u64 = 16;
/// DCF inter-frame space: SIFS + 2 slots (µs).
pub const DIFS_US: u64 = SIFS_US + 2 * SLOT_US;
/// PHY preamble + PLCP header for OFDM PHY (µs).
pub const PREAMBLE_US: u64 = 20;
/// ACK frame duration at a basic rate, including its preamble (µs).
pub const ACK_US: u64 = 44;
/// Minimum contention window (802.11 OFDM: 15).
pub const CW_MIN: u32 = 15;
/// Maximum contention window.
pub const CW_MAX: u32 = 1023;
/// Retry limit before a frame is dropped.
pub const RETRY_LIMIT: u32 = 7;

/// MAC + LLC overhead bytes added to a UDP payload in an 802.11 data
/// frame (MAC header 26 + LLC/SNAP 8 + FCS 4, QoS data).
pub const MAC_OVERHEAD_BYTES: usize = 38;

/// On-air duration of a data frame of `payload_bytes` at `rate_mbps`,
/// including preamble (not including the ACK exchange).
pub fn frame_airtime(payload_bytes: usize, rate_mbps: f64) -> Micros {
    assert!(rate_mbps > 0.0);
    let bits = ((payload_bytes + MAC_OVERHEAD_BYTES) * 8) as f64;
    let data_us = (bits / rate_mbps).ceil() as u64;
    Micros(PREAMBLE_US + data_us)
}

/// Full channel hold time of one data exchange: frame + SIFS + ACK.
pub fn exchange_airtime(payload_bytes: usize, rate_mbps: f64) -> Micros {
    frame_airtime(payload_bytes, rate_mbps) + Micros(SIFS_US + ACK_US)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn difs_is_34us() {
        assert_eq!(DIFS_US, 34);
    }

    #[test]
    fn airtime_scales_inversely_with_rate() {
        let slow = frame_airtime(1470, 6.5);
        let fast = frame_airtime(1470, 65.0);
        assert!(slow > fast);
        // 1508 bytes at 6.5 Mbps ≈ 1856 µs + preamble.
        assert_eq!(slow, Micros(20 + 1856));
    }

    #[test]
    fn airtime_monotone_in_size() {
        assert!(frame_airtime(200, 26.0) < frame_airtime(1470, 26.0));
    }

    #[test]
    fn exchange_adds_sifs_and_ack() {
        let f = frame_airtime(1000, 13.0);
        assert_eq!(exchange_airtime(1000, 13.0), f + Micros(60));
    }

    #[test]
    fn typical_full_rate_frame_under_2ms() {
        // Even at the lowest rate a 1470 B frame holds the channel
        // less than 2 ms — comparable to 1-2 LTE sub-frames, which is
        // exactly why WiFi bursts blank out whole UL grants.
        assert!(exchange_airtime(1470, 6.5).as_u64() < 2_000);
    }
}
