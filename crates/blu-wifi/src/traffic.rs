//! Traffic generators for interfering stations.
//!
//! The testbed's hidden terminals run saturated iperf UDP; the NS3
//! sweeps use UDP at rate-adaptation-chosen bitrates. We provide
//! saturated, Poisson and bursty on/off arrival processes.

use blu_sim::rng::DetRng;
use blu_sim::time::Micros;
use serde::{Deserialize, Serialize};

/// A packet handed to the MAC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Arrival time at the MAC queue.
    pub arrival: Micros,
    /// UDP payload bytes.
    pub bytes: usize,
}

/// Configuration of a traffic source.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TrafficGen {
    /// Always backlogged (iperf-style saturation), fixed packet size.
    Saturated {
        /// Payload bytes per packet.
        bytes: usize,
    },
    /// Poisson arrivals at `pkts_per_sec`, fixed packet size.
    Poisson {
        /// Mean packet arrival rate.
        pkts_per_sec: f64,
        /// Payload bytes per packet.
        bytes: usize,
    },
    /// Alternating exponential ON (saturated) / OFF (silent) phases.
    Bursty {
        /// Mean ON duration (µs).
        mean_on_us: f64,
        /// Mean OFF duration (µs).
        mean_off_us: f64,
        /// Payload bytes per packet.
        bytes: usize,
    },
}

impl TrafficGen {
    /// The testbed default: saturated 1470-byte UDP.
    pub fn iperf_default() -> Self {
        TrafficGen::Saturated { bytes: 1470 }
    }

    /// Create the runtime state for this generator.
    pub fn start(self, rng: DetRng) -> TrafficState {
        TrafficState {
            gen: self,
            rng,
            burst_on_until: Micros::ZERO,
            burst_off_until: Micros::ZERO,
        }
    }
}

/// Runtime state of a traffic source.
#[derive(Debug, Clone)]
pub struct TrafficState {
    gen: TrafficGen,
    rng: DetRng,
    burst_on_until: Micros,
    burst_off_until: Micros,
}

impl TrafficState {
    /// The next packet available at or after `now`, or `None` if the
    /// source generates no further packets before `horizon`.
    pub fn next_packet(&mut self, now: Micros, horizon: Micros) -> Option<Packet> {
        match self.gen {
            TrafficGen::Saturated { bytes } => {
                if now >= horizon {
                    None
                } else {
                    Some(Packet {
                        arrival: now,
                        bytes,
                    })
                }
            }
            TrafficGen::Poisson {
                pkts_per_sec,
                bytes,
            } => {
                let mean_gap_us = 1e6 / pkts_per_sec;
                let gap = self.rng.exponential(mean_gap_us).round() as u64;
                let arrival = now + Micros(gap);
                if arrival >= horizon {
                    None
                } else {
                    Some(Packet { arrival, bytes })
                }
            }
            TrafficGen::Bursty {
                mean_on_us,
                mean_off_us,
                bytes,
            } => {
                let mut t = now;
                loop {
                    if t >= horizon {
                        return None;
                    }
                    // Establish burst phases lazily.
                    if t < self.burst_on_until {
                        return Some(Packet { arrival: t, bytes });
                    }
                    if t < self.burst_off_until {
                        t = self.burst_off_until;
                        continue;
                    }
                    // Start a new cycle: ON then OFF.
                    let on = self.rng.exponential(mean_on_us).round().max(1.0) as u64;
                    let off = self.rng.exponential(mean_off_us).round().max(1.0) as u64;
                    self.burst_on_until = t + Micros(on);
                    self.burst_off_until = self.burst_on_until + Micros(off);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturated_always_has_packet() {
        let mut s = TrafficGen::iperf_default().start(DetRng::seed_from_u64(1));
        let p = s.next_packet(Micros(500), Micros::from_secs(1)).unwrap();
        assert_eq!(p.arrival, Micros(500));
        assert_eq!(p.bytes, 1470);
        assert!(s
            .next_packet(Micros::from_secs(1), Micros::from_secs(1))
            .is_none());
    }

    #[test]
    fn poisson_rate_approximately_matches() {
        let mut s = TrafficGen::Poisson {
            pkts_per_sec: 1_000.0,
            bytes: 500,
        }
        .start(DetRng::seed_from_u64(2));
        let horizon = Micros::from_secs(10);
        let mut now = Micros::ZERO;
        let mut count = 0u64;
        while let Some(p) = s.next_packet(now, horizon) {
            now = p.arrival;
            count += 1;
        }
        // Expect ≈ 10_000 packets over 10 s.
        assert!((9_000..11_000).contains(&count), "count {count}");
    }

    #[test]
    fn bursty_alternates_activity() {
        let mut s = TrafficGen::Bursty {
            mean_on_us: 10_000.0,
            mean_off_us: 10_000.0,
            bytes: 1470,
        }
        .start(DetRng::seed_from_u64(3));
        let horizon = Micros::from_secs(2);
        // Packets inside a burst arrive back-to-back; across bursts
        // there are gaps. Count both behaviours.
        let mut now = Micros::ZERO;
        let mut immediate = 0u64;
        let mut gaps = 0u64;
        for _ in 0..5_000 {
            match s.next_packet(now, horizon) {
                Some(p) => {
                    if p.arrival == now {
                        immediate += 1;
                    } else {
                        gaps += 1;
                    }
                    now = p.arrival + Micros(1_000); // pretend 1 ms service
                }
                None => break,
            }
        }
        assert!(immediate > 0, "no in-burst packets");
        assert!(gaps > 0, "no inter-burst gaps");
    }

    #[test]
    fn horizon_respected() {
        let mut s = TrafficGen::Poisson {
            pkts_per_sec: 10.0,
            bytes: 100,
        }
        .start(DetRng::seed_from_u64(4));
        assert!(s.next_packet(Micros(0), Micros(1)).is_none());
    }
}
