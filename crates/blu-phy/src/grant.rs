//! Uplink grants and per-sub-frame RB schedules.
//!
//! The eNB conveys the UL schedule in the DL part of the TxOP. A
//! *grant* tells one UE which RBs to occupy at which MCS for how many
//! sub-frames. BLU's key (LTE-compliant) trick is that grants for the
//! same RB may be issued to **more** UEs than the eNB has antennas —
//! the over-scheduling of paper §3.2.2 — so an [`RbSchedule`] maps
//! each RB to a *set* of clients, not a single one.

use crate::mcs::Cqi;
use crate::rb::RbSet;
use blu_sim::clientset::ClientSet;
use serde::{Deserialize, Serialize};

/// An uplink grant for one UE.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UlGrant {
    /// Client (UE) index within the cell.
    pub ue: usize,
    /// RBs allocated to the UE.
    pub rbs: RbSet,
    /// MCS the UE must encode at (fixed at grant time from the eNB's
    /// last channel estimate — realized SINR may differ).
    pub cqi: Cqi,
    /// Number of consecutive UL sub-frames the grant covers (the
    /// paper's bursts are 3).
    pub burst_subframes: u64,
}

/// The UL schedule of one sub-frame: for every RB, the set of clients
/// granted that RB.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RbSchedule {
    /// Number of RBs on the carrier.
    pub n_rbs: usize,
    /// `clients[b]` = set of UEs granted RB `b`.
    pub clients: Vec<ClientSet>,
}

impl RbSchedule {
    /// An empty schedule over `n_rbs` RBs.
    pub fn empty(n_rbs: usize) -> Self {
        RbSchedule {
            n_rbs,
            clients: vec![ClientSet::EMPTY; n_rbs],
        }
    }

    /// Grant RB `b` to client `ue` (in addition to any existing
    /// grantees — over-scheduling).
    pub fn assign(&mut self, b: usize, ue: usize) {
        assert!(b < self.n_rbs, "RB {b} out of range");
        self.clients[b].insert(ue);
    }

    /// Grant a whole RB set to a client.
    pub fn assign_rbs(&mut self, rbs: RbSet, ue: usize) {
        for b in rbs.iter() {
            self.assign(b, ue);
        }
    }

    /// The set of clients granted RB `b`.
    pub fn group(&self, b: usize) -> ClientSet {
        self.clients[b]
    }

    /// All clients appearing anywhere in the schedule.
    pub fn scheduled_clients(&self) -> ClientSet {
        self.clients
            .iter()
            .fold(ClientSet::EMPTY, |acc, &c| acc.union(c))
    }

    /// The RBs granted to a particular client.
    pub fn rbs_of(&self, ue: usize) -> RbSet {
        self.clients
            .iter()
            .enumerate()
            .filter(|(_, c)| c.contains(ue))
            .map(|(b, _)| b)
            .collect()
    }

    /// Number of RBs with at least one grantee.
    pub fn occupied_rbs(&self) -> usize {
        self.clients.iter().filter(|c| !c.is_empty()).count()
    }

    /// Largest per-RB group size (over-scheduling depth).
    pub fn max_group_size(&self) -> usize {
        self.clients.iter().map(|c| c.len()).max().unwrap_or(0)
    }

    /// Convert to per-UE grants (RB sets), given a common CQI lookup.
    pub fn to_grants(&self, cqi_of: impl Fn(usize) -> Cqi, burst_subframes: u64) -> Vec<UlGrant> {
        self.scheduled_clients()
            .iter()
            .map(|ue| UlGrant {
                ue,
                rbs: self.rbs_of(ue),
                cqi: cqi_of(ue),
                burst_subframes,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assign_and_query() {
        let mut s = RbSchedule::empty(4);
        s.assign(0, 3);
        s.assign(0, 7); // over-scheduled
        s.assign(2, 3);
        assert_eq!(s.group(0), ClientSet::from_iter([3, 7]));
        assert_eq!(s.group(1), ClientSet::EMPTY);
        assert_eq!(s.rbs_of(3), RbSet::from_iter([0, 2]));
        assert_eq!(s.scheduled_clients(), ClientSet::from_iter([3, 7]));
        assert_eq!(s.occupied_rbs(), 2);
        assert_eq!(s.max_group_size(), 2);
    }

    #[test]
    fn assign_rbs_bulk() {
        let mut s = RbSchedule::empty(10);
        s.assign_rbs(RbSet::range(2, 6), 1);
        assert_eq!(s.rbs_of(1), RbSet::range(2, 6));
        assert_eq!(s.occupied_rbs(), 4);
    }

    #[test]
    fn to_grants_collects_per_ue() {
        let mut s = RbSchedule::empty(4);
        s.assign(0, 1);
        s.assign(1, 1);
        s.assign(1, 2);
        let grants = s.to_grants(|_| Cqi(9), 3);
        assert_eq!(grants.len(), 2);
        let g1 = grants.iter().find(|g| g.ue == 1).unwrap();
        assert_eq!(g1.rbs, RbSet::from_iter([0, 1]));
        assert_eq!(g1.burst_subframes, 3);
        assert_eq!(g1.cqi, Cqi(9));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rb_panics() {
        let mut s = RbSchedule::empty(2);
        s.assign(2, 0);
    }

    #[test]
    fn empty_schedule_stats() {
        let s = RbSchedule::empty(5);
        assert_eq!(s.occupied_rbs(), 0);
        assert_eq!(s.max_group_size(), 0);
        assert!(s.scheduled_clients().is_empty());
    }
}
