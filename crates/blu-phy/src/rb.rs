//! Resource-block sets.
//!
//! Mirrors [`blu_sim::ClientSet`] but for RB indices (up to 128 RBs —
//! enough for a 100-RB 20 MHz carrier with headroom). Grants allocate
//! RB sets; schedules track per-RB client groups.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A set of resource-block indices in `[0, 128)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct RbSet(pub u128);

impl RbSet {
    /// The empty set.
    pub const EMPTY: RbSet = RbSet(0);

    /// Maximum representable RB index plus one.
    pub const CAPACITY: usize = 128;

    /// A single RB.
    pub fn singleton(b: usize) -> Self {
        assert!(b < Self::CAPACITY);
        RbSet(1u128 << b)
    }

    /// The contiguous range `[lo, hi)`.
    pub fn range(lo: usize, hi: usize) -> Self {
        assert!(lo <= hi && hi <= Self::CAPACITY);
        let mut s = RbSet::EMPTY;
        for b in lo..hi {
            s.insert(b);
        }
        s
    }

    /// All RBs of a carrier with `n` RBs.
    pub fn all(n: usize) -> Self {
        RbSet::range(0, n)
    }

    /// Number of RBs in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Membership.
    pub fn contains(self, b: usize) -> bool {
        b < Self::CAPACITY && (self.0 >> b) & 1 == 1
    }

    /// Insert in place.
    pub fn insert(&mut self, b: usize) {
        assert!(b < Self::CAPACITY);
        self.0 |= 1u128 << b;
    }

    /// Union.
    pub fn union(self, o: RbSet) -> RbSet {
        RbSet(self.0 | o.0)
    }

    /// Intersection.
    pub fn intersection(self, o: RbSet) -> RbSet {
        RbSet(self.0 & o.0)
    }

    /// Whether disjoint.
    pub fn is_disjoint(self, o: RbSet) -> bool {
        self.0 & o.0 == 0
    }

    /// Iterate RB indices ascending.
    pub fn iter(self) -> impl Iterator<Item = usize> {
        let mut m = self.0;
        std::iter::from_fn(move || {
            if m == 0 {
                None
            } else {
                let b = m.trailing_zeros() as usize;
                m &= m - 1;
                Some(b)
            }
        })
    }
}

impl FromIterator<usize> for RbSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = RbSet::EMPTY;
        for b in iter {
            s.insert(b);
        }
        s
    }
}

impl fmt::Display for RbSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RBs{{")?;
        for (n, b) in self.iter().enumerate() {
            if n > 0 {
                write!(f, ",")?;
            }
            write!(f, "{b}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_and_all() {
        assert_eq!(RbSet::range(2, 5).iter().collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(RbSet::all(50).len(), 50);
        assert!(RbSet::range(3, 3).is_empty());
    }

    #[test]
    fn algebra() {
        let a = RbSet::from_iter([0, 1, 2]);
        let b = RbSet::from_iter([2, 3]);
        assert_eq!(a.union(b).len(), 4);
        assert_eq!(a.intersection(b), RbSet::singleton(2));
        assert!(a.is_disjoint(RbSet::from_iter([7])));
        assert!(!a.is_disjoint(b));
    }

    #[test]
    fn membership() {
        let s = RbSet::from_iter([5, 49]);
        assert!(s.contains(5) && s.contains(49) && !s.contains(6));
        assert!(!s.contains(200));
    }

    #[test]
    fn display() {
        assert_eq!(RbSet::from_iter([1, 4]).to_string(), "RBs{1,4}");
    }
}
