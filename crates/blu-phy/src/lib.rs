//! # blu-phy — LTE PHY/MAC substrate for BLU
//!
//! The paper's testbed runs a Release-10 LTE stack (MATLAB LTE
//! Toolbox on WARP SDRs). BLU itself only touches a narrow slice of
//! that stack, and this crate reproduces exactly that slice:
//!
//! * the **numerology** of a 10 MHz carrier (50 resource blocks,
//!   1 ms sub-frames, TxOPs of 2–10 ms with a DL/UL split);
//! * **uplink grants** and per-sub-frame RB schedules;
//! * the **CQI/MCS rate model** mapping SINR to per-RB transport bits;
//! * **DMRS pilots** with orthogonal cyclic shifts — the mechanism BLU
//!   uses to tell *blocked* (no pilot) from *collision* (too many
//!   pilots) from *fading* (pilot but no data), paper §3.3;
//! * a **MU-MIMO zero-forcing receiver** for up to `M` concurrent
//!   streams on the same RB, with collision when more than `M`
//!   transmissions arrive;
//! * **LAA channel access** (Cat-4 energy-detect backoff) for the eNB
//!   to win TxOPs against WiFi contention.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cell;
pub mod grant;
pub mod harq;
pub mod laa;
pub mod mcs;
pub mod mimo;
pub mod noma;
pub mod numerology;
pub mod outcome;
pub mod pilot;
pub mod rb;

pub use cell::CellConfig;
pub use grant::{RbSchedule, UlGrant};
pub use mcs::{Cqi, McsTable};
pub use numerology::Numerology;
pub use outcome::{classify_rb, DecodeOutcome, RbObservation};
pub use rb::RbSet;
