//! LTE carrier numerology and TxOP structure.
//!
//! The testbed uses a 10 MHz Release-10 carrier (50 resource blocks,
//! sampling rate 15.36 MHz) with grants issued in bursts of three
//! sub-frames; a TxOP in unlicensed spectrum spans 2–10 ms and is
//! split between DL (control + grants) and UL sub-frames (paper
//! Fig. 2b).

use serde::{Deserialize, Serialize};

/// Static numerology of an LTE carrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Numerology {
    /// Carrier bandwidth in MHz (1.4, 3, 5, 10, 15, 20).
    pub bandwidth_mhz: u32,
    /// Number of uplink resource blocks.
    pub n_rbs: usize,
    /// Subcarriers per RB (always 12 in LTE).
    pub subcarriers_per_rb: usize,
    /// OFDM data symbols per sub-frame available for PUSCH
    /// (14 symbols minus 2 DMRS symbols).
    pub data_symbols_per_subframe: usize,
}

impl Numerology {
    /// The paper's configuration: a 10 MHz carrier.
    pub fn mhz10() -> Self {
        Numerology {
            bandwidth_mhz: 10,
            n_rbs: 50,
            subcarriers_per_rb: 12,
            data_symbols_per_subframe: 12,
        }
    }

    /// A 20 MHz carrier (for larger-cell experiments).
    pub fn mhz20() -> Self {
        Numerology {
            bandwidth_mhz: 20,
            n_rbs: 100,
            subcarriers_per_rb: 12,
            data_symbols_per_subframe: 12,
        }
    }

    /// Resource elements available for data per RB per sub-frame.
    pub fn res_per_rb(&self) -> usize {
        self.subcarriers_per_rb * self.data_symbols_per_subframe
    }
}

/// Shape of one transmission opportunity in unlicensed spectrum:
/// after winning the channel, the eNB sends `dl_subframes` (carrying
/// control and UL grants) followed by `ul_subframes` used by the
/// scheduled UEs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TxOpShape {
    /// Leading DL sub-frames.
    pub dl_subframes: u64,
    /// Trailing UL sub-frames (the paper's UE bursts are 3 sub-frames).
    pub ul_subframes: u64,
}

impl TxOpShape {
    /// The paper's testbed shape: 1 DL sub-frame carrying grants, then
    /// a 3-sub-frame UL burst.
    pub fn paper_default() -> Self {
        TxOpShape {
            dl_subframes: 1,
            ul_subframes: 3,
        }
    }

    /// Total TxOP length in sub-frames.
    pub fn total_subframes(&self) -> u64 {
        self.dl_subframes + self.ul_subframes
    }

    /// Validate against the LAA TxOP bounds (2–10 ms).
    pub fn is_valid_laa(&self) -> bool {
        let t = self.total_subframes();
        (2..=10).contains(&t) && self.dl_subframes >= 1 && self.ul_subframes >= 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mhz10_matches_lte_spec() {
        let n = Numerology::mhz10();
        assert_eq!(n.n_rbs, 50);
        assert_eq!(n.res_per_rb(), 144);
    }

    #[test]
    fn mhz20_matches_lte_spec() {
        assert_eq!(Numerology::mhz20().n_rbs, 100);
    }

    #[test]
    fn paper_txop_is_valid() {
        let t = TxOpShape::paper_default();
        assert_eq!(t.total_subframes(), 4);
        assert!(t.is_valid_laa());
    }

    #[test]
    fn txop_bounds_enforced() {
        assert!(!TxOpShape {
            dl_subframes: 1,
            ul_subframes: 0
        }
        .is_valid_laa());
        assert!(!TxOpShape {
            dl_subframes: 6,
            ul_subframes: 6
        }
        .is_valid_laa());
        assert!(TxOpShape {
            dl_subframes: 2,
            ul_subframes: 8
        }
        .is_valid_laa());
    }
}
