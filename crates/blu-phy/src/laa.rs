//! LAA channel access for the eNB (Cat-4 LBT) and the UE's pre-grant
//! CCA.
//!
//! To start a TxOP in unlicensed spectrum, the eNB performs
//! listen-before-talk: a defer period followed by a random backoff
//! counted in 9 µs slots, freezing whenever energy detection reports
//! the channel busy (3GPP 36.213 §15, priority class 3 defaults).
//! Scheduled UEs perform a short one-shot CCA (25 µs) immediately
//! before their granted sub-frame — the operation whose failure
//! creates the paper's under-utilization.

use blu_sim::cca::CcaOutcome;
use blu_sim::medium::ActivityTimeline;
use blu_sim::rng::DetRng;
use blu_sim::time::Micros;
use serde::{Deserialize, Serialize};

/// One LBT slot (µs).
pub const SLOT_US: u64 = 9;
/// Defer duration before backoff counts down (DIFS-like, µs).
pub const DEFER_US: u64 = 43;
/// UE one-shot CCA duration (type-2 channel access, µs).
pub const UE_CCA_US: u64 = 25;

/// Cat-4 LBT parameters (priority class 3 defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LbtConfig {
    /// Minimum contention window.
    pub cw_min: u32,
    /// Maximum contention window.
    pub cw_max: u32,
}

impl Default for LbtConfig {
    fn default() -> Self {
        LbtConfig {
            cw_min: 15,
            cw_max: 63,
        }
    }
}

/// Cat-4 listen-before-talk state machine for the eNB.
#[derive(Debug, Clone)]
pub struct Lbt {
    config: LbtConfig,
    cw: u32,
    rng: DetRng,
}

impl Lbt {
    /// Create with fresh contention window.
    pub fn new(config: LbtConfig, rng: DetRng) -> Self {
        Lbt {
            config,
            cw: config.cw_min,
            rng,
        }
    }

    /// Current contention window.
    pub fn cw(&self) -> u32 {
        self.cw
    }

    /// Double the contention window after a failed TxOP (collision
    /// feedback), clamped at `cw_max`.
    pub fn grow_cw(&mut self) {
        self.cw = (self.cw * 2 + 1).min(self.config.cw_max);
    }

    /// Reset the contention window after a successful TxOP.
    pub fn reset_cw(&mut self) {
        self.cw = self.config.cw_min;
    }

    /// Run LBT from `from` against the aggregate busy timeline the
    /// eNB senses; returns the instant the TxOP may start.
    ///
    /// The procedure: wait for the channel to be idle for a full
    /// defer period, then count down a random backoff in idle slots,
    /// re-deferring whenever the channel goes busy mid-countdown.
    pub fn acquire(&mut self, busy: &ActivityTimeline, from: Micros) -> Micros {
        let mut remaining = self.rng.below(self.cw as usize + 1) as u32;
        let mut t = busy.idle_at_or_after(from);
        loop {
            // Re-defer: need DEFER_US of continuous idle.
            if busy.busy_in(t, t + Micros(DEFER_US)) {
                let nb = busy
                    .next_busy_start(t)
                    .expect("busy_in implies a busy interval ahead");
                t = busy.idle_at_or_after(nb);
                continue;
            }
            t += Micros(DEFER_US);
            // Count down backoff in idle slots.
            let mut interrupted = false;
            while remaining > 0 {
                if busy.busy_in(t, t + Micros(SLOT_US)) {
                    let nb = busy.next_busy_start(t).expect("busy slot ahead");
                    t = busy.idle_at_or_after(nb);
                    interrupted = true;
                    break;
                }
                t += Micros(SLOT_US);
                remaining -= 1;
            }
            if !interrupted && remaining == 0 {
                return t;
            }
        }
    }
}

/// The UE's pre-grant one-shot CCA: energy-detect over the 25 µs
/// ending at the grant boundary `grant_start`.
pub fn ue_cca(busy_at_ue: &ActivityTimeline, grant_start: Micros) -> CcaOutcome {
    let window_start = grant_start.saturating_sub(Micros(UE_CCA_US));
    if busy_at_ue.busy_in(window_start, grant_start) {
        CcaOutcome::Busy
    } else {
        CcaOutcome::Idle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blu_sim::medium::ActivityTimeline;

    fn tl(spec: &[(u64, u64)]) -> ActivityTimeline {
        let mut t = ActivityTimeline::new();
        for &(s, e) in spec {
            t.push(Micros(s), Micros(e));
        }
        t
    }

    #[test]
    fn idle_channel_acquires_after_defer_plus_backoff() {
        let mut lbt = Lbt::new(LbtConfig::default(), DetRng::seed_from_u64(1));
        let start = lbt.acquire(&ActivityTimeline::new(), Micros(0));
        // defer + (0..=cw) slots
        let min = DEFER_US;
        let max = DEFER_US + 15 * SLOT_US;
        assert!(
            (min..=max).contains(&start.as_u64()),
            "start {start} outside [{min},{max}]"
        );
    }

    #[test]
    fn acquisition_waits_out_busy_period() {
        let busy = tl(&[(0, 1_000)]);
        let mut lbt = Lbt::new(LbtConfig::default(), DetRng::seed_from_u64(2));
        let start = lbt.acquire(&busy, Micros(0));
        assert!(start.as_u64() >= 1_000 + DEFER_US);
    }

    #[test]
    fn backoff_freezes_during_mid_countdown_busy() {
        // Busy burst overlapping the initial defer window: the eNB
        // must re-defer after the burst ends.
        let busy = tl(&[(20, 5_000)]);
        let mut lbt = Lbt::new(LbtConfig::default(), DetRng::seed_from_u64(3));
        let start = lbt.acquire(&busy, Micros(0));
        assert!(
            start.as_u64() >= 5_000 + DEFER_US,
            "must resume after the burst, got {start}"
        );
    }

    #[test]
    fn cw_growth_and_reset() {
        let mut lbt = Lbt::new(LbtConfig::default(), DetRng::seed_from_u64(4));
        assert_eq!(lbt.cw(), 15);
        lbt.grow_cw();
        assert_eq!(lbt.cw(), 31);
        lbt.grow_cw();
        assert_eq!(lbt.cw(), 63);
        lbt.grow_cw();
        assert_eq!(lbt.cw(), 63, "clamped at cw_max");
        lbt.reset_cw();
        assert_eq!(lbt.cw(), 15);
    }

    #[test]
    fn acquired_instant_is_clear() {
        // Whatever the backoff, the defer+countdown windows must all
        // have been idle: verify no busy time inside the final defer.
        let busy = tl(&[(100, 300), (400, 450)]);
        for seed in 0..20 {
            let mut lbt = Lbt::new(LbtConfig::default(), DetRng::seed_from_u64(seed));
            let start = lbt.acquire(&busy, Micros(0));
            assert!(!busy.busy_at(start), "TxOP start inside busy interval");
            assert!(
                !busy.busy_in(start.saturating_sub(Micros(DEFER_US)), start),
                "defer window not idle at seed {seed}"
            );
        }
    }

    #[test]
    fn ue_cca_detects_overlap() {
        let busy = tl(&[(980, 1_020)]);
        assert_eq!(ue_cca(&busy, Micros(1_000)), CcaOutcome::Busy);
        assert_eq!(ue_cca(&busy, Micros(2_000)), CcaOutcome::Idle);
        // Busy interval ends exactly at window start: idle.
        let busy2 = tl(&[(900, 975)]);
        assert_eq!(ue_cca(&busy2, Micros(1_000)), CcaOutcome::Idle);
    }

    #[test]
    fn ue_cca_at_time_zero() {
        assert_eq!(
            ue_cca(&ActivityTimeline::new(), Micros(0)),
            CcaOutcome::Idle
        );
    }
}
