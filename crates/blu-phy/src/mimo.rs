//! MU-MIMO uplink receiver model (zero forcing).
//!
//! With `M` antennas the eNB can separate up to `M` concurrent
//! single-antenna uplink streams on the same RB. We model the standard
//! zero-forcing receiver: for stream `i` with channel column `a_i =
//! √p_i·h_i`, the post-ZF SINR is
//!
//! ```text
//! SINR_i = 1 / (N₀ · [(AᴴA)⁻¹]_ii)
//! ```
//!
//! When more than `M` streams arrive, the system is under-determined
//! and nothing decodes — the paper's collision case (handled one layer
//! up in [`crate::outcome`]).

use blu_sim::fading::Complex;
use serde::{Deserialize, Serialize};

/// A dense complex matrix (row-major).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CMat {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    data: Vec<Complex>,
}

impl CMat {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMat {
            rows,
            cols,
            data: vec![Complex::ZERO; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = CMat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex::ONE;
        }
        m
    }

    /// Build from column vectors (all the same length).
    pub fn from_columns(cols: &[Vec<Complex>]) -> Self {
        assert!(!cols.is_empty());
        let rows = cols[0].len();
        assert!(cols.iter().all(|c| c.len() == rows));
        let mut m = CMat::zeros(rows, cols.len());
        for (j, col) in cols.iter().enumerate() {
            for (i, &v) in col.iter().enumerate() {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// Conjugate transpose.
    pub fn hermitian(&self) -> CMat {
        let mut out = CMat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)].conj();
            }
        }
        out
    }

    /// Matrix product.
    pub fn mul(&self, rhs: &CMat) -> CMat {
        assert_eq!(self.cols, rhs.rows, "dimension mismatch");
        let mut out = CMat::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == Complex::ZERO {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }

    /// Inverse via Gauss–Jordan with partial pivoting.
    ///
    /// Returns `None` if the matrix is (numerically) singular.
    pub fn inverse(&self) -> Option<CMat> {
        assert_eq!(self.rows, self.cols, "inverse of non-square matrix");
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = CMat::identity(n);
        for col in 0..n {
            // Partial pivot: largest magnitude in this column.
            let pivot_row = (col..n)
                .max_by(|&r1, &r2| {
                    a[(r1, col)]
                        .norm_sq()
                        .partial_cmp(&a[(r2, col)].norm_sq())
                        .unwrap()
                })
                .unwrap();
            if a[(pivot_row, col)].norm_sq() < 1e-24 {
                return None; // singular
            }
            if pivot_row != col {
                a.swap_rows(pivot_row, col);
                inv.swap_rows(pivot_row, col);
            }
            let pivot_inv = a[(col, col)].inv();
            for j in 0..n {
                a[(col, j)] = a[(col, j)] * pivot_inv;
                inv[(col, j)] = inv[(col, j)] * pivot_inv;
            }
            for r in 0..n {
                if r == col {
                    continue;
                }
                let f = a[(r, col)];
                if f == Complex::ZERO {
                    continue;
                }
                for j in 0..n {
                    let aj = a[(col, j)];
                    let ij = inv[(col, j)];
                    a[(r, j)] = a[(r, j)] - f * aj;
                    inv[(r, j)] = inv[(r, j)] - f * ij;
                }
            }
        }
        Some(inv)
    }

    fn swap_rows(&mut self, r1: usize, r2: usize) {
        if r1 == r2 {
            return;
        }
        for j in 0..self.cols {
            let a = self[(r1, j)];
            let b = self[(r2, j)];
            self[(r1, j)] = b;
            self[(r2, j)] = a;
        }
    }
}

impl std::ops::Index<(usize, usize)> for CMat {
    type Output = Complex;
    fn index(&self, (i, j): (usize, usize)) -> &Complex {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for CMat {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Complex {
        &mut self.data[i * self.cols + j]
    }
}

/// Post-zero-forcing SINRs (linear) for `S ≤ M` concurrent streams.
///
/// * `channels[i]` — unit-power channel vector of stream `i` (length
///   `M`, one entry per eNB antenna);
/// * `rx_powers_mw[i]` — average received power of stream `i` in mW;
/// * `noise_mw` — per-antenna noise power in mW.
///
/// Returns `None` when the streams cannot be separated: more streams
/// than antennas, or a (numerically) rank-deficient channel matrix.
pub fn zf_sinrs(
    channels: &[Vec<Complex>],
    rx_powers_mw: &[f64],
    noise_mw: f64,
) -> Option<Vec<f64>> {
    let s = channels.len();
    assert_eq!(s, rx_powers_mw.len());
    assert!(noise_mw > 0.0, "noise power must be positive");
    if s == 0 {
        return Some(Vec::new());
    }
    let m = channels[0].len();
    if s > m {
        return None; // under-determined: collision
    }
    // A = [√p₁·h₁ … √p_S·h_S]
    let cols: Vec<Vec<Complex>> = channels
        .iter()
        .zip(rx_powers_mw)
        .map(|(h, &p)| {
            assert!(p >= 0.0);
            let amp = p.sqrt();
            h.iter().map(|&c| c.scale(amp)).collect()
        })
        .collect();
    let a = CMat::from_columns(&cols);
    let gram = a.hermitian().mul(&a);
    let ginv = gram.inverse()?;
    Some(
        (0..s)
            .map(|i| {
                let noise_amp = ginv[(i, i)].re.max(1e-30);
                1.0 / (noise_mw * noise_amp)
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use blu_sim::rng::DetRng;

    fn c(re: f64, im: f64) -> Complex {
        Complex::new(re, im)
    }

    #[test]
    fn identity_inverse() {
        let i3 = CMat::identity(3);
        assert_eq!(i3.inverse().unwrap(), i3);
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let mut rng = DetRng::seed_from_u64(1);
        for n in 1..=5 {
            let mut m = CMat::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    m[(i, j)] = c(rng.gaussian(), rng.gaussian());
                }
            }
            let inv = m.inverse().expect("random matrix should be invertible");
            let prod = m.mul(&inv);
            for i in 0..n {
                for j in 0..n {
                    let expect = if i == j { 1.0 } else { 0.0 };
                    assert!(
                        (prod[(i, j)].re - expect).abs() < 1e-9 && prod[(i, j)].im.abs() < 1e-9,
                        "n={n} ({i},{j}) = {:?}",
                        prod[(i, j)]
                    );
                }
            }
        }
    }

    #[test]
    fn singular_matrix_rejected() {
        let mut m = CMat::zeros(2, 2);
        m[(0, 0)] = c(1.0, 0.0);
        m[(0, 1)] = c(2.0, 0.0);
        m[(1, 0)] = c(2.0, 0.0);
        m[(1, 1)] = c(4.0, 0.0);
        assert!(m.inverse().is_none());
    }

    #[test]
    fn single_stream_zf_equals_mrc_snr() {
        // One stream on M antennas: post-ZF SNR = p·‖h‖² / N₀.
        let h = vec![c(1.0, 0.0), c(0.0, 1.0)]; // ‖h‖² = 2
        let sinr = zf_sinrs(&[h], &[4.0], 0.5).unwrap();
        assert!((sinr[0] - 4.0 * 2.0 / 0.5).abs() < 1e-9, "{sinr:?}");
    }

    #[test]
    fn orthogonal_streams_suffer_no_penalty() {
        // Two orthogonal channels: each stream behaves as if alone.
        let h1 = vec![c(1.0, 0.0), c(0.0, 0.0)];
        let h2 = vec![c(0.0, 0.0), c(1.0, 0.0)];
        let sinrs = zf_sinrs(&[h1, h2], &[2.0, 3.0], 0.1).unwrap();
        assert!((sinrs[0] - 20.0).abs() < 1e-9);
        assert!((sinrs[1] - 30.0).abs() < 1e-9);
    }

    #[test]
    fn correlated_streams_lose_sinr() {
        let h1 = vec![c(1.0, 0.0), c(0.0, 0.0)];
        let h_corr = vec![c(0.9, 0.0), c(0.435_889_894_354, 0.0)]; // unit norm, correlated with h1
        let alone = zf_sinrs(std::slice::from_ref(&h1), &[1.0], 0.1).unwrap()[0];
        let both = zf_sinrs(&[h1, h_corr], &[1.0, 1.0], 0.1).unwrap();
        assert!(both[0] < alone, "ZF must pay for correlation");
        assert!(both[1] < alone);
    }

    #[test]
    fn more_streams_than_antennas_is_collision() {
        let h = vec![c(1.0, 0.0), c(0.0, 1.0)];
        let chans = vec![h.clone(), h.clone(), h];
        assert!(zf_sinrs(&chans, &[1.0, 1.0, 1.0], 0.1).is_none());
    }

    #[test]
    fn identical_channels_are_inseparable() {
        let h = vec![c(1.0, 0.0), c(1.0, 0.0)];
        assert!(zf_sinrs(&[h.clone(), h], &[1.0, 1.0], 0.1).is_none());
    }

    #[test]
    fn empty_group_ok() {
        assert_eq!(zf_sinrs(&[], &[], 0.1), Some(Vec::new()));
    }

    #[test]
    fn random_channels_full_rank_with_high_probability() {
        let mut rng = DetRng::seed_from_u64(2);
        let s = std::f64::consts::FRAC_1_SQRT_2;
        for _ in 0..100 {
            let chans: Vec<Vec<Complex>> = (0..4)
                .map(|_| {
                    (0..4)
                        .map(|_| c(rng.gaussian() * s, rng.gaussian() * s))
                        .collect()
                })
                .collect();
            let out = zf_sinrs(&chans, &[1.0; 4], 0.01);
            assert!(out.is_some());
            assert!(out.unwrap().iter().all(|&x| x > 0.0));
        }
    }
}
