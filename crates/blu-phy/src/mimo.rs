//! MU-MIMO uplink receiver model (zero forcing).
//!
//! With `M` antennas the eNB can separate up to `M` concurrent
//! single-antenna uplink streams on the same RB. We model the standard
//! zero-forcing receiver: for stream `i` with channel column `a_i =
//! √p_i·h_i`, the post-ZF SINR is
//!
//! ```text
//! SINR_i = 1 / (N₀ · [(AᴴA)⁻¹]_ii)
//! ```
//!
//! When more than `M` streams arrive, the system is under-determined
//! and nothing decodes — the paper's collision case (handled one layer
//! up in [`crate::outcome`]).

use blu_sim::fading::Complex;
use serde::{Deserialize, Serialize};

/// A dense complex matrix (row-major).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CMat {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    data: Vec<Complex>,
}

impl CMat {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMat {
            rows,
            cols,
            data: vec![Complex::ZERO; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = CMat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex::ONE;
        }
        m
    }

    /// Build from column vectors (all the same length).
    pub fn from_columns(cols: &[Vec<Complex>]) -> Self {
        assert!(!cols.is_empty());
        let rows = cols[0].len();
        assert!(cols.iter().all(|c| c.len() == rows));
        let mut m = CMat::zeros(rows, cols.len());
        for (j, col) in cols.iter().enumerate() {
            for (i, &v) in col.iter().enumerate() {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// Conjugate transpose.
    pub fn hermitian(&self) -> CMat {
        let mut out = CMat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)].conj();
            }
        }
        out
    }

    /// Matrix product.
    pub fn mul(&self, rhs: &CMat) -> CMat {
        assert_eq!(self.cols, rhs.rows, "dimension mismatch");
        let mut out = CMat::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == Complex::ZERO {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }

    /// Inverse via Gauss–Jordan with partial pivoting.
    ///
    /// Returns `None` if the matrix is (numerically) singular.
    pub fn inverse(&self) -> Option<CMat> {
        assert_eq!(self.rows, self.cols, "inverse of non-square matrix");
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = CMat::identity(n);
        for col in 0..n {
            // Partial pivot: largest magnitude in this column.
            let pivot_row = (col..n)
                .max_by(|&r1, &r2| {
                    a[(r1, col)]
                        .norm_sq()
                        .partial_cmp(&a[(r2, col)].norm_sq())
                        .unwrap()
                })
                .unwrap();
            if a[(pivot_row, col)].norm_sq() < 1e-24 {
                return None; // singular
            }
            if pivot_row != col {
                a.swap_rows(pivot_row, col);
                inv.swap_rows(pivot_row, col);
            }
            let pivot_inv = a[(col, col)].inv();
            for j in 0..n {
                a[(col, j)] = a[(col, j)] * pivot_inv;
                inv[(col, j)] = inv[(col, j)] * pivot_inv;
            }
            for r in 0..n {
                if r == col {
                    continue;
                }
                let f = a[(r, col)];
                if f == Complex::ZERO {
                    continue;
                }
                for j in 0..n {
                    let aj = a[(col, j)];
                    let ij = inv[(col, j)];
                    a[(r, j)] = a[(r, j)] - f * aj;
                    inv[(r, j)] = inv[(r, j)] - f * ij;
                }
            }
        }
        Some(inv)
    }

    fn swap_rows(&mut self, r1: usize, r2: usize) {
        if r1 == r2 {
            return;
        }
        for j in 0..self.cols {
            let a = self[(r1, j)];
            let b = self[(r2, j)];
            self[(r1, j)] = b;
            self[(r2, j)] = a;
        }
    }
}

impl std::ops::Index<(usize, usize)> for CMat {
    type Output = Complex;
    fn index(&self, (i, j): (usize, usize)) -> &Complex {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for CMat {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Complex {
        &mut self.data[i * self.cols + j]
    }
}

/// Post-zero-forcing SINRs (linear) for `S ≤ M` concurrent streams.
///
/// * `channels[i]` — unit-power channel vector of stream `i` (length
///   `M`, one entry per eNB antenna);
/// * `rx_powers_mw[i]` — average received power of stream `i` in mW;
/// * `noise_mw` — per-antenna noise power in mW.
///
/// Returns `None` when the streams cannot be separated: more streams
/// than antennas, or a (numerically) rank-deficient channel matrix.
pub fn zf_sinrs(
    channels: &[Vec<Complex>],
    rx_powers_mw: &[f64],
    noise_mw: f64,
) -> Option<Vec<f64>> {
    let s = channels.len();
    assert_eq!(s, rx_powers_mw.len());
    assert!(noise_mw > 0.0, "noise power must be positive");
    if s == 0 {
        return Some(Vec::new());
    }
    let m = channels[0].len();
    if s > m {
        return None; // under-determined: collision
    }
    // A = [√p₁·h₁ … √p_S·h_S]
    let cols: Vec<Vec<Complex>> = channels
        .iter()
        .zip(rx_powers_mw)
        .map(|(h, &p)| {
            assert!(p >= 0.0);
            let amp = p.sqrt();
            h.iter().map(|&c| c.scale(amp)).collect()
        })
        .collect();
    let a = CMat::from_columns(&cols);
    let gram = a.hermitian().mul(&a);
    let ginv = gram.inverse()?;
    Some(
        (0..s)
            .map(|i| {
                let noise_amp = ginv[(i, i)].re.max(1e-30);
                1.0 / (noise_mw * noise_amp)
            })
            .collect(),
    )
}

/// Reusable buffers for the batched ZF kernel: the stream matrix
/// `A`, the Gram matrix and its inverse live here across calls, so a
/// subframe loop decoding thousands of RBs allocates nothing after
/// the first group of each size. One scratch per engine (or per
/// fleet shard, via the engine arena) is the intended ownership.
#[derive(Debug, Clone, Default)]
pub struct ZfScratch {
    /// `A = [√p₁·h₁ … √p_S·h_S]` (`M × S`, row-major).
    a: Vec<Complex>,
    /// Gram matrix `AᴴA` (`S × S`), consumed in place by the
    /// Gauss–Jordan elimination.
    g: Vec<Complex>,
    /// Inverse of the Gram matrix (`S × S`).
    inv: Vec<Complex>,
}

/// Batched, allocation-free twin of [`zf_sinrs`]: post-ZF SINRs for
/// `n_streams ≤ m_antennas` concurrent streams, written into `out`.
///
/// `channel(i)` returns stream `i`'s unit-power channel vector
/// (length `m_antennas`); powers and noise are as in [`zf_sinrs`].
/// Returns `false` (and leaves `out` empty) when the streams cannot
/// be separated — more streams than antennas or a numerically
/// rank-deficient Gram matrix — exactly the reference's `None`.
///
/// **Differential contract:** this kernel replays the reference
/// pipeline (`from_columns → hermitian → mul → inverse`) operation
/// for operation on the scratch buffers — same accumulation order,
/// same pivot selection (ties keep the later row, as
/// `Iterator::max_by` does), same singular threshold — so for finite
/// inputs its output is **bit-identical** to [`zf_sinrs`]. The
/// reference stays alive as the oracle; the unit tests below pin the
/// equivalence across random geometries.
pub fn zf_sinrs_into<'c>(
    channel: impl Fn(usize) -> &'c [Complex],
    n_streams: usize,
    m_antennas: usize,
    rx_powers_mw: &[f64],
    noise_mw: f64,
    scratch: &mut ZfScratch,
    out: &mut Vec<f64>,
) -> bool {
    let s = n_streams;
    assert_eq!(s, rx_powers_mw.len());
    assert!(noise_mw > 0.0, "noise power must be positive");
    out.clear();
    if s == 0 {
        return true;
    }
    let m = m_antennas;
    if s > m {
        return false; // under-determined: collision
    }
    if s == 1 {
        // Single-stream unrolling — the dominant decode shape (every
        // SISO RB, and any RB where only one granted client won
        // access). Replays the general path's float operations on the
        // 1×1 system exactly: same column scaling, same
        // conjugate-times-self Gram accumulation with the zero skip,
        // same pivot test and `1·G⁻¹` rounding — so the SINR is
        // bit-identical to the matrix path (and to `zf_sinrs`), with
        // none of the buffer traffic.
        let p = rx_powers_mw[0];
        assert!(p >= 0.0);
        let amp = p.sqrt();
        let h = channel(0);
        debug_assert_eq!(h.len(), m);
        let mut g = Complex::ZERO;
        for &hv in h.iter() {
            let a = hv.scale(amp);
            let ac = a.conj();
            if ac == Complex::ZERO {
                continue;
            }
            g += ac * a;
        }
        if g.norm_sq() < 1e-24 {
            return false; // singular
        }
        let pivot_inv = g.inv();
        let inv00 = Complex::ONE * pivot_inv;
        let noise_amp = inv00.re.max(1e-30);
        out.push(1.0 / (noise_mw * noise_amp));
        return true;
    }
    // A = [√p₁·h₁ … √p_S·h_S], column j scaled exactly as the
    // reference builds its column vectors.
    scratch.a.clear();
    scratch.a.resize(m * s, Complex::ZERO);
    for (j, &p) in rx_powers_mw.iter().enumerate() {
        assert!(p >= 0.0);
        let amp = p.sqrt();
        let h = channel(j);
        debug_assert_eq!(h.len(), m);
        for (i, &hv) in h.iter().enumerate() {
            scratch.a[i * s + j] = hv.scale(amp);
        }
    }
    // gram = Aᴴ·A with CMat::mul's (i, k, j) accumulation order and
    // its zero-skip on the left factor — Aᴴ[(i,k)] = A[(k,i)]*.
    scratch.g.clear();
    scratch.g.resize(s * s, Complex::ZERO);
    for i in 0..s {
        for k in 0..m {
            let a = scratch.a[k * s + i].conj();
            if a == Complex::ZERO {
                continue;
            }
            for j in 0..s {
                scratch.g[i * s + j] += a * scratch.a[k * s + j];
            }
        }
    }
    // Gauss–Jordan with partial pivoting, replicated from
    // CMat::inverse on the scratch buffers.
    let g = &mut scratch.g;
    let inv = &mut scratch.inv;
    inv.clear();
    inv.resize(s * s, Complex::ZERO);
    for i in 0..s {
        inv[i * s + i] = Complex::ONE;
    }
    for col in 0..s {
        // Partial pivot: largest magnitude in this column; `>=` keeps
        // the later of equal rows, matching `max_by` tie-breaking.
        let mut pivot_row = col;
        let mut best = g[col * s + col].norm_sq();
        for r in (col + 1)..s {
            let v = g[r * s + col].norm_sq();
            if v >= best {
                best = v;
                pivot_row = r;
            }
        }
        if best < 1e-24 {
            return false; // singular
        }
        if pivot_row != col {
            for j in 0..s {
                g.swap(pivot_row * s + j, col * s + j);
                inv.swap(pivot_row * s + j, col * s + j);
            }
        }
        let pivot_inv = g[col * s + col].inv();
        for j in 0..s {
            g[col * s + j] = g[col * s + j] * pivot_inv;
            inv[col * s + j] = inv[col * s + j] * pivot_inv;
        }
        for r in 0..s {
            if r == col {
                continue;
            }
            let f = g[r * s + col];
            if f == Complex::ZERO {
                continue;
            }
            for j in 0..s {
                let aj = g[col * s + j];
                let ij = inv[col * s + j];
                g[r * s + j] = g[r * s + j] - f * aj;
                inv[r * s + j] = inv[r * s + j] - f * ij;
            }
        }
    }
    for i in 0..s {
        let noise_amp = inv[i * s + i].re.max(1e-30);
        out.push(1.0 / (noise_mw * noise_amp));
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use blu_sim::rng::DetRng;

    fn c(re: f64, im: f64) -> Complex {
        Complex::new(re, im)
    }

    /// Drive both kernels on the same input and demand bit-identity.
    fn assert_kernels_agree(channels: &[Vec<Complex>], powers: &[f64], noise: f64) {
        let want = zf_sinrs(channels, powers, noise);
        let mut scratch = ZfScratch::default();
        let mut out = Vec::new();
        let m = channels.first().map_or(0, |h| h.len());
        let ok = zf_sinrs_into(
            |i| channels[i].as_slice(),
            channels.len(),
            m,
            powers,
            noise,
            &mut scratch,
            &mut out,
        );
        match want {
            Some(ref w) => {
                assert!(ok, "batched kernel rejected a separable group");
                assert_eq!(w.len(), out.len());
                for (a, b) in w.iter().zip(&out) {
                    assert_eq!(a.to_bits(), b.to_bits(), "SINR bits diverged");
                }
            }
            None => assert!(!ok, "batched kernel accepted an inseparable group"),
        }
    }

    #[test]
    fn batched_kernel_bit_identical_on_random_geometries() {
        // 200 random cases per antenna count, spanning every stream
        // count the engine can produce (s ≤ m plus the s > m
        // rejection path) and degenerate near-singular geometries.
        for m in [1usize, 2, 4] {
            let mut rng = DetRng::seed_from_u64(0xB10C + m as u64);
            for case in 0..200 {
                let s = 1 + rng.below(m + 1); // occasionally s = m + 1 > m
                let mut channels = Vec::with_capacity(s);
                for _ in 0..s {
                    let mut h = Vec::with_capacity(m);
                    for _ in 0..m {
                        h.push(c(rng.gaussian(), rng.gaussian()));
                    }
                    channels.push(h);
                }
                // Every third case duplicates a column: rank-deficient
                // Gram, exercising the singular early-out on both sides.
                if case % 3 == 0 && s >= 2 {
                    channels[1] = channels[0].clone();
                }
                let powers: Vec<f64> = (0..s).map(|_| rng.range_f64(1e-9, 2.0)).collect();
                let noise = rng.range_f64(1e-6, 1e-2);
                assert_kernels_agree(&channels, &powers, noise);
            }
        }
    }

    #[test]
    fn batched_kernel_scratch_reuse_is_stateless() {
        // Interleave groups of different sizes through ONE scratch and
        // compare against fresh-scratch runs: leftover buffer contents
        // must never leak into a later result.
        let mut rng = DetRng::seed_from_u64(0xA11A);
        let mut shared = ZfScratch::default();
        for _ in 0..50 {
            let m = 1 + rng.below(4);
            let s = 1 + rng.below(m);
            let channels: Vec<Vec<Complex>> = (0..s)
                .map(|_| (0..m).map(|_| c(rng.gaussian(), rng.gaussian())).collect())
                .collect();
            let powers: Vec<f64> = (0..s).map(|_| rng.range_f64(0.1, 2.0)).collect();
            let mut out_shared = Vec::new();
            let ok_shared = zf_sinrs_into(
                |i| channels[i].as_slice(),
                s,
                m,
                &powers,
                1.0,
                &mut shared,
                &mut out_shared,
            );
            let mut fresh = ZfScratch::default();
            let mut out_fresh = Vec::new();
            let ok_fresh = zf_sinrs_into(
                |i| channels[i].as_slice(),
                s,
                m,
                &powers,
                1.0,
                &mut fresh,
                &mut out_fresh,
            );
            assert_eq!(ok_shared, ok_fresh);
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&out_shared), bits(&out_fresh));
        }
    }

    #[test]
    fn batched_kernel_empty_group() {
        let mut scratch = ZfScratch::default();
        let mut out = vec![1.0, 2.0];
        let ok = zf_sinrs_into(|_| &[][..], 0, 2, &[], 1.0, &mut scratch, &mut out);
        assert!(ok);
        assert!(out.is_empty());
    }

    #[test]
    fn identity_inverse() {
        let i3 = CMat::identity(3);
        assert_eq!(i3.inverse().unwrap(), i3);
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let mut rng = DetRng::seed_from_u64(1);
        for n in 1..=5 {
            let mut m = CMat::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    m[(i, j)] = c(rng.gaussian(), rng.gaussian());
                }
            }
            let inv = m.inverse().expect("random matrix should be invertible");
            let prod = m.mul(&inv);
            for i in 0..n {
                for j in 0..n {
                    let expect = if i == j { 1.0 } else { 0.0 };
                    assert!(
                        (prod[(i, j)].re - expect).abs() < 1e-9 && prod[(i, j)].im.abs() < 1e-9,
                        "n={n} ({i},{j}) = {:?}",
                        prod[(i, j)]
                    );
                }
            }
        }
    }

    #[test]
    fn singular_matrix_rejected() {
        let mut m = CMat::zeros(2, 2);
        m[(0, 0)] = c(1.0, 0.0);
        m[(0, 1)] = c(2.0, 0.0);
        m[(1, 0)] = c(2.0, 0.0);
        m[(1, 1)] = c(4.0, 0.0);
        assert!(m.inverse().is_none());
    }

    #[test]
    fn single_stream_zf_equals_mrc_snr() {
        // One stream on M antennas: post-ZF SNR = p·‖h‖² / N₀.
        let h = vec![c(1.0, 0.0), c(0.0, 1.0)]; // ‖h‖² = 2
        let sinr = zf_sinrs(&[h], &[4.0], 0.5).unwrap();
        assert!((sinr[0] - 4.0 * 2.0 / 0.5).abs() < 1e-9, "{sinr:?}");
    }

    #[test]
    fn orthogonal_streams_suffer_no_penalty() {
        // Two orthogonal channels: each stream behaves as if alone.
        let h1 = vec![c(1.0, 0.0), c(0.0, 0.0)];
        let h2 = vec![c(0.0, 0.0), c(1.0, 0.0)];
        let sinrs = zf_sinrs(&[h1, h2], &[2.0, 3.0], 0.1).unwrap();
        assert!((sinrs[0] - 20.0).abs() < 1e-9);
        assert!((sinrs[1] - 30.0).abs() < 1e-9);
    }

    #[test]
    fn correlated_streams_lose_sinr() {
        let h1 = vec![c(1.0, 0.0), c(0.0, 0.0)];
        let h_corr = vec![c(0.9, 0.0), c(0.435_889_894_354, 0.0)]; // unit norm, correlated with h1
        let alone = zf_sinrs(std::slice::from_ref(&h1), &[1.0], 0.1).unwrap()[0];
        let both = zf_sinrs(&[h1, h_corr], &[1.0, 1.0], 0.1).unwrap();
        assert!(both[0] < alone, "ZF must pay for correlation");
        assert!(both[1] < alone);
    }

    #[test]
    fn more_streams_than_antennas_is_collision() {
        let h = vec![c(1.0, 0.0), c(0.0, 1.0)];
        let chans = vec![h.clone(), h.clone(), h];
        assert!(zf_sinrs(&chans, &[1.0, 1.0, 1.0], 0.1).is_none());
    }

    #[test]
    fn identical_channels_are_inseparable() {
        let h = vec![c(1.0, 0.0), c(1.0, 0.0)];
        assert!(zf_sinrs(&[h.clone(), h], &[1.0, 1.0], 0.1).is_none());
    }

    #[test]
    fn empty_group_ok() {
        assert_eq!(zf_sinrs(&[], &[], 0.1), Some(Vec::new()));
    }

    #[test]
    fn random_channels_full_rank_with_high_probability() {
        let mut rng = DetRng::seed_from_u64(2);
        let s = std::f64::consts::FRAC_1_SQRT_2;
        for _ in 0..100 {
            let chans: Vec<Vec<Complex>> = (0..4)
                .map(|_| {
                    (0..4)
                        .map(|_| c(rng.gaussian() * s, rng.gaussian() * s))
                        .collect()
                })
                .collect();
            let out = zf_sinrs(&chans, &[1.0; 4], 0.01);
            assert!(out.is_some());
            assert!(out.unwrap().iter().all(|&x| x > 0.0));
        }
    }
}
