//! HARQ with chase combining.
//!
//! Release-10 LTE retransmits failed transport blocks and soft-
//! combines the received energy: with chase combining, the effective
//! SINR after `n` (re)transmissions is (approximately) the **sum** of
//! the per-transmission linear SINRs. The MCS is fixed at the first
//! transmission, so a block that fell just short of its decoding
//! threshold usually survives the first retransmission.
//!
//! In the BLU setting HARQ matters because it converts *fading*
//! losses (pilot received, data lost) into delayed successes —
//! without touching the *blocking* losses BLU targets (no energy on
//! the air means nothing to combine). The emulator in `blu-core`
//! exposes it behind its `harq_max_retx` knob so experiments can
//! quantify that separation.

use crate::mcs::{Cqi, McsTable};
use serde::{Deserialize, Serialize};

/// Default LTE retransmission limit.
pub const DEFAULT_MAX_RETX: u8 = 3;

/// One in-flight HARQ process (one transport block awaiting decode).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HarqProcess {
    /// MCS fixed at the initial transmission.
    pub cqi: Cqi,
    /// Sum of linear SINRs received so far.
    pub combined_sinr_linear: f64,
    /// Transmissions so far (1 = initial only).
    pub transmissions: u8,
    /// Retransmission limit.
    pub max_retx: u8,
}

/// Outcome of feeding one (re)transmission into a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HarqOutcome {
    /// The combined block now decodes.
    Decoded,
    /// Still undecodable; a retransmission is pending.
    Pending,
    /// Retransmission limit reached; the block is dropped.
    Exhausted,
}

impl HarqProcess {
    /// Start a process at the given MCS with the initial
    /// transmission's realized linear SINR.
    pub fn new(cqi: Cqi, initial_sinr_linear: f64, max_retx: u8) -> Self {
        assert!(cqi.is_usable(), "cannot HARQ an unusable MCS");
        HarqProcess {
            cqi,
            combined_sinr_linear: initial_sinr_linear.max(0.0),
            transmissions: 1,
            max_retx,
        }
    }

    /// Effective combined SINR in dB.
    pub fn combined_sinr_db(&self) -> f64 {
        10.0 * self.combined_sinr_linear.max(1e-12).log10()
    }

    /// Whether the combined block decodes at its fixed MCS.
    pub fn decodes(&self, mcs: &McsTable) -> bool {
        mcs.decodes(self.cqi, blu_sim::power::Db(self.combined_sinr_db()))
    }

    /// Feed a retransmission's realized linear SINR (chase
    /// combining) and report the block's fate.
    pub fn receive_retransmission(&mut self, sinr_linear: f64, mcs: &McsTable) -> HarqOutcome {
        self.combined_sinr_linear += sinr_linear.max(0.0);
        self.transmissions += 1;
        if self.decodes(mcs) {
            HarqOutcome::Decoded
        } else if self.retransmissions_left() == 0 {
            HarqOutcome::Exhausted
        } else {
            HarqOutcome::Pending
        }
    }

    /// Retransmissions still allowed.
    pub fn retransmissions_left(&self) -> u8 {
        (1 + self.max_retx).saturating_sub(self.transmissions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blu_sim::power::Db;

    fn mcs() -> McsTable {
        McsTable::release10()
    }

    #[test]
    fn near_miss_decodes_after_one_retransmission() {
        // CQI 9 needs 10.3 dB ≈ 10.7 linear. First try at 8 dB
        // (6.3 linear) fails; combining a second at 8 dB gives
        // 12.6 linear ≈ 11 dB > 10.3 dB → decoded.
        let t = mcs();
        let mut p = HarqProcess::new(Cqi(9), 10f64.powf(0.8), DEFAULT_MAX_RETX);
        assert!(!p.decodes(&t));
        let out = p.receive_retransmission(10f64.powf(0.8), &t);
        assert_eq!(out, HarqOutcome::Decoded);
    }

    #[test]
    fn deep_fade_exhausts() {
        // CQI 15 needs 22.7 dB; −10 dB per try never accumulates
        // enough within 3 retransmissions.
        let t = mcs();
        let mut p = HarqProcess::new(Cqi(15), 0.1, 3);
        assert_eq!(p.receive_retransmission(0.1, &t), HarqOutcome::Pending);
        assert_eq!(p.receive_retransmission(0.1, &t), HarqOutcome::Pending);
        assert_eq!(p.receive_retransmission(0.1, &t), HarqOutcome::Exhausted);
    }

    #[test]
    fn combining_is_additive_in_linear_domain() {
        let mut p = HarqProcess::new(Cqi(5), 1.0, 3);
        p.receive_retransmission(3.0, &mcs());
        assert!((p.combined_sinr_linear - 4.0).abs() < 1e-12);
        assert!((p.combined_sinr_db() - 6.0206).abs() < 1e-3);
    }

    #[test]
    fn retransmission_budget_counts_down() {
        let mut p = HarqProcess::new(Cqi(15), 0.01, 2);
        assert_eq!(p.retransmissions_left(), 2);
        p.receive_retransmission(0.01, &mcs());
        assert_eq!(p.retransmissions_left(), 1);
        p.receive_retransmission(0.01, &mcs());
        assert_eq!(p.retransmissions_left(), 0);
    }

    #[test]
    fn already_good_block_decodes_immediately() {
        let p = HarqProcess::new(Cqi(1), 10f64.powf(0.5), 3); // 5 dB > −6.7 dB
        assert!(p.decodes(&mcs()));
        assert!(p.combined_sinr_db() - 5.0 < 1e-9);
    }

    #[test]
    fn negative_sinr_contributions_clamped() {
        let mut p = HarqProcess::new(Cqi(5), -1.0, 3);
        assert_eq!(p.combined_sinr_linear, 0.0);
        p.receive_retransmission(-2.0, &mcs());
        assert_eq!(p.combined_sinr_linear, 0.0);
        let _ = Db(0.0);
    }
}
