//! DMRS pilots with orthogonal cyclic shifts.
//!
//! Paper §3.3 ("Differentiating between Fading and Hidden Terminal
//! Loss"): even when clients are over-scheduled on the same RB, their
//! DMRS pilots are assigned **orthogonal cyclic shifts**, and pilots
//! are sent at the lowest modulation so they survive fading that kills
//! data. The eNB therefore observes, per RB:
//!
//! * *which* scheduled UEs put energy on the air (pilot present), and
//! * whether the data decoded.
//!
//! From this it classifies each loss as **blocked** (no pilot — the UE
//! failed CCA), **collision** (more pilots than antennas), or
//! **fading** (pilot present, data not decodable). The classification
//! feeds the access-distribution estimator in `blu-core`.

use blu_sim::clientset::ClientSet;
use blu_sim::power::Db;
use serde::{Deserialize, Serialize};

/// LTE DMRS supports up to 12 cyclic shifts; 8 are conventionally
/// usable with good cross-correlation, matching the paper's K ≤ 8
/// distinct clients per sub-frame.
pub const MAX_ORTHOGONAL_SHIFTS: usize = 8;

/// Assignment of cyclic shifts to the clients scheduled on one RB.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PilotAssignment {
    /// `shifts[n]` = (client, cyclic shift index) for each scheduled
    /// client, shift indices unique.
    pub shifts: Vec<(usize, u8)>,
}

impl PilotAssignment {
    /// Assign shifts 0,1,2,… to the clients of a group (ascending
    /// client index — deterministic, matching grant signaling).
    ///
    /// Returns `None` if the group exceeds the orthogonal-shift
    /// budget (the scheduler must never let this happen; the
    /// speculative scheduler's cap of `2M ≤ 8` respects it).
    pub fn for_group(group: ClientSet) -> Option<PilotAssignment> {
        if group.len() > MAX_ORTHOGONAL_SHIFTS {
            return None;
        }
        Some(PilotAssignment {
            shifts: group
                .iter()
                .enumerate()
                .map(|(n, ue)| (ue, n as u8))
                .collect(),
        })
    }

    /// The shift assigned to a client, if scheduled.
    pub fn shift_of(&self, ue: usize) -> Option<u8> {
        self.shifts.iter().find(|&&(u, _)| u == ue).map(|&(_, s)| s)
    }
}

/// Minimum SINR at which a DMRS pilot is detected. Pilots use
/// sequence correlation and survive far below data-decoding SINRs;
/// −10 dB is a conservative detection floor.
pub const PILOT_DETECT_SINR_DB: f64 = -10.0;

/// What the eNB's pilot detector reports for one RB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PilotReport {
    /// Scheduled clients whose pilot was detected.
    pub detected: ClientSet,
}

/// Detect pilots: a transmitted pilot is detected iff its SINR
/// (computed against *non-orthogonal* interference only — other
/// pilots on different shifts do not interfere) clears the floor.
///
/// `transmitted` is the set of scheduled clients that actually put
/// energy on the air; `pilot_sinr` returns the pilot-domain SINR for
/// a client (data-stream interference is orthogonalized away).
pub fn detect_pilots(transmitted: ClientSet, pilot_sinr: impl Fn(usize) -> Db) -> PilotReport {
    let mut detected = ClientSet::EMPTY;
    for ue in transmitted.iter() {
        if pilot_sinr(ue).0 >= PILOT_DETECT_SINR_DB {
            detected.insert(ue);
        }
    }
    PilotReport { detected }
}

/// [`detect_pilots`] with the per-client floor comparison hoisted out
/// of the subframe loop: `detectable` is the precomputed set of
/// clients whose pilot-domain SINR clears [`PILOT_DETECT_SINR_DB`].
/// Pilot SINR depends only on the CSI coherence block, so the engine
/// computes `detectable` once per block and detection collapses to a
/// set intersection. Equivalent to the reference for any `pilot_sinr`
/// consistent with `detectable`.
pub fn detect_pilots_cached(transmitted: ClientSet, detectable: ClientSet) -> PilotReport {
    PilotReport {
        detected: transmitted.intersection(detectable),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_gives_unique_shifts() {
        let group = ClientSet::from_iter([2, 5, 9, 11]);
        let pa = PilotAssignment::for_group(group).unwrap();
        assert_eq!(pa.shifts.len(), 4);
        let mut shifts: Vec<u8> = pa.shifts.iter().map(|&(_, s)| s).collect();
        shifts.sort_unstable();
        shifts.dedup();
        assert_eq!(shifts.len(), 4);
    }

    #[test]
    fn oversize_group_rejected() {
        let group = ClientSet::all(9);
        assert!(PilotAssignment::for_group(group).is_none());
        assert!(PilotAssignment::for_group(ClientSet::all(8)).is_some());
    }

    #[test]
    fn shift_lookup() {
        let pa = PilotAssignment::for_group(ClientSet::from_iter([3, 7])).unwrap();
        assert_eq!(pa.shift_of(3), Some(0));
        assert_eq!(pa.shift_of(7), Some(1));
        assert_eq!(pa.shift_of(5), None);
    }

    #[test]
    fn pilots_detected_above_floor() {
        let tx = ClientSet::from_iter([1, 2, 3]);
        let report = detect_pilots(tx, |ue| match ue {
            1 => Db(5.0),
            2 => Db(-9.0),
            _ => Db(-15.0), // below floor: missed
        });
        assert!(report.detected.contains(1));
        assert!(report.detected.contains(2));
        assert!(!report.detected.contains(3));
    }

    #[test]
    fn silent_client_has_no_pilot() {
        let report = detect_pilots(ClientSet::EMPTY, |_| Db(30.0));
        assert!(report.detected.is_empty());
    }
}
