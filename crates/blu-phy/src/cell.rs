//! Cell-level configuration.

use crate::numerology::{Numerology, TxOpShape};
use blu_sim::error::SimError;
use serde::{Deserialize, Serialize};

/// Static configuration of an LTE cell operating in unlicensed
/// spectrum.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellConfig {
    /// Carrier numerology.
    pub numerology: Numerology,
    /// Number of eNB receive antennas `M` (decode capacity per RB).
    pub m_antennas: usize,
    /// Maximum *distinct* clients schedulable per sub-frame `K`
    /// (limited by control signaling; the paper uses K ≤ 10).
    pub max_ues_per_subframe: usize,
    /// TxOP shape in unlicensed operation.
    pub txop: TxOpShape,
    /// Over-scheduling factor cap `f` (the speculative scheduler
    /// schedules at most `f·M` clients per RB; the paper finds f = 2
    /// the sweet spot).
    pub overschedule_factor: f64,
}

impl CellConfig {
    /// The paper's testbed: 10 MHz, SISO (M = 1), up to 8 distinct
    /// UEs per sub-frame, 1 DL + 3 UL sub-frames per TxOP, f = 2.
    pub fn testbed_siso() -> Self {
        CellConfig {
            numerology: Numerology::mhz10(),
            m_antennas: 1,
            max_ues_per_subframe: 8,
            txop: TxOpShape::paper_default(),
            overschedule_factor: 2.0,
        }
    }

    /// The testbed's 2-antenna MU-MIMO configuration.
    pub fn testbed_mumimo2() -> Self {
        CellConfig {
            m_antennas: 2,
            ..Self::testbed_siso()
        }
    }

    /// The emulation's 4-antenna MU-MIMO configuration (Fig. 17).
    pub fn emulation_mumimo4() -> Self {
        CellConfig {
            m_antennas: 4,
            max_ues_per_subframe: 10,
            ..Self::testbed_siso()
        }
    }

    /// Maximum clients the speculative scheduler may place on one RB.
    pub fn max_group_size(&self) -> usize {
        ((self.m_antennas as f64) * self.overschedule_factor).floor() as usize
    }

    /// Validate internal consistency.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.m_antennas == 0 {
            return Err(SimError::InvalidConfig("m_antennas must be ≥ 1".into()));
        }
        if self.max_ues_per_subframe == 0 {
            return Err(SimError::InvalidConfig(
                "max_ues_per_subframe must be ≥ 1".into(),
            ));
        }
        if self.overschedule_factor < 1.0 {
            return Err(SimError::InvalidConfig(
                "overschedule_factor must be ≥ 1".into(),
            ));
        }
        if !self.txop.is_valid_laa() {
            return Err(SimError::InvalidConfig("TxOP shape violates LAA".into()));
        }
        if self.max_group_size() > crate::pilot::MAX_ORTHOGONAL_SHIFTS {
            return Err(SimError::InvalidConfig(format!(
                "max group size {} exceeds orthogonal pilot budget {}",
                self.max_group_size(),
                crate::pilot::MAX_ORTHOGONAL_SHIFTS
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        assert!(CellConfig::testbed_siso().validate().is_ok());
        assert!(CellConfig::testbed_mumimo2().validate().is_ok());
        assert!(CellConfig::emulation_mumimo4().validate().is_ok());
    }

    #[test]
    fn max_group_size_is_f_times_m() {
        assert_eq!(CellConfig::testbed_siso().max_group_size(), 2);
        assert_eq!(CellConfig::testbed_mumimo2().max_group_size(), 4);
        assert_eq!(CellConfig::emulation_mumimo4().max_group_size(), 8);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = CellConfig::testbed_siso();
        c.m_antennas = 0;
        assert!(c.validate().is_err());

        let mut c = CellConfig::testbed_siso();
        c.overschedule_factor = 0.5;
        assert!(c.validate().is_err());

        let mut c = CellConfig::emulation_mumimo4();
        c.overschedule_factor = 3.0; // 12 > 8 pilots
        assert!(c.validate().is_err());

        let mut c = CellConfig::testbed_siso();
        c.txop.ul_subframes = 0;
        assert!(c.validate().is_err());
    }
}
