//! CQI/MCS rate model.
//!
//! LTE maps channel quality (SINR) to one of 15 CQI levels, each with
//! a modulation order and code rate; the product gives the spectral
//! efficiency in bits per resource element. We use the standard 3GPP
//! 36.213 Table 7.2.3-1 efficiencies and the conventional SINR
//! switching points (≈ 2 dB spacing, BLER ≤ 10 % targets).

use crate::numerology::Numerology;
use blu_sim::power::Db;
use serde::{Deserialize, Serialize};

/// A channel-quality indicator (1..=15). CQI 0 means "out of range"
/// (no transmission possible).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Cqi(pub u8);

impl Cqi {
    /// Out-of-range marker.
    pub const OUT_OF_RANGE: Cqi = Cqi(0);

    /// Whether a transmission at this CQI can be decoded at all.
    pub fn is_usable(self) -> bool {
        self.0 >= 1
    }
}

/// One row of the CQI table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CqiRow {
    /// CQI index (1..=15).
    pub cqi: Cqi,
    /// Modulation order (2 = QPSK, 4 = 16QAM, 6 = 64QAM bits/symbol).
    pub modulation_bits: u8,
    /// Effective code rate ×1024 (3GPP convention).
    pub code_rate_x1024: u16,
    /// Spectral efficiency in bits per resource element.
    pub efficiency: f64,
    /// Minimum SINR (dB) at which this CQI meets the BLER target.
    pub min_sinr_db: f64,
}

/// The CQI → efficiency table with SINR switching points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct McsTable {
    rows: Vec<CqiRow>,
}

impl Default for McsTable {
    fn default() -> Self {
        Self::release10()
    }
}

impl McsTable {
    /// 3GPP 36.213 Table 7.2.3-1 (Release 10) with conventional SINR
    /// thresholds.
    pub fn release10() -> Self {
        // (cqi, mod bits, code rate x1024, efficiency, min SINR dB)
        const ROWS: &[(u8, u8, u16, f64, f64)] = &[
            (1, 2, 78, 0.1523, -6.7),
            (2, 2, 120, 0.2344, -4.7),
            (3, 2, 193, 0.3770, -2.3),
            (4, 2, 308, 0.6016, 0.2),
            (5, 2, 449, 0.8770, 2.4),
            (6, 2, 602, 1.1758, 4.3),
            (7, 4, 378, 1.4766, 5.9),
            (8, 4, 490, 1.9141, 8.1),
            (9, 4, 616, 2.4063, 10.3),
            (10, 6, 466, 2.7305, 11.7),
            (11, 6, 567, 3.3223, 14.1),
            (12, 6, 666, 3.9023, 16.3),
            (13, 6, 772, 4.5234, 18.7),
            (14, 6, 873, 5.1152, 21.0),
            (15, 6, 948, 5.5547, 22.7),
        ];
        McsTable {
            rows: ROWS
                .iter()
                .map(|&(c, m, r, e, s)| CqiRow {
                    cqi: Cqi(c),
                    modulation_bits: m,
                    code_rate_x1024: r,
                    efficiency: e,
                    min_sinr_db: s,
                })
                .collect(),
        }
    }

    /// All rows, ascending CQI.
    pub fn rows(&self) -> &[CqiRow] {
        &self.rows
    }

    /// Highest CQI whose SINR requirement is met, or
    /// [`Cqi::OUT_OF_RANGE`] if even CQI 1 cannot be decoded.
    pub fn cqi_for_sinr(&self, sinr: Db) -> Cqi {
        self.rows
            .iter()
            .rev()
            .find(|r| sinr.0 >= r.min_sinr_db)
            .map_or(Cqi::OUT_OF_RANGE, |r| r.cqi)
    }

    /// Spectral efficiency (bits per resource element) of a CQI;
    /// 0 for out-of-range.
    pub fn efficiency(&self, cqi: Cqi) -> f64 {
        if cqi.0 == 0 {
            return 0.0;
        }
        self.rows[usize::from(cqi.0) - 1].efficiency
    }

    /// Minimum SINR needed to decode at the given CQI.
    pub fn min_sinr(&self, cqi: Cqi) -> Db {
        assert!(cqi.is_usable());
        Db(self.rows[usize::from(cqi.0) - 1].min_sinr_db)
    }

    /// Transport bits carried by one RB in one sub-frame at `cqi`.
    pub fn bits_per_rb(&self, cqi: Cqi, num: &Numerology) -> f64 {
        self.efficiency(cqi) * num.res_per_rb() as f64
    }

    /// Rate (bits per RB per sub-frame) achieved at the given SINR —
    /// the scheduler's `r_{i,b}`.
    pub fn rate_for_sinr(&self, sinr: Db, num: &Numerology) -> f64 {
        self.bits_per_rb(self.cqi_for_sinr(sinr), num)
    }

    /// Whether a transmission *encoded* at `cqi` decodes when received
    /// at `sinr` (the fading-loss test: the grant fixed the MCS from a
    /// stale channel estimate; if the realized SINR is below the MCS's
    /// requirement, decoding fails — the paper's "fading" case).
    pub fn decodes(&self, cqi: Cqi, sinr: Db) -> bool {
        cqi.is_usable() && sinr.0 >= self.rows[usize::from(cqi.0) - 1].min_sinr_db
    }

    /// Per-CQI decode thresholds in the *linear* SINR domain, exact
    /// with respect to [`McsTable::decodes`] fed the conventional
    /// `Db(10·log10(linear.max(1e-12)))` conversion: entry `c − 1` is
    /// the smallest non-negative `f64` whose dB conversion clears CQI
    /// `c`'s `min_sinr_db`. Hot decode loops compare `linear ≥
    /// floor[c − 1]` and skip the `log10` per decode while reproducing
    /// the dB comparison bit-for-bit — guaranteed by binary-searching
    /// the `f64` bit space (the conversion is monotone; the
    /// `linear_floors_*` tests sweep the ULP neighbourhood of every
    /// threshold to pin the equivalence).
    pub fn linear_decode_floors(&self) -> Vec<f64> {
        self.rows
            .iter()
            .map(|row| {
                let t = row.min_sinr_db;
                let clears = |r: f64| 10.0 * (r.max(1e-12)).log10() >= t;
                if clears(0.0) {
                    return 0.0;
                }
                // Non-negative f64 bit patterns order like the values
                // they encode, so this is a partition-point search for
                // the first value that clears the threshold.
                let mut lo = 0u64;
                let mut hi = 1e300f64.to_bits();
                debug_assert!(clears(f64::from_bits(hi)));
                while lo < hi {
                    let mid = lo + (hi - lo) / 2;
                    if clears(f64::from_bits(mid)) {
                        hi = mid;
                    } else {
                        lo = mid + 1;
                    }
                }
                f64::from_bits(lo)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_monotone() {
        let t = McsTable::release10();
        for w in t.rows().windows(2) {
            assert!(w[0].efficiency < w[1].efficiency);
            assert!(w[0].min_sinr_db < w[1].min_sinr_db);
            assert!(w[0].cqi < w[1].cqi);
        }
        assert_eq!(t.rows().len(), 15);
    }

    #[test]
    fn cqi_selection_brackets() {
        let t = McsTable::release10();
        assert_eq!(t.cqi_for_sinr(Db(-10.0)), Cqi::OUT_OF_RANGE);
        assert_eq!(t.cqi_for_sinr(Db(-6.7)), Cqi(1));
        assert_eq!(t.cqi_for_sinr(Db(0.0)), Cqi(3));
        assert_eq!(t.cqi_for_sinr(Db(30.0)), Cqi(15));
        assert_eq!(t.cqi_for_sinr(Db(10.4)), Cqi(9));
    }

    #[test]
    fn efficiency_lookup() {
        let t = McsTable::release10();
        assert_eq!(t.efficiency(Cqi::OUT_OF_RANGE), 0.0);
        assert!((t.efficiency(Cqi(15)) - 5.5547).abs() < 1e-9);
        assert!((t.efficiency(Cqi(1)) - 0.1523).abs() < 1e-9);
    }

    #[test]
    fn bits_per_rb_at_top_cqi() {
        let t = McsTable::release10();
        let num = Numerology::mhz10();
        // 5.5547 bits/RE × 144 RE ≈ 800 bits per RB per sub-frame.
        let bits = t.bits_per_rb(Cqi(15), &num);
        assert!((bits - 799.9).abs() < 1.0, "{bits}");
    }

    #[test]
    fn full_carrier_peak_rate_plausible() {
        // 50 RBs × ~800 bits / 1 ms ≈ 40 Mbps — the right order for
        // 10 MHz SISO uplink.
        let t = McsTable::release10();
        let num = Numerology::mhz10();
        let peak_mbps = t.rate_for_sinr(Db(30.0), &num) * num.n_rbs as f64 / 1_000.0;
        assert!((30.0..50.0).contains(&peak_mbps), "{peak_mbps} Mbps");
    }

    #[test]
    fn decode_respects_mcs_threshold() {
        let t = McsTable::release10();
        // Encoded at CQI 9 (needs 10.3 dB): 12 dB decodes, 8 dB fails.
        assert!(t.decodes(Cqi(9), Db(12.0)));
        assert!(!t.decodes(Cqi(9), Db(8.0)));
        assert!(!t.decodes(Cqi::OUT_OF_RANGE, Db(30.0)));
    }

    #[test]
    fn min_sinr_matches_rows() {
        let t = McsTable::release10();
        assert_eq!(t.min_sinr(Cqi(7)), Db(5.9));
    }

    #[test]
    fn linear_floors_match_db_decodes_at_ulp_boundaries() {
        let t = McsTable::release10();
        let floors = t.linear_decode_floors();
        for (i, row) in t.rows().iter().enumerate() {
            let floor = floors[i];
            let via_db = |r: f64| t.decodes(row.cqi, Db(10.0 * (r.max(1e-12)).log10()));
            // Sweep the ULP neighbourhood of the threshold: the linear
            // compare must agree with the dB path on every single f64.
            let fb = floor.to_bits();
            for b in fb.saturating_sub(4096)..=fb.saturating_add(4096) {
                let r = f64::from_bits(b);
                assert_eq!(r >= floor, via_db(r), "cqi {:?} r {r:e}", row.cqi);
            }
            assert!(via_db(floor));
            if floor > 0.0 {
                assert!(!via_db(f64::from_bits(fb - 1)));
                assert!(!via_db(0.0));
            }
        }
    }

    #[test]
    fn linear_floors_match_db_decodes_random() {
        use blu_sim::rng::DetRng;
        let t = McsTable::release10();
        let floors = t.linear_decode_floors();
        let mut rng = DetRng::seed_from_u64(0xDEC0);
        for _ in 0..100_000 {
            // Log-uniform over the full span the engine can produce,
            // plus the sub-floor clamp region.
            let r = 10f64.powf(rng.range_f64(-15.0, 3.0));
            for (i, row) in t.rows().iter().enumerate() {
                assert_eq!(
                    r >= floors[i],
                    t.decodes(row.cqi, Db(10.0 * (r.max(1e-12)).log10())),
                    "cqi {:?} r {r:e}",
                    row.cqi
                );
            }
        }
    }
}
