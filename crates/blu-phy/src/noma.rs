//! Power-domain NOMA reception with successive interference
//! cancellation (SIC).
//!
//! The paper's related-work section argues BLU's speculative
//! scheduler composes with NOMA: when two over-scheduled clients
//! *both* pass CCA on a SISO carrier, a SIC receiver can still
//! separate them if their receive powers differ enough — turning a
//! subset of over-scheduling collisions into double successes.
//!
//! The model is the textbook one: decode streams in descending
//! receive power, each seeing the weaker streams as noise; on a
//! successful decode, cancel the stream and continue; the first
//! failure stops the chain (error propagation — everything weaker is
//! lost too).

/// SIC decoding order and per-stream SINRs.
///
/// Input: per-stream average receive powers (mW) and the noise power
/// (mW). Output: stream indices in decode order, each with the SINR
/// (linear) it sees at its turn *assuming all earlier streams were
/// cancelled*.
pub fn sic_order_sinrs(rx_powers_mw: &[f64], noise_mw: f64) -> Vec<(usize, f64)> {
    assert!(noise_mw > 0.0);
    let mut order: Vec<usize> = (0..rx_powers_mw.len()).collect();
    order.sort_by(|&a, &b| rx_powers_mw[b].partial_cmp(&rx_powers_mw[a]).unwrap());
    let total: f64 = rx_powers_mw.iter().sum();
    let mut remaining = total;
    order
        .into_iter()
        .map(|i| {
            let p = rx_powers_mw[i].max(0.0);
            let interference = (remaining - p).max(0.0);
            remaining -= p;
            (i, p / (interference + noise_mw))
        })
        .collect()
}

/// Run the SIC chain with a per-stream decode predicate (given the
/// stream index and its SINR, does its transport block decode?).
/// Returns the set of stream indices that decoded; the chain stops at
/// the first failure.
pub fn sic_decode(
    rx_powers_mw: &[f64],
    noise_mw: f64,
    decodes: impl Fn(usize, f64) -> bool,
) -> Vec<usize> {
    let mut out = Vec::new();
    for (idx, sinr) in sic_order_sinrs(rx_powers_mw, noise_mw) {
        if decodes(idx, sinr) {
            out.push(idx);
        } else {
            break; // error propagation: weaker streams are lost
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_is_descending_power() {
        let sinrs = sic_order_sinrs(&[1.0, 8.0, 2.0], 0.1);
        let order: Vec<usize> = sinrs.iter().map(|&(i, _)| i).collect();
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn first_stream_sees_all_interference_last_sees_none() {
        let sinrs = sic_order_sinrs(&[1.0, 8.0], 0.5);
        // Strongest: 8 / (1 + 0.5); weakest after cancel: 1 / 0.5.
        assert!((sinrs[0].1 - 8.0 / 1.5).abs() < 1e-12);
        assert!((sinrs[1].1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn large_power_gap_decodes_both() {
        // 20 dB gap: both streams clear a 3 dB (2.0 linear) threshold.
        let got = sic_decode(&[0.1, 10.0], 0.01, |_, sinr| sinr >= 2.0);
        assert_eq!(got, vec![1, 0]);
    }

    #[test]
    fn equal_powers_decode_nothing_at_moderate_mcs() {
        // Equal powers: strongest sees SINR ≈ 1 < threshold → chain
        // stops immediately. This is the classic SISO collision.
        let got = sic_decode(&[1.0, 1.0], 0.01, |_, sinr| sinr >= 2.0);
        assert!(got.is_empty());
    }

    #[test]
    fn error_propagation_stops_the_chain() {
        // Strongest decodes; middle fails; weakest would have decoded
        // in isolation but is never reached.
        let powers = [0.4, 100.0, 0.39];
        let got = sic_decode(&powers, 0.001, |i, sinr| {
            if i == 0 {
                sinr >= 1.0 // middle stream needs 0 dB; sees ~0.4/0.39 ≈ 1.02…
            } else {
                sinr >= 2.0
            }
        });
        // Stream 1 (strongest) decodes at ~100/0.79 >> 2; stream 0
        // decodes at ~1.02 ≥ 1.0; stream 2 then sees 0.39/0.001 ≥ 2.
        assert_eq!(got, vec![1, 0, 2]);
        // Tighten stream 0's requirement: the chain breaks there and
        // stream 2 is lost despite its huge post-cancel SINR.
        let got = sic_decode(&powers, 0.001, |_, sinr| sinr >= 2.0);
        assert_eq!(got, vec![1]);
    }

    #[test]
    fn single_stream_reduces_to_plain_snr() {
        let sinrs = sic_order_sinrs(&[4.0], 0.5);
        assert_eq!(sinrs.len(), 1);
        assert!((sinrs[0].1 - 8.0).abs() < 1e-12);
    }

    #[test]
    fn empty_input_ok() {
        assert!(sic_order_sinrs(&[], 0.1).is_empty());
        assert!(sic_decode(&[], 0.1, |_, _| true).is_empty());
    }
}
