//! Per-RB decode-outcome classification at the eNB.
//!
//! This is the observation layer of paper §3.3: from the DMRS pilot
//! report and the data-decode attempts on one RB, the eNB labels each
//! scheduled client's result. These labels drive both the performance
//! accounting (utilization/throughput) and BLU's access-distribution
//! estimator (a *blocked* client counts as "could not use its grant";
//! a *fading* loss does not — the client did access the channel).

use blu_sim::clientset::ClientSet;
use serde::{Deserialize, Serialize};

/// Outcome for one scheduled client on one RB in one sub-frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DecodeOutcome {
    /// No pilot received: the client's CCA found the channel busy
    /// (hidden-terminal blocking) and it never transmitted.
    Blocked,
    /// More concurrent transmissions than eNB antennas: nothing on
    /// this RB can be resolved. Over-scheduling gone wrong.
    Collision,
    /// Pilot received but data failed to decode at the granted MCS:
    /// channel fading, not interference.
    Fading,
    /// Data decoded, carrying this many transport bits on this RB.
    Success {
        /// Transport bits delivered on this RB this sub-frame.
        bits: f64,
    },
}

impl DecodeOutcome {
    /// Whether the client transmitted (i.e. passed CCA).
    pub fn transmitted(self) -> bool {
        !matches!(self, DecodeOutcome::Blocked)
    }

    /// Delivered bits (0 unless success).
    pub fn bits(self) -> f64 {
        match self {
            DecodeOutcome::Success { bits } => bits,
            _ => 0.0,
        }
    }
}

/// The eNB's full observation of one RB in one sub-frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RbObservation {
    /// Clients that were granted this RB.
    pub scheduled: ClientSet,
    /// Per-client outcomes, in ascending client order, one per
    /// scheduled client.
    pub outcomes: Vec<(usize, DecodeOutcome)>,
}

impl RbObservation {
    /// Clients whose pilot arrived (they transmitted).
    pub fn transmitters(&self) -> ClientSet {
        self.outcomes
            .iter()
            .filter(|(_, o)| o.transmitted())
            .map(|&(ue, _)| ue)
            .collect()
    }

    /// Total delivered bits on this RB.
    pub fn delivered_bits(&self) -> f64 {
        self.outcomes.iter().map(|(_, o)| o.bits()).sum()
    }

    /// Whether the RB delivered any data.
    pub fn utilized(&self) -> bool {
        self.delivered_bits() > 0.0
    }

    /// Whether the RB saw a collision.
    pub fn collided(&self) -> bool {
        self.outcomes
            .iter()
            .any(|(_, o)| matches!(o, DecodeOutcome::Collision))
    }
}

/// Classify one RB.
///
/// * `scheduled` — clients granted the RB;
/// * `pilots_detected` — subset whose DMRS pilot the eNB received;
/// * `m_antennas` — eNB antenna count (decode capacity);
/// * `decode` — for a transmitting client, `Some(bits)` if its data
///   decodes given the realized post-receiver SINR, `None` for a
///   fading loss. Only consulted when the RB is resolvable.
pub fn classify_rb(
    scheduled: ClientSet,
    pilots_detected: ClientSet,
    m_antennas: usize,
    decode: impl Fn(usize) -> Option<f64>,
) -> RbObservation {
    let mut out = RbObservation {
        scheduled: ClientSet::EMPTY,
        outcomes: Vec::new(),
    };
    classify_rb_into(scheduled, pilots_detected, m_antennas, decode, &mut out);
    out
}

/// [`classify_rb`] writing into an existing observation, reusing its
/// `outcomes` buffer. The subframe loop classifies one RB per grant
/// per subframe; recycling the observation makes that path
/// allocation-free once the buffers have grown to steady state.
pub fn classify_rb_into(
    scheduled: ClientSet,
    pilots_detected: ClientSet,
    m_antennas: usize,
    decode: impl Fn(usize) -> Option<f64>,
    out: &mut RbObservation,
) {
    debug_assert!(pilots_detected.is_subset_of(scheduled));
    let n_tx = pilots_detected.len();
    out.scheduled = scheduled;
    out.outcomes.clear();
    for ue in scheduled.iter() {
        let outcome = if !pilots_detected.contains(ue) {
            DecodeOutcome::Blocked
        } else if n_tx > m_antennas {
            // Orthogonal pilots still resolve, so the eNB *knows*
            // this was an over-scheduling collision (paper §3.3).
            DecodeOutcome::Collision
        } else {
            match decode(ue) {
                Some(bits) => DecodeOutcome::Success { bits },
                None => DecodeOutcome::Fading,
            }
        };
        out.outcomes.push((ue, outcome));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_blocked_when_no_pilots() {
        let obs = classify_rb(ClientSet::from_iter([1, 2]), ClientSet::EMPTY, 2, |_| {
            Some(100.0)
        });
        assert!(obs
            .outcomes
            .iter()
            .all(|(_, o)| matches!(o, DecodeOutcome::Blocked)));
        assert!(!obs.utilized());
        assert_eq!(obs.transmitters(), ClientSet::EMPTY);
    }

    #[test]
    fn collision_when_transmitters_exceed_antennas() {
        let sched = ClientSet::from_iter([1, 2, 3]);
        let obs = classify_rb(sched, sched, 2, |_| Some(100.0));
        assert!(obs.collided());
        assert!(obs
            .outcomes
            .iter()
            .all(|(_, o)| matches!(o, DecodeOutcome::Collision)));
        assert_eq!(obs.delivered_bits(), 0.0);
    }

    #[test]
    fn mixed_blocked_and_success() {
        let sched = ClientSet::from_iter([1, 2, 3]);
        let pilots = ClientSet::from_iter([1, 3]);
        let obs = classify_rb(sched, pilots, 2, |ue| {
            if ue == 1 {
                Some(500.0)
            } else {
                None // ue 3 fades
            }
        });
        let get = |ue: usize| obs.outcomes.iter().find(|&&(u, _)| u == ue).unwrap().1;
        assert!(matches!(get(1), DecodeOutcome::Success { .. }));
        assert!(matches!(get(2), DecodeOutcome::Blocked));
        assert!(matches!(get(3), DecodeOutcome::Fading));
        assert_eq!(obs.delivered_bits(), 500.0);
        assert!(obs.utilized());
        assert_eq!(obs.transmitters(), pilots);
    }

    #[test]
    fn siso_two_transmitters_collide() {
        let sched = ClientSet::from_iter([4, 9]);
        let obs = classify_rb(sched, sched, 1, |_| Some(1.0));
        assert!(obs.collided());
    }

    #[test]
    fn exactly_m_transmitters_decode() {
        let sched = ClientSet::from_iter([1, 2, 3, 4]);
        let pilots = ClientSet::from_iter([1, 2]);
        let obs = classify_rb(sched, pilots, 2, |_| Some(10.0));
        assert!(!obs.collided());
        assert_eq!(obs.delivered_bits(), 20.0);
    }

    #[test]
    fn outcome_helpers() {
        assert!(DecodeOutcome::Fading.transmitted());
        assert!(DecodeOutcome::Collision.transmitted());
        assert!(!DecodeOutcome::Blocked.transmitted());
        assert_eq!(DecodeOutcome::Success { bits: 7.0 }.bits(), 7.0);
        assert_eq!(DecodeOutcome::Fading.bits(), 0.0);
    }
}
