//! Property-based tests of the LTE PHY primitives.

use blu_phy::mcs::McsTable;
use blu_phy::mimo::zf_sinrs;
use blu_phy::numerology::Numerology;
use blu_phy::rb::RbSet;
use blu_sim::fading::Complex;
use blu_sim::power::Db;
use blu_sim::rng::DetRng;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // ---- MCS table ----

    /// The selected CQI's own threshold is always met, and the next
    /// CQI's is not (tightness of the bracket).
    #[test]
    fn cqi_selection_is_tight(sinr in -20.0f64..40.0) {
        let t = McsTable::release10();
        let cqi = t.cqi_for_sinr(Db(sinr));
        if cqi.is_usable() {
            prop_assert!(sinr >= t.min_sinr(cqi).0);
            if (cqi.0 as usize) < t.rows().len() {
                let next = blu_phy::mcs::Cqi(cqi.0 + 1);
                prop_assert!(sinr < t.min_sinr(next).0);
            }
        } else {
            prop_assert!(sinr < t.min_sinr(blu_phy::mcs::Cqi(1)).0);
        }
    }

    /// Rate is monotone non-decreasing in SINR.
    #[test]
    fn rate_monotone_in_sinr(a in -20.0f64..40.0, b in -20.0f64..40.0) {
        let t = McsTable::release10();
        let num = Numerology::mhz10();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(t.rate_for_sinr(Db(lo), &num) <= t.rate_for_sinr(Db(hi), &num));
    }

    /// A block decodes at its granted MCS iff the realized SINR meets
    /// that MCS's threshold — independent of how the grant was chosen.
    #[test]
    fn decode_consistent_with_selection(grant_sinr in -10.0f64..40.0, realized in -10.0f64..40.0) {
        let t = McsTable::release10();
        let cqi = t.cqi_for_sinr(Db(grant_sinr));
        if cqi.is_usable() {
            prop_assert_eq!(t.decodes(cqi, Db(realized)), realized >= t.min_sinr(cqi).0);
            // Decoding at the granted SINR itself always succeeds.
            prop_assert!(t.decodes(cqi, Db(grant_sinr)));
        }
    }

    // ---- RbSet ----

    #[test]
    fn rbset_union_intersection_laws(a in any::<u128>(), b in any::<u128>()) {
        let (a, b) = (RbSet(a), RbSet(b));
        prop_assert_eq!(a.union(b).len() + a.intersection(b).len(), a.len() + b.len());
        prop_assert!(a.intersection(b).is_disjoint(RbSet(!0) .intersection(RbSet(!(a.0 & b.0)))));
    }

    #[test]
    fn rbset_iter_sorted_and_complete(a in any::<u128>()) {
        let s = RbSet(a);
        let items: Vec<usize> = s.iter().collect();
        prop_assert_eq!(items.len(), s.len());
        prop_assert!(items.windows(2).all(|w| w[0] < w[1]));
        for &b in &items {
            prop_assert!(s.contains(b));
        }
    }

    // ---- zero-forcing receiver ----

    /// With random i.i.d. channels: ZF SINRs are positive, at most the
    /// interference-free matched-filter bound, and exactly that bound
    /// for a single stream.
    #[test]
    fn zf_sinr_bounded_by_matched_filter(seed in any::<u64>(), s in 1usize..5) {
        let mut rng = DetRng::seed_from_u64(seed);
        let m = 4usize;
        let norm = std::f64::consts::FRAC_1_SQRT_2;
        let chans: Vec<Vec<Complex>> = (0..s)
            .map(|_| (0..m).map(|_| Complex::new(rng.gaussian() * norm, rng.gaussian() * norm)).collect())
            .collect();
        let powers: Vec<f64> = (0..s).map(|_| rng.range_f64(0.1, 10.0)).collect();
        let noise = 0.05;
        if let Some(sinrs) = zf_sinrs(&chans, &powers, noise) {
            for (i, &sinr) in sinrs.iter().enumerate() {
                prop_assert!(sinr > 0.0);
                let mf = powers[i] * blu_sim::fading::norm_sq(&chans[i]) / noise;
                prop_assert!(sinr <= mf * (1.0 + 1e-9), "stream {i}: {sinr} > MF {mf}");
                if s == 1 {
                    prop_assert!((sinr - mf).abs() < 1e-6 * mf);
                }
            }
        }
    }

    /// Scaling every power by c scales every post-ZF SINR by c.
    #[test]
    fn zf_sinr_scales_with_power(seed in any::<u64>(), c in 0.1f64..10.0) {
        let mut rng = DetRng::seed_from_u64(seed);
        let norm = std::f64::consts::FRAC_1_SQRT_2;
        let chans: Vec<Vec<Complex>> = (0..2)
            .map(|_| (0..3).map(|_| Complex::new(rng.gaussian() * norm, rng.gaussian() * norm)).collect())
            .collect();
        let p1 = [1.0, 2.0];
        let p2 = [c, 2.0 * c];
        let (Some(a), Some(b)) = (zf_sinrs(&chans, &p1, 0.1), zf_sinrs(&chans, &p2, 0.1)) else {
            return Ok(()); // rank-deficient draw
        };
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((y / x - c).abs() < 1e-6, "{y} / {x} != {c}");
        }
    }
}
