//! Fault-script trace capture: synthesize traces whose ground truth
//! *changes mid-run*.
//!
//! A [`FaultScript`]'s topology-mutating events split the capture
//! horizon into **epochs**. Within each epoch the interference
//! topology is fixed; at each boundary the scripted mutations are
//! applied and fresh on/off activity is generated for the affected
//! terminals. Access sets are derived per epoch against that epoch's
//! edges, then spliced into one continuous [`AccessTrace`] — so the
//! emulator and schedulers replay a single trace while the world
//! shifts underneath them, exactly the §3.7 tracking scenario.
//!
//! Hidden terminals keep stable indices for the whole capture
//! (disappearance zeroes a terminal's duty cycle rather than removing
//! its lane), which keeps activity timelines, labels and fault-event
//! indices aligned.
//!
//! With an empty script the output is bit-identical to
//! [`capture_synthetic`] (same RNG stream discipline), so fault-free
//! baselines and faulted runs share their first epoch exactly.

use crate::capture::{capture_csi, CaptureConfig};
use crate::schema::{AccessTrace, TestbedTrace, WifiActivityTrace};
use blu_phy::laa::UE_CCA_US;
use blu_sim::clientset::ClientSet;
use blu_sim::error::SimError;
use blu_sim::faults::{apply_topology_fault, FaultScript};
use blu_sim::medium::ActivityTimeline;
use blu_sim::rng::DetRng;
use blu_sim::time::{Micros, SUBFRAME_US};
use blu_sim::topology::{HiddenTerminal, InterferenceTopology};
use blu_wifi::onoff::OnOffSource;
use serde::{Deserialize, Serialize};

/// The ground truth in force from `start_sf` until the next epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultEpoch {
    /// First subframe governed by this epoch's topology.
    pub start_sf: u64,
    /// The interference topology during the epoch (target duty
    /// cycles; disappeared terminals carry `q = 0`).
    pub topology: InterferenceTopology,
}

/// A captured trace plus the fault script that shaped it and the
/// per-epoch ground truths (the single `trace.ground_truth` can only
/// describe one topology; robustness experiments need the real one at
/// every instant).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultyCapture {
    /// The spliced trace (its `ground_truth` holds measured full-run
    /// airtimes and the **union** of each terminal's edges across
    /// epochs — see [`capture_with_faults`]).
    pub trace: TestbedTrace,
    /// Ground-truth topology per epoch, ascending by `start_sf`.
    pub epochs: Vec<FaultEpoch>,
    /// The script that was applied.
    pub script: FaultScript,
}

impl FaultyCapture {
    /// The ground-truth topology in force at subframe `sf`.
    pub fn topology_at(&self, sf: u64) -> &InterferenceTopology {
        let idx = self.epochs.partition_point(|e| e.start_sf <= sf);
        &self.epochs[idx.saturating_sub(1)].topology
    }
}

/// Capture a synthetic trace with a [`FaultScript`] applied.
///
/// Epoch 0 reproduces [`capture_synthetic`]'s topology, activity, SNR
/// and CSI streams exactly; each later epoch re-generates activity
/// only (derived per-epoch/per-terminal streams), so an empty script
/// yields the same trace as the fault-free path.
///
/// The returned `trace.ground_truth` is the **universe** topology:
/// one entry per terminal that ever existed, `q` set to its measured
/// full-run airtime, edges set to the union over epochs — adequate
/// for schema validation and client counts, *not* for instantaneous
/// accuracy checks (use [`FaultyCapture::epochs`] for those).
pub fn capture_with_faults(
    cfg: &CaptureConfig,
    script: &FaultScript,
    seed: u64,
) -> Result<FaultyCapture, SimError> {
    script.validate(cfg.n_ues, cfg.n_hts)?;
    let n_subframes = cfg.duration.as_u64() / SUBFRAME_US;
    let duration = cfg.duration;

    let root = DetRng::seed_from_u64(seed);
    let mut topo_rng = root.derive("topology");
    let mut topo = InterferenceTopology::random(
        cfg.n_ues,
        cfg.n_hts,
        cfg.q_range,
        cfg.edge_prob,
        &mut topo_rng,
    );

    // Epoch boundaries: subframe 0 plus every in-range topology event.
    let mut bounds: Vec<u64> = vec![0];
    for sf in script.topology_event_subframes() {
        if sf > 0 && sf < n_subframes && Some(&sf) != bounds.last() {
            bounds.push(sf);
        }
    }

    let n_universe = cfg.n_hts + script.n_appearing();
    let mut timelines: Vec<ActivityTimeline> = vec![ActivityTimeline::new(); n_universe];
    let mut epochs: Vec<FaultEpoch> = Vec::with_capacity(bounds.len());

    for (e, &start) in bounds.iter().enumerate() {
        let end = bounds.get(e + 1).copied().unwrap_or(n_subframes);
        for ev in script.topology_events_at(start) {
            apply_topology_fault(&mut topo, &ev.kind)?;
        }
        epochs.push(FaultEpoch {
            start_sf: start,
            topology: topo.clone(),
        });

        let t0 = Micros(start * SUBFRAME_US);
        let t1 = Micros(end * SUBFRAME_US);
        // Epoch 0 consumes the shared "activity" stream in HT order
        // over the *full* horizon — the exact discipline of
        // `capture_synthetic` — then clips to the epoch, so the
        // pre-fault prefix is bit-identical to a fault-free capture.
        // Later epochs get independent per-(epoch, terminal) streams
        // so inserting an event never perturbs unrelated terminals.
        let mut epoch0_rng = root.derive("activity");
        for (k, ht) in topo.hts.iter().enumerate() {
            if ht.q <= 0.0 {
                continue; // absent or disappeared: lane stays idle
            }
            let src = OnOffSource::with_duty_cycle(ht.q.clamp(0.01, 0.99), cfg.mean_on_us);
            let seg = if e == 0 {
                src.generate(duration, &mut epoch0_rng).window(t0, t1)
            } else {
                let mut rng = root.derive_indexed("fault-activity", ((e as u64) << 32) | k as u64);
                src.generate(t1 - t0, &mut rng)
            };
            for iv in seg.shifted(t0).intervals() {
                timelines[k].push(iv.start, iv.end);
            }
        }
    }

    // Derive access per epoch against that epoch's edges.
    let mut accessible = Vec::with_capacity(n_subframes as usize);
    for (e, epoch) in epochs.iter().enumerate() {
        let end = epochs.get(e + 1).map_or(n_subframes, |next| next.start_sf);
        let epoch_topo = &epoch.topology;
        for sf in epoch.start_sf..end {
            let boundary = Micros(sf * SUBFRAME_US);
            let window_start = boundary.saturating_sub(Micros(UE_CCA_US));
            let mut acc = ClientSet::all(cfg.n_ues);
            for (k, ht) in epoch_topo.hts.iter().enumerate() {
                if !ht.edges.is_empty() && timelines[k].busy_in(window_start, boundary) {
                    acc = acc.difference(ht.edges);
                }
            }
            accessible.push(acc);
        }
    }
    let access = AccessTrace {
        n_ues: cfg.n_ues,
        accessible,
    };

    // Universe ground truth: measured airtime + union of edges.
    let hts: Vec<HiddenTerminal> = (0..n_universe)
        .map(|k| HiddenTerminal {
            q: timelines[k].airtime_in(Micros::ZERO, duration),
            edges: epochs
                .iter()
                .filter_map(|ep| ep.topology.hts.get(k))
                .fold(ClientSet::EMPTY, |acc, ht| acc.union(ht.edges)),
        })
        .collect();
    let ground_truth = InterferenceTopology {
        n_clients: cfg.n_ues,
        hts,
    };

    let mut snr_rng = root.derive("snr");
    let mean_snr_db: Vec<f64> = (0..cfg.n_ues)
        .map(|_| snr_rng.range_f64(cfg.snr_range_db.0, cfg.snr_range_db.1))
        .collect();
    let csi = capture_csi(
        cfg.n_ues,
        cfg.n_antennas,
        n_subframes,
        cfg.coherence_subframes,
        &root.derive("csi-root"),
    );
    let labels = (0..n_universe)
        .map(|k| {
            if k < cfg.n_hts {
                format!("ht{k}")
            } else {
                format!("fault-ht{k}")
            }
        })
        .collect();

    let trace = TestbedTrace {
        description: format!("faulty seed={seed} events={}", script.len()),
        ground_truth,
        wifi: WifiActivityTrace {
            labels,
            timelines,
            horizon: duration,
        },
        access,
        csi,
        mean_snr_db,
    };
    debug_assert_eq!(trace.validate(), Ok(()));
    Ok(FaultyCapture {
        trace,
        epochs,
        script: script.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::capture_synthetic;
    use blu_sim::faults::{FaultEvent, FaultKind};

    fn quick_cfg() -> CaptureConfig {
        CaptureConfig::quick()
    }

    #[test]
    fn empty_script_matches_fault_free_capture() {
        let cfg = quick_cfg();
        let plain = capture_synthetic(&cfg, 11);
        let faulty = capture_with_faults(&cfg, &FaultScript::none(), 11).unwrap();
        assert_eq!(faulty.trace.access, plain.access);
        assert_eq!(faulty.trace.wifi, plain.wifi);
        assert_eq!(faulty.trace.csi, plain.csi);
        assert_eq!(faulty.trace.mean_snr_db, plain.mean_snr_db);
        assert_eq!(faulty.trace.ground_truth, plain.ground_truth);
        assert_eq!(faulty.epochs.len(), 1);
    }

    #[test]
    fn first_epoch_shared_with_fault_free_capture() {
        // The faulted run must be a perfect counterfactual: identical
        // to the clean capture until the first topology event.
        let cfg = quick_cfg();
        let plain = capture_synthetic(&cfg, 12);
        let script = FaultScript::new(vec![FaultEvent {
            at_subframe: 4_000,
            kind: FaultKind::HtAppear {
                q: 0.5,
                edges: ClientSet::from_iter([0, 1]),
            },
        }]);
        let faulty = capture_with_faults(&cfg, &script, 12).unwrap();
        assert_eq!(
            &faulty.trace.access.accessible[..4_000],
            &plain.access.accessible[..4_000]
        );
        assert_ne!(
            &faulty.trace.access.accessible[4_000..],
            &plain.access.accessible[4_000..],
            "new terminal must perturb the post-fault access sets"
        );
    }

    #[test]
    fn appearance_blocks_its_victims() {
        let cfg = quick_cfg();
        let edges = ClientSet::from_iter([0, 1]);
        let script = FaultScript::new(vec![FaultEvent {
            at_subframe: 5_000,
            kind: FaultKind::HtAppear { q: 0.6, edges },
        }]);
        let faulty = capture_with_faults(&cfg, &script, 13).unwrap();
        assert_eq!(faulty.epochs.len(), 2);
        assert_eq!(faulty.epochs[1].start_sf, 5_000);
        assert_eq!(faulty.epochs[1].topology.n_hidden(), cfg.n_hts + 1);
        assert_eq!(faulty.topology_at(0).n_hidden(), cfg.n_hts);
        assert_eq!(faulty.topology_at(5_000).n_hidden(), cfg.n_hts + 1);

        // Victims of the new HT lose measurable access share.
        let blocked_share = |lo: usize, hi: usize| {
            let rows = &faulty.trace.access.accessible[lo..hi];
            rows.iter().filter(|a| !a.contains(0)).count() as f64 / rows.len() as f64
        };
        let before = blocked_share(0, 5_000);
        let after = blocked_share(5_000, 10_000);
        assert!(
            after > before + 0.2,
            "client 0 blocked {before:.3} before vs {after:.3} after"
        );
    }

    #[test]
    fn disappearance_frees_its_victims() {
        // Build an explicit heavy blocker as HT 0 wouldn't be under
        // our control with a random topology — instead drive all six
        // random HTs silent and check access becomes universal.
        let cfg = quick_cfg();
        let script = FaultScript::new(
            (0..cfg.n_hts)
                .map(|k| FaultEvent {
                    at_subframe: 5_000,
                    kind: FaultKind::HtDisappear { ht: k },
                })
                .collect(),
        );
        let faulty = capture_with_faults(&cfg, &script, 14).unwrap();
        let all = ClientSet::all(cfg.n_ues);
        // Subframe 5000's CCA window still sees the tail of epoch-0
        // activity; from 5001 on the air is silent.
        assert!(faulty.trace.access.accessible[5_001..]
            .iter()
            .all(|&a| a == all));
    }

    #[test]
    fn capture_is_deterministic() {
        let cfg = quick_cfg();
        let script = FaultScript::new(vec![
            FaultEvent {
                at_subframe: 2_500,
                kind: FaultKind::QDrift { ht: 1, q: 0.9 },
            },
            FaultEvent {
                at_subframe: 7_000,
                kind: FaultKind::EdgeChurn {
                    ht: 0,
                    toggle: ClientSet::from_iter([2, 3]),
                },
            },
        ]);
        let a = capture_with_faults(&cfg, &script, 15).unwrap();
        let b = capture_with_faults(&cfg, &script, 15).unwrap();
        assert_eq!(a, b);
        let c = capture_with_faults(&cfg, &script, 16).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn trace_schema_stays_valid_under_faults() {
        let cfg = quick_cfg();
        let script = FaultScript::new(vec![
            FaultEvent {
                at_subframe: 1_000,
                kind: FaultKind::HtAppear {
                    q: 0.4,
                    edges: ClientSet::singleton(3),
                },
            },
            FaultEvent {
                at_subframe: 6_000,
                kind: FaultKind::HtDisappear { ht: 6 },
            },
            FaultEvent {
                at_subframe: 8_000,
                kind: FaultKind::MisclassifyRate { rate: 0.05 },
            },
        ]);
        let faulty = capture_with_faults(&cfg, &script, 17).unwrap();
        assert_eq!(faulty.trace.validate(), Ok(()));
        assert_eq!(faulty.trace.ground_truth.n_hidden(), cfg.n_hts + 1);
        // Observation faults do not create epochs.
        assert_eq!(faulty.epochs.len(), 3);
    }

    #[test]
    fn invalid_script_is_rejected() {
        let cfg = quick_cfg();
        let script = FaultScript::new(vec![FaultEvent {
            at_subframe: 100,
            kind: FaultKind::QDrift { ht: 99, q: 0.5 },
        }]);
        assert!(capture_with_faults(&cfg, &script, 18).is_err());
    }
}
