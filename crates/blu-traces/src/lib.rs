//! # blu-traces — trace capture, persistence, combination, statistics
//!
//! The paper's large-scale evaluation is **trace-driven**: 5-minute
//! LTE channel traces and WiFi-activity traces are recorded on the
//! WARP testbed for 150 small topologies, then *combined* to emulate
//! topologies of up to 24 UEs and 36 hidden terminals (§4.2.1). This
//! crate is that tooling:
//!
//! * [`schema`] — the trace types: per-HT WiFi activity timelines,
//!   per-sub-frame UE access sets, block-fading CSI, and the bundled
//!   [`schema::TestbedTrace`] with its ground-truth topology;
//! * [`capture`] — recording traces from `blu-sim`/`blu-wifi` runs;
//! * [`combine`] — the paper's splicing operators: merge hidden
//!   terminal sets over a common UE deployment, concatenate UE
//!   deployments under a common interference field, window/rebase;
//! * [`stats`] — empirical `p(i)`, `p(i,j)` and higher-order joint
//!   access frequencies measured from traces;
//! * [`io`] — JSON (human-inspectable) and compact binary codecs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capture;
pub mod combine;
pub mod faults;
pub mod io;
pub mod scenario;
pub mod schema;
pub mod stats;

pub use faults::{capture_with_faults, FaultEpoch, FaultyCapture};
pub use scenario::{generate as generate_scenario, Scenario, ScenarioConfig};
pub use schema::{AccessTrace, CsiTrace, TestbedTrace, WifiActivityTrace};
pub use stats::EmpiricalAccess;
