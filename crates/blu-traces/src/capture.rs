//! Trace capture: turning simulated radio environments into traces.
//!
//! Mirrors the paper's §4.2.1 data collection: WiFi activity is
//! recorded per hidden terminal, UE access is derived by evaluating
//! each UE's CCA window at every sub-frame boundary against the
//! activity of the HTs that UE senses, CSI comes from the block-fading
//! model, and the ground-truth topology is stored alongside with
//! `q(k)` set to the *measured* airtime of each terminal.

use crate::schema::{AccessTrace, CsiTrace, TestbedTrace, WifiActivityTrace};
use blu_phy::laa::UE_CCA_US;
use blu_sim::clientset::ClientSet;
use blu_sim::fading::RayleighBlockFading;
use blu_sim::medium::ActivityTimeline;
use blu_sim::rng::DetRng;
use blu_sim::time::{Micros, SUBFRAME_US};
use blu_sim::topology::{HiddenTerminal, InterferenceTopology};
use blu_wifi::onoff::OnOffSource;
use serde::{Deserialize, Serialize};

/// Parameters for synthetic testbed-style capture.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CaptureConfig {
    /// Number of UEs.
    pub n_ues: usize,
    /// Number of hidden terminals.
    pub n_hts: usize,
    /// eNB antennas (CSI dimensionality).
    pub n_antennas: usize,
    /// Trace duration.
    pub duration: Micros,
    /// Range of per-HT duty cycles `q(k)`.
    pub q_range: (f64, f64),
    /// Probability an HT impacts any given UE.
    pub edge_prob: f64,
    /// Mean HT ON-burst duration in µs (WiFi frame-train scale).
    pub mean_on_us: f64,
    /// Channel coherence in sub-frames.
    pub coherence_subframes: u64,
    /// Range of mean uplink SNRs across UEs (dB).
    pub snr_range_db: (f64, f64),
}

impl CaptureConfig {
    /// The paper's testbed scale: 4 UEs, 6 laptop HTs, 2 antennas,
    /// 5-minute traces.
    pub fn testbed_default() -> Self {
        CaptureConfig {
            n_ues: 4,
            n_hts: 6,
            n_antennas: 2,
            duration: Micros::from_secs(300),
            q_range: (0.15, 0.55),
            edge_prob: 0.45,
            mean_on_us: 1_500.0,
            coherence_subframes: 50,
            snr_range_db: (12.0, 28.0),
        }
    }

    /// A short-duration variant for tests.
    pub fn quick() -> Self {
        CaptureConfig {
            duration: Micros::from_secs(10),
            ..Self::testbed_default()
        }
    }
}

/// Derive the per-sub-frame access sets: UE `i` is accessible in
/// sub-frame `t` iff none of its adjacent HTs is busy during the CCA
/// window (`UE_CCA_US` ending at the sub-frame boundary).
pub fn derive_access(
    topology: &InterferenceTopology,
    timelines: &[ActivityTimeline],
    n_subframes: u64,
) -> AccessTrace {
    assert_eq!(topology.n_hidden(), timelines.len());
    let mut accessible = Vec::with_capacity(n_subframes as usize);
    for sf in 0..n_subframes {
        let boundary = Micros(sf * SUBFRAME_US);
        let window_start = boundary.saturating_sub(Micros(UE_CCA_US));
        // Which HTs are busy in the CCA window?
        let mut busy_hts = 0u128;
        for (k, tl) in timelines.iter().enumerate() {
            if tl.busy_in(window_start, boundary) {
                busy_hts |= 1 << k;
            }
        }
        let mut acc = ClientSet::all(topology.n_clients);
        if busy_hts != 0 {
            for (k, ht) in topology.hts.iter().enumerate() {
                if (busy_hts >> k) & 1 == 1 {
                    acc = acc.difference(ht.edges);
                }
            }
        }
        accessible.push(acc);
    }
    AccessTrace {
        n_ues: topology.n_clients,
        accessible,
    }
}

/// Generate block-fading CSI for all UEs.
pub fn capture_csi(
    n_ues: usize,
    n_antennas: usize,
    n_subframes: u64,
    coherence_subframes: u64,
    rng: &DetRng,
) -> CsiTrace {
    let fading = RayleighBlockFading::new(rng.derive("csi"), coherence_subframes);
    let n_blocks = n_subframes.div_ceil(coherence_subframes).max(1);
    let blocks = (0..n_blocks)
        .map(|b| {
            (0..n_ues)
                .map(|u| fading.channel(u as u64, b * coherence_subframes, n_antennas))
                .collect()
        })
        .collect();
    CsiTrace {
        n_ues,
        n_antennas,
        coherence_subframes,
        blocks,
    }
}

/// Assemble a full trace from a known edge topology and per-HT
/// activity timelines (the generic entry point — used both for
/// synthetic on/off activity and for DCF-simulated activity).
#[allow(clippy::too_many_arguments)] // one-shot assembly of the full trace schema
pub fn assemble_trace(
    description: String,
    n_ues: usize,
    edges: &[ClientSet],
    timelines: Vec<ActivityTimeline>,
    labels: Vec<String>,
    duration: Micros,
    n_antennas: usize,
    coherence_subframes: u64,
    mean_snr_db: Vec<f64>,
    rng: &DetRng,
) -> TestbedTrace {
    assert_eq!(edges.len(), timelines.len());
    assert_eq!(mean_snr_db.len(), n_ues);
    let n_subframes = duration.as_u64() / SUBFRAME_US;
    // Ground truth q(k) = measured airtime.
    let hts: Vec<HiddenTerminal> = edges
        .iter()
        .zip(&timelines)
        .map(|(&e, tl)| HiddenTerminal {
            q: tl.airtime_in(Micros::ZERO, duration),
            edges: e,
        })
        .collect();
    let ground_truth = InterferenceTopology {
        n_clients: n_ues,
        hts,
    };
    let access = derive_access(&ground_truth, &timelines, n_subframes);
    let csi = capture_csi(n_ues, n_antennas, n_subframes, coherence_subframes, rng);
    TestbedTrace {
        description,
        ground_truth,
        wifi: WifiActivityTrace {
            labels,
            timelines,
            horizon: duration,
        },
        access,
        csi,
        mean_snr_db,
    }
}

/// Capture a trace for an **explicit** topology (edges and target
/// duty cycles given), with on/off HT activity. Used by experiments
/// that construct controlled interference structures (e.g. "h hidden
/// terminals per UE" sweeps).
pub fn capture_from_topology(
    topo: &InterferenceTopology,
    duration: Micros,
    mean_on_us: f64,
    n_antennas: usize,
    coherence_subframes: u64,
    snr_range_db: (f64, f64),
    seed: u64,
) -> TestbedTrace {
    let root = DetRng::seed_from_u64(seed);
    let mut act_rng = root.derive("activity");
    let timelines: Vec<ActivityTimeline> = topo
        .hts
        .iter()
        .map(|ht| {
            OnOffSource::with_duty_cycle(ht.q.clamp(0.01, 0.99), mean_on_us)
                .generate(duration, &mut act_rng)
        })
        .collect();
    let mut snr_rng = root.derive("snr");
    let mean_snr_db: Vec<f64> = (0..topo.n_clients)
        .map(|_| snr_rng.range_f64(snr_range_db.0, snr_range_db.1))
        .collect();
    let edges: Vec<ClientSet> = topo.hts.iter().map(|ht| ht.edges).collect();
    let labels = (0..topo.n_hidden()).map(|k| format!("ht{k}")).collect();
    assemble_trace(
        format!("explicit-topology seed={seed}"),
        topo.n_clients,
        &edges,
        timelines,
        labels,
        duration,
        n_antennas,
        coherence_subframes,
        mean_snr_db,
        &root.derive("csi-root"),
    )
}

/// Capture a synthetic testbed trace: random topology with on/off
/// HT activity at dialed-in duty cycles.
pub fn capture_synthetic(cfg: &CaptureConfig, seed: u64) -> TestbedTrace {
    let root = DetRng::seed_from_u64(seed);
    let mut topo_rng = root.derive("topology");
    let topo = InterferenceTopology::random(
        cfg.n_ues,
        cfg.n_hts,
        cfg.q_range,
        cfg.edge_prob,
        &mut topo_rng,
    );
    let mut act_rng = root.derive("activity");
    let timelines: Vec<ActivityTimeline> = topo
        .hts
        .iter()
        .map(|ht| {
            OnOffSource::with_duty_cycle(ht.q.clamp(0.01, 0.99), cfg.mean_on_us)
                .generate(cfg.duration, &mut act_rng)
        })
        .collect();
    let mut snr_rng = root.derive("snr");
    let mean_snr_db: Vec<f64> = (0..cfg.n_ues)
        .map(|_| snr_rng.range_f64(cfg.snr_range_db.0, cfg.snr_range_db.1))
        .collect();
    let edges: Vec<ClientSet> = topo.hts.iter().map(|ht| ht.edges).collect();
    let labels = (0..cfg.n_hts).map(|k| format!("ht{k}")).collect();
    assemble_trace(
        format!("synthetic seed={seed}"),
        cfg.n_ues,
        &edges,
        timelines,
        labels,
        cfg.duration,
        cfg.n_antennas,
        cfg.coherence_subframes,
        mean_snr_db,
        &root.derive("csi-root"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_capture_is_consistent() {
        let trace = capture_synthetic(&CaptureConfig::quick(), 1);
        assert_eq!(trace.validate(), Ok(()));
        assert_eq!(trace.access.len() as u64, 10_000);
        assert_eq!(trace.ground_truth.n_hidden(), 6);
    }

    #[test]
    fn measured_q_close_to_target() {
        // Ground-truth q(k) (measured airtime) should be near the
        // duty cycle the generator was asked for — we can't read the
        // target directly, but airtime must be within the q_range
        // envelope ± sampling noise.
        let cfg = CaptureConfig {
            duration: Micros::from_secs(60),
            ..CaptureConfig::testbed_default()
        };
        let trace = capture_synthetic(&cfg, 2);
        for ht in &trace.ground_truth.hts {
            assert!(
                (0.08..0.65).contains(&ht.q),
                "measured q {} outside plausible envelope",
                ht.q
            );
        }
    }

    #[test]
    fn access_trace_consistent_with_topology() {
        // Empirical p(i) from the access trace must be close to the
        // closed-form p(i) of the ground-truth topology.
        let cfg = CaptureConfig {
            duration: Micros::from_secs(120),
            ..CaptureConfig::testbed_default()
        };
        let trace = capture_synthetic(&cfg, 3);
        let n_sf = trace.access.len() as f64;
        for i in 0..trace.ground_truth.n_clients {
            let emp = trace
                .access
                .accessible
                .iter()
                .filter(|a| a.contains(i))
                .count() as f64
                / n_sf;
            let exact = trace.ground_truth.p_individual(i);
            // On/off activity at WiFi-burst scale is correlated across
            // adjacent sub-frames but stationary; allow a loose bound.
            assert!(
                (emp - exact).abs() < 0.05,
                "UE {i}: empirical {emp} vs closed-form {exact}"
            );
        }
    }

    #[test]
    fn derive_access_respects_cca_window() {
        // HT busy only inside [975, 1000): blocks sub-frame 1 (its
        // CCA window) but not sub-frame 2.
        let mut tl = ActivityTimeline::new();
        tl.push(Micros(980), Micros(995));
        let topo = InterferenceTopology {
            n_clients: 1,
            hts: vec![HiddenTerminal {
                q: 0.1,
                edges: ClientSet::singleton(0),
            }],
        };
        let access = derive_access(&topo, &[tl], 3);
        assert!(access.accessible[0].contains(0), "sub-frame 0 clear");
        assert!(!access.accessible[1].contains(0), "sub-frame 1 blocked");
        assert!(access.accessible[2].contains(0), "sub-frame 2 clear");
    }

    #[test]
    fn csi_capture_dimensions() {
        let rng = DetRng::seed_from_u64(5);
        let csi = capture_csi(3, 2, 95, 10, &rng);
        assert_eq!(csi.blocks.len(), 10); // ceil(95/10)
        assert_eq!(csi.blocks[0].len(), 3);
        assert_eq!(csi.blocks[0][0].len(), 2);
    }

    #[test]
    fn capture_is_deterministic() {
        let a = capture_synthetic(&CaptureConfig::quick(), 7);
        let b = capture_synthetic(&CaptureConfig::quick(), 7);
        assert_eq!(a, b);
        let c = capture_synthetic(&CaptureConfig::quick(), 8);
        assert_ne!(a, c);
    }
}
