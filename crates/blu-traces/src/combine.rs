//! Trace-combination operators (paper §4.2.1).
//!
//! "We emulate larger topologies by combining the traces collected
//! from different testbed topologies": for a fixed UE set-up, traces
//! recorded with hidden terminals at different locations are merged
//! into one larger hidden-terminal field; for a fixed hidden-terminal
//! set-up, traces of different UE sets are concatenated into one
//! larger cell. Both operators are implemented here, preserving the
//! invariant that the combined trace's access sets equal what
//! `derive_access` would produce on the combined topology + combined
//! activity.

use crate::capture::derive_access;
use crate::schema::TestbedTrace;
use blu_sim::clientset::ClientSet;
use blu_sim::fading::Complex;
use blu_sim::time::SUBFRAME_US;
use blu_sim::topology::{HiddenTerminal, InterferenceTopology};

/// Merge two traces recorded over the **same UE deployment** but
/// different hidden-terminal placements: the result has the union of
/// the hidden terminals, and each UE is blocked whenever either
/// field blocks it. CSI and SNR are taken from `a`.
///
/// Panics if the UE counts differ.
pub fn merge_hidden_fields(a: &TestbedTrace, b: &TestbedTrace) -> TestbedTrace {
    assert_eq!(
        a.ground_truth.n_clients, b.ground_truth.n_clients,
        "merge_hidden_fields requires identical UE deployments"
    );
    let horizon = a.wifi.horizon.min(b.wifi.horizon);
    let n_subframes = horizon.as_u64() / SUBFRAME_US;

    let mut hts: Vec<HiddenTerminal> = a.ground_truth.hts.clone();
    hts.extend(b.ground_truth.hts.iter().cloned());
    let ground_truth = InterferenceTopology {
        n_clients: a.ground_truth.n_clients,
        hts,
    };

    let mut timelines = a.wifi.timelines.clone();
    timelines.extend(b.wifi.timelines.iter().cloned());
    let mut labels: Vec<String> = a.wifi.labels.iter().map(|l| format!("a:{l}")).collect();
    labels.extend(b.wifi.labels.iter().map(|l| format!("b:{l}")));

    let access = derive_access(&ground_truth, &timelines, n_subframes);
    TestbedTrace {
        description: format!("merge[{} + {}]", a.description, b.description),
        ground_truth,
        wifi: crate::schema::WifiActivityTrace {
            labels,
            timelines,
            horizon,
        },
        access,
        csi: a.csi.clone(),
        mean_snr_db: a.mean_snr_db.clone(),
    }
}

/// Concatenate two traces recorded over **disjoint UE deployments**
/// (different UE sets, independent hidden-terminal fields): the
/// result is a cell with `nA + nB` UEs; `b`'s UE indices are shifted
/// by `nA`, and each original hidden terminal keeps its own edges.
pub fn concat_ue_deployments(a: &TestbedTrace, b: &TestbedTrace) -> TestbedTrace {
    let na = a.ground_truth.n_clients;
    let nb = b.ground_truth.n_clients;
    assert!(na + nb <= ClientSet::CAPACITY);
    let horizon = a.wifi.horizon.min(b.wifi.horizon);
    let n_subframes = (horizon.as_u64() / SUBFRAME_US) as usize;

    let shift = |edges: ClientSet| -> ClientSet { edges.iter().map(|i| i + na).collect() };

    let mut hts = a.ground_truth.hts.clone();
    hts.extend(b.ground_truth.hts.iter().map(|ht| HiddenTerminal {
        q: ht.q,
        edges: shift(ht.edges),
    }));
    let ground_truth = InterferenceTopology {
        n_clients: na + nb,
        hts,
    };

    let mut timelines = a.wifi.timelines.clone();
    timelines.extend(b.wifi.timelines.iter().cloned());
    let mut labels: Vec<String> = a.wifi.labels.iter().map(|l| format!("a:{l}")).collect();
    labels.extend(b.wifi.labels.iter().map(|l| format!("b:{l}")));

    // Access sets combine positionally: UE i<na from a, i≥na from b.
    let accessible = (0..n_subframes)
        .map(|t| {
            let sa = a.access.accessible[t % a.access.len()];
            let sb = b.access.accessible[t % b.access.len()];
            sa.union(shift(sb))
        })
        .collect();

    // CSI: stack UE channel vectors; pad antenna counts must match.
    assert_eq!(
        a.csi.n_antennas, b.csi.n_antennas,
        "cannot concat traces with different antenna counts"
    );
    assert_eq!(a.csi.coherence_subframes, b.csi.coherence_subframes);
    let n_blocks = a.csi.blocks.len().min(b.csi.blocks.len());
    let blocks: Vec<Vec<Vec<Complex>>> = (0..n_blocks)
        .map(|blk| {
            let mut v = a.csi.blocks[blk].clone();
            v.extend(b.csi.blocks[blk].iter().cloned());
            v
        })
        .collect();

    let mut mean_snr_db = a.mean_snr_db.clone();
    mean_snr_db.extend(b.mean_snr_db.iter().copied());

    TestbedTrace {
        description: format!("concat[{} | {}]", a.description, b.description),
        ground_truth,
        wifi: crate::schema::WifiActivityTrace {
            labels,
            timelines,
            horizon,
        },
        access: crate::schema::AccessTrace {
            n_ues: na + nb,
            accessible,
        },
        csi: crate::schema::CsiTrace {
            n_ues: na + nb,
            n_antennas: a.csi.n_antennas,
            coherence_subframes: a.csi.coherence_subframes,
            blocks,
        },
        mean_snr_db,
    }
}

/// Build a large emulated topology by folding `merge_hidden_fields`
/// over HT-field traces and `concat_ue_deployments` over UE-group
/// traces — the paper's "up to 24 UEs and 36 WiFi hidden terminals".
pub fn emulate_large(ue_groups: &[TestbedTrace], extra_ht_fields: &[TestbedTrace]) -> TestbedTrace {
    assert!(!ue_groups.is_empty());
    let mut combined = ue_groups[0].clone();
    for g in &ue_groups[1..] {
        combined = concat_ue_deployments(&combined, g);
    }
    for f in extra_ht_fields {
        assert_eq!(
            f.ground_truth.n_clients, combined.ground_truth.n_clients,
            "extra HT fields must cover the combined UE deployment"
        );
        combined = merge_hidden_fields(&combined, f);
    }
    combined
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::{capture_synthetic, CaptureConfig};
    use blu_sim::time::Micros;

    fn quick(seed: u64, n_ues: usize, n_hts: usize) -> TestbedTrace {
        capture_synthetic(
            &CaptureConfig {
                n_ues,
                n_hts,
                duration: Micros::from_secs(5),
                ..CaptureConfig::quick()
            },
            seed,
        )
    }

    #[test]
    fn merge_unions_hidden_fields() {
        let a = quick(1, 4, 3);
        let b = quick(2, 4, 2);
        let m = merge_hidden_fields(&a, &b);
        assert_eq!(m.validate(), Ok(()));
        assert_eq!(m.ground_truth.n_hidden(), 5);
        assert_eq!(m.ground_truth.n_clients, 4);
        // Merged access = intersection of blockings: a UE accessible
        // in the merge must be accessible in both sources.
        for t in 0..m.access.len() {
            let ma = m.access.accessible[t];
            let aa = a.access.accessible[t];
            let bb = b.access.accessible[t];
            assert_eq!(ma, aa.intersection(bb), "sub-frame {t}");
        }
    }

    #[test]
    fn concat_shifts_ue_indices() {
        let a = quick(3, 3, 2);
        let b = quick(4, 2, 2);
        let c = concat_ue_deployments(&a, &b);
        assert_eq!(c.validate(), Ok(()));
        assert_eq!(c.ground_truth.n_clients, 5);
        assert_eq!(c.ground_truth.n_hidden(), 4);
        // b's HTs only touch UEs 3..5.
        for ht in &c.ground_truth.hts[2..] {
            assert!(ht.edges.iter().all(|i| i >= 3));
        }
        // Access for a's UEs preserved.
        for t in 0..c.access.len() {
            for i in 0..3 {
                assert_eq!(
                    c.access.accessible[t].contains(i),
                    a.access.accessible[t].contains(i)
                );
            }
            for i in 0..2 {
                assert_eq!(
                    c.access.accessible[t].contains(3 + i),
                    b.access.accessible[t].contains(i)
                );
            }
        }
        assert_eq!(c.mean_snr_db.len(), 5);
        assert_eq!(c.csi.blocks[0].len(), 5);
    }

    #[test]
    fn emulate_paper_scale() {
        // Six 4-UE groups → 24 UEs; each group brings 4 HTs,
        // plus nothing extra: 24 HTs total.
        let groups: Vec<TestbedTrace> = (0..6).map(|s| quick(10 + s, 4, 4)).collect();
        let big = emulate_large(&groups, &[]);
        assert_eq!(big.validate(), Ok(()));
        assert_eq!(big.ground_truth.n_clients, 24);
        assert_eq!(big.ground_truth.n_hidden(), 24);
    }

    #[test]
    fn merged_access_consistent_with_derive() {
        // The merge's access sets must equal derive_access on the
        // combined topology + timelines (invariant 7 of DESIGN.md).
        let a = quick(5, 4, 2);
        let b = quick(6, 4, 3);
        let m = merge_hidden_fields(&a, &b);
        let re = derive_access(&m.ground_truth, &m.wifi.timelines, m.access.len() as u64);
        assert_eq!(m.access, re);
    }

    #[test]
    #[should_panic(expected = "identical UE deployments")]
    fn merge_rejects_mismatched_ues() {
        let a = quick(1, 3, 2);
        let b = quick(2, 4, 2);
        let _ = merge_hidden_fields(&a, &b);
    }
}
