//! Empirical access statistics from traces.
//!
//! Computes the measured `p(i)`, `p(i,j)` and arbitrary joint access
//! frequencies `P(U, V̄)` from an [`AccessTrace`] — the "direct from
//! traces" path the paper uses as the perfect-knowledge upper bound
//! (Fig. 15), and as the source of measured pairwise distributions
//! feeding the blue-printing inference.

use crate::schema::AccessTrace;
use blu_sim::clientset::ClientSet;
use serde::{Deserialize, Serialize};

/// Empirical access statistics accumulated from (a window of) an
/// access trace. Counts are over sub-frames in which the clients in
/// question were *observed* — for a full trace every sub-frame
/// observes every client; the measurement scheduler in `blu-core`
/// feeds partial observations instead.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EmpiricalAccess {
    /// Number of clients.
    pub n: usize,
    /// `obs[i]` — sub-frames where client `i`'s access was observed.
    pub obs_individual: Vec<u64>,
    /// `acc[i]` — of those, sub-frames where it could access.
    pub acc_individual: Vec<u64>,
    /// Upper-triangular pair counts, indexed via [`pair_index`].
    pub obs_pair: Vec<u64>,
    /// Pair joint-access counts (both accessible).
    pub acc_pair: Vec<u64>,
}

/// Index of the unordered pair `(i, j)`, `i < j`, in a flat
/// upper-triangular array for `n` clients.
pub fn pair_index(n: usize, i: usize, j: usize) -> usize {
    assert!(i < j && j < n, "bad pair ({i},{j}) for n={n}");
    // Row-major upper triangle: offset of row i = i*n − i(i+1)/2.
    i * n - i * (i + 1) / 2 + (j - i - 1)
}

/// Number of unordered pairs.
pub fn n_pairs(n: usize) -> usize {
    n * (n - 1) / 2
}

impl EmpiricalAccess {
    /// Empty accumulator for `n` clients.
    pub fn new(n: usize) -> Self {
        EmpiricalAccess {
            n,
            obs_individual: vec![0; n],
            acc_individual: vec![0; n],
            obs_pair: vec![0; n_pairs(n)],
            acc_pair: vec![0; n_pairs(n)],
        }
    }

    /// Record one sub-frame in which the clients in `observed` were
    /// scheduled (their access state is known) and `accessible ∩
    /// observed` of them could access.
    pub fn record(&mut self, observed: ClientSet, accessible: ClientSet) {
        for i in observed.iter() {
            self.obs_individual[i] += 1;
            if accessible.contains(i) {
                self.acc_individual[i] += 1;
            }
        }
        let obs: Vec<usize> = observed.iter().collect();
        for (a, &i) in obs.iter().enumerate() {
            for &j in &obs[a + 1..] {
                let idx = pair_index(self.n, i, j);
                self.obs_pair[idx] += 1;
                if accessible.contains(i) && accessible.contains(j) {
                    self.acc_pair[idx] += 1;
                }
            }
        }
    }

    /// Remove one previously [`record`](Self::record)ed sub-frame.
    ///
    /// Runs the same loops as `record` with the increments inverted,
    /// so for any multiset of recorded sub-frames the counters after
    /// `unrecord(o, a)` are *bit-identical* to never having recorded
    /// `(o, a)` at all — the property the sliding
    /// `ObservationWindow` in `blu-core` retires on. Saturating
    /// subtraction guards against un-recording a sub-frame that was
    /// never recorded (a caller bug must not wrap the books to
    /// `u64::MAX`).
    pub fn unrecord(&mut self, observed: ClientSet, accessible: ClientSet) {
        for i in observed.iter() {
            self.obs_individual[i] = self.obs_individual[i].saturating_sub(1);
            if accessible.contains(i) {
                self.acc_individual[i] = self.acc_individual[i].saturating_sub(1);
            }
        }
        let obs: Vec<usize> = observed.iter().collect();
        for (a, &i) in obs.iter().enumerate() {
            for &j in &obs[a + 1..] {
                let idx = pair_index(self.n, i, j);
                self.obs_pair[idx] = self.obs_pair[idx].saturating_sub(1);
                if accessible.contains(i) && accessible.contains(j) {
                    self.acc_pair[idx] = self.acc_pair[idx].saturating_sub(1);
                }
            }
        }
    }

    /// Ingest a full trace (every client observed every sub-frame).
    pub fn from_trace(trace: &AccessTrace) -> Self {
        let mut e = EmpiricalAccess::new(trace.n_ues);
        let all = ClientSet::all(trace.n_ues);
        for &acc in &trace.accessible {
            e.record(all, acc);
        }
        e
    }

    /// Measured `p(i)`; `None` if never observed.
    pub fn p_individual(&self, i: usize) -> Option<f64> {
        if self.obs_individual[i] == 0 {
            None
        } else {
            Some(self.acc_individual[i] as f64 / self.obs_individual[i] as f64)
        }
    }

    /// Measured `p(i,j)`; `None` if the pair was never co-observed.
    pub fn p_pair(&self, i: usize, j: usize) -> Option<f64> {
        let (i, j) = if i < j { (i, j) } else { (j, i) };
        let idx = pair_index(self.n, i, j);
        if self.obs_pair[idx] == 0 {
            None
        } else {
            Some(self.acc_pair[idx] as f64 / self.obs_pair[idx] as f64)
        }
    }

    /// Exponentially age the accumulated counts: every counter is
    /// scaled by `keep ∈ [0, 1]` (rounded down). A tracking
    /// orchestrator calls this before re-measuring so stale
    /// observations from a pre-drift environment stop dominating the
    /// empirical probabilities while recent evidence is retained
    /// (staleness windowing, §3.7). `keep = 0` forgets everything;
    /// `keep = 1` is a no-op. Out-of-range values are clamped, and a
    /// non-finite `keep` (NaN/±inf from an upstream arithmetic bug) is
    /// treated as "retain everything" rather than silently zeroing the
    /// books — note `NaN.clamp(0.0, 1.0)` stays NaN and `NaN as u64`
    /// saturates to 0, so without this guard a single NaN would erase
    /// every counter.
    pub fn decay(&mut self, keep: f64) {
        let keep = if keep.is_nan() {
            1.0
        } else {
            keep.clamp(0.0, 1.0)
        };
        if keep == 1.0 {
            return;
        }
        let scale = |c: &mut u64| *c = (*c as f64 * keep).floor() as u64;
        self.obs_individual.iter_mut().for_each(scale);
        self.acc_individual.iter_mut().for_each(scale);
        self.obs_pair.iter_mut().for_each(scale);
        self.acc_pair.iter_mut().for_each(scale);
        // Scaling acc and obs independently can never produce
        // acc > obs because floor is monotone and acc ≤ obs held
        // before; re-establish the invariant defensively anyway.
        for (acc, obs) in self
            .acc_individual
            .iter_mut()
            .zip(self.obs_individual.iter())
            .chain(self.acc_pair.iter_mut().zip(self.obs_pair.iter()))
        {
            *acc = (*acc).min(*obs);
        }
    }

    /// Minimum number of samples across all pairs (coverage check for
    /// the measurement scheduler).
    pub fn min_pair_samples(&self) -> u64 {
        self.obs_pair.iter().copied().min().unwrap_or(0)
    }
}

/// Empirical joint frequency `P(U accessible, V blocked)` from a full
/// access trace (used for the perfect-knowledge scheduler and for
/// testing the conditioning math).
pub fn empirical_joint(trace: &AccessTrace, succeed: ClientSet, fail: ClientSet) -> f64 {
    assert!(succeed.is_disjoint(fail));
    if trace.is_empty() {
        return 0.0;
    }
    let hits = trace
        .accessible
        .iter()
        .filter(|&&acc| succeed.is_subset_of(acc) && fail.is_disjoint(acc))
        .count();
    hits as f64 / trace.accessible.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_index_is_a_bijection() {
        let n = 10;
        let mut seen = vec![false; n_pairs(n)];
        for i in 0..n {
            for j in (i + 1)..n {
                let idx = pair_index(n, i, j);
                assert!(!seen[idx], "duplicate index for ({i},{j})");
                seen[idx] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn record_accumulates() {
        let mut e = EmpiricalAccess::new(3);
        // Observe {0,1}: 0 accessible, 1 not.
        e.record(ClientSet::from_iter([0, 1]), ClientSet::singleton(0));
        // Observe {0,1,2}: all accessible.
        e.record(ClientSet::all(3), ClientSet::all(3));
        assert_eq!(e.p_individual(0), Some(1.0));
        assert_eq!(e.p_individual(1), Some(0.5));
        assert_eq!(e.p_individual(2), Some(1.0));
        assert_eq!(e.p_pair(0, 1), Some(0.5));
        assert_eq!(e.p_pair(1, 2), Some(1.0));
        assert_eq!(e.p_pair(2, 0), Some(1.0)); // order-insensitive
    }

    #[test]
    fn unrecord_inverts_record_bit_exactly() {
        use blu_sim::rng::DetRng;
        let mut rng = DetRng::seed_from_u64(0xACCE55);
        let n = 6;
        let frames: Vec<(ClientSet, ClientSet)> = (0..64)
            .map(|_| {
                let obs = ClientSet::from_iter((0..n).filter(|_| rng.chance(0.7)));
                let acc = ClientSet::from_iter(obs.iter().filter(|_| rng.chance(0.5)));
                (obs, acc)
            })
            .collect();
        let mut full = EmpiricalAccess::new(n);
        for &(o, a) in &frames {
            full.record(o, a);
        }
        // Remove the first half and compare against recording only
        // the second half from scratch.
        for &(o, a) in &frames[..32] {
            full.unrecord(o, a);
        }
        let mut tail = EmpiricalAccess::new(n);
        for &(o, a) in &frames[32..] {
            tail.record(o, a);
        }
        assert_eq!(full, tail);
    }

    #[test]
    fn unrecord_saturates_instead_of_wrapping() {
        let mut e = EmpiricalAccess::new(3);
        e.unrecord(ClientSet::all(3), ClientSet::all(3));
        assert_eq!(e, EmpiricalAccess::new(3));
    }

    #[test]
    fn unobserved_is_none() {
        let e = EmpiricalAccess::new(2);
        assert_eq!(e.p_individual(0), None);
        assert_eq!(e.p_pair(0, 1), None);
        assert_eq!(e.min_pair_samples(), 0);
    }

    #[test]
    fn from_trace_matches_manual_counts() {
        let trace = AccessTrace {
            n_ues: 2,
            accessible: vec![
                ClientSet::all(2),
                ClientSet::singleton(0),
                ClientSet::EMPTY,
                ClientSet::all(2),
            ],
        };
        let e = EmpiricalAccess::from_trace(&trace);
        assert_eq!(e.p_individual(0), Some(0.75));
        assert_eq!(e.p_individual(1), Some(0.5));
        assert_eq!(e.p_pair(0, 1), Some(0.5));
        assert_eq!(e.min_pair_samples(), 4);
    }

    #[test]
    fn empirical_joint_counts_patterns() {
        let trace = AccessTrace {
            n_ues: 3,
            accessible: vec![
                ClientSet::from_iter([0, 1]),
                ClientSet::from_iter([0]),
                ClientSet::from_iter([0, 1, 2]),
                ClientSet::from_iter([1]),
            ],
        };
        // P(0 accessible, 2 blocked) — sub-frames 0, 1 → 2/4.
        let p = empirical_joint(&trace, ClientSet::singleton(0), ClientSet::singleton(2));
        assert_eq!(p, 0.5);
        // P(all accessible) = 1/4.
        assert_eq!(
            empirical_joint(&trace, ClientSet::all(3), ClientSet::EMPTY),
            0.25
        );
        // Empty sets: probability 1.
        assert_eq!(
            empirical_joint(&trace, ClientSet::EMPTY, ClientSet::EMPTY),
            1.0
        );
    }

    #[test]
    fn empirical_matches_generative_model() {
        // Sample from a known topology and check measured p(i), p(i,j)
        // converge to the closed forms.
        use blu_sim::rng::DetRng;
        use blu_sim::topology::InterferenceTopology;
        let mut rng = DetRng::seed_from_u64(1);
        let topo = InterferenceTopology::random(5, 4, (0.2, 0.6), 0.4, &mut rng);
        let accessible: Vec<ClientSet> =
            (0..100_000).map(|_| topo.sample_access(&mut rng)).collect();
        let trace = AccessTrace {
            n_ues: 5,
            accessible,
        };
        let e = EmpiricalAccess::from_trace(&trace);
        for i in 0..5 {
            let emp = e.p_individual(i).unwrap();
            assert!((emp - topo.p_individual(i)).abs() < 0.01);
            for j in (i + 1)..5 {
                let emp = e.p_pair(i, j).unwrap();
                assert!((emp - topo.p_pair(i, j)).abs() < 0.01);
            }
        }
    }
}
