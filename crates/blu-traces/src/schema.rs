//! Trace schemas.
//!
//! Everything is `serde`-serializable; see [`crate::io`] for the JSON
//! and binary codecs.

use blu_sim::clientset::ClientSet;
use blu_sim::fading::Complex;
use blu_sim::medium::ActivityTimeline;
use blu_sim::time::{Micros, SubframeIndex, SUBFRAME_US};
use blu_sim::topology::InterferenceTopology;
use serde::{Deserialize, Serialize};

/// Per-hidden-terminal WiFi activity timelines over a common clock.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WifiActivityTrace {
    /// Human-readable labels (e.g. node ids) per hidden terminal.
    pub labels: Vec<String>,
    /// One busy timeline per hidden terminal.
    pub timelines: Vec<ActivityTimeline>,
    /// Trace horizon.
    pub horizon: Micros,
}

impl WifiActivityTrace {
    /// Number of hidden terminals recorded.
    pub fn n_hts(&self) -> usize {
        self.timelines.len()
    }

    /// Number of whole sub-frames covered.
    pub fn n_subframes(&self) -> u64 {
        self.horizon.as_u64() / SUBFRAME_US
    }

    /// Empirical airtime (≈ `q(k)`) of hidden terminal `k`.
    pub fn airtime(&self, k: usize) -> f64 {
        self.timelines[k].airtime_in(Micros::ZERO, self.horizon)
    }
}

/// Per-sub-frame record of which UEs *could* access the channel
/// (i.e. would pass CCA if granted). This is what the scheduler
/// evaluation replays.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccessTrace {
    /// Number of UEs.
    pub n_ues: usize,
    /// `accessible[t]` = set of UEs passing CCA in sub-frame `t`.
    pub accessible: Vec<ClientSet>,
}

impl AccessTrace {
    /// Number of sub-frames.
    pub fn len(&self) -> usize {
        self.accessible.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.accessible.is_empty()
    }

    /// Access set at a sub-frame (wraps around for replay loops).
    pub fn at(&self, sf: SubframeIndex) -> ClientSet {
        assert!(!self.is_empty());
        self.accessible[(sf.0 as usize) % self.accessible.len()]
    }
}

/// Block-fading CSI: for each coherence block, the per-UE channel
/// vectors (one complex coefficient per eNB antenna).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsiTrace {
    /// Number of UEs.
    pub n_ues: usize,
    /// eNB antennas.
    pub n_antennas: usize,
    /// Coherence length in sub-frames.
    pub coherence_subframes: u64,
    /// `blocks[b][u]` = channel vector of UE `u` in coherence block `b`.
    pub blocks: Vec<Vec<Vec<Complex>>>,
}

impl CsiTrace {
    /// Channel vector of UE `u` at sub-frame `sf` (wraps for replay).
    pub fn channel(&self, u: usize, sf: SubframeIndex) -> &[Complex] {
        assert!(!self.blocks.is_empty());
        let block = (sf.0 / self.coherence_subframes) as usize % self.blocks.len();
        &self.blocks[block][u]
    }

    /// Number of sub-frames covered without wrapping.
    pub fn n_subframes(&self) -> u64 {
        self.blocks.len() as u64 * self.coherence_subframes
    }
}

/// Everything recorded from one testbed/emulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TestbedTrace {
    /// Free-form description (topology id, generation parameters).
    pub description: String,
    /// Ground-truth HT topology (with `q(k)` filled in from measured
    /// airtime).
    pub ground_truth: InterferenceTopology,
    /// Raw WiFi activity.
    pub wifi: WifiActivityTrace,
    /// Derived per-sub-frame UE access sets.
    pub access: AccessTrace,
    /// Per-UE uplink CSI.
    pub csi: CsiTrace,
    /// Mean large-scale uplink SNR per UE in dB (grant-time rate
    /// selection baseline).
    pub mean_snr_db: Vec<f64>,
}

impl TestbedTrace {
    /// Sanity-check cross-field consistency.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.ground_truth.n_clients;
        if self.access.n_ues != n {
            return Err(format!(
                "access trace has {} UEs, topology {}",
                self.access.n_ues, n
            ));
        }
        if self.csi.n_ues != n {
            return Err(format!(
                "csi trace has {} UEs, topology {}",
                self.csi.n_ues, n
            ));
        }
        if self.mean_snr_db.len() != n {
            return Err("mean_snr_db length mismatch".into());
        }
        if self.ground_truth.n_hidden() != self.wifi.n_hts() {
            return Err(format!(
                "topology has {} HTs, wifi trace {}",
                self.ground_truth.n_hidden(),
                self.wifi.n_hts()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blu_sim::topology::HiddenTerminal;

    fn mini_trace() -> TestbedTrace {
        let mut tl = ActivityTimeline::new();
        tl.push(Micros(0), Micros(500));
        TestbedTrace {
            description: "mini".into(),
            ground_truth: InterferenceTopology {
                n_clients: 2,
                hts: vec![HiddenTerminal {
                    q: 0.5,
                    edges: ClientSet::singleton(0),
                }],
            },
            wifi: WifiActivityTrace {
                labels: vec!["ht0".into()],
                timelines: vec![tl],
                horizon: Micros::from_millis(2),
            },
            access: AccessTrace {
                n_ues: 2,
                accessible: vec![ClientSet::singleton(1), ClientSet::all(2)],
            },
            csi: CsiTrace {
                n_ues: 2,
                n_antennas: 1,
                coherence_subframes: 1,
                blocks: vec![vec![vec![Complex::ONE], vec![Complex::ONE]]],
            },
            mean_snr_db: vec![20.0, 25.0],
        }
    }

    #[test]
    fn mini_trace_validates() {
        assert_eq!(mini_trace().validate(), Ok(()));
    }

    #[test]
    fn validation_catches_mismatches() {
        let mut t = mini_trace();
        t.access.n_ues = 3;
        assert!(t.validate().is_err());

        let mut t = mini_trace();
        t.mean_snr_db.pop();
        assert!(t.validate().is_err());

        let mut t = mini_trace();
        t.wifi.timelines.clear();
        t.wifi.labels.clear();
        assert!(t.validate().is_err());
    }

    #[test]
    fn access_trace_wraps() {
        let a = AccessTrace {
            n_ues: 2,
            accessible: vec![ClientSet::singleton(0), ClientSet::singleton(1)],
        };
        assert_eq!(a.at(SubframeIndex(0)), ClientSet::singleton(0));
        assert_eq!(a.at(SubframeIndex(1)), ClientSet::singleton(1));
        assert_eq!(a.at(SubframeIndex(2)), ClientSet::singleton(0));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn csi_trace_block_lookup() {
        let c = CsiTrace {
            n_ues: 1,
            n_antennas: 1,
            coherence_subframes: 10,
            blocks: vec![vec![vec![Complex::ONE]], vec![vec![Complex::new(2.0, 0.0)]]],
        };
        assert_eq!(c.channel(0, SubframeIndex(5))[0], Complex::ONE);
        assert_eq!(c.channel(0, SubframeIndex(10))[0], Complex::new(2.0, 0.0));
        // Wraps after 20 sub-frames.
        assert_eq!(c.channel(0, SubframeIndex(20))[0], Complex::ONE);
        assert_eq!(c.n_subframes(), 20);
    }

    #[test]
    fn wifi_trace_airtime() {
        let t = mini_trace();
        assert!((t.wifi.airtime(0) - 0.25).abs() < 1e-12);
        assert_eq!(t.wifi.n_subframes(), 2);
    }
}
