//! Geometric scenario generation: from a node deployment to a full
//! [`TestbedTrace`].
//!
//! Mirrors both data sources of the paper's §4.2: the WARP testbed
//! (an enterprise floor with a handful of UEs and WiFi laptops) and
//! the NS3 sweeps (5–25 UEs/WiFi nodes placed uniformly at random,
//! WiFi nodes sending UDP to random neighbours under rate
//! adaptation). The pipeline:
//!
//! 1. place the eNB at the region centre, UEs and WiFi nodes at
//!    random positions;
//! 2. evaluate the propagation field (log-distance + shadowing) and
//!    extract the **ground-truth hidden-terminal topology** from the
//!    asymmetric sensing thresholds;
//! 3. synthesize WiFi activity — either a full DCF contention
//!    simulation over the WiFi nodes (correlated airtime) or
//!    independent on/off sources (the paper's analytic model);
//! 4. derive per-sub-frame UE access, CSI, and uplink SNRs into a
//!    trace.

use crate::capture::assemble_trace;
use crate::schema::TestbedTrace;
use blu_sim::cca::SensingThresholds;
use blu_sim::geometry::Region;
use blu_sim::link::lte_10mhz_noise_floor;
use blu_sim::medium::ActivityTimeline;
use blu_sim::node::{Node, NodeKind};
use blu_sim::pathloss::{LogDistance, Propagation, ShadowingField};
use blu_sim::rng::DetRng;
use blu_sim::time::Micros;
use blu_wifi::network::{hears_from_rx_power, WifiNetwork, WifiNetworkConfig, WifiStationSpec};
use blu_wifi::onoff::OnOffSource;
use blu_wifi::traffic::TrafficGen;
use serde::{Deserialize, Serialize};

/// How hidden-terminal activity is synthesized.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ActivityModel {
    /// Full 802.11 DCF contention between the WiFi nodes (activity
    /// correlated through carrier sensing).
    Dcf,
    /// Independent on/off renewal sources with duty cycles drawn from
    /// the given range (the paper's independence model).
    OnOff {
        /// Range of duty cycles `q(k)`.
        q_range: (f64, f64),
        /// Mean ON-burst duration (µs).
        mean_on_us: f64,
    },
}

/// Scenario parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Side of the square deployment region (m).
    pub region_m: f64,
    /// Number of UEs.
    pub n_ues: usize,
    /// Number of WiFi nodes (hidden-terminal candidates).
    pub n_wifi: usize,
    /// Trace duration.
    pub duration: Micros,
    /// eNB antennas (CSI dimensionality).
    pub n_antennas: usize,
    /// Channel coherence (sub-frames).
    pub coherence_subframes: u64,
    /// Path-loss exponent.
    pub pathloss_exponent: f64,
    /// Log-normal shadowing σ (dB); 0 disables.
    pub shadowing_sigma_db: f64,
    /// Activity synthesis model.
    pub activity: ActivityModel,
    /// WiFi offered traffic (DCF model only).
    pub wifi_traffic: TrafficGen,
}

impl ScenarioConfig {
    /// Paper-testbed-flavoured defaults: enterprise floor, 4 UEs,
    /// 6 WiFi laptops, DCF activity.
    pub fn testbed() -> Self {
        ScenarioConfig {
            region_m: 60.0,
            n_ues: 4,
            n_wifi: 6,
            duration: Micros::from_secs(60),
            n_antennas: 2,
            coherence_subframes: 50,
            pathloss_exponent: 3.2,
            shadowing_sigma_db: 4.0,
            activity: ActivityModel::Dcf,
            wifi_traffic: TrafficGen::Bursty {
                mean_on_us: 20_000.0,
                mean_off_us: 15_000.0,
                bytes: 1470,
            },
        }
    }

    /// NS3-sweep-flavoured defaults: larger region, variable counts,
    /// on/off activity for controlled ground truth.
    pub fn ns3(n_ues: usize, n_wifi: usize) -> Self {
        ScenarioConfig {
            region_m: 120.0,
            n_ues,
            n_wifi,
            duration: Micros::from_secs(120),
            n_antennas: 4,
            coherence_subframes: 50,
            pathloss_exponent: 3.2,
            shadowing_sigma_db: 5.0,
            activity: ActivityModel::OnOff {
                q_range: (0.15, 0.6),
                mean_on_us: 1_500.0,
            },
            wifi_traffic: TrafficGen::iperf_default(),
        }
    }
}

/// A generated scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The full trace (ground truth + activity + access + CSI).
    pub trace: TestbedTrace,
    /// All deployed WiFi nodes (including non-hidden ones).
    pub wifi_nodes: Vec<Node>,
    /// UE nodes.
    pub ue_nodes: Vec<Node>,
    /// The eNB.
    pub enb: Node,
    /// WiFi nodes audible to the eNB (they delay TxOPs but cause no
    /// UL blocking).
    pub n_wifi_audible: usize,
    /// Union busy timeline of the WiFi nodes the eNB senses — the
    /// medium the eNB's Cat-4 LBT contends against.
    pub enb_audible_activity: blu_sim::medium::ActivityTimeline,
}

/// Generate a scenario deterministically from a seed.
pub fn generate(cfg: &ScenarioConfig, seed: u64) -> Scenario {
    let root = DetRng::seed_from_u64(seed);
    let mut place_rng = root.derive("placement");
    let region = Region::square(cfg.region_m);

    let enb = Node::new(0, NodeKind::Enb, region.center());
    let ue_nodes: Vec<Node> = region
        .sample_separated(cfg.n_ues, 3.0, &mut place_rng)
        .into_iter()
        .enumerate()
        .map(|(i, p)| Node::new(1 + i as u32, NodeKind::Ue, p))
        .collect();
    let wifi_nodes: Vec<Node> = region
        .sample_separated(cfg.n_wifi, 3.0, &mut place_rng)
        .into_iter()
        .enumerate()
        .map(|(i, p)| Node::new(100 + i as u32, NodeKind::WifiSta, p))
        .collect();

    let model = LogDistance {
        ref_loss_db: 47.0,
        exponent: cfg.pathloss_exponent,
        ref_distance_m: 1.0,
    };
    let shadowing = if cfg.shadowing_sigma_db > 0.0 {
        ShadowingField::new(cfg.shadowing_sigma_db, root.derive("shadow"))
    } else {
        ShadowingField::disabled()
    };
    let mut prop = Propagation::new(model, shadowing);
    let thresholds = SensingThresholds::default();

    let gt = blu_sim::topology::extract_ground_truth(
        &enb,
        &ue_nodes,
        &wifi_nodes,
        &mut prop,
        &thresholds,
    );
    let n_hidden = gt.topology.n_hidden();
    let n_wifi_audible = cfg.n_wifi - {
        // Hidden candidates are those in ht_nodes; audible = rest
        // (including WiFi nodes nobody senses, which are harmless).
        gt.ht_nodes.len()
    };

    // Synthesize activity for ALL WiFi nodes, then keep the hidden
    // ones' timelines.
    let all_timelines: Vec<ActivityTimeline> = match cfg.activity {
        ActivityModel::OnOff {
            q_range,
            mean_on_us,
        } => {
            let mut act_rng = root.derive("activity");
            (0..cfg.n_wifi)
                .map(|_| {
                    let q = act_rng.range_f64(q_range.0, q_range.1).clamp(0.01, 0.99);
                    OnOffSource::with_duty_cycle(q, mean_on_us).generate(cfg.duration, &mut act_rng)
                })
                .collect()
        }
        ActivityModel::Dcf => {
            let mut dest_rng = root.derive("dest");
            let n = cfg.n_wifi;
            // Each WiFi node sends UDP to a random other node
            // (paper's NS3 setup).
            let stations: Vec<WifiStationSpec> = (0..n)
                .map(|i| {
                    let mut dest = dest_rng.below(n.max(2));
                    if dest == i {
                        dest = (dest + 1) % n;
                    }
                    let rx = prop.receive(
                        wifi_nodes[i].tx_power,
                        wifi_nodes[i].id.0,
                        wifi_nodes[i].pos,
                        wifi_nodes[dest].id.0,
                        wifi_nodes[dest].pos,
                    );
                    let snr = rx - lte_10mhz_noise_floor();
                    WifiStationSpec {
                        traffic: cfg.wifi_traffic,
                        dest,
                        snr_to_dest_db: snr.0.clamp(-5.0, 40.0),
                    }
                })
                .collect();
            let mut rx_matrix = vec![vec![blu_sim::power::Dbm::FLOOR; n]; n];
            for tx in 0..n {
                for rx in 0..n {
                    if tx == rx {
                        continue;
                    }
                    rx_matrix[tx][rx] = prop.receive(
                        wifi_nodes[tx].tx_power,
                        wifi_nodes[tx].id.0,
                        wifi_nodes[tx].pos,
                        wifi_nodes[rx].id.0,
                        wifi_nodes[rx].pos,
                    );
                }
            }
            let hears = hears_from_rx_power(|tx, rx| rx_matrix[tx][rx], n, thresholds.preamble_dbm);
            let net_cfg = WifiNetworkConfig {
                stations,
                hears,
                horizon: cfg.duration,
            };
            WifiNetwork::new(net_cfg, &root.derive("dcf"))
                .run()
                .timelines
        }
    };

    // Keep only hidden terminals' timelines, matched to the edges.
    let ht_indices: Vec<usize> = gt
        .ht_nodes
        .iter()
        .map(|id| {
            wifi_nodes
                .iter()
                .position(|w| w.id == *id)
                .expect("ht node present")
        })
        .collect();
    let timelines: Vec<ActivityTimeline> = ht_indices
        .iter()
        .map(|&i| all_timelines[i].clone())
        .collect();
    // The eNB's contention view: union of all WiFi activity it can
    // sense (everything that is NOT hidden from it).
    let audible: Vec<&ActivityTimeline> = (0..cfg.n_wifi)
        .filter(|i| !ht_indices.contains(i))
        .map(|i| &all_timelines[i])
        .collect();
    let enb_audible_activity = blu_sim::medium::union(&audible);
    let edges: Vec<blu_sim::clientset::ClientSet> =
        gt.topology.hts.iter().map(|ht| ht.edges).collect();
    let labels: Vec<String> = gt.ht_nodes.iter().map(|id| format!("{id}")).collect();

    // UE uplink SNRs from the propagation field.
    let noise = lte_10mhz_noise_floor();
    let mean_snr_db: Vec<f64> = ue_nodes
        .iter()
        .map(|ue| {
            let rx = prop.receive(ue.tx_power, ue.id.0, ue.pos, enb.id.0, enb.pos);
            (rx - noise).0.clamp(3.0, 32.0)
        })
        .collect();

    let trace = assemble_trace(
        format!(
            "scenario seed={seed} region={}m ues={} wifi={} hidden={}",
            cfg.region_m, cfg.n_ues, cfg.n_wifi, n_hidden
        ),
        cfg.n_ues,
        &edges,
        timelines,
        labels,
        cfg.duration,
        cfg.n_antennas,
        cfg.coherence_subframes,
        mean_snr_db,
        &root.derive("csi-root"),
    );
    Scenario {
        trace,
        wifi_nodes,
        ue_nodes,
        enb,
        n_wifi_audible,
        enb_audible_activity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(cfg: &mut ScenarioConfig) {
        cfg.duration = Micros::from_secs(5);
    }

    #[test]
    fn onoff_scenario_is_consistent() {
        let mut cfg = ScenarioConfig::ns3(6, 8);
        quick(&mut cfg);
        let s = generate(&cfg, 1);
        assert_eq!(s.trace.validate(), Ok(()));
        assert_eq!(s.trace.ground_truth.n_clients, 6);
        assert!(s.trace.ground_truth.n_hidden() <= 8);
        assert_eq!(s.ue_nodes.len(), 6);
        assert_eq!(s.wifi_nodes.len(), 8);
    }

    #[test]
    fn dcf_scenario_is_consistent() {
        let mut cfg = ScenarioConfig::testbed();
        quick(&mut cfg);
        let s = generate(&cfg, 2);
        assert_eq!(s.trace.validate(), Ok(()));
        // Hidden terminals must have measured activity if traffic
        // flowed.
        for ht in &s.trace.ground_truth.hts {
            assert!((0.0..=1.0).contains(&ht.q));
        }
    }

    #[test]
    fn deterministic() {
        let mut cfg = ScenarioConfig::ns3(4, 6);
        quick(&mut cfg);
        let a = generate(&cfg, 7);
        let b = generate(&cfg, 7);
        assert_eq!(a.trace, b.trace);
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = ScenarioConfig::ns3(4, 6);
        quick(&mut cfg);
        let a = generate(&cfg, 1);
        let b = generate(&cfg, 2);
        assert_ne!(a.trace.description, b.trace.description);
        // Topology or SNRs almost surely differ.
        assert!(
            a.trace.ground_truth != b.trace.ground_truth
                || a.trace.mean_snr_db != b.trace.mean_snr_db
        );
    }

    #[test]
    fn hidden_plus_audible_bounded_by_total() {
        let mut cfg = ScenarioConfig::ns3(5, 10);
        quick(&mut cfg);
        let s = generate(&cfg, 3);
        assert_eq!(s.n_wifi_audible + s.trace.ground_truth.n_hidden(), 10);
    }
}
