//! Trace persistence: JSON (human-inspectable) and a compact binary
//! codec for the bulky per-sub-frame data.
//!
//! JSON is the interchange format for whole [`TestbedTrace`] bundles;
//! the binary codec (`bytes`-based, little-endian, versioned magic)
//! is provided for the two high-volume record types — access traces
//! (one `u128` per sub-frame) and activity timelines — where JSON
//! bloats 10×.

use crate::schema::{AccessTrace, TestbedTrace, WifiActivityTrace};
use blu_sim::clientset::ClientSet;
use blu_sim::medium::{ActivityTimeline, BusyInterval};
use blu_sim::time::Micros;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors from trace IO.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// JSON (de)serialization error.
    Json(serde_json::Error),
    /// Binary codec error (bad magic, truncation, version).
    Codec(String),
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "io error: {e}"),
            TraceIoError::Json(e) => write!(f, "json error: {e}"),
            TraceIoError::Codec(m) => write!(f, "codec error: {m}"),
        }
    }
}

impl std::error::Error for TraceIoError {}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

impl From<serde_json::Error> for TraceIoError {
    fn from(e: serde_json::Error) -> Self {
        TraceIoError::Json(e)
    }
}

/// Save a full trace bundle as JSON.
pub fn save_json(trace: &TestbedTrace, path: &Path) -> Result<(), TraceIoError> {
    let f = BufWriter::new(File::create(path)?);
    serde_json::to_writer(f, trace)?;
    Ok(())
}

/// Load a trace bundle from JSON.
pub fn load_json(path: &Path) -> Result<TestbedTrace, TraceIoError> {
    let f = BufReader::new(File::open(path)?);
    Ok(serde_json::from_reader(f)?)
}

const ACCESS_MAGIC: u32 = 0x424C_5541; // "BLUA"
const ACTIVITY_MAGIC: u32 = 0x424C_5554; // "BLUT"
const CODEC_VERSION: u16 = 1;

/// Encode an access trace to the compact binary format.
pub fn encode_access(trace: &AccessTrace) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + trace.accessible.len() * 16);
    buf.put_u32_le(ACCESS_MAGIC);
    buf.put_u16_le(CODEC_VERSION);
    buf.put_u16_le(trace.n_ues as u16);
    buf.put_u64_le(trace.accessible.len() as u64);
    for &acc in &trace.accessible {
        buf.put_u128_le(acc.0);
    }
    buf.freeze()
}

/// Decode an access trace from the compact binary format.
pub fn decode_access(mut data: &[u8]) -> Result<AccessTrace, TraceIoError> {
    let err = |m: &str| TraceIoError::Codec(m.into());
    if data.remaining() < 16 {
        return Err(err("truncated header"));
    }
    if data.get_u32_le() != ACCESS_MAGIC {
        return Err(err("bad magic"));
    }
    if data.get_u16_le() != CODEC_VERSION {
        return Err(err("unsupported version"));
    }
    let n_ues = data.get_u16_le() as usize;
    let len = data.get_u64_le() as usize;
    if data.remaining() < len * 16 {
        return Err(err("truncated body"));
    }
    let accessible = (0..len).map(|_| ClientSet(data.get_u128_le())).collect();
    Ok(AccessTrace { n_ues, accessible })
}

/// Encode a WiFi activity trace to binary (labels UTF-8
/// length-prefixed, intervals as u64 pairs).
pub fn encode_activity(trace: &WifiActivityTrace) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u32_le(ACTIVITY_MAGIC);
    buf.put_u16_le(CODEC_VERSION);
    buf.put_u16_le(trace.timelines.len() as u16);
    buf.put_u64_le(trace.horizon.as_u64());
    for (label, tl) in trace.labels.iter().zip(&trace.timelines) {
        let lb = label.as_bytes();
        buf.put_u16_le(lb.len() as u16);
        buf.put_slice(lb);
        buf.put_u32_le(tl.intervals().len() as u32);
        for iv in tl.intervals() {
            buf.put_u64_le(iv.start.as_u64());
            buf.put_u64_le(iv.end.as_u64());
        }
    }
    buf.freeze()
}

/// Decode a WiFi activity trace from binary.
pub fn decode_activity(mut data: &[u8]) -> Result<WifiActivityTrace, TraceIoError> {
    let err = |m: &str| TraceIoError::Codec(m.into());
    if data.remaining() < 16 {
        return Err(err("truncated header"));
    }
    if data.get_u32_le() != ACTIVITY_MAGIC {
        return Err(err("bad magic"));
    }
    if data.get_u16_le() != CODEC_VERSION {
        return Err(err("unsupported version"));
    }
    let n = data.get_u16_le() as usize;
    let horizon = Micros(data.get_u64_le());
    let mut labels = Vec::with_capacity(n);
    let mut timelines = Vec::with_capacity(n);
    for _ in 0..n {
        if data.remaining() < 2 {
            return Err(err("truncated label length"));
        }
        let ll = data.get_u16_le() as usize;
        if data.remaining() < ll {
            return Err(err("truncated label"));
        }
        let mut lb = vec![0u8; ll];
        data.copy_to_slice(&mut lb);
        labels.push(String::from_utf8(lb).map_err(|_| err("label not UTF-8"))?);
        if data.remaining() < 4 {
            return Err(err("truncated interval count"));
        }
        let m = data.get_u32_le() as usize;
        if data.remaining() < m * 16 {
            return Err(err("truncated intervals"));
        }
        let mut ivs = Vec::with_capacity(m);
        for _ in 0..m {
            let s = data.get_u64_le();
            let e = data.get_u64_le();
            if e <= s {
                return Err(err("empty interval"));
            }
            ivs.push(BusyInterval::new(Micros(s), Micros(e)));
        }
        timelines.push(ActivityTimeline::from_intervals(ivs));
    }
    Ok(WifiActivityTrace {
        labels,
        timelines,
        horizon,
    })
}

/// Write raw bytes to a file.
pub fn write_bytes(data: &Bytes, path: &Path) -> Result<(), TraceIoError> {
    let mut f = BufWriter::new(File::create(path)?);
    f.write_all(data)?;
    Ok(())
}

/// Read a whole file.
pub fn read_bytes(path: &Path) -> Result<Vec<u8>, TraceIoError> {
    let mut f = BufReader::new(File::open(path)?);
    let mut out = Vec::new();
    f.read_to_end(&mut out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::{capture_synthetic, CaptureConfig};
    use std::path::PathBuf;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("blu-traces-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn json_roundtrip() {
        let trace = capture_synthetic(
            &CaptureConfig {
                duration: Micros::from_secs(2),
                ..CaptureConfig::quick()
            },
            1,
        );
        let path = temp_path("roundtrip.json");
        save_json(&trace, &path).unwrap();
        let back = load_json(&path).unwrap();
        assert_eq!(trace, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn binary_access_roundtrip() {
        let trace = capture_synthetic(
            &CaptureConfig {
                duration: Micros::from_secs(3),
                ..CaptureConfig::quick()
            },
            2,
        );
        let enc = encode_access(&trace.access);
        let dec = decode_access(&enc).unwrap();
        assert_eq!(trace.access, dec);
    }

    #[test]
    fn binary_activity_roundtrip() {
        let trace = capture_synthetic(
            &CaptureConfig {
                duration: Micros::from_secs(3),
                ..CaptureConfig::quick()
            },
            3,
        );
        let enc = encode_activity(&trace.wifi);
        let dec = decode_activity(&enc).unwrap();
        assert_eq!(trace.wifi, dec);
    }

    #[test]
    fn binary_activity_smaller_than_json() {
        // The activity codec's win is on interval-heavy timelines
        // (the access codec trades size for fixed-width simplicity).
        let trace = capture_synthetic(
            &CaptureConfig {
                duration: Micros::from_secs(5),
                ..CaptureConfig::quick()
            },
            4,
        );
        let bin = encode_activity(&trace.wifi).len();
        let json = serde_json::to_vec(&trace.wifi).unwrap().len();
        assert!(
            bin < json / 3 * 2,
            "binary {bin} not smaller than json {json}"
        );
    }

    #[test]
    fn decode_rejects_corruption() {
        let trace = capture_synthetic(&CaptureConfig::quick(), 5);
        let enc = encode_access(&trace.access);
        // Bad magic.
        let mut bad = enc.to_vec();
        bad[0] ^= 0xFF;
        assert!(decode_access(&bad).is_err());
        // Truncation.
        assert!(decode_access(&enc[..enc.len() - 5]).is_err());
        assert!(decode_access(&enc[..8]).is_err());
        // Wrong codec entirely.
        assert!(decode_activity(&enc).is_err());
    }

    #[test]
    fn file_bytes_roundtrip() {
        let path = temp_path("bytes.bin");
        let data = Bytes::from_static(b"hello blu");
        write_bytes(&data, &path).unwrap();
        assert_eq!(read_bytes(&path).unwrap(), b"hello blu");
        std::fs::remove_file(&path).ok();
    }
}
