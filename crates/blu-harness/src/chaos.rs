//! Deterministic chaos harness: fleet-scale fault schedules with
//! checkable recovery invariants.
//!
//! A [`ChaosPlan`] compiles a [`ChaosConfig`] — *what fraction of the
//! fleet crashes, stalls, gets poisoned observations, loses its
//! checkpoints* — into per-cell [`FaultScript`]s, all drawn from
//! seeded [`DetRng`] streams so the same config and seed always
//! produce the same storm. [`run_chaos`] then runs the supervised
//! fleet against the plan (with a [`TornCheckpointHook`] corrupting
//! the chosen cells' checkpoints as fast as they are written) next to
//! an unsupervised fault-free golden fleet, and
//! [`verify_invariants`] checks the recovery contract:
//!
//! * the supervised fleet **terminates** and reports every cell;
//! * non-faulted cells are **byte-identical** to their fault-free
//!   goldens — supervision is invisible where nothing went wrong;
//! * every crash-faulted cell was either restored (from disk or
//!   memory) or quarantined to PF — never silently dropped;
//! * quarantine stays bounded by the faulted-cell count;
//! * zero panics propagate (the run returning at all is the proof;
//!   panics observed on cells that were never scheduled to crash are
//!   flagged).
//!
//! The default fault vocabulary is [`blu_sim::faults::FaultKind`]'s
//! runtime kinds — [`FaultKind::CellCrash`],
//! [`FaultKind::InferenceStall`], [`FaultKind::StatPoison`] — which
//! never alter the captured trace, so golden and chaos runs see
//! identical air. Setting [`ChaosConfig::churn_rate_hz`] adds
//! Poisson *topology churn* (capture-time HT arrivals, departures,
//! duty-cycle drifts and edge flips from [`blu_sim::churn`]) to every
//! cell's script; churned cells' air genuinely differs from the
//! goldens, so every cell counts as faulted and the byte-identity
//! invariant intentionally vacates — the remaining recovery and
//! cache-transparency invariants still apply.

use blu_core::runtime::supervisor::{
    run_supervised_fleet_with_hook, CellHealth, SupervisedFleetOutcome, SupervisorConfig,
    SupervisorHook,
};
use blu_core::{BluError, RobustConfig, RobustRunReport};
use blu_sim::faults::{FaultEvent, FaultKind, FaultScript};
use blu_sim::rng::DetRng;
use blu_sim::time::Micros;
use blu_traces::capture::CaptureConfig;
use blu_traces::faults::{capture_with_faults, FaultyCapture};
use rand::RngCore;
use std::fs;
use std::path::Path;

/// Shape of a chaos storm. All fractions are of the whole fleet and
/// live in `[0, 1]`; a non-zero fraction always afflicts at least one
/// cell.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Fleet size.
    pub n_cells: usize,
    /// Capture length per cell, in seconds.
    pub seconds: u64,
    /// Master seed: cell selection, fault placement and per-cell
    /// capture seeds all derive from it.
    pub seed: u64,
    /// Fraction of cells whose task crashes ([`FaultKind::CellCrash`]).
    pub crash_fraction: f64,
    /// Crashes scheduled per crash-faulted cell.
    pub crashes_per_cell: u32,
    /// Subframe of the first crash.
    pub crash_start_subframe: u64,
    /// Spacing between a cell's successive crashes, in subframes.
    pub crash_spacing_subframes: u64,
    /// Fraction of cells with a correlated inference stall.
    pub stall_fraction: f64,
    /// Stall multiplier ([`FaultKind::InferenceStall`]).
    pub stall_factor: u32,
    /// Subframe at which the stall engages.
    pub stall_at_subframe: u64,
    /// Fraction of cells with poisoned observations.
    pub poison_fraction: f64,
    /// Per-constraint poison probability ([`FaultKind::StatPoison`]).
    pub poison_rate: f64,
    /// Subframe at which poisoning engages.
    pub poison_at_subframe: u64,
    /// Fraction of *crash-faulted* cells whose checkpoints are torn
    /// on every save.
    pub torn_fraction: f64,
    /// Total Poisson topology-churn rate per cell, events per second
    /// (`0.0` disables churn — the default, preserving the runtime-only
    /// fault vocabulary). Non-zero rates schedule capture-time
    /// [`FaultKind::HtAppear`]/[`FaultKind::HtDisappear`]/
    /// [`FaultKind::QDrift`]/[`FaultKind::EdgeChurn`] events on every
    /// cell, so churned cells' traces legitimately diverge from the
    /// fault-free goldens and every cell counts as faulted.
    pub churn_rate_hz: f64,
    /// Subframe at which the churn window opens (churn events land in
    /// `[churn_start_subframe, seconds * 1000)`).
    pub churn_start_subframe: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            n_cells: 6,
            seconds: 60,
            seed: 0xC4A05,
            crash_fraction: 0.34,
            crashes_per_cell: 1,
            crash_start_subframe: 30_000,
            crash_spacing_subframes: 4_000,
            stall_fraction: 0.0,
            stall_factor: 4,
            stall_at_subframe: 10_000,
            poison_fraction: 0.05,
            poison_rate: 0.25,
            poison_at_subframe: 0,
            torn_fraction: 0.5,
            churn_rate_hz: 0.0,
            churn_start_subframe: 20_000,
        }
    }
}

impl ChaosConfig {
    fn validate(&self) -> Result<(), BluError> {
        if self.n_cells == 0 {
            return Err(BluError::InvalidConfig("chaos n_cells must be > 0".into()));
        }
        if self.seconds == 0 {
            return Err(BluError::InvalidConfig("chaos seconds must be > 0".into()));
        }
        for (name, frac) in [
            ("crash_fraction", self.crash_fraction),
            ("stall_fraction", self.stall_fraction),
            ("poison_fraction", self.poison_fraction),
            ("torn_fraction", self.torn_fraction),
            ("poison_rate", self.poison_rate),
        ] {
            if !frac.is_finite() || !(0.0..=1.0).contains(&frac) {
                return Err(BluError::InvalidConfig(format!(
                    "chaos {name} must be finite in [0, 1], got {frac}"
                )));
            }
        }
        if self.crash_fraction > 0.0 && self.crashes_per_cell == 0 {
            return Err(BluError::InvalidConfig(
                "chaos crashes_per_cell must be > 0 when crash_fraction > 0".into(),
            ));
        }
        if self.stall_fraction > 0.0 && self.stall_factor < 2 {
            return Err(BluError::InvalidConfig(
                "chaos stall_factor must be >= 2 to be a fault".into(),
            ));
        }
        if !self.churn_rate_hz.is_finite() || self.churn_rate_hz < 0.0 {
            return Err(BluError::InvalidConfig(format!(
                "chaos churn_rate_hz must be finite and >= 0, got {}",
                self.churn_rate_hz
            )));
        }
        Ok(())
    }
}

/// A compiled storm: per-cell fault scripts plus the membership sets
/// the invariant checks need.
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    /// The config this plan was compiled from.
    pub config: ChaosConfig,
    /// One fault script per cell, in cell order.
    pub scripts: Vec<FaultScript>,
    /// Whether each cell has any scheduled fault.
    pub faulted: Vec<bool>,
    /// Cells scheduled to crash, sorted.
    pub crash_cells: Vec<usize>,
    /// Cells scheduled to stall, sorted.
    pub stall_cells: Vec<usize>,
    /// Cells with poisoned observations, sorted.
    pub poison_cells: Vec<usize>,
    /// Cells whose checkpoints are torn on save (subset of
    /// `crash_cells`), sorted.
    pub torn_cells: Vec<usize>,
}

/// `ceil(frac * n)`, clamped to `n` — a non-zero fraction always
/// picks at least one member.
fn afflicted(n: usize, frac: f64) -> usize {
    ((frac * n as f64).ceil() as usize).min(n)
}

impl ChaosPlan {
    /// Compile a config into a plan. Pure and deterministic: the same
    /// config yields the same plan, bit for bit.
    pub fn compile(config: ChaosConfig) -> Result<ChaosPlan, BluError> {
        config.validate()?;
        let n = config.n_cells;
        let rng = DetRng::seed_from_u64(config.seed);

        let pick = |label: &str, frac: f64| -> Vec<usize> {
            let mut cells = rng.derive(label).choose_indices(n, afflicted(n, frac));
            cells.sort_unstable();
            cells
        };
        let crash_cells = pick("chaos-crash-cells", config.crash_fraction);
        let stall_cells = pick("chaos-stall-cells", config.stall_fraction);
        let poison_cells = pick("chaos-poison-cells", config.poison_fraction);
        let torn_cells: Vec<usize> = {
            let k = afflicted(crash_cells.len(), config.torn_fraction);
            let mut picks = rng
                .derive("chaos-torn-cells")
                .choose_indices(crash_cells.len(), k)
                .into_iter()
                .map(|i| crash_cells[i])
                .collect::<Vec<_>>();
            picks.sort_unstable();
            picks
        };

        let mut scripts = vec![FaultScript::none(); n];
        for &cell in &crash_cells {
            let mut events = Vec::with_capacity(config.crashes_per_cell as usize);
            for j in 0..config.crashes_per_cell {
                let offset = u64::from(j)
                    .checked_mul(config.crash_spacing_subframes)
                    .ok_or(BluError::Overflow {
                        what: "chaos crash spacing",
                    })?;
                let at_subframe =
                    config
                        .crash_start_subframe
                        .checked_add(offset)
                        .ok_or(BluError::Overflow {
                            what: "chaos crash schedule",
                        })?;
                events.push(FaultEvent {
                    at_subframe,
                    kind: FaultKind::CellCrash,
                });
            }
            scripts[cell] = merge(&scripts[cell], events);
        }
        for &cell in &stall_cells {
            scripts[cell] = merge(
                &scripts[cell],
                vec![FaultEvent {
                    at_subframe: config.stall_at_subframe,
                    kind: FaultKind::InferenceStall {
                        factor: config.stall_factor,
                    },
                }],
            );
        }
        for &cell in &poison_cells {
            scripts[cell] = merge(
                &scripts[cell],
                vec![FaultEvent {
                    at_subframe: config.poison_at_subframe,
                    kind: FaultKind::StatPoison {
                        rate: config.poison_rate,
                    },
                }],
            );
        }
        if config.churn_rate_hz > 0.0 {
            let cap = CaptureConfig::testbed_default();
            let total = config
                .seconds
                .checked_mul(1_000)
                .ok_or(BluError::Overflow {
                    what: "chaos churn window",
                })?;
            let duration = total.saturating_sub(config.churn_start_subframe);
            if duration > 0 {
                let churn_cfg = blu_sim::churn::ChurnConfig::with_total_rate(
                    cap.n_ues,
                    duration,
                    config.churn_rate_hz,
                );
                for (cell, script) in scripts.iter_mut().enumerate() {
                    let mut cell_rng = rng.derive_indexed("chaos-churn", cell as u64);
                    let events =
                        blu_sim::churn::generate_churn(&churn_cfg, cap.n_hts, cell_rng.next_u64())
                            .map_err(BluError::from)?;
                    let compiled =
                        blu_core::compile_churn_script(&events, config.churn_start_subframe)?;
                    *script = merge(script, compiled.events);
                }
            }
        }

        let faulted = scripts.iter().map(|s| !s.events.is_empty()).collect();
        Ok(ChaosPlan {
            config,
            scripts,
            faulted,
            crash_cells,
            stall_cells,
            poison_cells,
            torn_cells,
        })
    }

    fn capture_config(&self) -> CaptureConfig {
        CaptureConfig {
            duration: Micros::from_secs(self.config.seconds),
            q_range: (0.25, 0.55),
            ..CaptureConfig::testbed_default()
        }
    }

    fn capture_set(&self, scripts: bool) -> Result<Vec<FaultyCapture>, BluError> {
        let cfg = self.capture_config();
        let none = FaultScript::none();
        (0..self.config.n_cells)
            .map(|i| {
                let script = if scripts { &self.scripts[i] } else { &none };
                capture_with_faults(&cfg, script, self.config.seed.wrapping_add(i as u64))
                    .map_err(BluError::from)
            })
            .collect()
    }

    /// The fleet's captures with the storm's fault scripts attached.
    /// Every scheduled fault is runtime-only, so the underlying
    /// traces equal [`ChaosPlan::golden_captures`] byte for byte.
    pub fn captures(&self) -> Result<Vec<FaultyCapture>, BluError> {
        self.capture_set(true)
    }

    /// The same captures with no faults — the golden inputs.
    pub fn golden_captures(&self) -> Result<Vec<FaultyCapture>, BluError> {
        self.capture_set(false)
    }

    /// One-line human summary for logs and the CLI.
    pub fn describe(&self) -> String {
        let mut line = format!(
            "{} cells x {}s, seed {:#x}: {} crashing ({} torn), {} stalling, {} poisoned",
            self.config.n_cells,
            self.config.seconds,
            self.config.seed,
            self.crash_cells.len(),
            self.torn_cells.len(),
            self.stall_cells.len(),
            self.poison_cells.len(),
        );
        if self.config.churn_rate_hz > 0.0 {
            line.push_str(&format!(
                ", churn {:.2} Hz from sf {}",
                self.config.churn_rate_hz, self.config.churn_start_subframe
            ));
        }
        line
    }
}

fn merge(script: &FaultScript, extra: Vec<FaultEvent>) -> FaultScript {
    let mut events = script.events.clone();
    events.extend(extra);
    FaultScript::new(events)
}

/// A [`SupervisorHook`] that corrupts the chosen cells' checkpoints
/// the moment they are written: the file is truncated to half its
/// bytes, simulating a crash mid-write on a filesystem without the
/// atomic-rename guarantee. Restores on those cells are forced onto
/// the in-memory (or from-scratch) path.
#[derive(Debug)]
pub struct TornCheckpointHook {
    torn: Vec<bool>,
    /// Checkpoint files torn so far.
    pub tears: u64,
}

impl TornCheckpointHook {
    /// Tear every save of the given cells (indices into the fleet).
    pub fn new(torn_cells: &[usize], n_cells: usize) -> Self {
        let mut torn = vec![false; n_cells];
        for &cell in torn_cells {
            if cell < n_cells {
                torn[cell] = true;
            }
        }
        TornCheckpointHook { torn, tears: 0 }
    }
}

impl SupervisorHook for TornCheckpointHook {
    fn after_checkpoint_save(&mut self, cell: usize, path: &Path, _round: u64) {
        if !self.torn.get(cell).copied().unwrap_or(false) {
            return;
        }
        if let Ok(bytes) = fs::read(path) {
            let half = bytes.len() / 2;
            if fs::write(path, &bytes[..half]).is_ok() {
                self.tears += 1;
            }
        }
    }
}

/// Everything one chaos run produces: the supervised outcome under
/// the storm, the fault-free unsupervised goldens, and how many
/// checkpoints were torn along the way.
#[derive(Debug)]
pub struct ChaosRunResult {
    /// Supervised fleet outcome under the compiled storm.
    pub outcome: SupervisedFleetOutcome,
    /// Fault-free golden reports, one per cell.
    pub goldens: Vec<RobustRunReport>,
    /// Checkpoint saves the torn-checkpoint hook corrupted.
    pub tears: u64,
}

/// Run the supervised fleet against the plan's storm (tearing
/// checkpoints per the plan) and the unsupervised golden fleet
/// against the fault-free captures.
///
/// `config.checkpoint` governs the supervised run only; goldens
/// always run without checkpointing so the two runs cannot collide
/// on disk.
pub fn run_chaos(
    plan: &ChaosPlan,
    config: &RobustConfig,
    sup: &SupervisorConfig,
) -> Result<ChaosRunResult, BluError> {
    let golden_caps = plan.golden_captures()?;
    let mut golden_config = config.clone();
    golden_config.checkpoint = None;
    let goldens = blu_core::run_robust_fleet(&golden_caps, &golden_config)
        .into_iter()
        .collect::<Result<Vec<_>, _>>()?;

    let captures = plan.captures()?;
    let mut hook = TornCheckpointHook::new(&plan.torn_cells, plan.config.n_cells);
    let outcome = run_supervised_fleet_with_hook(&captures, config, sup, &mut hook)?;
    Ok(ChaosRunResult {
        outcome,
        goldens,
        tears: hook.tears,
    })
}

/// Field-by-field report equality, excluding the wall-clock
/// `inference_micros` (floats compared bit-exactly).
pub fn reports_equivalent(a: &RobustRunReport, b: &RobustRunReport) -> bool {
    a.metrics == b.metrics
        && a.transitions == b.transitions
        && a.verdicts == b.verdicts
        && a.measurement_subframes == b.measurement_subframes
        && a.n_remeasurements == b.n_remeasurements
        && a.speculative_txops == b.speculative_txops
        && a.fallback_txops == b.fallback_txops
        && a.final_confidence.to_bits() == b.final_confidence.to_bits()
        && a.peak_drift.to_bits() == b.peak_drift.to_bits()
        && a.breaker_transitions == b.breaker_transitions
        && a.inference_panics == b.inference_panics
        && a.deadline_misses == b.deadline_misses
        && a.quarantined_constraints == b.quarantined_constraints
}

/// Check the recovery contract. Returns a human-readable violation
/// list — empty means every invariant held.
pub fn verify_invariants(plan: &ChaosPlan, result: &ChaosRunResult) -> Vec<String> {
    let mut violations = Vec::new();
    let n = plan.config.n_cells;
    let health = &result.outcome.health;

    if !health.completed {
        violations.push("supervised fleet did not run to completion".into());
    }
    if result.outcome.reports.len() != n {
        violations.push(format!(
            "expected {n} reports, got {}",
            result.outcome.reports.len()
        ));
    }
    if health.cells.len() != n {
        violations.push(format!(
            "expected {n} health reports, got {}",
            health.cells.len()
        ));
        return violations;
    }

    for cell in 0..n.min(result.outcome.reports.len()) {
        let report = &result.outcome.reports[cell];
        let cell_health = &health.cells[cell];
        if plan.faulted[cell] {
            // Faulted cells: healed or quarantined, never dropped or
            // stuck mid-restart.
            if !matches!(
                cell_health.final_health,
                CellHealth::Healthy | CellHealth::Degraded | CellHealth::Quarantined
            ) {
                violations.push(format!(
                    "cell {cell} ended in {:?}",
                    cell_health.final_health
                ));
            }
            if plan.crash_cells.contains(&cell) {
                if cell_health.crashes_observed == 0 {
                    violations.push(format!(
                        "cell {cell} was scheduled to crash but no crash was observed"
                    ));
                }
                if cell_health.restart_sources.is_empty()
                    && cell_health.final_health != CellHealth::Quarantined
                {
                    violations.push(format!(
                        "crashed cell {cell} was neither restored nor quarantined"
                    ));
                }
            }
        } else {
            // Non-faulted cells: supervision must be invisible.
            if !reports_equivalent(report, &result.goldens[cell]) {
                violations.push(format!(
                    "non-faulted cell {cell} diverged from its fault-free golden"
                ));
            }
            if cell_health.restarts != 0 {
                violations.push(format!(
                    "non-faulted cell {cell} was restarted {} times",
                    cell_health.restarts
                ));
            }
            if cell_health.crashes_observed != 0 {
                violations.push(format!("cell {cell} panicked without a scheduled crash"));
            }
        }
    }

    let faulted_count = plan.faulted.iter().filter(|f| **f).count();
    if health.quarantined() > faulted_count {
        violations.push(format!(
            "{} cells quarantined but only {faulted_count} were faulted",
            health.quarantined()
        ));
    }
    violations
}

/// Check that the fleet blueprint cache is *transparent*: the same
/// storm run with [`RobustConfig::fleet_cache`] enabled and disabled
/// must produce outcomes that differ only in wall-clock. Compares
/// every supervised report (via [`reports_equivalent`], which already
/// excludes `inference_micros` and compares floats bit-exactly),
/// every fault-free golden, and the per-cell health ledgers. Returns
/// a human-readable violation list — empty means the cache was
/// invisible.
pub fn verify_cache_transparency(
    cached: &ChaosRunResult,
    uncached: &ChaosRunResult,
) -> Vec<String> {
    let mut violations = Vec::new();
    if cached.outcome.reports.len() != uncached.outcome.reports.len() {
        violations.push(format!(
            "cached run produced {} reports, uncached {}",
            cached.outcome.reports.len(),
            uncached.outcome.reports.len()
        ));
        return violations;
    }
    if cached.goldens.len() != uncached.goldens.len() {
        violations.push(format!(
            "cached run produced {} goldens, uncached {}",
            cached.goldens.len(),
            uncached.goldens.len()
        ));
        return violations;
    }
    for (cell, (a, b)) in cached
        .outcome
        .reports
        .iter()
        .zip(&uncached.outcome.reports)
        .enumerate()
    {
        if !reports_equivalent(a, b) {
            violations.push(format!(
                "cell {cell}: supervised report diverged between cached and uncached runs"
            ));
        }
    }
    for (cell, (a, b)) in cached.goldens.iter().zip(&uncached.goldens).enumerate() {
        if !reports_equivalent(a, b) {
            violations.push(format!(
                "cell {cell}: fault-free golden diverged between cached and uncached runs"
            ));
        }
    }
    let (ha, hb) = (&cached.outcome.health, &uncached.outcome.health);
    if ha.rounds != hb.rounds {
        violations.push(format!(
            "round counts diverged: cached {} vs uncached {}",
            ha.rounds, hb.rounds
        ));
    }
    if ha.completed != hb.completed {
        violations.push(format!(
            "completion diverged: cached {} vs uncached {}",
            ha.completed, hb.completed
        ));
    }
    for (cell, (a, b)) in ha.cells.iter().zip(&hb.cells).enumerate() {
        if a.final_health != b.final_health
            || a.restarts != b.restarts
            || a.restart_sources != b.restart_sources
            || a.transitions != b.transitions
            || a.crashes_observed != b.crashes_observed
        {
            violations.push(format!(
                "cell {cell}: health ledger diverged between cached and uncached runs"
            ));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compilation_is_deterministic_and_bounded() {
        let plan_a = ChaosPlan::compile(ChaosConfig::default()).unwrap();
        let plan_b = ChaosPlan::compile(ChaosConfig::default()).unwrap();
        assert_eq!(plan_a.scripts, plan_b.scripts);
        assert_eq!(plan_a.crash_cells, plan_b.crash_cells);
        assert_eq!(plan_a.torn_cells, plan_b.torn_cells);
        // crash_fraction 0.34 of 6 cells = ceil -> 3; torn 0.5 of 3 -> 2.
        assert_eq!(plan_a.crash_cells.len(), 3);
        assert_eq!(plan_a.torn_cells.len(), 2);
        assert!(plan_a
            .torn_cells
            .iter()
            .all(|c| plan_a.crash_cells.contains(c)));
        for &cell in &plan_a.crash_cells {
            assert!(plan_a.faulted[cell]);
            assert_eq!(plan_a.scripts[cell].crash_subframes(), vec![30_000]);
        }
        let different = ChaosPlan::compile(ChaosConfig {
            seed: 1,
            ..ChaosConfig::default()
        })
        .unwrap();
        assert_ne!(plan_a.crash_cells, different.crash_cells);
    }

    #[test]
    fn crash_schedule_overflow_is_a_typed_error_at_u32_max_boundaries() {
        // u32::MAX-adjacent values that still fit in u64 compile exactly.
        let edge = ChaosPlan::compile(ChaosConfig {
            crash_start_subframe: u64::from(u32::MAX),
            crash_spacing_subframes: u64::from(u32::MAX),
            crashes_per_cell: 2,
            ..ChaosConfig::default()
        })
        .unwrap();
        let cell = edge.crash_cells[0];
        assert_eq!(
            edge.scripts[cell].crash_subframes(),
            vec![u64::from(u32::MAX), 2 * u64::from(u32::MAX)]
        );

        // One step past the u64 ceiling is a typed overflow, not a wrap
        // that would silently reorder the script.
        match ChaosPlan::compile(ChaosConfig {
            crash_start_subframe: u64::MAX,
            crash_spacing_subframes: 1,
            crashes_per_cell: 2,
            ..ChaosConfig::default()
        }) {
            Err(BluError::Overflow { what }) => assert!(what.contains("crash")),
            other => panic!("expected Overflow, got {other:?}"),
        }
        match ChaosPlan::compile(ChaosConfig {
            crash_start_subframe: 0,
            crash_spacing_subframes: u64::MAX,
            crashes_per_cell: 3,
            ..ChaosConfig::default()
        }) {
            Err(BluError::Overflow { what }) => assert!(what.contains("crash")),
            other => panic!("expected Overflow, got {other:?}"),
        }
    }

    #[test]
    fn churn_storms_compile_deterministically_and_mark_every_cell_faulted() {
        let cfg = ChaosConfig {
            churn_rate_hz: 0.5,
            ..ChaosConfig::default()
        };
        let plan_a = ChaosPlan::compile(cfg.clone()).unwrap();
        let plan_b = ChaosPlan::compile(cfg).unwrap();
        assert_eq!(plan_a.scripts, plan_b.scripts);
        assert!(
            plan_a.faulted.iter().all(|f| *f),
            "churn touches every cell"
        );
        // Churn events land inside the window and differ across cells.
        let topo_a = plan_a.scripts[0].topology_event_subframes();
        assert!(!topo_a.is_empty());
        assert!(topo_a.iter().all(|&sf| (20_000..60_000).contains(&sf)));
        assert_ne!(
            plan_a.scripts[0].topology_event_subframes(),
            plan_a.scripts[1].topology_event_subframes(),
            "per-cell churn streams must be independent"
        );
        // Churn rejects non-finite rates like every other knob.
        assert!(ChaosPlan::compile(ChaosConfig {
            churn_rate_hz: f64::NAN,
            ..ChaosConfig::default()
        })
        .is_err());
    }

    #[test]
    fn fractions_out_of_range_are_rejected() {
        for bad in [
            ChaosConfig {
                crash_fraction: 1.5,
                ..ChaosConfig::default()
            },
            ChaosConfig {
                poison_rate: f64::NAN,
                ..ChaosConfig::default()
            },
            ChaosConfig {
                n_cells: 0,
                ..ChaosConfig::default()
            },
            ChaosConfig {
                stall_fraction: 0.5,
                stall_factor: 1,
                ..ChaosConfig::default()
            },
        ] {
            assert!(ChaosPlan::compile(bad).is_err());
        }
    }

    #[test]
    fn torn_hook_halves_files_for_chosen_cells_only() {
        let dir = std::env::temp_dir().join(format!("blu-torn-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let torn_path = dir.join("cell-0.json");
        let safe_path = dir.join("cell-1.json");
        fs::write(&torn_path, vec![b'x'; 100]).unwrap();
        fs::write(&safe_path, vec![b'x'; 100]).unwrap();

        let mut hook = TornCheckpointHook::new(&[0], 2);
        hook.after_checkpoint_save(0, &torn_path, 0);
        hook.after_checkpoint_save(1, &safe_path, 0);
        assert_eq!(fs::read(&torn_path).unwrap().len(), 50);
        assert_eq!(fs::read(&safe_path).unwrap().len(), 100);
        assert_eq!(hook.tears, 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
