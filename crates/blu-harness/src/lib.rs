//! # blu-harness — repository-level examples and integration tests
//!
//! This crate exists to host the top-level `examples/` binaries and
//! `tests/` integration suites (mapped via explicit `[[example]]` /
//! `[[test]]` paths), so they can exercise the whole workspace public
//! API exactly as a downstream user would. The library itself only
//! re-exports the workspace crates for convenient `use` lines in
//! those binaries — plus [`chaos`], the deterministic fleet-scale
//! fault-schedule compiler and invariant checker used by the chaos
//! integration suite and the `blu chaos` subcommand.

#![forbid(unsafe_code)]

pub mod chaos;

pub use blu_core;
pub use blu_phy;
pub use blu_sim;
pub use blu_traces;
pub use blu_wifi;
