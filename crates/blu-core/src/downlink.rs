//! Downlink access-aware scheduling (paper §3.7).
//!
//! On the DL the conflict manifests as **collisions**: the eNB
//! transmits into its TxOP regardless of the clients' local channel
//! state, and a hidden terminal active near a scheduled client
//! corrupts that client's reception. Over-scheduling transmissions is
//! not possible (the eNB cannot stack more than `M` streams), but the
//! blue-print still helps: an *access-aware* DL scheduler (Eqn. 5)
//! weights clients by their clear-channel probability `p(i)`,
//! steering transmissions toward clients whose receptions are likely
//! to survive — reducing collisions and raising goodput.
//!
//! The DL emulator below replays the same interference traces used on
//! the UL: a client's reception in a sub-frame fails iff one of its
//! adjacent hidden terminals is active (the same event that would
//! have blocked its UL CCA).

use crate::metrics::UplinkMetrics;
use crate::sched::{MatrixRates, PfAverager, SchedInput, UlScheduler};
use blu_phy::cell::CellConfig;
use blu_phy::mcs::McsTable;
use blu_sim::power::Db;
use blu_sim::time::SubframeIndex;
use blu_traces::schema::TestbedTrace;

/// DL emulation counters (reuses the RB accounting of
/// [`UplinkMetrics`]; `rbs_blocked` counts receptions lost to hidden
/// terminals — DL collisions).
pub type DlMetrics = UplinkMetrics;

/// Replay a trace through a DL scheduler: the eNB fills every RB of
/// every DL sub-frame; a scheduled client's RB delivers its bits iff
/// the client's channel is clean in that sub-frame.
///
/// Any [`UlScheduler`] works as the DL scheduler — PF for the
/// baseline, [`crate::sched::AccessAwareScheduler`] for the
/// blue-print-driven variant (the schedule structure is identical;
/// only the failure semantics differ).
pub fn run_downlink(
    trace: &TestbedTrace,
    scheduler: &mut dyn UlScheduler,
    cell: &CellConfig,
    n_subframes: u64,
) -> Result<DlMetrics, crate::error::BluError> {
    trace
        .validate()
        .map_err(crate::error::BluError::InvalidTrace)?;
    let n = trace.ground_truth.n_clients;
    let n_rbs = cell.numerology.n_rbs;
    let mcs = McsTable::release10();
    let mut averager = PfAverager::new(n, 100.0);
    let mut metrics = DlMetrics::new(n);
    for sf_idx in 0..n_subframes {
        let sf = SubframeIndex(sf_idx);
        // Grant-time rate estimate per client (flat across RBs on DL;
        // per-RB diversity matters less for this comparison).
        let rates = MatrixRates::build(n, n_rbs, |ue, _| {
            mcs.rate_for_sinr(Db(trace.mean_snr_db[ue]), &cell.numerology)
        });
        let input = SchedInput {
            n_clients: n,
            n_rbs,
            m_antennas: cell.m_antennas,
            k_max: cell.max_ues_per_subframe,
            max_group: cell.m_antennas, // no over-scheduling on DL
            rates: &rates,
            avg_tput: &averager.avg,
        };
        let schedule = scheduler.schedule(&input);
        let clean = trace.access.at(sf);
        let mut delivered = vec![0.0; n];
        let mut all_utilized = true;
        for rb in 0..n_rbs {
            let group = schedule.group(rb);
            if group.is_empty() {
                all_utilized = false;
                continue;
            }
            metrics.rbs_scheduled += 1;
            let mut rb_bits = 0.0;
            for ue in group.iter() {
                if clean.contains(ue) {
                    let bits = rates.rate(ue, rb)
                        * crate::sched::mimo_penalty(group.len(), cell.m_antennas);
                    delivered[ue] += bits;
                    metrics.bits_per_client[ue] += bits;
                    rb_bits += bits;
                } // else: reception collided with hidden-terminal traffic
            }
            if rb_bits > 0.0 {
                metrics.rbs_utilized += 1;
            } else {
                metrics.rbs_blocked += 1; // DL collision
                all_utilized = false;
            }
            metrics.bits_delivered += rb_bits;
        }
        metrics.subframes += 1;
        if all_utilized {
            metrics.fully_utilized_subframes += 1;
        }
        averager.update(&delivered);
    }
    Ok(metrics)
}

// `rates.rate` used above needs the trait in scope.
use crate::sched::RateMap;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{AccessAwareScheduler, PfScheduler};
    use blu_sim::time::Micros;
    use blu_traces::capture::{capture_synthetic, CaptureConfig};

    fn quick_trace(seed: u64) -> TestbedTrace {
        capture_synthetic(
            &CaptureConfig {
                duration: Micros::from_secs(20),
                q_range: (0.3, 0.6),
                ..CaptureConfig::testbed_default()
            },
            seed,
        )
    }

    fn small_cell() -> CellConfig {
        let mut c = CellConfig::testbed_siso();
        c.numerology.n_rbs = 10;
        c
    }

    #[test]
    fn dl_collisions_occur_under_interference() {
        let trace = quick_trace(1);
        let m = run_downlink(&trace, &mut PfScheduler, &small_cell(), 500).unwrap();
        assert_eq!(m.subframes, 500);
        assert!(m.rbs_blocked > 0, "hidden terminals must corrupt DL");
        assert!(m.bits_delivered > 0.0);
    }

    #[test]
    fn access_aware_dl_beats_pf_on_goodput() {
        // §3.7's claim: access-aware scheduling lifts DL efficiency.
        let trace = quick_trace(2);
        let cell = small_cell();
        let pf = run_downlink(&trace, &mut PfScheduler, &cell, 800).unwrap();
        let p: Vec<f64> = (0..trace.ground_truth.n_clients)
            .map(|i| trace.ground_truth.p_individual(i))
            .collect();
        let aa = run_downlink(&trace, &mut AccessAwareScheduler::new(p), &cell, 800).unwrap();
        assert!(
            aa.rb_utilization() > pf.rb_utilization(),
            "AA {} vs PF {}",
            aa.rb_utilization(),
            pf.rb_utilization()
        );
    }

    #[test]
    fn interference_free_dl_is_fully_utilized() {
        let mut trace = quick_trace(3);
        // Strip the interference: everyone always clean.
        trace.ground_truth.hts.clear();
        trace.wifi.timelines.clear();
        trace.wifi.labels.clear();
        for acc in trace.access.accessible.iter_mut() {
            *acc = blu_sim::clientset::ClientSet::all(trace.access.n_ues);
        }
        let m = run_downlink(&trace, &mut PfScheduler, &small_cell(), 200).unwrap();
        assert_eq!(m.rbs_blocked, 0);
        assert!((m.rb_utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic() {
        let trace = quick_trace(4);
        let a = run_downlink(&trace, &mut PfScheduler, &small_cell(), 100).unwrap();
        let b = run_downlink(&trace, &mut PfScheduler, &small_cell(), 100).unwrap();
        assert_eq!(a, b);
    }
}
