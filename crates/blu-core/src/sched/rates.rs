//! Per-client per-RB instantaneous rate sources.

/// A map from (client, RB) to the single-stream rate `r_{i,b}` in
/// bits per RB per sub-frame, as estimated by the eNB at grant time.
pub trait RateMap {
    /// Rate of client `ue` on RB `rb`.
    fn rate(&self, ue: usize, rb: usize) -> f64;

    /// Dense-matrix downcast, so hot paths that loop over many
    /// (client, RB) pairs can read rates through a concrete type
    /// (inlined load) instead of a virtual call per lookup. Values are
    /// identical either way; this only removes dispatch.
    fn as_matrix(&self) -> Option<&MatrixRates> {
        None
    }
}

/// Dense rate matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixRates {
    n_rbs: usize,
    /// Row-major `[ue][rb]`.
    data: Vec<f64>,
}

impl MatrixRates {
    /// Build from a per-client-per-RB closure.
    pub fn build(n_clients: usize, n_rbs: usize, f: impl Fn(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(n_clients * n_rbs);
        for ue in 0..n_clients {
            for rb in 0..n_rbs {
                let r = f(ue, rb);
                assert!(
                    r >= 0.0 && r.is_finite(),
                    "invalid rate {r} for ({ue},{rb})"
                );
                data.push(r);
            }
        }
        MatrixRates { n_rbs, data }
    }

    /// A flat-rate matrix (every client, every RB the same rate).
    pub fn flat(n_clients: usize, n_rbs: usize, rate: f64) -> Self {
        Self::build(n_clients, n_rbs, |_, _| rate)
    }
}

impl RateMap for MatrixRates {
    fn rate(&self, ue: usize, rb: usize) -> f64 {
        self.data[ue * self.n_rbs + rb]
    }

    fn as_matrix(&self) -> Option<&MatrixRates> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_layout() {
        let m = MatrixRates::build(2, 3, |u, b| (u * 10 + b) as f64);
        assert_eq!(m.rate(0, 0), 0.0);
        assert_eq!(m.rate(0, 2), 2.0);
        assert_eq!(m.rate(1, 0), 10.0);
        assert_eq!(m.rate(1, 2), 12.0);
    }

    #[test]
    fn flat_rates() {
        let m = MatrixRates::flat(3, 4, 7.5);
        assert_eq!(m.rate(2, 3), 7.5);
    }

    #[test]
    #[should_panic(expected = "invalid rate")]
    fn rejects_negative_rates() {
        let _ = MatrixRates::build(1, 1, |_, _| -1.0);
    }
}
