//! The access-aware baseline scheduler (paper Eqn. 5).
//!
//! A weighted PF scheduler that discounts each client's utility by
//! its *individual* access probability `p(i)` — the best one can do
//! with per-client measurements but **no dependency information**.
//! It still schedules at most `M` clients per RB: without the joint
//! distribution, over-scheduling risks pairing clients silenced by
//! the same hidden terminal (the paper's Fig. 5 failure case), so the
//! safe policy is not to over-schedule at all. This is exactly the
//! baseline the paper evaluates ("AA").

use super::{pf::PfScheduler, SchedInput, UlScheduler};
use blu_phy::grant::RbSchedule;

/// The access-aware scheduler.
#[derive(Debug, Clone)]
pub struct AccessAwareScheduler {
    /// Individual access probabilities per client.
    pub p_access: Vec<f64>,
}

impl AccessAwareScheduler {
    /// Construct from per-client access probabilities.
    pub fn new(p_access: Vec<f64>) -> Self {
        assert!(p_access.iter().all(|&p| (0.0..=1.0).contains(&p)));
        AccessAwareScheduler { p_access }
    }
}

impl UlScheduler for AccessAwareScheduler {
    fn name(&self) -> &'static str {
        "AA"
    }

    fn schedule(&mut self, input: &SchedInput<'_>) -> RbSchedule {
        assert_eq!(self.p_access.len(), input.n_clients);
        let p = &self.p_access;
        PfScheduler::schedule_with_weights(input, input.m_antennas, &|ue, rb| {
            p[ue] * input.weight(ue, rb)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::rates::MatrixRates;
    use blu_sim::clientset::ClientSet;

    #[test]
    fn prefers_accessible_clients() {
        // Equal rates and averages, but client 0 is usually blocked.
        let rates = MatrixRates::flat(2, 4, 100.0);
        let avg = vec![10.0, 10.0];
        let input = SchedInput {
            n_clients: 2,
            n_rbs: 4,
            m_antennas: 1,
            k_max: 8,
            max_group: 1,
            rates: &rates,
            avg_tput: &avg,
        };
        let mut aa = AccessAwareScheduler::new(vec![0.2, 0.9]);
        let sched = aa.schedule(&input);
        for rb in 0..4 {
            assert_eq!(sched.group(rb), ClientSet::singleton(1));
        }
    }

    #[test]
    fn rate_can_outweigh_access() {
        // Client 0: p = 0.5 but 4× the rate → expected utility wins.
        let rates = MatrixRates::build(2, 2, |ue, _| if ue == 0 { 400.0 } else { 100.0 });
        let avg = vec![10.0, 10.0];
        let input = SchedInput {
            n_clients: 2,
            n_rbs: 2,
            m_antennas: 1,
            k_max: 8,
            max_group: 1,
            rates: &rates,
            avg_tput: &avg,
        };
        let mut aa = AccessAwareScheduler::new(vec![0.5, 1.0]);
        let sched = aa.schedule(&input);
        assert_eq!(sched.group(0), ClientSet::singleton(0));
    }

    #[test]
    fn never_overschedules() {
        let rates = MatrixRates::flat(8, 4, 100.0);
        let avg = vec![10.0; 8];
        let input = SchedInput {
            n_clients: 8,
            n_rbs: 4,
            m_antennas: 2,
            k_max: 8,
            max_group: 4, // even if the cap allowed more
            rates: &rates,
            avg_tput: &avg,
        };
        let mut aa = AccessAwareScheduler::new(vec![0.5; 8]);
        let sched = aa.schedule(&input);
        assert!(sched.max_group_size() <= 2, "AA must not over-schedule");
    }

    #[test]
    fn zero_access_clients_skipped() {
        let rates = MatrixRates::flat(2, 2, 100.0);
        let avg = vec![10.0, 10.0];
        let input = SchedInput {
            n_clients: 2,
            n_rbs: 2,
            m_antennas: 1,
            k_max: 8,
            max_group: 1,
            rates: &rates,
            avg_tput: &avg,
        };
        let mut aa = AccessAwareScheduler::new(vec![0.0, 0.4]);
        let sched = aa.schedule(&input);
        for rb in 0..2 {
            assert_eq!(sched.group(rb), ClientSet::singleton(1));
        }
    }
}
