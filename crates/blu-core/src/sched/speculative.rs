//! BLU's speculative scheduler (paper §3.2.2, Eqns. 3–4).
//!
//! Per RB, clients are added greedily: starting from the empty group,
//! add the client `ℓ*` with the largest *expected* utility increment
//! `E(G ∪ ℓ) − E(G)` (Eqn. 3), where the expectation runs over the
//! joint access pattern of the group (Eqn. 4):
//!
//! ```text
//! E(G) = Σ_{patterns} P(pattern) · penalty(|g|) · Σ_{i∈g} r_{i,b}/R_i
//! ```
//!
//! with `g` the clients of the pattern that transmit; patterns with
//! more than `M` transmitters contribute nothing (collision). The
//! group grows while the increment is positive, up to the `f·M` cap
//! (f = 2 by default) — beyond which collisions erase the gains (the
//! paper's diminishing-returns observation).
//!
//! ## Hot-path structure
//!
//! The greedy builder is *incremental*: the per-RB weight vector and
//! the per-client access probabilities are hoisted out of the
//! candidate loop (and, since the distribution source is immutable
//! for the scheduler's lifetime, `p(i)` is filled once per instance
//! rather than once per sub-frame), the subset-sum table is a reused
//! scratch buffer (no allocation per candidate), and candidates are
//! pruned with the admissible upper bound
//!
//! ```text
//! E(G ∪ ℓ) ≤ E(G) + p(ℓ)·w(ℓ)
//! ```
//!
//! (ℓ's own contribution is at most `p(ℓ)·w(ℓ)` since the MIMO
//! penalty is ≤ 1, and adding a client can only *lower* the existing
//! members' contribution: the penalty is non-increasing in stream
//! count and extra collisions zero terms out). A candidate whose
//! bound cannot beat both the incumbent best and the acceptance
//! threshold is skipped without evaluating the `O(2^w)` expectation.
//!
//! Two further short-circuits keep the pruned path allocation- and
//! lock-free in steady state, both **bit-identical** by construction:
//!
//! * **Singleton fast path** — on the first greedy iteration the
//!   group is empty, and [`expectation_kernel`] over `{ℓ}` reduces
//!   *exactly* (same float ops: `x·1.0 = x`, `x−0.0 = x`,
//!   `mimo_penalty(1, m) = m/m = 1.0`) to `p(ℓ)·w(ℓ)` — the already
//!   cached pruning bound. The dominant `O(N)` singleton candidates
//!   per RB therefore cost one multiply each, no distribution query.
//! * **Local distribution memo** — the provider's shared cache is
//!   behind a `Mutex` (it serves the parallel trial fan-out); the
//!   scheduler keeps a private sorted `(bitmask, Arc)` memo so repeat
//!   candidates across RBs and sub-frames skip the lock and hash
//!   entirely. Same `Arc`s, same values.
//!
//! Pruned and exhaustive modes share one float kernel
//! ([`expectation_kernel`]) and therefore produce **bit-identical**
//! schedules — `SpeculativeScheduler::exhaustive` keeps the
//! evaluate-everything path alive as the differential-test oracle.
//!
//! Cost: the pattern distribution is `O(h·2^w)` (cached per client
//! set by the provider, handed out as a shared `Arc<[f64]>`) and the
//! expectation `O(2^w)` via the subset-sum table, `w ≤ f·M ≤ 8`.

use super::{
    mimo_penalty, pf::PfScheduler, pf::PfScratch, MatrixRates, RateMap, SchedInput, UlScheduler,
};
use crate::error::BluError;
use crate::joint::AccessDistribution;
use blu_phy::grant::RbSchedule;
use blu_sim::clientset::ClientSet;
use std::sync::Arc;

/// Minimum expected-utility increment to keep adding clients.
const MIN_GAIN: f64 = 1e-9;

/// Safety slack subtracted from the pruning threshold so float noise
/// in the upper bound can never skip a candidate the exhaustive path
/// would have picked.
const PRUNE_SLACK: f64 = 1e-9;

/// Bound on the scheduler-local distribution memo. The working set is
/// the candidate groups of one cell (`O(N·fM)` per RB, heavily
/// repeated across RBs and sub-frames); on overflow the memo is
/// cleared wholesale — deterministic, and the next sub-frame rebuilds
/// the live entries from the provider's shared cache.
const DIST_MEMO_CAP: usize = 1024;

/// Eqn. 4 evaluated over an explicit pattern distribution: the
/// expected PF utility of a group whose members (ascending) have
/// per-RB PF `weights`. `blocked_sum` is caller-provided scratch for
/// the subset-sum table — reused across calls, no allocation on the
/// hot path. This single kernel backs both the pruned and the
/// exhaustive builder, which is what makes their schedules
/// bit-identical.
fn expectation_kernel(
    dist: &[f64],
    weights: &[f64],
    m_ant: usize,
    blocked_sum: &mut Vec<f64>,
) -> f64 {
    let n = weights.len();
    debug_assert_eq!(dist.len(), 1 << n);
    let total: f64 = weights.iter().sum();
    // Unrolled n ∈ {1, 2}: the same pattern terms in the same
    // accumulation order as the generic loop below, with the exact
    // identities `blocked_sum[0] = 0`, `total − 0.0 = total` and
    // `mimo_penalty(1, m) = 1.0` (for m ≥ 1) substituted — every
    // product is bit-identical to the table path. Groups of one and
    // two dominate the emulator workload (SISO over-scheduling caps
    // groups at f·M = 2), and skipping the subset-sum table halves the
    // pair-candidate cost.
    if n == 1 {
        let p = dist[0];
        return if p != 0.0 && m_ant >= 1 {
            p * total
        } else {
            0.0
        };
    }
    if n == 2 {
        let mut e = 0.0;
        let p_both = dist[0];
        if p_both != 0.0 && 2 <= m_ant {
            e += p_both * mimo_penalty(2, m_ant) * total;
        }
        if m_ant >= 1 {
            let p1 = dist[1]; // member 0 blocked, member 1 transmits
            if p1 != 0.0 {
                e += p1 * (total - weights[0]);
            }
            let p2 = dist[2]; // member 1 blocked, member 0 transmits
            if p2 != 0.0 {
                e += p2 * (total - weights[1]);
            }
        }
        return e;
    }
    blocked_sum.clear();
    blocked_sum.resize(1 << n, 0.0);
    // Subset-sum of weights over blocked masks.
    for m in 1usize..(1 << n) {
        let low = m.trailing_zeros() as usize;
        blocked_sum[m] = blocked_sum[m & (m - 1)] + weights[low];
    }
    let mut e = 0.0;
    for (m, &p) in dist.iter().enumerate() {
        if p == 0.0 {
            continue;
        }
        let transmitting = n - m.count_ones() as usize;
        if transmitting == 0 || transmitting > m_ant {
            continue; // silence or collision
        }
        e += p * mimo_penalty(transmitting, m_ant) * (total - blocked_sum[m]);
    }
    e
}

/// Reusable buffers for one scheduler instance — sized once, reused
/// across candidates, RBs and sub-frames.
#[derive(Default)]
struct Scratch {
    /// `input.weight(ue, rb)` for the RB being built (hoisted out of
    /// the candidate loop — the weight of a client does not change
    /// while one RB's group is grown).
    weights_rb: Vec<f64>,
    /// Individual access probability per client, for the pruning
    /// bound and the singleton fast path. The distribution source is
    /// fixed and immutable for the scheduler's lifetime, so this is
    /// filled once per instance (refreshed only if the client count
    /// changes).
    p_ind: Vec<f64>,
    /// Members of the group under construction, ascending.
    members: Vec<usize>,
    /// Weight vector of a candidate group, member order.
    weights: Vec<f64>,
    /// Subset-sum table for [`expectation_kernel`].
    blocked_sum: Vec<f64>,
    /// Scheduler-local pattern-distribution memo, sorted by client-set
    /// bitmask: repeat candidates skip the provider cache's mutex and
    /// hash. Handed-out `Arc`s are the provider's own — same values.
    memo: Vec<(u128, Arc<[f64]>)>,
    /// Precomputed pair expectation terms, indexed `lo·n + hi` for
    /// `lo < hi` (see [`PairTerms`]). The distribution source is
    /// immutable, so pair pattern probabilities never change for a
    /// scheduler's lifetime — only the PF weights do, and those enter
    /// as two multiplies at evaluation time.
    pairs: Vec<PairTerms>,
    /// `(n_clients, m_antennas)` the pair table was built for.
    pairs_shape: (usize, usize),
    /// Flat-path weight matrix, `ue·n_rbs + rb` — the whole sub-frame's
    /// PF weights computed row-sequentially once per `schedule` call.
    w_mat: Vec<f64>,
    /// Flat-path best singleton expectation per RB.
    best_e: Vec<f64>,
    /// Flat-path best singleton client per RB (`usize::MAX` = none).
    best_ue: Vec<usize>,
    /// Scratch for the PF fallback on empty RBs.
    pf: PfScratch,
}

/// One pair's weight-independent expectation coefficients, laid out so
/// the pair evaluation replays [`expectation_kernel`]'s `n = 2` float
/// operations exactly:
/// `e = t0pen·(w_lo + w_hi) + t1·(total − w_lo) + t2·(total − w_hi)`.
#[derive(Default, Clone, Copy)]
struct PairTerms {
    /// `dist[0] · mimo_penalty(2, M)` (both members transmit); `0.0`
    /// when `M < 2`, matching the kernel's collision skip.
    t0pen: f64,
    /// `dist[1]` — member `lo` blocked, `hi` transmits alone
    /// (`mimo_penalty(1, M) = 1.0` exactly, so the probability is the
    /// whole coefficient).
    t1: f64,
    /// `dist[2]` — member `hi` blocked, `lo` transmits alone.
    t2: f64,
}

/// The speculative scheduler, parameterized by a joint access
/// distribution source (inferred blue-print, ground truth, empirical
/// trace statistics, or an independence approximation).
pub struct SpeculativeScheduler<'a> {
    dist: &'a dyn AccessDistribution,
    prune: bool,
    scratch: Scratch,
}

impl<'a> SpeculativeScheduler<'a> {
    /// Wrap an access-distribution source (pruned hot path — the
    /// default).
    pub fn new(dist: &'a dyn AccessDistribution) -> Self {
        SpeculativeScheduler {
            dist,
            prune: true,
            scratch: Scratch::default(),
        }
    }

    /// Reference mode: evaluate every candidate, no pruning. Produces
    /// bit-identical schedules to [`SpeculativeScheduler::new`]
    /// (shared float kernel); kept as the oracle for differential
    /// tests and as the pre-optimization baseline for perf runs.
    pub fn exhaustive(dist: &'a dyn AccessDistribution) -> Self {
        SpeculativeScheduler {
            dist,
            prune: false,
            scratch: Scratch::default(),
        }
    }

    /// Whether the admissible-bound pruning is active.
    pub fn pruning_enabled(&self) -> bool {
        self.prune
    }

    /// Eqn. 4: the expected PF utility of scheduling group `w` on
    /// RB `rb`.
    pub fn expected_utility(
        &self,
        input: &SchedInput<'_>,
        rb: usize,
        w: ClientSet,
    ) -> Result<f64, BluError> {
        if w.is_empty() {
            return Ok(0.0);
        }
        let dist = self.dist.pattern_distribution(w)?;
        let weights: Vec<f64> = w.iter().map(|ue| input.weight(ue, rb)).collect();
        let mut blocked_sum = Vec::new();
        Ok(expectation_kernel(
            &dist,
            &weights,
            input.m_antennas,
            &mut blocked_sum,
        ))
    }

    /// Fill the pruning inputs: individual access probabilities and
    /// the pair-term table. The distribution source is immutable for
    /// the scheduler's lifetime, so after the first sub-frame these
    /// are shape checks. No-op in exhaustive mode.
    fn prepare(&mut self, input: &SchedInput<'_>) -> Result<(), BluError> {
        if !self.prune {
            return Ok(());
        }
        let n = input.n_clients;
        if self.scratch.p_ind.len() != n {
            self.scratch.p_ind.clear();
            for ue in 0..n {
                self.scratch.p_ind.push(self.dist.p_individual(ue)?);
            }
        }
        let m = input.m_antennas;
        if self.scratch.pairs_shape != (n, m) {
            self.scratch.pairs.clear();
            self.scratch.pairs.resize(n * n, PairTerms::default());
            // M = 0 never grants anyone; leave the table zeroed so the
            // (unreachable) pair evaluation matches the kernel's
            // all-patterns-skipped result.
            if m >= 1 {
                for lo in 0..n {
                    for hi in (lo + 1)..n {
                        let d = self
                            .dist
                            .pattern_distribution(ClientSet::EMPTY.with(lo).with(hi))?;
                        self.scratch.pairs[lo * n + hi] = PairTerms {
                            t0pen: if m >= 2 {
                                d[0] * mimo_penalty(2, m)
                            } else {
                                0.0
                            },
                            t1: d[1],
                            t2: d[2],
                        };
                    }
                }
            }
            self.scratch.pairs_shape = (n, m);
        }
        Ok(())
    }

    /// The greedy group construction for one RB (Eqn. 3), under the
    /// hard cell-wide `K`-distinct-clients budget.
    fn best_group_for_rb(
        &mut self,
        input: &SchedInput<'_>,
        rb: usize,
        used: ClientSet,
    ) -> Result<ClientSet, BluError> {
        let dist_src = self.dist;
        let prune = self.prune;
        let Scratch {
            weights_rb,
            p_ind,
            members,
            weights,
            blocked_sum,
            memo,
            pairs,
            ..
        } = &mut self.scratch;

        // Hoisted: every candidate this RB reuses these weights. The
        // dense-matrix downcast replays `SchedInput::weight`'s exact
        // expression through a concrete type — same loads, same
        // divide, no virtual dispatch per lookup.
        weights_rb.clear();
        if let Some(mat) = input.rates.as_matrix() {
            for ue in 0..input.n_clients {
                weights_rb.push(mat.rate(ue, rb) / input.avg_tput[ue].max(1.0));
            }
        } else {
            for ue in 0..input.n_clients {
                weights_rb.push(input.weight(ue, rb));
            }
        }

        members.clear();
        let mut group = ClientSet::EMPTY;
        let mut e = 0.0;
        while group.len() < input.max_group {
            let budget_left = input.k_max.saturating_sub(used.union(group).len());
            let mut best: Option<(usize, f64)> = None;
            for ue in 0..input.n_clients {
                if group.contains(ue) {
                    continue;
                }
                if !used.contains(ue) && budget_left == 0 {
                    continue; // would exceed K distinct clients
                }
                let w_ue = weights_rb[ue];
                if w_ue <= 0.0 {
                    continue;
                }
                if prune {
                    // Admissible bound: E(G∪ℓ) ≤ E(G) + p(ℓ)·w(ℓ).
                    // To matter, a candidate must strictly beat the
                    // incumbent best AND clear the acceptance
                    // threshold e + MIN_GAIN; a bound below both
                    // (minus slack) cannot change the outcome.
                    let ub = e + p_ind[ue] * w_ue;
                    let threshold = match best {
                        Some((_, b)) => b.max(e + MIN_GAIN),
                        None => e + MIN_GAIN,
                    };
                    if ub < threshold - PRUNE_SLACK {
                        continue;
                    }
                    if members.is_empty() && input.m_antennas >= 1 {
                        // Singleton fast path: the kernel over {ue}
                        // computes 0.0 + p·mimo_penalty(1,M)·(w−0.0)
                        // with penalty exactly M/M = 1.0 — i.e. p·w,
                        // the bound itself. Skip the distribution
                        // query. (M = 0 would make the kernel skip
                        // the pattern as a collision; leave that
                        // degenerate case to the full evaluation.)
                        let e_new = p_ind[ue] * w_ue;
                        if best.is_none_or(|(_, b)| e_new > b) {
                            best = Some((ue, e_new));
                        }
                        continue;
                    }
                    if members.len() == 1 && input.m_antennas >= 1 {
                        // Pair fast path: the precomputed terms replay
                        // the kernel's n = 2 evaluation — `total` is
                        // the same left-to-right sum, each product the
                        // same two roundings — so `e_new` is bit-equal
                        // to the kernel over the pair distribution.
                        let b0 = members[0];
                        let (lo, hi) = if ue < b0 { (ue, b0) } else { (b0, ue) };
                        let t = &pairs[lo * input.n_clients + hi];
                        let w_lo = weights_rb[lo];
                        let w_hi = weights_rb[hi];
                        let total = w_lo + w_hi;
                        let e_new = t.t0pen * total + t.t1 * (total - w_lo) + t.t2 * (total - w_hi);
                        if best.is_none_or(|(_, b)| e_new > b) {
                            best = Some((ue, e_new));
                        }
                        continue;
                    }
                }
                let w = group.with(ue);
                let fresh: Arc<[f64]>;
                // The local memo is a pruned-path optimization only:
                // the exhaustive oracle keeps querying the provider
                // directly, so the perf baseline that pairs it with a
                // clone-per-query provider stays a faithful
                // reconstruction of the pre-overhaul path.
                let dist: &[f64] = if prune {
                    match memo.binary_search_by_key(&w.0, |ent| ent.0) {
                        Ok(i) => &memo[i].1,
                        Err(pos) => {
                            let d = dist_src.pattern_distribution(w)?;
                            if memo.len() >= DIST_MEMO_CAP {
                                memo.clear();
                                memo.push((w.0, d));
                                &memo[memo.len() - 1].1
                            } else {
                                memo.insert(pos, (w.0, d));
                                &memo[pos].1
                            }
                        }
                    }
                } else {
                    fresh = dist_src.pattern_distribution(w)?;
                    &fresh
                };
                // Candidate weight vector in ascending-member order.
                let pos = members.partition_point(|&m| m < ue);
                weights.clear();
                weights.extend(members[..pos].iter().map(|&m| weights_rb[m]));
                weights.push(w_ue);
                weights.extend(members[pos..].iter().map(|&m| weights_rb[m]));
                let e_new = expectation_kernel(dist, weights, input.m_antennas, blocked_sum);
                if best.is_none_or(|(_, b)| e_new > b) {
                    best = Some((ue, e_new));
                }
            }
            match best {
                Some((ue, e_new)) if e_new - e > MIN_GAIN => {
                    group.insert(ue);
                    let pos = members.partition_point(|&m| m < ue);
                    members.insert(pos, ue);
                    e = e_new;
                }
                _ => break,
            }
        }
        Ok(group)
    }

    /// Whether the vectorized whole-sub-frame builder applies. Each
    /// condition removes a behaviour the flat path does not replicate:
    /// pruning (the flat path *is* the pruned fast path — the
    /// exhaustive oracle keeps the per-RB builder), a dense rate
    /// matrix (hoisting the weight computation out of the RB loop),
    /// `M ≥ 1` (the singleton/pair fast paths assume
    /// `mimo_penalty(1, M) = 1`), groups capped at pairs (the table
    /// only covers pairs), and a `K` budget that can never bind
    /// (`K ≥ N` makes the `budget_left == 0 ∧ ue ∉ used` skip
    /// unreachable — when the budget hits zero every client is already
    /// in `used ∪ group` — so the flat path may drop the sequential
    /// `used` threading entirely).
    fn flat_path_applies(&self, input: &SchedInput<'_>) -> bool {
        self.prune
            && input.m_antennas >= 1
            && (1..=2).contains(&input.max_group)
            && input.k_max >= input.n_clients
    }

    /// Vectorized greedy over the whole sub-frame (the data-oriented
    /// twin of [`SpeculativeScheduler::best_group_for_rb`], gated by
    /// [`SpeculativeScheduler::flat_path_applies`]). Stage one computes
    /// the best *singleton* for every RB columnar-style: the weight
    /// matrix is filled row-sequentially (same `rate / avg.max(1.0)`
    /// divide as [`SchedInput::weight`]), then one pass per client
    /// updates a running argmax per RB. The update rule
    /// `none ∨ e > best` replays the per-RB candidate loop's
    /// `is_none_or` exactly — ascending client order, strict greater,
    /// first-wins ties — so the chosen singleton (and its expectation
    /// bits) match the scalar path on every RB. Stage two replays the
    /// second greedy iteration per RB through the [`PairTerms`] table,
    /// identical float ops in identical order. The per-RB schedules
    /// this produces are bit-identical to the scalar builder's; the
    /// differential tests drive both against the exhaustive oracle.
    fn schedule_flat(&mut self, input: &SchedInput<'_>, mat: &MatrixRates, sched: &mut RbSchedule) {
        let n = input.n_clients;
        let n_rbs = input.n_rbs;
        let Scratch {
            p_ind,
            pairs,
            w_mat,
            best_e,
            best_ue,
            pf,
            ..
        } = &mut self.scratch;

        w_mat.clear();
        for ue in 0..n {
            let av = input.avg_tput[ue].max(1.0);
            for rb in 0..n_rbs {
                w_mat.push(mat.rate(ue, rb) / av);
            }
        }
        best_e.clear();
        best_e.resize(n_rbs, 0.0);
        best_ue.clear();
        best_ue.resize(n_rbs, usize::MAX);
        for ue in 0..n {
            let p = p_ind[ue];
            let row = &w_mat[ue * n_rbs..(ue + 1) * n_rbs];
            for (rb, &w) in row.iter().enumerate() {
                if w <= 0.0 {
                    continue;
                }
                let e = p * w;
                if best_ue[rb] == usize::MAX || e > best_e[rb] {
                    best_e[rb] = e;
                    best_ue[rb] = ue;
                }
            }
        }
        for rb in 0..n_rbs {
            let b0 = best_ue[rb];
            let e = best_e[rb];
            // Acceptance replays `e_new − e > MIN_GAIN` with e = 0.0
            // (`x − 0.0` never changes the comparison's outcome). The
            // negation must stay NaN-rejecting: a NaN best falls back
            // exactly like the scalar path's empty group.
            if b0 == usize::MAX || e.partial_cmp(&MIN_GAIN) != Some(std::cmp::Ordering::Greater) {
                // Same PF fallback as the scalar path's empty-group
                // case. `used` is irrelevant under the `K ≥ N` gate
                // (see `flat_path_applies`): PF's budget skip is as
                // unreachable as ours.
                let (fallback, _) = PfScheduler::best_group_for_rb_with(
                    input,
                    rb,
                    ClientSet::EMPTY,
                    input.m_antennas,
                    &|ue, rb| input.weight(ue, rb),
                    pf,
                );
                for ue in fallback.iter() {
                    sched.assign(rb, ue);
                }
                continue;
            }
            sched.assign(rb, b0);
            if input.max_group < 2 {
                continue;
            }
            let mut best: Option<(usize, f64)> = None;
            for ue in 0..n {
                if ue == b0 {
                    continue;
                }
                let w_ue = w_mat[ue * n_rbs + rb];
                if w_ue <= 0.0 {
                    continue;
                }
                let ub = e + p_ind[ue] * w_ue;
                let threshold = match best {
                    Some((_, b)) => b.max(e + MIN_GAIN),
                    None => e + MIN_GAIN,
                };
                if ub < threshold - PRUNE_SLACK {
                    continue;
                }
                let (lo, hi) = if ue < b0 { (ue, b0) } else { (b0, ue) };
                let t = &pairs[lo * n + hi];
                let w_lo = w_mat[lo * n_rbs + rb];
                let w_hi = w_mat[hi * n_rbs + rb];
                let total = w_lo + w_hi;
                let e_new = t.t0pen * total + t.t1 * (total - w_lo) + t.t2 * (total - w_hi);
                if best.is_none_or(|(_, b)| e_new > b) {
                    best = Some((ue, e_new));
                }
            }
            if let Some((ue, e_new)) = best {
                if e_new - e > MIN_GAIN {
                    sched.assign(rb, ue);
                }
            }
        }
    }
}

impl UlScheduler for SpeculativeScheduler<'_> {
    fn name(&self) -> &'static str {
        "BLU"
    }

    fn schedule(&mut self, input: &SchedInput<'_>) -> RbSchedule {
        let mut sched = RbSchedule::empty(input.n_rbs);
        let mut used = ClientSet::EMPTY;
        // Distribution errors route into PF fallback (library error
        // policy: a scheduler that panics is strictly worse than one
        // that schedules conservatively).
        let prepared = self.prepare(input).is_ok();
        if prepared && self.flat_path_applies(input) {
            if let Some(mat) = input.rates.as_matrix() {
                self.schedule_flat(input, mat, &mut sched);
                return sched;
            }
        }
        for rb in 0..input.n_rbs {
            let group = if prepared {
                self.best_group_for_rb(input, rb, used)
                    .unwrap_or(ClientSet::EMPTY)
            } else {
                ClientSet::EMPTY
            };
            if group.is_empty() {
                // Never leave an RB unallocated if anyone is
                // schedulable: fall back to the best PF client (the
                // paper allocates all RBs every sub-frame).
                let (fallback, _) = PfScheduler::best_group_for_rb_with(
                    input,
                    rb,
                    used,
                    input.m_antennas,
                    &|ue, rb| input.weight(ue, rb),
                    &mut self.scratch.pf,
                );
                for ue in fallback.iter() {
                    sched.assign(rb, ue);
                    used.insert(ue);
                }
                continue;
            }
            for ue in group.iter() {
                sched.assign(rb, ue);
                used.insert(ue);
            }
        }
        sched
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::joint::{IndependentAccess, TopologyAccess};
    use crate::sched::rates::MatrixRates;
    use blu_sim::rng::DetRng;
    use blu_sim::topology::{HiddenTerminal, InterferenceTopology};

    fn input<'a>(
        rates: &'a MatrixRates,
        avg: &'a [f64],
        m: usize,
        max_group: usize,
        n_rbs: usize,
    ) -> SchedInput<'a> {
        SchedInput {
            n_clients: avg.len(),
            n_rbs,
            m_antennas: m,
            k_max: 10,
            max_group,
            rates,
            avg_tput: avg,
        }
    }

    #[test]
    fn reduces_to_pf_without_interference() {
        // DESIGN.md invariant 4: interference-free topology → BLU
        // schedules exactly like PF (no over-scheduling: a second
        // always-transmitting client would only collide).
        let topo = InterferenceTopology::interference_free(4);
        let acc = TopologyAccess::new(&topo);
        let rates = MatrixRates::build(4, 6, |ue, rb| 100.0 + (ue * 7 + rb * 3) as f64);
        let avg = vec![50.0, 80.0, 120.0, 60.0];
        let inp = input(&rates, &avg, 1, 2, 6);
        let mut blu = SpeculativeScheduler::new(&acc);
        let mut pf = PfScheduler;
        let sb = blu.schedule(&inp);
        let sp = pf.schedule(&inp);
        assert_eq!(sb, sp);
    }

    #[test]
    fn overschedules_interference_diverse_clients() {
        // Clients 0 and 1 are blocked by *different* HTs half the
        // time: over-scheduling both on the same RB nearly doubles
        // expected utilization. Client 2 shares client 0's HT.
        // q = 0.7: blocking severe enough that over-scheduling a
        // diverse pair strictly beats a single client (at q = 0.5 the
        // two choices tie exactly and BLU correctly declines).
        let topo = InterferenceTopology {
            n_clients: 3,
            hts: vec![
                HiddenTerminal {
                    q: 0.7,
                    edges: ClientSet::from_iter([0, 2]),
                },
                HiddenTerminal {
                    q: 0.7,
                    edges: ClientSet::singleton(1),
                },
            ],
        };
        let acc = TopologyAccess::new(&topo);
        let rates = MatrixRates::flat(3, 1, 100.0);
        let avg = vec![10.0; 3];
        let inp = input(&rates, &avg, 1, 2, 1);
        let mut blu = SpeculativeScheduler::new(&acc);
        let sched = blu.schedule(&inp);
        let g = sched.group(0);
        assert_eq!(g.len(), 2, "should over-schedule: {g}");
        // The pair must be interference-diverse (0,1) or (2,1),
        // never the shared-HT pair (0,2).
        assert!(g.contains(1), "{g}");
    }

    #[test]
    fn never_pairs_clients_sharing_a_hidden_terminal() {
        // Only clients 0 and 2 available, both under the same HT:
        // their accesses are perfectly correlated — over-scheduling
        // can only collide. BLU must schedule one.
        let topo = InterferenceTopology {
            n_clients: 2,
            hts: vec![HiddenTerminal {
                q: 0.5,
                edges: ClientSet::from_iter([0, 1]),
            }],
        };
        let acc = TopologyAccess::new(&topo);
        let rates = MatrixRates::flat(2, 1, 100.0);
        let avg = vec![10.0; 2];
        let inp = input(&rates, &avg, 1, 2, 1);
        let mut blu = SpeculativeScheduler::new(&acc);
        let sched = blu.schedule(&inp);
        assert_eq!(sched.group(0).len(), 1);
    }

    #[test]
    fn respects_group_cap() {
        // Many perfectly-diverse clients: group must stop at f·M.
        let hts = (0..8)
            .map(|i| HiddenTerminal {
                q: 0.7,
                edges: ClientSet::singleton(i),
            })
            .collect();
        let topo = InterferenceTopology { n_clients: 8, hts };
        let acc = TopologyAccess::new(&topo);
        let rates = MatrixRates::flat(8, 1, 100.0);
        let avg = vec![10.0; 8];
        let inp = input(&rates, &avg, 2, 4, 1);
        let mut blu = SpeculativeScheduler::new(&acc);
        let sched = blu.schedule(&inp);
        assert!(sched.max_group_size() <= 4);
        assert!(sched.max_group_size() > 2, "should over-schedule past M");
    }

    #[test]
    fn expected_utility_example_from_paper() {
        // The paper's SISO example: s₂ is over-scheduled only if
        // P(s₂,s̄₁)·w₂ + P(s̄₂,s₁)·w₁ > P(s₁)·w₁.
        let topo = InterferenceTopology {
            n_clients: 2,
            hts: vec![
                HiddenTerminal {
                    q: 0.4,
                    edges: ClientSet::singleton(0),
                },
                HiddenTerminal {
                    q: 0.4,
                    edges: ClientSet::singleton(1),
                },
            ],
        };
        let acc = TopologyAccess::new(&topo);
        let rates = MatrixRates::flat(2, 1, 100.0);
        let avg = vec![10.0; 2];
        let inp = input(&rates, &avg, 1, 2, 1);
        let blu = SpeculativeScheduler::new(&acc);
        let _w = 100.0 / 10.0;
        // E({0}) = p(0)·w = 0.6·10 = 6.
        let e1 = blu
            .expected_utility(&inp, 0, ClientSet::singleton(0))
            .unwrap();
        assert!((e1 - 6.0).abs() < 1e-9, "{e1}");
        // E({0,1}) = P(0, 1̄)·w + P(0̄, 1)·w = 0.6·0.4·10 ×2 = 4.8.
        // (Both transmitting is a SISO collision: no utility.)
        let e2 = blu
            .expected_utility(&inp, 0, ClientSet::from_iter([0, 1]))
            .unwrap();
        assert!((e2 - 4.8).abs() < 1e-9, "{e2}");
        // 4.8 < 6 → this pair must NOT be over-scheduled at q = 0.4…
        let mut sched = SpeculativeScheduler::new(&acc);
        let s = sched.schedule(&inp);
        assert_eq!(s.group(0).len(), 1);
        // …but at q = 0.6 blocking (p = 0.4):
        // E({0}) = 4, E({0,1}) = 2·(0.4·0.6·10) = 4.8 > 4 → pair.
        let topo2 = InterferenceTopology {
            n_clients: 2,
            hts: vec![
                HiddenTerminal {
                    q: 0.6,
                    edges: ClientSet::singleton(0),
                },
                HiddenTerminal {
                    q: 0.6,
                    edges: ClientSet::singleton(1),
                },
            ],
        };
        let acc2 = TopologyAccess::new(&topo2);
        let mut sched2 = SpeculativeScheduler::new(&acc2);
        let s2 = sched2.schedule(&inp);
        assert_eq!(s2.group(0).len(), 2);
    }

    #[test]
    fn mumimo_expected_utility_counts_up_to_m_streams() {
        let topo = InterferenceTopology::interference_free(2);
        let acc = TopologyAccess::new(&topo);
        let rates = MatrixRates::flat(2, 1, 100.0);
        let avg = vec![10.0; 2];
        let inp = input(&rates, &avg, 2, 4, 1);
        let blu = SpeculativeScheduler::new(&acc);
        // Both always transmit; M = 2 decodes both at penalty 0.5.
        let e = blu
            .expected_utility(&inp, 0, ClientSet::from_iter([0, 1]))
            .unwrap();
        assert!((e - 0.5 * 20.0).abs() < 1e-9);
    }

    #[test]
    fn rb_never_left_empty_when_clients_exist() {
        // A client that never accesses still shouldn't leave RBs
        // unallocated (the paper allocates every RB; spectral
        // resources are never intentionally wasted).
        let topo = InterferenceTopology {
            n_clients: 1,
            hts: vec![HiddenTerminal {
                q: 1.0,
                edges: ClientSet::singleton(0),
            }],
        };
        let acc = TopologyAccess::new(&topo);
        let rates = MatrixRates::flat(1, 2, 100.0);
        let avg = vec![10.0];
        let inp = input(&rates, &avg, 1, 2, 2);
        let mut blu = SpeculativeScheduler::new(&acc);
        let sched = blu.schedule(&inp);
        assert_eq!(sched.occupied_rbs(), 2);
    }

    #[test]
    fn independence_assumption_overschedules_shared_ht_pairs() {
        // Ablation seed: with the independence approximation BLU
        // pairs clients sharing one HT (wrongly) — demonstrating why
        // the joint distribution matters.
        let ind = IndependentAccess::new(vec![0.4, 0.4]).unwrap();
        let rates = MatrixRates::flat(2, 1, 100.0);
        let avg = vec![10.0; 2];
        let inp = input(&rates, &avg, 1, 2, 1);
        let mut blu = SpeculativeScheduler::new(&ind);
        let sched = blu.schedule(&inp);
        // Independence says pairing is worth it (E = 2·0.4·0.6·10 =
        // 4.8 > 4) — but if the truth were a shared HT this collides.
        assert_eq!(sched.group(0).len(), 2);
    }

    #[test]
    fn distribution_error_falls_back_to_pf() {
        // A provider that only knows 2 clients, driven with 3:
        // queries for client 2 error, and the error must route into
        // PF fallback (never panic, never leave RBs empty).
        let ind = IndependentAccess::new(vec![0.5, 0.5]).unwrap();
        let rates = MatrixRates::flat(3, 2, 100.0);
        let avg = vec![10.0; 3];
        let inp = input(&rates, &avg, 1, 2, 2);
        let mut blu = SpeculativeScheduler::new(&ind);
        let sched = blu.schedule(&inp);
        assert_eq!(sched.occupied_rbs(), 2);
    }

    #[test]
    fn warm_scheduler_state_never_leaks_across_subframes() {
        // One pruned instance reused across many sub-frames — its
        // p_ind fill, singleton fast path and distribution memo all
        // warm — must stay bit-identical to a *fresh* exhaustive
        // oracle at every step.
        for seed in 0..10u64 {
            let mut rng = DetRng::seed_from_u64(seed * 31 + 5);
            let topo = InterferenceTopology::random(8, 5, (0.05, 0.9), 0.5, &mut rng);
            let acc = TopologyAccess::new(&topo);
            let m = 1 + (seed % 2) as usize;
            let mut pruned = SpeculativeScheduler::new(&acc);
            for step in 0usize..12 {
                let rates = MatrixRates::build(8, 5, |ue, rb| {
                    if (ue * 7 + rb + step) % 5 == 0 {
                        0.0
                    } else {
                        40.0 + ((ue * 11 + rb * 3 + step * 13) % 83) as f64
                    }
                });
                let avg: Vec<f64> = (0..8)
                    .map(|i| 8.0 + ((i * 19 + step * 7) % 31) as f64)
                    .collect();
                let inp = input(&rates, &avg, m, 2 * m, 5);
                let mut exact = SpeculativeScheduler::exhaustive(&acc);
                let a = pruned.schedule(&inp);
                let b = exact.schedule(&inp);
                assert_eq!(a, b, "seed {seed} step {step}: warm state diverged");
            }
        }
    }

    #[test]
    fn flat_path_matches_exhaustive_on_random_geometries() {
        // max_group = 2 with a dense matrix and K ≥ N routes the
        // pruned scheduler through `schedule_flat` (the vectorized
        // whole-sub-frame builder); M ∈ {1, 2} exercises both the
        // collision-zeroed and the penalty-weighted pair terms. The
        // schedules must be bit-identical to the exhaustive per-RB
        // oracle, including RBs where weights go to zero (PF
        // fallback) and sub-frames where avg throughputs shift.
        for seed in 0..24u64 {
            let mut rng = DetRng::seed_from_u64(seed * 101 + 17);
            let topo = InterferenceTopology::random(7, 4, (0.05, 0.95), 0.6, &mut rng);
            let acc = TopologyAccess::new(&topo);
            let m = 1 + (seed % 2) as usize;
            let mut flat = SpeculativeScheduler::new(&acc);
            for step in 0usize..6 {
                let rates = MatrixRates::build(7, 9, |ue, rb| {
                    if (ue * 5 + rb * 3 + step) % 7 == 0 {
                        0.0
                    } else {
                        30.0 + ((ue * 13 + rb * 11 + step * 5) % 71) as f64
                    }
                });
                let avg: Vec<f64> = (0..7)
                    .map(|i| 5.0 + ((i * 23 + step * 9) % 41) as f64)
                    .collect();
                let inp = SchedInput {
                    n_clients: 7,
                    n_rbs: 9,
                    m_antennas: m,
                    k_max: 7, // == N: budget provably can't bind
                    max_group: 2,
                    rates: &rates,
                    avg_tput: &avg,
                };
                assert!(flat.flat_path_applies(&inp));
                let mut exact = SpeculativeScheduler::exhaustive(&acc);
                let a = flat.schedule(&inp);
                let b = exact.schedule(&inp);
                assert_eq!(a, b, "seed {seed} step {step} m {m}: flat diverged");
            }
        }
    }

    #[test]
    fn pruned_matches_exhaustive_on_random_topologies() {
        // The bound E(G∪ℓ) ≤ E(G) + p(ℓ)·w(ℓ) is admissible, and both
        // paths share one float kernel — schedules must be
        // bit-identical, not merely equal in utility.
        for seed in 0..30u64 {
            let mut rng = DetRng::seed_from_u64(seed);
            let topo = InterferenceTopology::random(8, 5, (0.05, 0.9), 0.5, &mut rng);
            let acc = TopologyAccess::new(&topo);
            let rates = MatrixRates::build(8, 5, |ue, rb| {
                50.0 + ((ue * 13 + rb * 7 + seed as usize * 3) % 97) as f64
            });
            let avg: Vec<f64> = (0..8).map(|i| 10.0 + (i * 17 % 29) as f64).collect();
            let m = 1 + (seed % 2) as usize;
            let inp = input(&rates, &avg, m, 2 * m, 5);
            let mut pruned = SpeculativeScheduler::new(&acc);
            let mut exact = SpeculativeScheduler::exhaustive(&acc);
            assert!(pruned.pruning_enabled());
            assert!(!exact.pruning_enabled());
            let a = pruned.schedule(&inp);
            let b = exact.schedule(&inp);
            assert_eq!(a, b, "seed {seed}: pruned and exhaustive diverged");
        }
    }
}
