//! The measurement-phase scheduler: executes an Algorithm-1 plan
//! through the ordinary scheduling interface.
//!
//! During the measurement phase clients still transfer data, but the
//! schedule is chosen for *information*: each sub-frame carries the
//! planned K-client set, every client on its own contiguous RB chunk
//! (SISO — over-scheduling would conflate collision losses with
//! blocking during estimation). Driving this through the emulator
//! exercises the full pilot-classification path, so the measured
//! statistics inherit §3.3's blocked/fading/collision discrimination
//! for free.

use super::{SchedInput, UlScheduler};
use crate::error::BluError;
use crate::measure::MeasurementPlan;
use blu_phy::grant::RbSchedule;

/// Replays a [`MeasurementPlan`] as a sequence of schedules.
pub struct MeasurementScheduler {
    plan: Vec<blu_sim::clientset::ClientSet>,
    cursor: usize,
}

impl MeasurementScheduler {
    /// Wrap a plan; errors on an empty plan (nothing to replay).
    pub fn new(plan: &MeasurementPlan) -> Result<Self, BluError> {
        if plan.subframes.is_empty() {
            return Err(BluError::EmptyInput("measurement plan"));
        }
        Ok(MeasurementScheduler {
            plan: plan.subframes.clone(),
            cursor: 0,
        })
    }

    /// How many schedules have been issued so far.
    pub fn issued(&self) -> usize {
        self.cursor
    }
}

impl UlScheduler for MeasurementScheduler {
    fn name(&self) -> &'static str {
        "MEAS"
    }

    fn schedule(&mut self, input: &SchedInput<'_>) -> RbSchedule {
        let set = self.plan[self.cursor % self.plan.len()];
        self.cursor += 1;
        let members: Vec<usize> = set.iter().collect();
        let mut sched = RbSchedule::empty(input.n_rbs);
        if members.is_empty() {
            return sched;
        }
        // Contiguous, near-equal RB chunks, one client per chunk.
        let chunk = input.n_rbs / members.len();
        let remainder = input.n_rbs % members.len();
        let mut rb = 0;
        for (i, &ue) in members.iter().enumerate() {
            let extra = usize::from(i < remainder);
            for _ in 0..(chunk + extra) {
                if rb < input.n_rbs {
                    sched.assign(rb, ue);
                    rb += 1;
                }
            }
        }
        sched
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::measurement_schedule;
    use crate::sched::MatrixRates;

    fn input<'a>(rates: &'a MatrixRates, avg: &'a [f64], n_rbs: usize) -> SchedInput<'a> {
        SchedInput {
            n_clients: avg.len(),
            n_rbs,
            m_antennas: 1,
            k_max: 10,
            max_group: 2,
            rates,
            avg_tput: avg,
        }
    }

    #[test]
    fn follows_the_plan_without_overscheduling() {
        let plan = measurement_schedule(8, 4, 3).unwrap();
        let mut sched = MeasurementScheduler::new(&plan).unwrap();
        let rates = MatrixRates::flat(8, 12, 100.0);
        let avg = vec![10.0; 8];
        let inp = input(&rates, &avg, 12);
        for sf in 0..plan.subframes.len() {
            let s = sched.schedule(&inp);
            assert_eq!(s.scheduled_clients(), plan.subframes[sf], "SF {sf}");
            assert_eq!(s.max_group_size(), 1, "measurement must be SISO");
            assert_eq!(s.occupied_rbs(), 12, "all RBs carry data");
        }
        assert_eq!(sched.issued(), plan.subframes.len());
    }

    #[test]
    fn rb_chunks_are_balanced() {
        let plan = measurement_schedule(6, 3, 1).unwrap();
        let mut sched = MeasurementScheduler::new(&plan).unwrap();
        let rates = MatrixRates::flat(6, 10, 100.0);
        let avg = vec![10.0; 6];
        let s = sched.schedule(&input(&rates, &avg, 10));
        // 10 RBs over 3 clients: chunks of 4/3/3.
        let mut sizes: Vec<usize> = plan.subframes[0]
            .iter()
            .map(|ue| s.rbs_of(ue).len())
            .collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![3, 3, 4]);
    }

    #[test]
    fn wraps_around_for_long_runs() {
        let plan = measurement_schedule(4, 4, 1).unwrap();
        assert_eq!(plan.subframes.len(), 1);
        let mut sched = MeasurementScheduler::new(&plan).unwrap();
        let rates = MatrixRates::flat(4, 8, 100.0);
        let avg = vec![10.0; 4];
        let inp = input(&rates, &avg, 8);
        let a = sched.schedule(&inp);
        let b = sched.schedule(&inp);
        assert_eq!(a, b);
    }
}
