//! Uplink schedulers: proportional fair (Eqn. 1), access-aware
//! (Eqn. 5), and BLU's speculative scheduler (Eqns. 3–4).
//!
//! All three share the same shape: for each RB of a sub-frame choose
//! a group of clients maximizing (expected) marginal PF utility
//! `r_{i,b,g} / R_i`, subject to the MU-MIMO group-size cap and the
//! cell-wide limit of `K` distinct clients per sub-frame. They differ
//! in what they know about client channel access:
//!
//! * **PF** assumes every scheduled client transmits (licensed-
//!   spectrum behaviour) — in unlicensed spectrum its grants go
//!   unused whenever a hidden terminal silences a client;
//! * **access-aware** weights each client by its individual access
//!   probability `p(i)` but cannot over-schedule safely because it
//!   has no dependency information;
//! * **speculative (BLU)** over-schedules up to `f·M` clients per RB,
//!   choosing groups by expected utility under the *joint* access
//!   distribution so that over-scheduled clients are silenced by
//!   *different* hidden terminals.

pub mod access_aware;
pub mod measurement;
pub mod pf;
pub mod rates;
pub mod speculative;

pub use access_aware::AccessAwareScheduler;
pub use measurement::MeasurementScheduler;
pub use pf::PfScheduler;
pub use rates::{MatrixRates, RateMap};
pub use speculative::SpeculativeScheduler;

use blu_phy::grant::RbSchedule;

/// Per-sub-frame inputs common to every scheduler.
pub struct SchedInput<'a> {
    /// Number of clients in the cell.
    pub n_clients: usize,
    /// RBs on the carrier.
    pub n_rbs: usize,
    /// eNB antennas `M`.
    pub m_antennas: usize,
    /// Maximum distinct clients per sub-frame `K`.
    pub k_max: usize,
    /// Per-RB group cap (`M` for PF/AA; `f·M` for BLU).
    pub max_group: usize,
    /// Instantaneous rates `r_{i,b}` in bits per RB per sub-frame
    /// (single-stream; MU-MIMO degradation applied via
    /// [`mimo_penalty`]).
    pub rates: &'a dyn RateMap,
    /// PF average throughputs `R_i` (same units as rates).
    pub avg_tput: &'a [f64],
}

impl SchedInput<'_> {
    /// The PF weight `w_{i,b} = r_{i,b} / R_i`, with the customary
    /// floor on `R_i` so new clients are not infinitely favored.
    pub fn weight(&self, ue: usize, rb: usize) -> f64 {
        self.rates.rate(ue, rb) / self.avg_tput[ue].max(1.0)
    }
}

/// Expected per-stream rate fraction of an `s`-stream zero-forcing
/// MU-MIMO group on `M` antennas, relative to single-stream: the
/// classic `(M − s + 1)/M` post-ZF power loss with i.i.d. Rayleigh
/// channels.
pub fn mimo_penalty(streams: usize, m_antennas: usize) -> f64 {
    if streams == 0 {
        return 0.0;
    }
    if streams > m_antennas {
        return 0.0; // collision: nothing decodes
    }
    (m_antennas - streams + 1) as f64 / m_antennas as f64
}

/// A scheduler producing one sub-frame's (or TxOP's) UL schedule.
pub trait UlScheduler {
    /// Short display name for experiment tables.
    fn name(&self) -> &'static str;

    /// Produce the RB schedule for one sub-frame.
    fn schedule(&mut self, input: &SchedInput<'_>) -> RbSchedule;
}

/// PF average-throughput tracker (`R_i` with exponential weighting,
/// α as in the paper's update equation).
#[derive(Debug, Clone)]
pub struct PfAverager {
    /// Current averages, one per client.
    pub avg: Vec<f64>,
    /// Exponential window length α (sub-frames).
    pub alpha: f64,
}

impl PfAverager {
    /// New tracker; α = 100 sub-frames is conventional.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(alpha >= 1.0);
        PfAverager {
            avg: vec![0.0; n],
            alpha,
        }
    }

    /// Update after a sub-frame: `R_i ← (1/α)·delivered + (1−1/α)·R_i`.
    pub fn update(&mut self, delivered_bits: &[f64]) {
        assert_eq!(delivered_bits.len(), self.avg.len());
        let a = 1.0 / self.alpha;
        for (r, &d) in self.avg.iter_mut().zip(delivered_bits) {
            *r = a * d + (1.0 - a) * *r;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mimo_penalty_shape() {
        assert_eq!(mimo_penalty(1, 4), 1.0);
        assert_eq!(mimo_penalty(4, 4), 0.25);
        assert_eq!(mimo_penalty(2, 4), 0.75);
        assert_eq!(mimo_penalty(5, 4), 0.0);
        assert_eq!(mimo_penalty(0, 4), 0.0);
        assert_eq!(mimo_penalty(1, 1), 1.0);
        assert_eq!(mimo_penalty(2, 1), 0.0);
    }

    #[test]
    fn pf_averager_converges_to_rate() {
        let mut avg = PfAverager::new(1, 50.0);
        for _ in 0..2_000 {
            avg.update(&[100.0]);
        }
        assert!((avg.avg[0] - 100.0).abs() < 1e-6);
    }

    #[test]
    fn pf_averager_decays_idle_clients() {
        let mut avg = PfAverager::new(2, 10.0);
        avg.update(&[100.0, 100.0]);
        let before = avg.avg[1];
        for _ in 0..100 {
            avg.update(&[100.0, 0.0]);
        }
        assert!(avg.avg[1] < before * 0.01);
        assert!(avg.avg[0] > 50.0);
    }
}
