//! The native proportional-fair scheduler (paper Eqn. 1).
//!
//! Per RB, pick the group of up to `M` clients maximizing
//! `Σ_{i∈g} r_{i,b,g}/R_i` (with the ZF group-rate penalty applied
//! through [`mimo_penalty`]), subject to the cell-wide limit of `K`
//! distinct clients per sub-frame. This is the scheduler deployed in
//! licensed spectrum — it has no notion of channel availability at
//! the clients, which is precisely why it under-utilizes in
//! unlicensed spectrum.

use super::{mimo_penalty, SchedInput, UlScheduler};
use blu_phy::grant::RbSchedule;
use blu_sim::clientset::ClientSet;

/// Reusable buffers for [`PfScheduler::best_group_for_rb_with`]:
/// the descending-weight candidate list and the budget-filtered
/// prefix chain, hoisted out of the per-RB loop so steady-state
/// scheduling allocates nothing. One instance per scheduling context
/// (the speculative scheduler's PF fallback owns one; the shared RB
/// loop keeps one per call, reused across its RBs).
#[derive(Debug, Clone, Default)]
pub(crate) struct PfScratch {
    weighted: Vec<(usize, f64)>,
    chain: Vec<(usize, f64)>,
}

/// The PF scheduler (stateless between sub-frames; `R_i` lives in the
/// caller's [`super::PfAverager`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct PfScheduler;

impl PfScheduler {
    /// Reference implementation of the per-RB group builder: walk
    /// clients in descending weight order, skipping new clients once
    /// the cell-wide `K`-distinct budget is exhausted, and keep the
    /// prefix size with the best ZF-penalized utility.
    ///
    /// Allocates its working vectors per call; kept verbatim both as
    /// the baseline schedulers' deployed path and as the
    /// differential-test oracle for the scratch-hoisted variant
    /// ([`PfScheduler::best_group_for_rb_with`]) that BLU's fallback
    /// uses.
    pub(crate) fn best_group_for_rb(
        input: &SchedInput<'_>,
        rb: usize,
        used: ClientSet,
        cap: usize,
        weight_of: &dyn Fn(usize, usize) -> f64,
    ) -> (ClientSet, f64) {
        let mut weighted: Vec<(usize, f64)> = (0..input.n_clients)
            .map(|ue| (ue, weight_of(ue, rb)))
            .filter(|&(_, w)| w > 0.0)
            .collect();
        weighted.sort_by(|a, b| b.1.total_cmp(&a.1));
        // Hard K cap: new clients only while budget remains.
        let mut budget = input.k_max.saturating_sub(used.len());
        let mut chain: Vec<(usize, f64)> = Vec::with_capacity(cap);
        for &(ue, w) in &weighted {
            if chain.len() >= cap {
                break;
            }
            if used.contains(ue) {
                chain.push((ue, w));
            } else if budget > 0 {
                budget -= 1;
                chain.push((ue, w));
            }
        }
        let mut best = (ClientSet::EMPTY, 0.0);
        let mut prefix = 0.0;
        for (s, &(_, w)) in chain.iter().enumerate() {
            prefix += w;
            let util = prefix * mimo_penalty(s + 1, input.m_antennas);
            if util > best.1 {
                best = (chain[..=s].iter().map(|&(ue, _)| ue).collect(), util);
            }
        }
        best
    }

    /// [`PfScheduler::best_group_for_rb`] on caller-provided scratch:
    /// identical comparisons in identical order (the sort stays
    /// *stable*, so equal weights keep ascending-client order), hence
    /// bit-identical output — pinned by the differential test below.
    pub(crate) fn best_group_for_rb_with(
        input: &SchedInput<'_>,
        rb: usize,
        used: ClientSet,
        cap: usize,
        weight_of: &dyn Fn(usize, usize) -> f64,
        scratch: &mut PfScratch,
    ) -> (ClientSet, f64) {
        let PfScratch { weighted, chain } = scratch;
        weighted.clear();
        weighted.extend(
            (0..input.n_clients)
                .map(|ue| (ue, weight_of(ue, rb)))
                .filter(|&(_, w)| w > 0.0),
        );
        weighted.sort_by(|a, b| b.1.total_cmp(&a.1));
        let mut budget = input.k_max.saturating_sub(used.len());
        chain.clear();
        for &(ue, w) in weighted.iter() {
            if chain.len() >= cap {
                break;
            }
            if used.contains(ue) {
                chain.push((ue, w));
            } else if budget > 0 {
                budget -= 1;
                chain.push((ue, w));
            }
        }
        let mut best = (ClientSet::EMPTY, 0.0);
        let mut prefix = 0.0;
        for (s, &(_, w)) in chain.iter().enumerate() {
            prefix += w;
            let util = prefix * mimo_penalty(s + 1, input.m_antennas);
            if util > best.1 {
                best = (chain[..=s].iter().map(|&(ue, _)| ue).collect(), util);
            }
        }
        best
    }

    /// Shared RB loop for PF-style schedulers: fill every RB,
    /// enforcing the K-distinct-clients constraint.
    ///
    /// Deliberately runs the *reference* group builder: PF and the
    /// access-aware scheduler are the paper's baselines, and the perf
    /// telemetry (`BENCH_sched.json`, CI floor) measures BLU's
    /// speculative path against the baseline as deployed. Only BLU's
    /// own hot path (including its PF fallback) uses the
    /// scratch-hoisted variant.
    pub(crate) fn schedule_with_weights(
        input: &SchedInput<'_>,
        cap: usize,
        weight_of: &dyn Fn(usize, usize) -> f64,
    ) -> RbSchedule {
        let mut sched = RbSchedule::empty(input.n_rbs);
        let mut used = ClientSet::EMPTY;
        for rb in 0..input.n_rbs {
            let (group, _) = Self::best_group_for_rb(input, rb, used, cap, weight_of);
            for ue in group.iter() {
                sched.assign(rb, ue);
                used.insert(ue);
            }
        }
        sched
    }
}

impl UlScheduler for PfScheduler {
    fn name(&self) -> &'static str {
        "PF"
    }

    fn schedule(&mut self, input: &SchedInput<'_>) -> RbSchedule {
        PfScheduler::schedule_with_weights(input, input.m_antennas, &|ue, rb| input.weight(ue, rb))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::rates::MatrixRates;

    fn flat_input<'a>(
        rates: &'a MatrixRates,
        avg: &'a [f64],
        m: usize,
        k: usize,
    ) -> SchedInput<'a> {
        SchedInput {
            n_clients: avg.len(),
            n_rbs: 4,
            m_antennas: m,
            k_max: k,
            max_group: m,
            rates,
            avg_tput: avg,
        }
    }

    #[test]
    fn siso_picks_argmax_weight() {
        // Client 1 has double the rate: with equal averages it gets
        // every RB.
        let rates = MatrixRates::build(3, 4, |ue, _| if ue == 1 { 200.0 } else { 100.0 });
        let avg = vec![10.0, 10.0, 10.0];
        let input = flat_input(&rates, &avg, 1, 8);
        let sched = PfScheduler.schedule(&input);
        for rb in 0..4 {
            assert_eq!(sched.group(rb), ClientSet::singleton(1));
        }
    }

    #[test]
    fn pf_weights_rebalance() {
        // Same rates but client 1 already has a high average: the
        // others win.
        let rates = MatrixRates::flat(3, 4, 100.0);
        let avg = vec![10.0, 1_000.0, 10.0];
        let input = flat_input(&rates, &avg, 1, 8);
        let sched = PfScheduler.schedule(&input);
        for rb in 0..4 {
            assert!(!sched.group(rb).contains(1), "RB {rb}");
        }
    }

    #[test]
    fn mumimo_groups_when_worthwhile() {
        // M = 2, equal clients: penalty(2,2) = 0.5, so two equal
        // clients give the same utility as one — tie goes to single;
        // make the second client slightly better than half to force
        // pairing.
        let rates = MatrixRates::build(2, 4, |ue, _| if ue == 0 { 100.0 } else { 80.0 });
        let avg = vec![10.0, 10.0];
        let input = flat_input(&rates, &avg, 2, 8);
        let sched = PfScheduler.schedule(&input);
        // util(1) = 10; util(2) = (10+8)·0.5 = 9 → singles win.
        assert_eq!(sched.max_group_size(), 1);

        // M = 4: penalty(2,4) = 0.75 → util(2) = 13.5 > 10 → pair.
        let input4 = SchedInput {
            m_antennas: 4,
            max_group: 4,
            ..flat_input(&rates, &avg, 2, 8)
        };
        let sched4 = PfScheduler.schedule(&input4);
        assert_eq!(sched4.max_group_size(), 2);
    }

    #[test]
    fn never_exceeds_m_clients_per_rb() {
        let rates = MatrixRates::flat(10, 4, 100.0);
        let avg = vec![10.0; 10];
        let input = flat_input(&rates, &avg, 2, 20);
        let sched = PfScheduler.schedule(&input);
        assert!(sched.max_group_size() <= 2);
    }

    #[test]
    fn respects_k_distinct_clients() {
        // 10 clients with per-RB preferences that would spread, but
        // K = 2 forces reuse.
        let rates = MatrixRates::build(10, 4, |ue, rb| {
            if ue == rb * 2 || ue == rb * 2 + 1 {
                200.0
            } else {
                100.0
            }
        });
        let avg = vec![10.0; 10];
        let input = flat_input(&rates, &avg, 1, 2);
        let sched = PfScheduler.schedule(&input);
        assert!(sched.scheduled_clients().len() <= 2);
        assert_eq!(sched.occupied_rbs(), 4, "all RBs still filled");
    }

    #[test]
    fn scratch_variant_bit_identical_to_reference() {
        // The hot paths run the scratch-hoisted builder; the
        // allocating reference stays as the oracle. Random geometries,
        // shared scratch reused across every case (stale contents must
        // never leak into a result).
        use blu_sim::rng::DetRng;
        let mut rng = DetRng::seed_from_u64(0x9F5C);
        let mut scratch = PfScratch::default();
        for case in 0..200 {
            let n = 1 + rng.below(12);
            let n_rbs = 1 + rng.below(6);
            let m = 1 + rng.below(4);
            let k = 1 + rng.below(n + 2);
            // Duplicate weights often, so stable-sort tie handling is
            // actually exercised; sprinkle zeros for the filter.
            let vals: Vec<f64> = (0..4).map(|_| rng.range_f64(0.0, 50.0)).collect();
            let w: Vec<Vec<f64>> = (0..n)
                .map(|_| {
                    (0..n_rbs)
                        .map(|_| {
                            if rng.chance(0.2) {
                                0.0
                            } else {
                                vals[rng.below(4)]
                            }
                        })
                        .collect()
                })
                .collect();
            let rates = MatrixRates::build(n, n_rbs, |ue, rb| w[ue][rb]);
            let avg = vec![1.0; n];
            let input = SchedInput {
                n_clients: n,
                n_rbs,
                m_antennas: m,
                k_max: k,
                max_group: m,
                rates: &rates,
                avg_tput: &avg,
            };
            let mut used = ClientSet::EMPTY;
            for rb in 0..n_rbs {
                let weight = |ue: usize, rb: usize| input.weight(ue, rb);
                let (g_ref, u_ref) = PfScheduler::best_group_for_rb(&input, rb, used, m, &weight);
                let (g_hot, u_hot) =
                    PfScheduler::best_group_for_rb_with(&input, rb, used, m, &weight, &mut scratch);
                assert_eq!(g_ref, g_hot, "case {case} rb {rb}");
                assert_eq!(
                    u_ref.to_bits(),
                    u_hot.to_bits(),
                    "case {case} rb {rb}: utilities diverged"
                );
                for ue in g_ref.iter() {
                    used.insert(ue);
                }
            }
        }
    }

    #[test]
    fn zero_rate_clients_not_scheduled() {
        let rates = MatrixRates::build(2, 4, |ue, _| if ue == 0 { 0.0 } else { 50.0 });
        let avg = vec![10.0, 10.0];
        let input = flat_input(&rates, &avg, 1, 8);
        let sched = PfScheduler.schedule(&input);
        for rb in 0..4 {
            assert_eq!(sched.group(rb), ClientSet::singleton(1));
        }
    }
}
