//! The native proportional-fair scheduler (paper Eqn. 1).
//!
//! Per RB, pick the group of up to `M` clients maximizing
//! `Σ_{i∈g} r_{i,b,g}/R_i` (with the ZF group-rate penalty applied
//! through [`mimo_penalty`]), subject to the cell-wide limit of `K`
//! distinct clients per sub-frame. This is the scheduler deployed in
//! licensed spectrum — it has no notion of channel availability at
//! the clients, which is precisely why it under-utilizes in
//! unlicensed spectrum.

use super::{mimo_penalty, SchedInput, UlScheduler};
use blu_phy::grant::RbSchedule;
use blu_sim::clientset::ClientSet;

/// The PF scheduler (stateless between sub-frames; `R_i` lives in the
/// caller's [`super::PfAverager`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct PfScheduler;

impl PfScheduler {
    /// Pick the best group for one RB: walk clients in descending
    /// weight order, skipping new clients once the cell-wide
    /// `K`-distinct budget is exhausted, and keep the prefix size
    /// with the best ZF-penalized utility.
    pub(crate) fn best_group_for_rb(
        input: &SchedInput<'_>,
        rb: usize,
        used: ClientSet,
        cap: usize,
        weight_of: &dyn Fn(usize, usize) -> f64,
    ) -> (ClientSet, f64) {
        let mut weighted: Vec<(usize, f64)> = (0..input.n_clients)
            .map(|ue| (ue, weight_of(ue, rb)))
            .filter(|&(_, w)| w > 0.0)
            .collect();
        weighted.sort_by(|a, b| b.1.total_cmp(&a.1));
        // Hard K cap: new clients only while budget remains.
        let mut budget = input.k_max.saturating_sub(used.len());
        let mut chain: Vec<(usize, f64)> = Vec::with_capacity(cap);
        for &(ue, w) in &weighted {
            if chain.len() >= cap {
                break;
            }
            if used.contains(ue) {
                chain.push((ue, w));
            } else if budget > 0 {
                budget -= 1;
                chain.push((ue, w));
            }
        }
        let mut best = (ClientSet::EMPTY, 0.0);
        let mut prefix = 0.0;
        for (s, &(_, w)) in chain.iter().enumerate() {
            prefix += w;
            let util = prefix * mimo_penalty(s + 1, input.m_antennas);
            if util > best.1 {
                best = (chain[..=s].iter().map(|&(ue, _)| ue).collect(), util);
            }
        }
        best
    }

    /// Shared RB loop for PF-style schedulers: fill every RB,
    /// enforcing the K-distinct-clients constraint.
    pub(crate) fn schedule_with_weights(
        input: &SchedInput<'_>,
        cap: usize,
        weight_of: &dyn Fn(usize, usize) -> f64,
    ) -> RbSchedule {
        let mut sched = RbSchedule::empty(input.n_rbs);
        let mut used = ClientSet::EMPTY;
        for rb in 0..input.n_rbs {
            let (group, _) = Self::best_group_for_rb(input, rb, used, cap, weight_of);
            for ue in group.iter() {
                sched.assign(rb, ue);
                used.insert(ue);
            }
        }
        sched
    }
}

impl UlScheduler for PfScheduler {
    fn name(&self) -> &'static str {
        "PF"
    }

    fn schedule(&mut self, input: &SchedInput<'_>) -> RbSchedule {
        PfScheduler::schedule_with_weights(input, input.m_antennas, &|ue, rb| input.weight(ue, rb))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::rates::MatrixRates;

    fn flat_input<'a>(
        rates: &'a MatrixRates,
        avg: &'a [f64],
        m: usize,
        k: usize,
    ) -> SchedInput<'a> {
        SchedInput {
            n_clients: avg.len(),
            n_rbs: 4,
            m_antennas: m,
            k_max: k,
            max_group: m,
            rates,
            avg_tput: avg,
        }
    }

    #[test]
    fn siso_picks_argmax_weight() {
        // Client 1 has double the rate: with equal averages it gets
        // every RB.
        let rates = MatrixRates::build(3, 4, |ue, _| if ue == 1 { 200.0 } else { 100.0 });
        let avg = vec![10.0, 10.0, 10.0];
        let input = flat_input(&rates, &avg, 1, 8);
        let sched = PfScheduler.schedule(&input);
        for rb in 0..4 {
            assert_eq!(sched.group(rb), ClientSet::singleton(1));
        }
    }

    #[test]
    fn pf_weights_rebalance() {
        // Same rates but client 1 already has a high average: the
        // others win.
        let rates = MatrixRates::flat(3, 4, 100.0);
        let avg = vec![10.0, 1_000.0, 10.0];
        let input = flat_input(&rates, &avg, 1, 8);
        let sched = PfScheduler.schedule(&input);
        for rb in 0..4 {
            assert!(!sched.group(rb).contains(1), "RB {rb}");
        }
    }

    #[test]
    fn mumimo_groups_when_worthwhile() {
        // M = 2, equal clients: penalty(2,2) = 0.5, so two equal
        // clients give the same utility as one — tie goes to single;
        // make the second client slightly better than half to force
        // pairing.
        let rates = MatrixRates::build(2, 4, |ue, _| if ue == 0 { 100.0 } else { 80.0 });
        let avg = vec![10.0, 10.0];
        let input = flat_input(&rates, &avg, 2, 8);
        let sched = PfScheduler.schedule(&input);
        // util(1) = 10; util(2) = (10+8)·0.5 = 9 → singles win.
        assert_eq!(sched.max_group_size(), 1);

        // M = 4: penalty(2,4) = 0.75 → util(2) = 13.5 > 10 → pair.
        let input4 = SchedInput {
            m_antennas: 4,
            max_group: 4,
            ..flat_input(&rates, &avg, 2, 8)
        };
        let sched4 = PfScheduler.schedule(&input4);
        assert_eq!(sched4.max_group_size(), 2);
    }

    #[test]
    fn never_exceeds_m_clients_per_rb() {
        let rates = MatrixRates::flat(10, 4, 100.0);
        let avg = vec![10.0; 10];
        let input = flat_input(&rates, &avg, 2, 20);
        let sched = PfScheduler.schedule(&input);
        assert!(sched.max_group_size() <= 2);
    }

    #[test]
    fn respects_k_distinct_clients() {
        // 10 clients with per-RB preferences that would spread, but
        // K = 2 forces reuse.
        let rates = MatrixRates::build(10, 4, |ue, rb| {
            if ue == rb * 2 || ue == rb * 2 + 1 {
                200.0
            } else {
                100.0
            }
        });
        let avg = vec![10.0; 10];
        let input = flat_input(&rates, &avg, 1, 2);
        let sched = PfScheduler.schedule(&input);
        assert!(sched.scheduled_clients().len() <= 2);
        assert_eq!(sched.occupied_rbs(), 4, "all RBs still filled");
    }

    #[test]
    fn zero_rate_clients_not_scheduled() {
        let rates = MatrixRates::build(2, 4, |ue, _| if ue == 0 { 0.0 } else { 50.0 });
        let avg = vec![10.0, 10.0];
        let input = flat_input(&rates, &avg, 1, 8);
        let sched = PfScheduler.schedule(&input);
        for rb in 0..4 {
            assert_eq!(sched.group(rb), ClientSet::singleton(1));
        }
    }
}
