//! MCMC baseline for topology inference.
//!
//! The paper (§3.4) reports having applied Markov-Chain Monte Carlo
//! before designing the deterministic repair: the topology is adapted
//! by random proposals and accepted by Metropolis–Hastings against a
//! likelihood that decays with constraint violation, with simulated
//! annealing. It converges *in distribution*, needs a sample to be
//! drawn for real-time use, and is slower — which is exactly what the
//! ablation bench demonstrates. Kept as a faithful baseline.
//!
//! ## Incremental energy
//!
//! The energy is `total_violation + ht_penalty · |HTs|`. Every
//! proposal edits exactly one hidden terminal, so its energy delta
//! only involves the constraints that terminal touches — the chain
//! therefore maintains a [`ResidualTracker`] and evaluates proposals
//! with `shift_cost`/`edge_change_cost` in O(constraints touched)
//! instead of recomputing `ConstraintSystem::total_violation` over
//! every individual/pair/triple constraint on all 20k steps. The
//! Metropolis accept test uses the delta directly:
//! `ΔE ≤ 0 or U < exp(−ΔE/T)`.
//!
//! [`infer_mcmc_scratch`] keeps the pre-fast-path behavior alive —
//! clone the state, apply the proposal, recompute the full energy —
//! drawing the *identical* proposal/acceptance RNG stream, so the
//! differential tests below can pin that both chains visit the same
//! states and return bit-identical topologies, and `perf_infer` can
//! measure the speedup against it.
//!
//! [`ResidualTracker`]: crate::blueprint::residual::ResidualTracker

use crate::blueprint::constraints::{ConstraintSystem, TransformedHt, TransformedTopology};
use crate::blueprint::infer::{InferenceConfig, InferenceResult};
use crate::blueprint::residual::ResidualTracker;
use crate::error::BluError;
use crate::runtime::deadline::Deadline;
use blu_sim::clientset::ClientSet;
use blu_sim::rng::DetRng;
use blu_sim::topology::InterferenceTopology;

/// MCMC configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McmcConfig {
    /// Number of proposal steps.
    pub steps: usize,
    /// Initial temperature (violation units).
    pub t_start: f64,
    /// Final temperature.
    pub t_end: f64,
    /// Maximum hidden terminals the chain may hold.
    pub max_hts: usize,
    /// Penalty per hidden terminal (Occam prior).
    pub ht_penalty: f64,
}

impl Default for McmcConfig {
    fn default() -> Self {
        McmcConfig {
            steps: 20_000,
            t_start: 1.0,
            t_end: 0.005,
            max_hts: 64,
            ht_penalty: 0.01,
        }
    }
}

impl McmcConfig {
    /// Reject configurations that would make the chain degenerate
    /// instead of letting them surface as NaN temperatures or a
    /// silently empty run 20k subframes later.
    pub fn validate(&self) -> Result<(), BluError> {
        if self.steps == 0 {
            return Err(BluError::InvalidConfig("mcmc steps must be > 0".into()));
        }
        if !self.t_start.is_finite() || !self.t_end.is_finite() {
            return Err(BluError::InvalidConfig(
                "mcmc temperatures must be finite".into(),
            ));
        }
        if !(self.t_end > 0.0 && self.t_start >= self.t_end) {
            return Err(BluError::InvalidConfig(format!(
                "mcmc annealing needs t_start >= t_end > 0 (got t_start={}, t_end={})",
                self.t_start, self.t_end
            )));
        }
        if self.max_hts == 0 {
            return Err(BluError::InvalidConfig("mcmc max_hts must be > 0".into()));
        }
        if !(self.ht_penalty.is_finite() && self.ht_penalty >= 0.0) {
            return Err(BluError::InvalidConfig(format!(
                "mcmc ht_penalty must be finite and >= 0 (got {})",
                self.ht_penalty
            )));
        }
        Ok(())
    }
}

/// Result of an MCMC run.
#[derive(Debug, Clone)]
pub struct McmcResult {
    /// Best-scoring topology visited.
    pub topology: InterferenceTopology,
    /// Its total violation.
    pub violation: f64,
    /// Steps accepted.
    pub accepted: usize,
    /// Proposal steps actually executed (equals `config.steps` unless
    /// a deadline cut the chain short).
    pub steps_done: usize,
    /// Whether the chain ran its full proposal budget.
    pub completed: bool,
    /// Upper bound on proposals executed past a wall-clock deadline.
    pub overshoot: u64,
}

/// One Metropolis proposal. `Stay` stands in for draw outcomes the
/// legacy chain treated as no-ops (add when full, remove/toggle/
/// reweight on an empty state); it has zero energy delta and is
/// always accepted, exactly as the no-op clone was.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Proposal {
    /// No state change.
    Stay,
    /// Push a new hidden terminal.
    AddHt { edges: ClientSet, q_t: f64 },
    /// `swap_remove` terminal `k`.
    RemoveHt { k: usize },
    /// Toggle client `c` on terminal `k` (terminal is removed if its
    /// edge set empties).
    ToggleEdge { k: usize, c: usize },
    /// Set terminal `k`'s weight to `q_new`.
    Reweight { k: usize, q_new: f64 },
}

/// Draw the next proposal. This is the single source of randomness
/// for both the incremental and the from-scratch chain: the draw
/// order (kind, then per-kind parameters) replicates the legacy
/// implementation exactly, so both consume the same RNG stream.
fn draw_proposal(
    rng: &mut DetRng,
    n: usize,
    hts: &[TransformedHt],
    config: &McmcConfig,
    max_stat: f64,
) -> Proposal {
    match rng.below(4) {
        0 => {
            // Add a hidden terminal with a random small edge set.
            if hts.len() < config.max_hts {
                let mut edges = ClientSet::EMPTY;
                let k = 1 + rng.below(3.min(n));
                for _ in 0..k {
                    edges.insert(rng.below(n));
                }
                Proposal::AddHt {
                    edges,
                    q_t: rng.range_f64(0.01, max_stat),
                }
            } else {
                Proposal::Stay
            }
        }
        1 => {
            // Remove a random hidden terminal.
            if hts.is_empty() {
                Proposal::Stay
            } else {
                Proposal::RemoveHt {
                    k: rng.below(hts.len()),
                }
            }
        }
        2 => {
            // Toggle a random edge.
            if hts.is_empty() {
                Proposal::Stay
            } else {
                let k = rng.below(hts.len());
                let c = rng.below(n);
                Proposal::ToggleEdge { k, c }
            }
        }
        _ => {
            // Perturb a weight multiplicatively.
            if hts.is_empty() {
                Proposal::Stay
            } else {
                let k = rng.below(hts.len());
                let f = rng.range_f64(0.6, 1.6);
                Proposal::Reweight {
                    k,
                    q_new: (hts[k].q_t * f).max(1e-4),
                }
            }
        }
    }
}

/// The toggled edge set of `ToggleEdge`.
fn toggled(edges: ClientSet, c: usize) -> ClientSet {
    if edges.contains(c) {
        edges.without(c)
    } else {
        edges.with(c)
    }
}

fn max_individual_stat(sys: &ConstraintSystem) -> f64 {
    sys.individual.iter().cloned().fold(0.1f64, f64::max)
}

/// Run Metropolis–Hastings with annealing; returns the best state.
///
/// Hot path: per-proposal cost is O(constraints touched by the edited
/// hidden terminal), via an incrementally maintained
/// [`ResidualTracker`]; no state clone is made except when a new best
/// is recorded.
pub fn infer_mcmc(sys: &ConstraintSystem, config: &McmcConfig, seed: u64) -> McmcResult {
    infer_mcmc_bounded(sys, config, seed, Deadline::None)
}

/// [`infer_mcmc`] under an anytime deadline: the token is checked
/// once per proposal, and on expiry the best state visited so far is
/// returned with `completed = false`. `Deadline::None` reproduces
/// [`infer_mcmc`] bit-identically (the token then touches no counter
/// and no randomness).
pub fn infer_mcmc_bounded(
    sys: &ConstraintSystem,
    config: &McmcConfig,
    seed: u64,
    deadline: Deadline,
) -> McmcResult {
    let mut token = deadline.token();
    let mut rng = DetRng::seed_from_u64(seed);
    let mut tracker = ResidualTracker::new(sys);
    let mut hts: Vec<TransformedHt> = Vec::new();
    // Running violation of the current state: the empty-state sum,
    // then accumulated proposal deltas.
    let mut violation = tracker.recompute_violation();
    let mut best = hts.clone();
    let mut best_v = violation;
    let mut accepted = 0usize;
    let max_stat = max_individual_stat(sys);
    let mut steps_done = 0usize;

    for step in 0..config.steps {
        if token.tick() {
            break;
        }
        steps_done += 1;
        // Annealing schedule (geometric).
        let frac = step as f64 / config.steps.max(1) as f64;
        let temp = config.t_start * (config.t_end / config.t_start).powf(frac);

        let prop = draw_proposal(&mut rng, sys.n, &hts, config, max_stat);

        // Violation and HT-count-penalty deltas, without touching the
        // state.
        let (dv, dpen) = match prop {
            Proposal::Stay => (0.0, 0.0),
            Proposal::AddHt { edges, q_t } => (tracker.shift_cost(edges, q_t), config.ht_penalty),
            Proposal::RemoveHt { k } => (
                tracker.shift_cost(hts[k].edges, -hts[k].q_t),
                -config.ht_penalty,
            ),
            Proposal::ToggleEdge { k, c } => {
                let old = hts[k].edges;
                let new = toggled(old, c);
                let dpen = if new.is_empty() {
                    -config.ht_penalty
                } else {
                    0.0
                };
                (tracker.edge_change_cost(old, new, hts[k].q_t), dpen)
            }
            Proposal::Reweight { k, q_new } => {
                (tracker.shift_cost(hts[k].edges, q_new - hts[k].q_t), 0.0)
            }
        };
        let de = dv + dpen;
        // The acceptance uniform is drawn unconditionally (common
        // random numbers): the incremental and from-scratch energies
        // can land on opposite sides of zero by one part in 1e15, and
        // a conditional draw would let that desynchronize the RNG
        // streams of the two chains forever after.
        let u = rng.f64();
        let accept = de <= 0.0 || u < (-de / temp.max(1e-9)).exp();
        if accept {
            match prop {
                Proposal::Stay => {}
                Proposal::AddHt { edges, q_t } => {
                    tracker.shift(edges, q_t);
                    hts.push(TransformedHt { q_t, edges });
                }
                Proposal::RemoveHt { k } => {
                    tracker.shift(hts[k].edges, -hts[k].q_t);
                    hts.swap_remove(k);
                }
                Proposal::ToggleEdge { k, c } => {
                    let old = hts[k].edges;
                    let new = toggled(old, c);
                    tracker.apply_edge_change(old, new, hts[k].q_t);
                    if new.is_empty() {
                        hts.swap_remove(k);
                    } else {
                        hts[k].edges = new;
                    }
                }
                Proposal::Reweight { k, q_new } => {
                    tracker.shift(hts[k].edges, q_new - hts[k].q_t);
                    hts[k].q_t = q_new;
                }
            }
            violation += dv;
            accepted += 1;
            if violation < best_v {
                best_v = violation;
                best = hts.clone();
            }
        }
    }
    let mut best = TransformedTopology { hts: best };
    best.prune(1e-4);
    McmcResult {
        topology: best.to_topology(sys.n).canonicalize(),
        violation: best_v,
        accepted,
        steps_done,
        completed: !token.expired(),
        overshoot: token.overshoot(),
    }
}

/// The pre-fast-path reference chain: clone the state, apply the
/// proposal, recompute the full energy with
/// `ConstraintSystem::total_violation`. Kept for differential tests
/// and as the `perf_infer` baseline; it draws the identical RNG
/// stream as [`infer_mcmc`].
pub fn infer_mcmc_scratch(sys: &ConstraintSystem, config: &McmcConfig, seed: u64) -> McmcResult {
    fn apply(topo: &mut TransformedTopology, prop: Proposal) {
        match prop {
            Proposal::Stay => {}
            Proposal::AddHt { edges, q_t } => topo.hts.push(TransformedHt { q_t, edges }),
            Proposal::RemoveHt { k } => {
                topo.hts.swap_remove(k);
            }
            Proposal::ToggleEdge { k, c } => {
                topo.hts[k].edges = toggled(topo.hts[k].edges, c);
                if topo.hts[k].edges.is_empty() {
                    topo.hts.swap_remove(k);
                }
            }
            Proposal::Reweight { k, q_new } => topo.hts[k].q_t = q_new,
        }
    }
    let energy = |topo: &TransformedTopology| -> f64 {
        sys.total_violation(topo) + config.ht_penalty * topo.hts.len() as f64
    };

    let mut rng = DetRng::seed_from_u64(seed);
    let mut state = TransformedTopology::default();
    let mut e = energy(&state);
    let mut best = state.clone();
    let mut best_v = sys.total_violation(&state);
    let mut accepted = 0usize;
    let max_stat = max_individual_stat(sys);

    for step in 0..config.steps {
        let frac = step as f64 / config.steps.max(1) as f64;
        let temp = config.t_start * (config.t_end / config.t_start).powf(frac);

        let prop = draw_proposal(&mut rng, sys.n, &state.hts, config, max_stat);
        let mut proposal = state.clone();
        apply(&mut proposal, prop);
        let e_new = energy(&proposal);
        // Unconditional draw — see the matching comment in
        // `infer_mcmc`.
        let u = rng.f64();
        let accept = e_new <= e || u < ((e - e_new) / temp.max(1e-9)).exp();
        if accept {
            state = proposal;
            e = e_new;
            accepted += 1;
            let v = sys.total_violation(&state);
            if v < best_v {
                best_v = v;
                best = state.clone();
            }
        }
    }
    best.prune(1e-4);
    McmcResult {
        topology: best.to_topology(sys.n).canonicalize(),
        violation: best_v,
        accepted,
        steps_done: config.steps,
        completed: true,
        overshoot: 0,
    }
}

/// Run the chain and report it as an [`InferenceResult`], with
/// residual-fraction/verdict semantics shared with the gradient path
/// — the pluggable-backend entry point used by
/// [`crate::blueprint::InferenceBackend`].
pub fn infer_mcmc_result(
    sys: &ConstraintSystem,
    config: &McmcConfig,
    seed: u64,
    acceptance: &InferenceConfig,
) -> InferenceResult {
    let r = infer_mcmc_bounded(sys, config, seed, acceptance.deadline);
    // Score the pruned, canonicalized output from scratch (the
    // chain's running `violation` tracks the unpruned best state).
    let t = TransformedTopology::from_topology(&r.topology);
    let violation = sys.total_violation(&t);
    let (residual_fraction, verdict) =
        crate::blueprint::infer::classify(sys, violation, acceptance);
    InferenceResult {
        topology: r.topology,
        violation,
        iterations: r.steps_done,
        restarts: 1,
        residual_fraction,
        verdict,
        completed: r.completed,
        overshoot: r.overshoot,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blueprint::accuracy::topology_accuracy;
    use blu_sim::topology::HiddenTerminal;

    #[test]
    fn mcmc_finds_single_terminal() {
        let truth = InterferenceTopology {
            n_clients: 3,
            hts: vec![HiddenTerminal {
                q: 0.5,
                edges: ClientSet::from_iter([0, 1, 2]),
            }],
        };
        let sys = ConstraintSystem::from_topology(&truth);
        let result = infer_mcmc(&sys, &McmcConfig::default(), 1);
        assert!(
            result.violation < 0.1,
            "mcmc violation {}",
            result.violation
        );
        let acc = topology_accuracy(&truth, &result.topology);
        assert!(acc.exact_fraction() >= 1.0, "{:?}", result.topology);
    }

    #[test]
    fn mcmc_handles_empty_truth() {
        let truth = InterferenceTopology::interference_free(3);
        let sys = ConstraintSystem::from_topology(&truth);
        let result = infer_mcmc(&sys, &McmcConfig::default(), 2);
        assert!(result.violation < 1e-6);
        assert_eq!(result.topology.n_hidden(), 0);
    }

    #[test]
    fn mcmc_accepts_some_steps() {
        let truth = InterferenceTopology {
            n_clients: 4,
            hts: vec![HiddenTerminal {
                q: 0.3,
                edges: ClientSet::from_iter([1, 2]),
            }],
        };
        let sys = ConstraintSystem::from_topology(&truth);
        let result = infer_mcmc(&sys, &McmcConfig::default(), 3);
        assert!(result.accepted > 100);
    }

    #[test]
    fn deterministic_given_seed() {
        let truth = InterferenceTopology {
            n_clients: 3,
            hts: vec![HiddenTerminal {
                q: 0.4,
                edges: ClientSet::from_iter([0, 2]),
            }],
        };
        let sys = ConstraintSystem::from_topology(&truth);
        let cfg = McmcConfig {
            steps: 2_000,
            ..Default::default()
        };
        let a = infer_mcmc(&sys, &cfg, 7);
        let b = infer_mcmc(&sys, &cfg, 7);
        assert_eq!(a.topology, b.topology);
        assert_eq!(a.accepted, b.accepted);
    }

    /// The differential contract of the fast path: on the same seed
    /// the incremental chain and the from-scratch reference draw the
    /// same proposals, make the same accept decisions, and return
    /// **bit-identical** topologies. Exercised across seeds and
    /// system shapes (with and without triple constraints).
    #[test]
    fn incremental_matches_scratch() {
        use blu_sim::rng::DetRng;
        let cfg = McmcConfig {
            steps: 3_000,
            ..Default::default()
        };
        for seed in 0..6u64 {
            let mut rng = DetRng::seed_from_u64(100 + seed);
            let truth = InterferenceTopology::random(6, 4, (0.15, 0.65), 0.4, &mut rng);
            let mut sys = ConstraintSystem::from_topology(&truth);
            if seed % 2 == 0 {
                sys.add_triples_from_topology(&truth, &[(0, 1, 2), (2, 4, 5)]);
            }
            let fast = infer_mcmc(&sys, &cfg, seed);
            let scratch = infer_mcmc_scratch(&sys, &cfg, seed);
            assert_eq!(
                fast.accepted, scratch.accepted,
                "seed {seed}: accept sequences diverged"
            );
            assert_eq!(
                fast.topology, scratch.topology,
                "seed {seed}: topologies not bit-identical"
            );
            assert!(
                (fast.violation - scratch.violation).abs() < 1e-9,
                "seed {seed}: violation {} vs {}",
                fast.violation,
                scratch.violation
            );
        }
    }

    /// The running (incrementally accumulated) violation must stay
    /// glued to a from-scratch recompute of the final best state.
    #[test]
    fn running_violation_matches_recompute() {
        let mut rng = blu_sim::rng::DetRng::seed_from_u64(42);
        let truth = InterferenceTopology::random(5, 3, (0.2, 0.6), 0.45, &mut rng);
        let sys = ConstraintSystem::from_topology(&truth);
        let cfg = McmcConfig {
            steps: 5_000,
            ..Default::default()
        };
        let r = infer_mcmc(&sys, &cfg, 11);
        // `violation` is the running value of the best pre-prune
        // state; the pruned output can only drop sub-1e-4 weights, so
        // a recompute stays within that band plus accumulation noise.
        let t = TransformedTopology::from_topology(&r.topology);
        let recomputed = sys.total_violation(&t);
        assert!(
            (recomputed - r.violation).abs() < 1e-2,
            "running {} vs recomputed {}",
            r.violation,
            recomputed
        );
    }

    #[test]
    fn mcmc_result_reports_confidence() {
        let truth = InterferenceTopology {
            n_clients: 3,
            hts: vec![HiddenTerminal {
                q: 0.5,
                edges: ClientSet::from_iter([0, 1, 2]),
            }],
        };
        let sys = ConstraintSystem::from_topology(&truth);
        let res = infer_mcmc_result(&sys, &McmcConfig::default(), 1, &InferenceConfig::default());
        assert!(res.confidence() > 0.9, "confidence {}", res.confidence());
        assert_eq!(res.restarts, 1);
        let acc = topology_accuracy(&truth, &res.topology);
        assert!(acc.exact_fraction() >= 1.0);
    }

    #[test]
    fn validate_rejects_degenerate_configs() {
        assert!(McmcConfig::default().validate().is_ok());
        let bad = [
            McmcConfig {
                steps: 0,
                ..Default::default()
            },
            McmcConfig {
                t_start: f64::NAN,
                ..Default::default()
            },
            McmcConfig {
                t_end: 0.0,
                ..Default::default()
            },
            McmcConfig {
                t_start: 0.001,
                t_end: 0.1,
                ..Default::default()
            },
            McmcConfig {
                max_hts: 0,
                ..Default::default()
            },
            McmcConfig {
                ht_penalty: -1.0,
                ..Default::default()
            },
        ];
        for cfg in bad {
            assert!(
                matches!(cfg.validate(), Err(BluError::InvalidConfig(_))),
                "{cfg:?} should be rejected"
            );
        }
    }

    fn deadline_test_system() -> ConstraintSystem {
        use blu_sim::rng::DetRng;
        let mut rng = DetRng::seed_from_u64(9);
        let truth = InterferenceTopology::random(6, 4, (0.15, 0.65), 0.4, &mut rng);
        ConstraintSystem::from_topology(&truth)
    }

    /// `Deadline::None` must be bit-identical to the plain entry
    /// point, and a budget ≥ steps must behave as unbounded
    /// (`completed = true`, zero overshoot).
    #[test]
    fn unbounded_deadline_is_bit_identical() {
        use crate::runtime::deadline::Deadline;
        let sys = deadline_test_system();
        let cfg = McmcConfig {
            steps: 2_000,
            ..Default::default()
        };
        let plain = infer_mcmc(&sys, &cfg, 11);
        let none = infer_mcmc_bounded(&sys, &cfg, 11, Deadline::None);
        let roomy = infer_mcmc_bounded(&sys, &cfg, 11, Deadline::Steps(cfg.steps as u64));
        for r in [&none, &roomy] {
            assert_eq!(r.topology, plain.topology);
            assert_eq!(r.violation.to_bits(), plain.violation.to_bits());
            assert_eq!(r.accepted, plain.accepted);
            assert_eq!(r.steps_done, cfg.steps);
            assert!(r.completed);
            assert_eq!(r.overshoot, 0);
        }
    }

    /// A step budget below the configured chain length cuts the run
    /// short **exactly** at the budget, deterministically, returning
    /// a usable (finite-violation) best-so-far.
    #[test]
    fn step_budget_cuts_chain_short_deterministically() {
        use crate::runtime::deadline::Deadline;
        let sys = deadline_test_system();
        let cfg = McmcConfig {
            steps: 20_000,
            ..Default::default()
        };
        let a = infer_mcmc_bounded(&sys, &cfg, 11, Deadline::Steps(500));
        let b = infer_mcmc_bounded(&sys, &cfg, 11, Deadline::Steps(500));
        assert_eq!(a.steps_done, 500);
        assert!(!a.completed);
        assert_eq!(a.overshoot, 0, "step budgets never overshoot");
        assert!(a.violation.is_finite());
        assert_eq!(a.topology, b.topology, "bounded runs are deterministic");
        assert_eq!(a.accepted, b.accepted);
        // The truncated chain is a prefix of the full chain's proposal
        // stream: with the same seed it can never *accept more* than
        // the full run.
        let full = infer_mcmc(&sys, &cfg, 11);
        assert!(a.accepted <= full.accepted);
    }
}
