//! MCMC baseline for topology inference.
//!
//! The paper (§3.4) reports having applied Markov-Chain Monte Carlo
//! before designing the deterministic repair: the topology is adapted
//! by random proposals and accepted by Metropolis–Hastings against a
//! likelihood that decays with constraint violation, with simulated
//! annealing. It converges *in distribution*, needs a sample to be
//! drawn for real-time use, and is slower — which is exactly what the
//! ablation bench demonstrates. Kept as a faithful baseline.

use crate::blueprint::constraints::{ConstraintSystem, TransformedHt, TransformedTopology};
use blu_sim::clientset::ClientSet;
use blu_sim::rng::DetRng;
use blu_sim::topology::InterferenceTopology;

/// MCMC configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McmcConfig {
    /// Number of proposal steps.
    pub steps: usize,
    /// Initial temperature (violation units).
    pub t_start: f64,
    /// Final temperature.
    pub t_end: f64,
    /// Maximum hidden terminals the chain may hold.
    pub max_hts: usize,
    /// Penalty per hidden terminal (Occam prior).
    pub ht_penalty: f64,
}

impl Default for McmcConfig {
    fn default() -> Self {
        McmcConfig {
            steps: 20_000,
            t_start: 1.0,
            t_end: 0.005,
            max_hts: 64,
            ht_penalty: 0.01,
        }
    }
}

/// Result of an MCMC run.
#[derive(Debug, Clone)]
pub struct McmcResult {
    /// Best-scoring topology visited.
    pub topology: InterferenceTopology,
    /// Its total violation.
    pub violation: f64,
    /// Steps accepted.
    pub accepted: usize,
}

fn energy(sys: &ConstraintSystem, topo: &TransformedTopology, ht_penalty: f64) -> f64 {
    sys.total_violation(topo) + ht_penalty * topo.hts.len() as f64
}

/// Run Metropolis–Hastings with annealing; returns the best state.
pub fn infer_mcmc(sys: &ConstraintSystem, config: &McmcConfig, seed: u64) -> McmcResult {
    let mut rng = DetRng::seed_from_u64(seed);
    let mut state = TransformedTopology::default();
    let mut e = energy(sys, &state, config.ht_penalty);
    let mut best = state.clone();
    let mut best_v = sys.total_violation(&state);
    let mut accepted = 0usize;
    let max_stat = sys.individual.iter().cloned().fold(0.1f64, f64::max);

    for step in 0..config.steps {
        // Annealing schedule (geometric).
        let frac = step as f64 / config.steps.max(1) as f64;
        let temp = config.t_start * (config.t_end / config.t_start).powf(frac);

        // Propose.
        let mut proposal = state.clone();
        let kind = rng.below(4);
        match kind {
            0 => {
                // Add a hidden terminal with a random small edge set.
                if proposal.hts.len() < config.max_hts {
                    let mut edges = ClientSet::EMPTY;
                    let k = 1 + rng.below(3.min(sys.n));
                    for _ in 0..k {
                        edges.insert(rng.below(sys.n));
                    }
                    proposal.hts.push(TransformedHt {
                        q_t: rng.range_f64(0.01, max_stat),
                        edges,
                    });
                }
            }
            1 => {
                // Remove a random hidden terminal.
                if !proposal.hts.is_empty() {
                    let k = rng.below(proposal.hts.len());
                    proposal.hts.swap_remove(k);
                }
            }
            2 => {
                // Toggle a random edge.
                if !proposal.hts.is_empty() {
                    let k = rng.below(proposal.hts.len());
                    let c = rng.below(sys.n);
                    let ht = &mut proposal.hts[k];
                    if ht.edges.contains(c) {
                        ht.edges.remove(c);
                    } else {
                        ht.edges.insert(c);
                    }
                    if ht.edges.is_empty() {
                        proposal.hts.swap_remove(k);
                    }
                }
            }
            _ => {
                // Perturb a weight multiplicatively.
                if !proposal.hts.is_empty() {
                    let k = rng.below(proposal.hts.len());
                    let f = rng.range_f64(0.6, 1.6);
                    proposal.hts[k].q_t = (proposal.hts[k].q_t * f).max(1e-4);
                }
            }
        }

        let e_new = energy(sys, &proposal, config.ht_penalty);
        let accept = e_new <= e || rng.chance(((e - e_new) / temp.max(1e-9)).exp());
        if accept {
            state = proposal;
            e = e_new;
            accepted += 1;
            let v = sys.total_violation(&state);
            if v < best_v {
                best_v = v;
                best = state.clone();
            }
        }
    }
    best.prune(1e-4);
    McmcResult {
        topology: best.to_topology(sys.n).canonicalize(),
        violation: best_v,
        accepted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blueprint::accuracy::topology_accuracy;
    use blu_sim::topology::HiddenTerminal;

    #[test]
    fn mcmc_finds_single_terminal() {
        let truth = InterferenceTopology {
            n_clients: 3,
            hts: vec![HiddenTerminal {
                q: 0.5,
                edges: ClientSet::from_iter([0, 1, 2]),
            }],
        };
        let sys = ConstraintSystem::from_topology(&truth);
        let result = infer_mcmc(&sys, &McmcConfig::default(), 1);
        assert!(
            result.violation < 0.1,
            "mcmc violation {}",
            result.violation
        );
        let acc = topology_accuracy(&truth, &result.topology);
        assert!(acc.exact_fraction() >= 1.0, "{:?}", result.topology);
    }

    #[test]
    fn mcmc_handles_empty_truth() {
        let truth = InterferenceTopology::interference_free(3);
        let sys = ConstraintSystem::from_topology(&truth);
        let result = infer_mcmc(&sys, &McmcConfig::default(), 2);
        assert!(result.violation < 1e-6);
        assert_eq!(result.topology.n_hidden(), 0);
    }

    #[test]
    fn mcmc_accepts_some_steps() {
        let truth = InterferenceTopology {
            n_clients: 4,
            hts: vec![HiddenTerminal {
                q: 0.3,
                edges: ClientSet::from_iter([1, 2]),
            }],
        };
        let sys = ConstraintSystem::from_topology(&truth);
        let result = infer_mcmc(&sys, &McmcConfig::default(), 3);
        assert!(result.accepted > 100);
    }

    #[test]
    fn deterministic_given_seed() {
        let truth = InterferenceTopology {
            n_clients: 3,
            hts: vec![HiddenTerminal {
                q: 0.4,
                edges: ClientSet::from_iter([0, 2]),
            }],
        };
        let sys = ConstraintSystem::from_topology(&truth);
        let cfg = McmcConfig {
            steps: 2_000,
            ..Default::default()
        };
        let a = infer_mcmc(&sys, &cfg, 7);
        let b = infer_mcmc(&sys, &cfg, 7);
        assert_eq!(a.topology, b.topology);
        assert_eq!(a.accepted, b.accepted);
    }
}
