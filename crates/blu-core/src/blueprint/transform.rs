//! The log-domain graph transformation (paper §3.4.1).
//!
//! ```text
//! P(i)   = −log p(i)                 — client "blocking exposure"
//! Q(k)   = −log(1 − q(k))            — HT "blocking weight"
//! P(i,j) = −log( p(i)·p(j) / p(i,j) ) — pairwise shared exposure
//! ```
//!
//! Under the generative model, `P(i) = Σ_k z_ik·Q(k)` and
//! `P(i,j) = Σ_k z_ik·z_jk·Q(k)`: products of idle probabilities
//! become sums of non-negative weights, and topology inference
//! becomes a (combinatorial) linear constraint-satisfaction problem.
//!
//! Probabilities are clamped away from 0 before taking logs so the
//! transformed domain stays finite; the clamp is a pure numeric
//! guard (`1e-12` → `P ≤ 27.6`). Statistical flooring of *measured*
//! zeros is handled where the measurements are ingested
//! ([`crate::blueprint::constraints::ConstraintSystem::from_measurements`]
//! applies add-half smoothing), not here — the exact transform must
//! stay exact for any generatable topology.

/// Smallest probability representable in the transformed domain
/// (numeric guard only).
pub const P_CLAMP_MIN: f64 = 1e-12;

/// `−log p`, with `p` clamped into `[P_CLAMP_MIN, 1]`.
pub fn transform_p(p: f64) -> f64 {
    -(p.clamp(P_CLAMP_MIN, 1.0)).ln()
}

/// Inverse of [`transform_p`].
pub fn inverse_p(big_p: f64) -> f64 {
    (-big_p).exp().clamp(0.0, 1.0)
}

/// `Q(k) = −log(1 − q)`, with `1 − q` clamped like `p`.
pub fn transform_q(q: f64) -> f64 {
    transform_p(1.0 - q)
}

/// Inverse of [`transform_q`]: `q = 1 − e^{−Q}`.
pub fn inverse_q(big_q: f64) -> f64 {
    (1.0 - (-big_q).exp()).clamp(0.0, 1.0)
}

/// The pairwise statistic `P(i,j) = −log(p_i·p_j/p_ij)`.
///
/// This is the point-mass mutual information between the two access
/// events; non-negative in the generative model (shared HTs only make
/// joint access *more* likely than independence). Sampling noise can
/// produce slightly negative raw values; they are floored at 0.
pub fn pairwise_stat(p_i: f64, p_j: f64, p_ij: f64) -> f64 {
    let p_i = p_i.clamp(P_CLAMP_MIN, 1.0);
    let p_j = p_j.clamp(P_CLAMP_MIN, 1.0);
    let p_ij = p_ij.clamp(P_CLAMP_MIN, 1.0);
    (-(p_i * p_j / p_ij).ln()).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use blu_sim::rng::DetRng;
    use blu_sim::topology::InterferenceTopology;

    #[test]
    fn p_transform_roundtrip() {
        for p in [0.01, 0.2, 0.5, 0.99, 1.0] {
            let back = inverse_p(transform_p(p));
            assert!((back - p).abs() < 1e-12, "{p}");
        }
    }

    #[test]
    fn q_transform_roundtrip() {
        for q in [0.0, 0.1, 0.5, 0.9, 0.99] {
            let back = inverse_q(transform_q(q));
            assert!((back - q).abs() < 1e-12, "{q}");
        }
    }

    #[test]
    fn clamping_bounds_transform() {
        assert!(transform_p(0.0).is_finite());
        assert!(transform_p(1e-15) <= -(P_CLAMP_MIN.ln()) + 1e-9);
        assert_eq!(transform_p(1.0), 0.0);
        assert_eq!(transform_q(1.0), transform_p(P_CLAMP_MIN));
    }

    #[test]
    fn transformed_constraints_are_additive() {
        // The core identity: P(i) = Σ_{k: z_ik} Q(k) and
        // P(i,j) = Σ_{k: z_ik z_jk} Q(k) exactly, for random topologies.
        let mut rng = DetRng::seed_from_u64(1);
        for _ in 0..20 {
            let topo = InterferenceTopology::random(6, 4, (0.05, 0.9), 0.4, &mut rng);
            for i in 0..6 {
                let lhs = transform_p(topo.p_individual(i));
                let rhs: f64 = topo
                    .hts
                    .iter()
                    .filter(|ht| ht.edges.contains(i))
                    .map(|ht| transform_q(ht.q))
                    .sum();
                assert!((lhs - rhs).abs() < 1e-9, "P({i}): {lhs} vs {rhs}");
                for j in (i + 1)..6 {
                    let lhs = pairwise_stat(
                        topo.p_individual(i),
                        topo.p_individual(j),
                        topo.p_pair(i, j),
                    );
                    let rhs: f64 = topo
                        .hts
                        .iter()
                        .filter(|ht| ht.edges.contains(i) && ht.edges.contains(j))
                        .map(|ht| transform_q(ht.q))
                        .sum();
                    assert!((lhs - rhs).abs() < 1e-9, "P({i},{j}): {lhs} vs {rhs}");
                }
            }
        }
    }

    #[test]
    fn pairwise_stat_floors_noise() {
        // Independent clients with sampling noise: p_ij slightly
        // below p_i·p_j → raw statistic negative → floored to 0.
        assert_eq!(pairwise_stat(0.5, 0.5, 0.24), 0.0);
        assert!(pairwise_stat(0.5, 0.5, 0.30) > 0.0);
    }
}
