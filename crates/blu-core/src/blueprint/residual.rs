//! Incrementally maintained constraint residuals — the shared kernel
//! behind both the gradient repairer ([`crate::blueprint::infer`])
//! and the MCMC chain ([`crate::blueprint::mcmc`]).
//!
//! A [`ResidualTracker`] holds one `f64` residual
//! (`contribution − target`) per constraint of a
//! [`ConstraintSystem`], in the canonical constraint order (see
//! [`ConstraintSystem::all_constraints`]), and exposes the two edit
//! primitives every topology move decomposes into:
//!
//! * **shift** — add `delta` contribution to every constraint touched
//!   by an edge set (a hidden terminal appearing, disappearing, or
//!   changing weight);
//! * **edge change** — move a hidden terminal of weight `w` from edge
//!   set `old` to `new` (constraints it leaves lose `w`, constraints
//!   it joins gain `w`).
//!
//! Each primitive has a `*_cost` twin that returns the total-violation
//! delta `Σ (|r + d| − |r|)` **without** applying, so a caller can
//! evaluate a candidate move in `O(constraints touched)` instead of
//! recomputing the full objective — the classic delta-energy trick of
//! annealing/MCMC systems, applied to Eqn. 6's constraint violation.
//!
//! Perf notes, because this sits under both inference hot loops:
//!
//! * Edge sets are iterated **directly as bitsets** (`u128` bit
//!   tricks); no `Vec<usize>` member list is ever materialized.
//! * Triple coverage uses a **triple index** built once per tracker:
//!   each triple's three clients collapsed into a [`ClientSet`] mask,
//!   so "does this edge set cover triple `t`" is a single
//!   subset test (`mask & !edges == 0`) instead of three `contains`
//!   calls through a tuple.
//! * The residual arrays are flat `Vec<f64>` buffers reused across
//!   restarts/chains via [`ResidualTracker::reset`] — a full
//!   inference run allocates them once.
//!
//! Floating-point contract: all iteration orders (members ascending,
//! pairs lexicographic, triples by index) match the historical
//! `Vec`-materializing implementation exactly, so every cost and
//! residual is **bit-identical** to the pre-optimization path; the
//! differential tests in `mcmc.rs` and the proptests in
//! `tests/residual_proptest.rs` pin this down.

use crate::blueprint::constraints::{ConstraintRef, ConstraintSystem};
use blu_sim::clientset::ClientSet;
use blu_traces::stats::{pair_index, EmpiricalAccess};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Visit every unordered pair `(i, j)`, `i < j`, of a bitset in
/// lexicographic order without materializing a member list.
#[inline]
fn for_each_pair(edges: ClientSet, mut f: impl FnMut(usize, usize)) {
    let mut outer = edges.0;
    while outer != 0 {
        let i = outer.trailing_zeros() as usize;
        outer &= outer - 1; // drop i; remaining bits are all > i
        let mut inner = outer;
        while inner != 0 {
            let j = inner.trailing_zeros() as usize;
            inner &= inner - 1;
            f(i, j);
        }
    }
}

/// The owned flat buffers of a [`ResidualTracker`], detached from any
/// constraint system so they can be recycled across cells of a batch
/// (see [`ResidualTracker::rebind`]). A default value is simply empty
/// buffers; rebinding grows them to the target system's shape and
/// they stay at high-water-mark capacity from then on.
#[derive(Debug, Clone, Default)]
pub struct TrackerBuffers {
    ind: Vec<f64>,
    pair: Vec<f64>,
    triple: Vec<f64>,
    triple_masks: Vec<ClientSet>,
}

/// Residuals of a candidate topology against a constraint system,
/// maintained incrementally under topology edits.
#[derive(Debug, Clone)]
pub struct ResidualTracker<'a> {
    sys: &'a ConstraintSystem,
    /// Residual per individual constraint.
    ind: Vec<f64>,
    /// Residual per pair constraint (`pair_index` layout).
    pair: Vec<f64>,
    /// Residual per triple constraint.
    triple: Vec<f64>,
    /// Triple index: constraint `t`'s clients as a single bitmask, so
    /// coverage is one subset test. Built once per tracker.
    triple_masks: Vec<ClientSet>,
}

impl<'a> ResidualTracker<'a> {
    /// Tracker for the **empty** topology: every residual starts at
    /// `−target`.
    pub fn new(sys: &'a ConstraintSystem) -> Self {
        Self::rebind(sys, TrackerBuffers::default())
    }

    /// Tracker for the empty topology of `sys`, recycling the flat
    /// buffers of a previous tracker (possibly bound to a *different*
    /// system — the buffers are cleared and refilled to `sys`'s
    /// shape). The residual values are identical to
    /// [`new`][Self::new]; only the allocation is reused.
    pub fn rebind(sys: &'a ConstraintSystem, mut bufs: TrackerBuffers) -> Self {
        bufs.ind.clear();
        bufs.ind.extend(sys.individual.iter().map(|t| -t));
        bufs.pair.clear();
        bufs.pair.extend(sys.pair.iter().map(|t| -t));
        bufs.triple.clear();
        bufs.triple.extend(sys.triples.iter().map(|t| -t.target));
        bufs.triple_masks.clear();
        bufs.triple_masks.extend(sys.triples.iter().map(|t| {
            let (i, j, k) = t.clients;
            ClientSet::from_iter([i, j, k])
        }));
        ResidualTracker {
            sys,
            ind: bufs.ind,
            pair: bufs.pair,
            triple: bufs.triple,
            triple_masks: bufs.triple_masks,
        }
    }

    /// Detach the flat buffers for recycling into the next
    /// [`rebind`][Self::rebind].
    pub fn into_buffers(self) -> TrackerBuffers {
        TrackerBuffers {
            ind: self.ind,
            pair: self.pair,
            triple: self.triple,
            triple_masks: self.triple_masks,
        }
    }

    /// Reset to the empty topology, reusing the flat buffers (no
    /// allocation).
    pub fn reset(&mut self) {
        for (r, t) in self.ind.iter_mut().zip(&self.sys.individual) {
            *r = -t;
        }
        for (r, t) in self.pair.iter_mut().zip(&self.sys.pair) {
            *r = -t;
        }
        for (r, t) in self.triple.iter_mut().zip(&self.sys.triples) {
            *r = -t.target;
        }
    }

    /// The constraint system being tracked.
    pub fn sys(&self) -> &'a ConstraintSystem {
        self.sys
    }

    /// Residual of one constraint.
    pub fn residual(&self, c: ConstraintRef) -> f64 {
        match c {
            ConstraintRef::Individual(i) => self.ind[i],
            ConstraintRef::Pair(i, j) => self.pair[pair_index(self.sys.n, i, j)],
            ConstraintRef::Triple(t) => self.triple[t],
        }
    }

    /// Total violation `Σ |r|`, recomputed from the flat arrays in
    /// canonical order (individuals, pairs, triples). `O(constraints)`
    /// but branch-free and cache-friendly; callers that need a running
    /// total accumulate the deltas returned by [`shift`][Self::shift]
    /// and [`apply_edge_change`][Self::apply_edge_change] instead.
    pub fn recompute_violation(&self) -> f64 {
        self.ind.iter().map(|r| r.abs()).sum::<f64>()
            + self.pair.iter().map(|r| r.abs()).sum::<f64>()
            + self.triple.iter().map(|r| r.abs()).sum::<f64>()
    }

    /// The constraint with the largest absolute residual (ties keep
    /// the earliest in canonical order), with its residual.
    pub fn max_violated(&self) -> (ConstraintRef, f64) {
        let mut best = (ConstraintRef::Individual(0), 0.0f64);
        for (i, &r) in self.ind.iter().enumerate() {
            if r.abs() > best.1.abs() {
                best = (ConstraintRef::Individual(i), r);
            }
        }
        let n = self.sys.n;
        for i in 0..n {
            for j in (i + 1)..n {
                let r = self.pair[pair_index(n, i, j)];
                if r.abs() > best.1.abs() {
                    best = (ConstraintRef::Pair(i, j), r);
                }
            }
        }
        for (t, &r) in self.triple.iter().enumerate() {
            if r.abs() > best.1.abs() {
                best = (ConstraintRef::Triple(t), r);
            }
        }
        best
    }

    /// Violation delta of adding `delta` contribution to every
    /// constraint touched by `edges`, without applying.
    pub fn shift_cost(&self, edges: ClientSet, delta: f64) -> f64 {
        let mut cost = 0.0;
        for i in edges.iter() {
            let r = self.ind[i];
            cost += (r + delta).abs() - r.abs();
        }
        for_each_pair(edges, |i, j| {
            let r = self.pair[pair_index(self.sys.n, i, j)];
            cost += (r + delta).abs() - r.abs();
        });
        for (t, &mask) in self.triple_masks.iter().enumerate() {
            if mask.is_subset_of(edges) {
                let r = self.triple[t];
                cost += (r + delta).abs() - r.abs();
            }
        }
        cost
    }

    /// Add `delta` contribution to every constraint touched by
    /// `edges`; returns the violation delta (same value
    /// [`shift_cost`][Self::shift_cost] would have reported).
    pub fn shift(&mut self, edges: ClientSet, delta: f64) -> f64 {
        let mut dv = 0.0;
        for i in edges.iter() {
            let r = self.ind[i];
            dv += (r + delta).abs() - r.abs();
            self.ind[i] = r + delta;
        }
        let n = self.sys.n;
        {
            // Split borrows: `pair` mutably, the rest by value.
            let pair = &mut self.pair;
            for_each_pair(edges, |i, j| {
                let idx = pair_index(n, i, j);
                let r = pair[idx];
                dv += (r + delta).abs() - r.abs();
                pair[idx] = r + delta;
            });
        }
        for (t, &mask) in self.triple_masks.iter().enumerate() {
            if mask.is_subset_of(edges) {
                let r = self.triple[t];
                dv += (r + delta).abs() - r.abs();
                self.triple[t] = r + delta;
            }
        }
        dv
    }

    /// Violation delta of moving a hidden terminal of weight `w` from
    /// edge set `old` to `new`, without applying.
    pub fn edge_change_cost(&self, old: ClientSet, new: ClientSet, w: f64) -> f64 {
        let mut cost = 0.0;
        // Individuals: leaving lose w, joining gain w.
        for i in old.difference(new).iter() {
            let r = self.ind[i];
            cost += (r - w).abs() - r.abs();
        }
        for i in new.difference(old).iter() {
            let r = self.ind[i];
            cost += (r + w).abs() - r.abs();
        }
        // Pairs: coverage before vs after, over the union.
        for_each_pair(old.union(new), |i, j| {
            let before = old.contains(i) && old.contains(j);
            let after = new.contains(i) && new.contains(j);
            if before == after {
                return;
            }
            let delta = if after { w } else { -w };
            let r = self.pair[pair_index(self.sys.n, i, j)];
            cost += (r + delta).abs() - r.abs();
        });
        // Triples: coverage changes via the triple index.
        for (t, &mask) in self.triple_masks.iter().enumerate() {
            let before = mask.is_subset_of(old);
            let after = mask.is_subset_of(new);
            if before == after {
                continue;
            }
            let delta = if after { w } else { -w };
            let r = self.triple[t];
            cost += (r + delta).abs() - r.abs();
        }
        cost
    }

    /// Move a hidden terminal of weight `w` from edge set `old` to
    /// `new`; returns the violation delta.
    pub fn apply_edge_change(&mut self, old: ClientSet, new: ClientSet, w: f64) -> f64 {
        let mut dv = 0.0;
        for i in old.difference(new).iter() {
            let r = self.ind[i];
            dv += (r - w).abs() - r.abs();
            self.ind[i] = r - w;
        }
        for i in new.difference(old).iter() {
            let r = self.ind[i];
            dv += (r + w).abs() - r.abs();
            self.ind[i] = r + w;
        }
        let n = self.sys.n;
        {
            let pair = &mut self.pair;
            for_each_pair(old.union(new), |i, j| {
                let before = old.contains(i) && old.contains(j);
                let after = new.contains(i) && new.contains(j);
                if before == after {
                    return;
                }
                let delta = if after { w } else { -w };
                let idx = pair_index(n, i, j);
                let r = pair[idx];
                dv += (r + delta).abs() - r.abs();
                pair[idx] = r + delta;
            });
        }
        for (t, &mask) in self.triple_masks.iter().enumerate() {
            let before = mask.is_subset_of(old);
            let after = mask.is_subset_of(new);
            if before == after {
                continue;
            }
            let delta = if after { w } else { -w };
            let r = self.triple[t];
            dv += (r + delta).abs() - r.abs();
            self.triple[t] = r + delta;
        }
        dv
    }
}

/// A bounded sliding window of per-subframe access observations with
/// incrementally maintained [`EmpiricalAccess`] counters — the ingest
/// path of streaming online inference.
///
/// Each entry is one sub-frame's `(observed, accessible)` client
/// sets. Admitting a new sub-frame when the ring is full first
/// *retires* the oldest entry by running
/// [`EmpiricalAccess::unrecord`] — the exact integer inverse of
/// [`EmpiricalAccess::record`] — so both directions are
/// `O(touched clients²)` per sub-frame regardless of window size,
/// and the running counters are **bit-identical** to recording only
/// the retained ring contents from scratch (pinned by
/// `tests/stream_window_proptest.rs`). The counters therefore track
/// ground truth as it churns: observations from a pre-churn topology
/// age out of the window instead of dominating the books forever.
#[derive(Debug, Clone, PartialEq)]
pub struct ObservationWindow {
    capacity: usize,
    ring: VecDeque<(ClientSet, ClientSet)>,
    stats: EmpiricalAccess,
}

// Hand-rolled (the ring is a `VecDeque`, which the vendored serde has
// no container impl for): the ring serializes as a plain sequence in
// logical oldest-first order, so the on-disk form is canonical
// regardless of where the ring's head sits in its backing buffer.
impl Serialize for ObservationWindow {
    fn to_value(&self) -> serde::Value {
        let ring: Vec<(ClientSet, ClientSet)> = self.ring.iter().copied().collect();
        serde::Value::Map(vec![
            ("capacity".to_string(), self.capacity.to_value()),
            ("ring".to_string(), ring.to_value()),
            ("stats".to_string(), self.stats.to_value()),
        ])
    }
}

impl Deserialize for ObservationWindow {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let map = v
            .as_map()
            .ok_or_else(|| serde::DeError::custom("ObservationWindow: expected map"))?;
        let capacity: usize = serde::de_field(map, "capacity", "ObservationWindow")?;
        let ring: Vec<(ClientSet, ClientSet)> = serde::de_field(map, "ring", "ObservationWindow")?;
        let stats: EmpiricalAccess = serde::de_field(map, "stats", "ObservationWindow")?;
        Ok(ObservationWindow {
            capacity: capacity.max(1),
            ring: ring.into(),
            stats,
        })
    }
}

impl ObservationWindow {
    /// Empty window over `n` clients retaining at most `capacity`
    /// sub-frames (`capacity` is clamped to at least 1).
    pub fn new(n: usize, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        ObservationWindow {
            capacity,
            ring: VecDeque::with_capacity(capacity),
            stats: EmpiricalAccess::new(n),
        }
    }

    /// Number of clients the window accumulates over.
    pub fn n_clients(&self) -> usize {
        self.stats.n
    }

    /// Maximum retained sub-frames.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Currently retained sub-frames.
    pub fn occupancy(&self) -> usize {
        self.ring.len()
    }

    /// Whether the ring holds no observations.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Admit one sub-frame, retiring the oldest if the ring is full.
    pub fn admit(&mut self, observed: ClientSet, accessible: ClientSet) {
        if self.ring.len() == self.capacity {
            self.retire();
        }
        self.ring.push_back((observed, accessible));
        self.stats.record(observed, accessible);
    }

    /// Retire the oldest retained sub-frame, if any.
    pub fn retire(&mut self) -> Option<(ClientSet, ClientSet)> {
        let (observed, accessible) = self.ring.pop_front()?;
        self.stats.unrecord(observed, accessible);
        Some((observed, accessible))
    }

    /// Drop every retained sub-frame and zero the counters.
    pub fn clear(&mut self) {
        self.ring.clear();
        self.stats = EmpiricalAccess::new(self.stats.n);
    }

    /// The incrementally maintained counters over the retained ring.
    pub fn stats(&self) -> &EmpiricalAccess {
        &self.stats
    }

    /// The retained `(observed, accessible)` sub-frames, oldest
    /// first (test/diagnostic access).
    pub fn entries(&self) -> impl Iterator<Item = (ClientSet, ClientSet)> + '_ {
        self.ring.iter().copied()
    }

    /// Counters recomputed from scratch over the retained ring —
    /// the differential-test oracle for the incremental path.
    pub fn scratch_stats(&self) -> EmpiricalAccess {
        let mut stats = EmpiricalAccess::new(self.stats.n);
        for &(observed, accessible) in &self.ring {
            stats.record(observed, accessible);
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blueprint::constraints::{TransformedHt, TransformedTopology};
    use blu_sim::rng::DetRng;
    use blu_sim::topology::InterferenceTopology;

    fn system_with_triples(seed: u64) -> ConstraintSystem {
        let mut rng = DetRng::seed_from_u64(seed);
        let topo = InterferenceTopology::random(6, 4, (0.1, 0.7), 0.4, &mut rng);
        let mut sys = ConstraintSystem::from_topology(&topo);
        sys.add_triples_from_topology(&topo, &[(0, 1, 2), (2, 4, 5)]);
        sys
    }

    /// Mirror of the tracker's state as a plain topology, for
    /// from-scratch comparison.
    fn assert_tracker_matches(
        tracker: &ResidualTracker<'_>,
        sys: &ConstraintSystem,
        topo: &TransformedTopology,
    ) {
        for c in sys.all_constraints() {
            let want = sys.residual(topo, c);
            let got = tracker.residual(c);
            assert!(
                (got - want).abs() < 1e-9,
                "{c:?}: tracked {got} vs scratch {want}"
            );
        }
        let v = tracker.recompute_violation();
        let want_v = sys.total_violation(topo);
        assert!((v - want_v).abs() < 1e-9, "violation {v} vs {want_v}");
    }

    #[test]
    fn shift_tracks_scratch_recompute() {
        let sys = system_with_triples(1);
        let mut tracker = ResidualTracker::new(&sys);
        let mut topo = TransformedTopology::default();
        let mut rng = DetRng::seed_from_u64(7);
        let mut running = tracker.recompute_violation();
        for _ in 0..50 {
            let mut edges = ClientSet::EMPTY;
            for i in 0..sys.n {
                if rng.chance(0.4) {
                    edges.insert(i);
                }
            }
            if edges.is_empty() {
                continue;
            }
            let q = rng.range_f64(0.05, 0.6);
            running += tracker.shift(edges, q);
            topo.hts.push(TransformedHt { q_t: q, edges });
            assert_tracker_matches(&tracker, &sys, &topo);
            assert!((running - tracker.recompute_violation()).abs() < 1e-9);
        }
    }

    #[test]
    fn edge_change_tracks_scratch_recompute() {
        let sys = system_with_triples(2);
        let mut tracker = ResidualTracker::new(&sys);
        let mut topo = TransformedTopology::default();
        let edges = ClientSet::from_iter([0, 1, 2, 4]);
        tracker.shift(edges, 0.3);
        topo.hts.push(TransformedHt { q_t: 0.3, edges });
        let mut rng = DetRng::seed_from_u64(9);
        for _ in 0..60 {
            let old = topo.hts[0].edges;
            let c = rng.below(sys.n);
            let new = if old.contains(c) {
                old.without(c)
            } else {
                old.with(c)
            };
            if new.is_empty() {
                continue;
            }
            let cost = tracker.edge_change_cost(old, new, 0.3);
            let dv = tracker.apply_edge_change(old, new, 0.3);
            assert_eq!(cost.to_bits(), dv.to_bits(), "cost/apply must agree");
            topo.hts[0].edges = new;
            assert_tracker_matches(&tracker, &sys, &topo);
        }
    }

    #[test]
    fn cost_twins_do_not_mutate() {
        let sys = system_with_triples(3);
        let tracker = ResidualTracker::new(&sys);
        let before = tracker.clone();
        let edges = ClientSet::from_iter([1, 3, 5]);
        let _ = tracker.shift_cost(edges, 0.2);
        let _ = tracker.edge_change_cost(edges, edges.with(0), 0.2);
        for c in sys.all_constraints() {
            assert_eq!(tracker.residual(c).to_bits(), before.residual(c).to_bits());
        }
    }

    #[test]
    fn reset_restores_empty_topology() {
        let sys = system_with_triples(4);
        let mut tracker = ResidualTracker::new(&sys);
        tracker.shift(ClientSet::from_iter([0, 2]), 0.5);
        tracker.reset();
        let fresh = ResidualTracker::new(&sys);
        for c in sys.all_constraints() {
            assert_eq!(tracker.residual(c).to_bits(), fresh.residual(c).to_bits());
        }
        assert!((tracker.recompute_violation() - sys.target_mass()).abs() < 1e-12);
    }

    #[test]
    fn window_matches_scratch_recompute_after_wraparound() {
        let n = 6;
        let mut rng = DetRng::seed_from_u64(0x517D);
        let mut window = ObservationWindow::new(n, 16);
        for step in 0..200 {
            let obs = ClientSet::from_iter((0..n).filter(|_| rng.chance(0.6)));
            let acc = ClientSet::from_iter(obs.iter().filter(|_| rng.chance(0.5)));
            window.admit(obs, acc);
            assert!(window.occupancy() <= 16);
            assert_eq!(
                window.stats(),
                &window.scratch_stats(),
                "incremental counters diverged at step {step}"
            );
        }
        assert_eq!(window.occupancy(), 16);
    }

    #[test]
    fn window_retire_and_clear() {
        let mut window = ObservationWindow::new(4, 8);
        assert!(window.is_empty());
        assert!(window.retire().is_none());
        window.admit(ClientSet::all(4), ClientSet::singleton(1));
        window.admit(ClientSet::all(4), ClientSet::all(4));
        assert_eq!(window.occupancy(), 2);
        let first = window.retire().unwrap();
        assert_eq!(first, (ClientSet::all(4), ClientSet::singleton(1)));
        assert_eq!(window.stats(), &window.scratch_stats());
        window.clear();
        assert!(window.is_empty());
        assert_eq!(window.stats(), &EmpiricalAccess::new(4));
    }

    #[test]
    fn window_round_trips_through_serde() {
        let mut window = ObservationWindow::new(3, 4);
        window.admit(ClientSet::all(3), ClientSet::singleton(0));
        window.admit(ClientSet::from_iter([0, 2]), ClientSet::from_iter([0, 2]));
        let json = serde_json::to_string(&window).unwrap();
        let back: ObservationWindow = serde_json::from_str(&json).unwrap();
        assert_eq!(window, back);
    }

    #[test]
    fn max_violated_matches_constraint_system() {
        let sys = system_with_triples(5);
        let tracker = ResidualTracker::new(&sys);
        let (c, r) = tracker.max_violated();
        let (want_c, want_r) = sys
            .max_violated(&TransformedTopology::default())
            .expect("non-empty system");
        assert_eq!(c, want_c);
        assert!((r - want_r).abs() < 1e-12);
    }
}
