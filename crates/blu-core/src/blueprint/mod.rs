//! Blue-printing interference: inferring the hidden-terminal topology
//! from pairwise client access measurements (paper §3.4).
//!
//! Pipeline: [`transform`] maps measured probabilities into the
//! log domain where hidden-terminal contributions are additive;
//! [`constraints`] holds the resulting linear constraint system
//! (Eqn. 6); [`residual`] maintains per-constraint residuals
//! incrementally (the shared delta-energy kernel); [`infer`] repairs
//! a candidate topology by gradient moves until the constraints are
//! satisfied, restarting from the [`init`] portfolio of starting
//! topologies; [`accuracy`] scores an inferred topology against
//! ground truth with the paper's strict exact-edge-set metric;
//! [`mcmc`] is the Bayesian (MCMC) baseline the paper compares its
//! deterministic solution against; [`batch`] fans many cells'
//! independent inferences across the worker pool with deterministic
//! ordered reduction.

pub mod accuracy;
pub mod batch;
pub mod constraints;
pub mod fleetcache;
pub mod infer;
pub mod init;
pub mod mcmc;
pub mod residual;
pub mod transform;

pub use accuracy::topology_accuracy;
pub use batch::{infer_batch, infer_batch_cached, infer_batch_sequential, infer_batch_with};
pub use constraints::ConstraintSystem;
pub use fleetcache::{
    FleetBlueprintCache, FleetCacheEvent, FleetCacheStats, TopologySignature,
    DEFAULT_FLEET_CACHE_CAPACITY,
};
pub use infer::{
    infer_topology, infer_topology_with, refine_topology_with, InferScratch, InferenceConfig,
    InferenceResult,
};
pub use mcmc::{infer_mcmc, infer_mcmc_result, McmcConfig};
pub use residual::{ObservationWindow, ResidualTracker, TrackerBuffers};

/// Which inference engine turns a constraint system into a topology.
///
/// Both backends report through [`InferenceResult`] with the same
/// residual-fraction/verdict semantics, so the orchestration layers
/// (`run_blu`, `robust`) can gate speculation identically regardless
/// of backend.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum InferenceBackend {
    /// The paper's deterministic gradient repair
    /// ([`infer_topology`]) — the default.
    #[default]
    Gradient,
    /// The annealed MCMC chain ([`mcmc::infer_mcmc`]) with its own
    /// configuration and seed.
    Mcmc {
        /// Chain configuration (steps, temperatures, penalty).
        config: McmcConfig,
        /// Chain seed (determinism contract: same seed, same result).
        seed: u64,
    },
}

impl InferenceBackend {
    /// Run this backend on a constraint system.
    pub fn infer(&self, sys: &ConstraintSystem, config: &InferenceConfig) -> InferenceResult {
        match self {
            InferenceBackend::Gradient => infer::infer_topology(sys, config),
            InferenceBackend::Mcmc {
                config: mcmc_config,
                seed,
            } => mcmc::infer_mcmc_result(sys, mcmc_config, *seed, config),
        }
    }

    /// [`InferenceBackend::infer`] against caller-provided scratch:
    /// the gradient backend runs through [`infer_topology_with`] so
    /// its tracker/refinement buffers are recycled across calls; the
    /// MCMC chain keeps its own state and takes the plain path.
    /// Bit-identical to [`InferenceBackend::infer`] (pinned by the
    /// batch and orchestrator differential tests).
    pub fn infer_with(
        &self,
        sys: &ConstraintSystem,
        config: &InferenceConfig,
        scratch: &mut InferScratch,
    ) -> InferenceResult {
        match self {
            InferenceBackend::Gradient => infer::infer_topology_with(sys, config, scratch),
            other => other.infer(sys, config),
        }
    }
}
