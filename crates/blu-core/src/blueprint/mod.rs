//! Blue-printing interference: inferring the hidden-terminal topology
//! from pairwise client access measurements (paper §3.4).
//!
//! Pipeline: [`transform`] maps measured probabilities into the
//! log domain where hidden-terminal contributions are additive;
//! [`constraints`] holds the resulting linear constraint system
//! (Eqn. 6); [`infer`] repairs a candidate topology by gradient moves
//! until the constraints are satisfied, restarting from the
//! [`init`] portfolio of starting topologies; [`accuracy`] scores an
//! inferred topology against ground truth with the paper's strict
//! exact-edge-set metric; [`mcmc`] is the Bayesian (MCMC) baseline the
//! paper compares its deterministic solution against.

pub mod accuracy;
pub mod constraints;
pub mod infer;
pub mod init;
pub mod mcmc;
pub mod transform;

pub use accuracy::topology_accuracy;
pub use constraints::ConstraintSystem;
pub use infer::{infer_topology, InferenceConfig, InferenceResult};
